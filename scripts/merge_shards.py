#!/usr/bin/env python3
"""Drive a shard-merge and prove it byte-identical to the unsharded run.

Usage:
    merge_shards.py --binary build/sweep_merge --out merged \
                    [--diff-against single_process_reports/] \
                    shard0.partial shard1.partial ...
    merge_shards.py --self-test

CI runs the reference sweep twice — once as a single process, once as N
shard processes — then calls this script on the shard partials. It

  1. asks `sweep_merge --describe` for every partial's header and checks
     the fleet is coherent *before* merging: every file carries partial
     format version 1, every group of same-named partials agrees
     on shard count / total trials / expansion digest, shard indices
     cover 0..N-1 exactly once, and the per-shard trial counts sum to the
     expansion total;
  2. runs `sweep_merge` to fold the partials into <out>/<stem>.csv/.json;
  3. with --diff-against, byte-compares every merged report against the
     single-process report of the same name. Any differing byte fails.

The byte-diff is the whole point: aggregation is float-order sensitive,
so "semantically equal" reports are not good enough evidence that shard
slicing preserved the expansion order. Identical bytes are.

Exit codes: 0 ok, 1 validation/merge/diff failure, 2 usage or I/O error.
"""

import argparse
import json
import os
import subprocess
import sys

# Must match kPartialVersion in src/exp/partial.h. Bump both together;
# the C++ reader refuses other versions, and so does validate_headers()
# below, so a stale sweep_explorer binary in a CI matrix leg fails
# loudly instead of merging a format this build cannot actually parse.
PARTIAL_VERSION = 1

REPORT_FORMATS = (".csv", ".json")


def describe(binary, paths):
    """Run `sweep_merge --describe` and parse one header dict per line.

    Returns (headers, error): headers is a list of dicts on success,
    error is a string on any decode refusal or unparsable output.
    """
    proc = subprocess.run(
        [binary, "--describe"] + list(paths),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    if proc.returncode != 0:
        return None, "describe failed: " + proc.stderr.strip()
    headers = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            headers.append(json.loads(line))
        except ValueError as e:
            return None, "unparsable describe line {!r}: {}".format(line, e)
    if len(headers) != len(paths):
        return None, "describe printed {} headers for {} files".format(
            len(headers), len(paths)
        )
    return headers, None


def validate_headers(headers):
    """Check a fleet of partial headers is complete and coherent.

    Returns a list of error strings; empty means the fleet is mergeable.
    Mirrors the refusals in merge_partials() so CI can report *which*
    shard is wrong before the C++ merge aborts on the first problem.
    """
    errors = []
    groups = {}
    for h in headers:
        if h.get("version") != PARTIAL_VERSION:
            errors.append(
                "{}: partial version {} but this script expects {}".format(
                    h.get("file", "?"), h.get("version"), PARTIAL_VERSION
                )
            )
            continue
        groups.setdefault(h["name"], []).append(h)

    for name, hs in sorted(groups.items()):
        counts = {h["of"] for h in hs}
        totals = {h["total_trials"] for h in hs}
        digests = {h["expansion_digest"] for h in hs}
        if len(counts) != 1 or len(totals) != 1 or len(digests) != 1:
            errors.append(
                "{}: shards disagree on expansion "
                "(counts={}, totals={}, digests={})".format(
                    name, sorted(counts), sorted(totals), sorted(digests)
                )
            )
            continue
        count = counts.pop()
        seen = {}
        for h in hs:
            idx = h["shard"]
            if not 0 <= idx < count:
                errors.append(
                    "{}: shard index {} out of range for /{}".format(
                        name, idx, count
                    )
                )
            elif idx in seen:
                errors.append(
                    "{}: shard {}/{} given twice ({} and {})".format(
                        name, idx, count, seen[idx], h.get("file", "?")
                    )
                )
            else:
                seen[idx] = h.get("file", "?")
        missing = sorted(set(range(count)) - set(seen))
        if missing:
            errors.append(
                "{}: missing shard(s) {} of /{}".format(name, missing, count)
            )
        got = sum(h["trials"] for h in hs)
        want = totals.pop()
        if not missing and got != want:
            errors.append(
                "{}: shards carry {} trials but the expansion has {}".format(
                    name, got, want
                )
            )
    return errors


def byte_diff(merged_dir, reference_dir, stems):
    """Byte-compare <stem>.csv/.json between two report dirs.

    Returns a list of error strings; empty means every report matched.
    """
    errors = []
    for stem in sorted(stems):
        for ext in REPORT_FORMATS:
            a = os.path.join(merged_dir, stem + ext)
            b = os.path.join(reference_dir, stem + ext)
            try:
                with open(a, "rb") as f:
                    merged = f.read()
                with open(b, "rb") as f:
                    reference = f.read()
            except OSError as e:
                errors.append("cannot read report pair: {}".format(e))
                continue
            if merged != reference:
                n = next(
                    (
                        i
                        for i, (x, y) in enumerate(zip(merged, reference))
                        if x != y
                    ),
                    min(len(merged), len(reference)),
                )
                errors.append(
                    "{} differs from {} (first differing byte at offset {}, "
                    "sizes {} vs {})".format(a, b, n, len(merged), len(reference))
                )
            else:
                print(
                    "merge_shards: {} == {} ({} bytes)".format(
                        a, b, len(merged)
                    )
                )
    return errors


# ---- self-test -------------------------------------------------------------


def _header(file, name="ref_sweep", shard=0, of=3, trials=5, total=15,
            digest="00c0ffee00c0ffee", version=PARTIAL_VERSION):
    return {
        "file": file,
        "version": version,
        "name": name,
        "shard": shard,
        "of": of,
        "trials": trials,
        "total_trials": total,
        "expansion_digest": digest,
    }


def self_test():
    ok = True

    def check(name, headers, want_fail):
        nonlocal ok
        errors = validate_headers(headers)
        good = bool(errors) == want_fail
        print(
            "self-test {:<28} {}".format(name, "ok" if good else "FAILED")
        )
        if not good:
            for e in errors:
                print("  unexpected:", e)
        ok = ok and good

    complete = [
        _header("a.partial", shard=0),
        _header("b.partial", shard=1),
        _header("c.partial", shard=2),
    ]
    check("complete-fleet-ok", complete, want_fail=False)
    check(
        "two-sweeps-grouped-ok",
        complete
        + [
            _header("k0.partial", name="fault_sweep", shard=0, of=2,
                    trials=4, total=8, digest="deadbeefdeadbeef"),
            _header("k1.partial", name="fault_sweep", shard=1, of=2,
                    trials=4, total=8, digest="deadbeefdeadbeef"),
        ],
        want_fail=False,
    )
    check(
        "empty-shard-ok",
        [
            _header("a.partial", shard=0, of=2, trials=15),
            _header("b.partial", shard=1, of=2, trials=0),
        ],
        want_fail=False,
    )
    check(
        "version-mismatch-refused",
        [_header("a.partial", version=PARTIAL_VERSION + 1)],
        want_fail=True,
    )
    check(
        "missing-shard-refused",
        [complete[0], complete[2]],
        want_fail=True,
    )
    check(
        "duplicate-shard-refused",
        complete + [_header("dup.partial", shard=1)],
        want_fail=True,
    )
    check(
        "foreign-digest-refused",
        [
            complete[0],
            complete[1],
            _header("c.partial", shard=2, digest="0123456789abcdef"),
        ],
        want_fail=True,
    )
    check(
        "shard-count-skew-refused",
        [complete[0], _header("b.partial", shard=1, of=4)],
        want_fail=True,
    )
    check(
        "index-out-of-range-refused",
        complete + [_header("d.partial", shard=3)],
        want_fail=True,
    )
    check(
        "trial-shortfall-refused",
        [
            _header("a.partial", shard=0, trials=5),
            _header("b.partial", shard=1, trials=5),
            _header("c.partial", shard=2, trials=4),
        ],
        want_fail=True,
    )
    print("self-test " + ("passed" if ok else "FAILED"))
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("partials", nargs="*", help="shard .partial files")
    ap.add_argument("--binary", help="path to the sweep_merge binary")
    ap.add_argument("--out", default=".", help="directory for merged reports")
    ap.add_argument(
        "--diff-against",
        help="directory of single-process reports to byte-compare with",
    )
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.partials or not args.binary:
        ap.error("partials and --binary are required (or --self-test)")

    headers, err = describe(args.binary, args.partials)
    if headers is None:
        print("merge_shards:", err, file=sys.stderr)
        return 1
    errors = validate_headers(headers)
    if errors:
        for e in errors:
            print("merge_shards:", e, file=sys.stderr)
        return 1
    stems = sorted({h["name"] for h in headers})
    print(
        "merge_shards: {} partials across {} sweep(s): {}".format(
            len(headers), len(stems), ", ".join(stems)
        )
    )

    proc = subprocess.run([args.binary, "--out", args.out] + args.partials)
    if proc.returncode != 0:
        print(
            "merge_shards: sweep_merge exited {}".format(proc.returncode),
            file=sys.stderr,
        )
        return 1

    if args.diff_against:
        errors = byte_diff(args.out, args.diff_against, stems)
        if errors:
            for e in errors:
                print("merge_shards:", e, file=sys.stderr)
            return 1
        print("merge_shards: all merged reports byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
