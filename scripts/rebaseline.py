#!/usr/bin/env python3
"""Merge N BENCH_simcore.json runs into one baseline by per-row medians.

Usage:
    rebaseline.py run1.json run2.json run3.json \
                  --output bench/baselines/BENCH_simcore.baseline.json
    rebaseline.py --self-test

A single bench run's wall-clock numbers carry shared-runner noise even
after best-of-3; the scheduled re-baseline job shrinks it further by
running the whole bench N times and keeping, per row, the MEDIAN
events_per_sec and wall_ms across runs. Everything deterministic (events,
msgs, bytes, allocation counters) is identical across runs and is taken
from the first artifact verbatim; the calibration row and the
engine-comparison speedup are re-derived from medians too.

All runs must contain the same row set — a mismatch means a stale binary
or a half-finished run and is an error, not something to paper over.

Exit codes: 0 ok, 1 row-set mismatch, 2 usage or I/O error.
"""

import argparse
import json
import statistics
import sys

# (section, key fields...) — keys must match scripts/bench_trend.py.
# "coalesce" (schema v4) distinguishes batched-delivery million_client rows
# from their per-message twins, "dest_major" (schema v5) splits the batched
# rows again into destination-major and frame-order drains; row_key uses
# .get() so older artifacts without the fields still key correctly.
SECTIONS = {
    "workloads": ("protocol", "cluster"),
    "valuevector": ("protocol", "cluster", "workload"),
    "million_client": (
        "protocol",
        "clients",
        "ops_per_client",
        "coalesce",
        "dest_major",
    ),
}
MEDIANED_FIELDS = ("events_per_sec", "wall_ms")

# Must match kPartialVersion in src/exp/partial.h (and PARTIAL_VERSION in
# scripts/merge_shards.py). Runs assembled from a sharded sweep fleet
# stamp "sweep_partial_version"; medianing runs produced by different
# partial codecs would bake a format skew into the baseline, so any
# stamped run must carry the version this tree supports.
SWEEP_PARTIAL_VERSION = 1


def row_key(section, row):
    return (section,) + tuple(row.get(f, False) for f in SECTIONS[section])


def index_rows(doc):
    """{row_key: row} over every known section of one artifact."""
    out = {}
    for section in SECTIONS:
        for row in doc.get(section, []):
            out[row_key(section, row)] = row
    return out


def merge(docs):
    """Median-merge artifacts into a baseline; raises ValueError on
    mismatched row sets."""
    template = docs[0]
    for i, doc in enumerate(docs, start=1):
        version = doc.get("sweep_partial_version")
        if version is not None and version != SWEEP_PARTIAL_VERSION:
            raise ValueError(
                "run {} was assembled from sweep partials v{}, but this "
                "tree reads v{} — rebaseline with matching binaries".format(
                    i, version, SWEEP_PARTIAL_VERSION
                )
            )
    indexes = [index_rows(d) for d in docs]
    keys = set(indexes[0])
    for i, idx in enumerate(indexes[1:], start=2):
        if set(idx) != keys:
            diff = sorted(set(idx) ^ keys)
            raise ValueError(
                "run {} has a different row set ({} mismatched rows, "
                "e.g. {})".format(i, len(diff), "/".join(map(str, diff[0])))
            )

    merged = json.loads(json.dumps(template))  # deep copy
    for section in SECTIONS:
        for row in merged.get(section, []):
            key = row_key(section, row)
            for field in MEDIANED_FIELDS:
                if field in row:
                    row[field] = statistics.median(
                        float(idx[key][field]) for idx in indexes
                    )

    cmp_rows = [d.get("engine_comparison", {}) for d in docs]
    cmp_out = merged.get("engine_comparison", {})
    for field in (
        "legacy_events_per_sec",
        "pooled_events_per_sec",
        "batched_events_per_sec",
    ):
        if all(field in c for c in cmp_rows):
            cmp_out[field] = statistics.median(float(c[field]) for c in cmp_rows)
    if cmp_out.get("legacy_events_per_sec"):
        cmp_out["speedup"] = (
            cmp_out["pooled_events_per_sec"] / cmp_out["legacy_events_per_sec"]
        )
    if cmp_out.get("pooled_events_per_sec") and "batched_events_per_sec" in cmp_out:
        cmp_out["batched_speedup"] = (
            cmp_out["batched_events_per_sec"] / cmp_out["pooled_events_per_sec"]
        )

    # Schema v4 coalescing section: median the two wall-clock rates and
    # re-derive their ratio; batches, histogram, and steady counters are
    # deterministic and stay verbatim from the first run.
    co_rows = [d.get("coalescing", {}) for d in docs]
    co_out = merged.get("coalescing", {})
    for field in ("per_message_events_per_sec", "coalesced_events_per_sec"):
        if all(field in c for c in co_rows):
            co_out[field] = statistics.median(float(c[field]) for c in co_rows)
    if co_out.get("per_message_events_per_sec"):
        co_out["coalesce_speedup"] = (
            co_out["coalesced_events_per_sec"]
            / co_out["per_message_events_per_sec"]
        )

    # Schema v5 fanout_replay: median the two wall-clock rates and wall_ms,
    # re-derive the speedup; mean_run_len, tick and staging counters are
    # deterministic and stay verbatim from the first run.
    fo_rows = [d.get("fanout_replay", {}) for d in docs]
    fo_out = merged.get("fanout_replay", {})
    for field in (
        "frame_order_events_per_sec",
        "dest_major_events_per_sec",
        "wall_ms",
    ):
        if all(field in f for f in fo_rows):
            fo_out[field] = statistics.median(float(f[field]) for f in fo_rows)
    if fo_out.get("frame_order_events_per_sec"):
        fo_out["dest_major_speedup"] = (
            fo_out["dest_major_events_per_sec"]
            / fo_out["frame_order_events_per_sec"]
        )

    # Schema v6 checked_soak: median the wall-clock numbers (throughput and
    # the noisy checker-overhead difference); verdict, window peaks, and
    # retirement counters are deterministic and stay verbatim from the
    # first run.
    cs_rows = [d.get("checked_soak", {}) for d in docs]
    cs_out = merged.get("checked_soak", {})
    for field in ("events_per_sec", "wall_ms", "checker_ns_per_op"):
        if all(field in c for c in cs_rows):
            cs_out[field] = statistics.median(float(c[field]) for c in cs_rows)
    return merged


# ---- self-test -------------------------------------------------------------


def _run(eps, wall, legacy=1e6, pooled=3e6, batched=9e6):
    return {
        "bench": "simcore_throughput",
        "schema_version": 5,
        "engine_comparison": {
            "legacy_events_per_sec": legacy,
            "pooled_events_per_sec": pooled,
            "batched_events_per_sec": batched,
            "speedup": pooled / legacy,
            "batched_speedup": batched / pooled,
        },
        "coalescing": {
            "frames": 300000,
            "per_message_events_per_sec": eps * 10,
            "coalesced_events_per_sec": eps * 30,
            "coalesce_speedup": 3.0,
            "batches": 50000,
            "frames_per_batch": 6.0,
            "batch_size_hist": [{"ge": 4, "count": 50000}],
            "steady_engine_allocs": 0,
            "steady_pool_misses": 0,
        },
        "workloads": [
            {
                "protocol": "fr",
                "cluster": "S=5",
                "events": 1000,
                "events_per_sec": eps,
                "wall_ms": wall,
            }
        ],
        "fanout_replay": {
            "workload": "w2r2_table_fanout",
            "protocol": "mw-abd(W2R2)",
            "clients": 10000,
            "ops_per_client": 4,
            "frames": 800000,
            "frame_order_events_per_sec": eps * 20,
            "frame_order_mean_run_len": 3.0,
            "dest_major_events_per_sec": eps * 40,
            "dest_major_speedup": 2.0,
            "mean_run_len": 11.0,
            "dest_major_ticks": 12000,
            "staged_replies": 600000,
            "wall_ms": wall,
        },
        "checked_soak": {
            "workload": "million_client_checked",
            "protocol": "mw-abd(W2R2)",
            "keyspace": "keys=64 shards=8 zipf=0.99",
            "clients": 100000,
            "ops_per_client": 10,
            "ops_checked": 1000000,
            "verdict_atomic": True,
            "peak_window": 1200,
            "peak_pending": 2400,
            "retired_tags": 450000,
            "history_live": 30000,
            "events": 40000000,
            "wall_ms": wall * 3,
            "events_per_sec": eps * 7,
            "checker_ns_per_op": wall * 5,
            "steady_engine_allocs": 0,
            "steady_pool_misses": 0,
        },
        "million_client": [
            {
                "protocol": "mw-abd(W2R2)",
                "clients": 100000,
                "ops_per_client": 10,
                "coalesce": coalesce,
                "dest_major": dest_major,
                "events_per_sec": eps * (2 if not coalesce else 6 if not dest_major else 8),
                "wall_ms": wall * 2,
                "steady_engine_allocs": 0,
                "steady_pool_misses": 0,
            }
            for coalesce, dest_major in (
                (False, False),
                (True, False),
                (True, True),
            )
        ],
        "valuevector": [],
    }


def self_test():
    runs = [_run(100.0, 10.0), _run(500.0, 2.0), _run(300.0, 6.0, legacy=2e6)]
    m = merge(runs)
    ok = True

    def check(name, cond):
        nonlocal ok
        print("self-test {:<28} {}".format(name, "ok" if cond else "FAILED"))
        ok = ok and cond

    check("workload-eps-median", m["workloads"][0]["events_per_sec"] == 300.0)
    check("workload-wall-median", m["workloads"][0]["wall_ms"] == 6.0)
    check("million-eps-median", m["million_client"][0]["events_per_sec"] == 600.0)
    check(
        "million-coalesced-median",
        m["million_client"][1]["events_per_sec"] == 1800.0,
    )
    check("deterministic-verbatim", m["workloads"][0]["events"] == 1000)
    check(
        "calibration-median",
        m["engine_comparison"]["legacy_events_per_sec"] == 1e6,
    )
    check("speedup-rederived", m["engine_comparison"]["speedup"] == 3.0)
    check(
        "batched-median-rederived",
        m["engine_comparison"]["batched_events_per_sec"] == 9e6
        and m["engine_comparison"]["batched_speedup"] == 3.0,
    )
    check(
        "coalescing-eps-median",
        m["coalescing"]["per_message_events_per_sec"] == 3000.0
        and m["coalescing"]["coalesced_events_per_sec"] == 9000.0,
    )
    check("coalescing-ratio-rederived", m["coalescing"]["coalesce_speedup"] == 3.0)
    check(
        "million-dest-major-keyed",
        m["million_client"][2]["dest_major"] is True
        and m["million_client"][2]["events_per_sec"] == 2400.0,
    )
    check(
        "fanout-eps-median",
        m["fanout_replay"]["frame_order_events_per_sec"] == 6000.0
        and m["fanout_replay"]["dest_major_events_per_sec"] == 12000.0,
    )
    check("fanout-wall-median", m["fanout_replay"]["wall_ms"] == 6.0)
    check("fanout-speedup-rederived", m["fanout_replay"]["dest_major_speedup"] == 2.0)
    check(
        "fanout-runlen-verbatim",
        m["fanout_replay"]["mean_run_len"] == 11.0
        and m["fanout_replay"]["frames"] == 800000,
    )
    check(
        "soak-medians",
        m["checked_soak"]["events_per_sec"] == 2100.0
        and m["checked_soak"]["wall_ms"] == 18.0
        and m["checked_soak"]["checker_ns_per_op"] == 30.0,
    )
    check(
        "soak-deterministic-verbatim",
        m["checked_soak"]["verdict_atomic"] is True
        and m["checked_soak"]["peak_window"] == 1200
        and m["checked_soak"]["retired_tags"] == 450000,
    )
    try:
        bad = _run(100.0, 10.0)
        bad["workloads"][0]["cluster"] = "S=7"
        merge([runs[0], bad])
        check("mismatch-detected", False)
    except ValueError:
        check("mismatch-detected", True)
    stamped = [_run(100.0, 10.0), _run(500.0, 2.0)]
    for r in stamped:
        r["sweep_partial_version"] = SWEEP_PARTIAL_VERSION
    try:
        sm = merge(stamped)
        check(
            "partial-version-ok",
            sm["sweep_partial_version"] == SWEEP_PARTIAL_VERSION
            and sm["workloads"][0]["events_per_sec"] == 300.0,
        )
    except ValueError:
        check("partial-version-ok", False)
    try:
        skewed = _run(300.0, 6.0)
        skewed["sweep_partial_version"] = SWEEP_PARTIAL_VERSION + 1
        merge([stamped[0], skewed])
        check("partial-version-skew", False)
    except ValueError:
        check("partial-version-skew", True)
    print("self-test " + ("passed" if ok else "FAILED"))
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("runs", nargs="*", help="BENCH_simcore.json files to merge")
    ap.add_argument("--output", help="baseline path to write")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.runs or not args.output:
        ap.error("at least one run and --output are required (or --self-test)")

    try:
        docs = []
        for path in args.runs:
            with open(path) as f:
                docs.append(json.load(f))
    except (OSError, ValueError) as e:
        print("rebaseline: cannot load inputs:", e, file=sys.stderr)
        return 2

    try:
        merged = merge(docs)
    except ValueError as e:
        print("rebaseline:", e, file=sys.stderr)
        return 1

    try:
        with open(args.output, "w") as f:
            json.dump(merged, f, indent=1)
            f.write("\n")
    except OSError as e:
        print("rebaseline: cannot write output:", e, file=sys.stderr)
        return 2
    print(
        "rebaseline: wrote {} ({} rows, medians of {} runs)".format(
            args.output, len(index_rows(merged)), len(docs)
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
