#!/usr/bin/env python3
"""Perf-trend gate: diff a fresh BENCH_simcore.json against the checked-in
baseline and fail on events/sec regressions.

Usage:
    bench_trend.py --artifact build/BENCH_simcore.json \
                   --baseline bench/baselines/BENCH_simcore.baseline.json \
                   [--max-regression 0.25]
    bench_trend.py --self-test

Rows are keyed by (section, protocol, cluster[, workload]) so the grid can
grow without invalidating history; a row present in the baseline but
missing from the artifact is itself a failure (silent coverage loss reads
as "no regression").

Shared CI runners differ wildly in absolute speed, so the gate is
ratio-based: every row's events/sec is first normalized by the artifact's
own engine_comparison.legacy_events_per_sec — a fixed single-threaded
replay that acts as an in-run machine-speed calibration — and only then
compared against the baseline's normalized value. A >25% drop of the
normalized ratio fails; absolute machine speed cancels out.

The gate also re-asserts the allocation-free steady state: any workload
row with nonzero steady_engine_allocs/steady_pool_misses fails.

Schema v5 adds two absolute (non-ratio) gates on the fanout_replay
section: the destination-major drain's mean dispatched-run length on the
W2R2 table fan-out must stay >= 8, and the section itself must not vanish
once baselined. Run length is deterministic (a property of the schedule,
not the machine), so it is gated absolutely.

Schema v6 adds the checked_soak section (the 10^6-op run with the
streaming tag-witness checker live). Its events_per_sec rides the normal
ratio gate; on top of that the verdict must be atomic, the steady-state
allocation counters must stay 0, and peak_window — the checker's memory
high-water mark, deterministic for the seeded schedule — must not exceed
2x the baselined value (the checker staying window-bounded is the whole
point of the section). checker_ns_per_op is reported but not gated: it is
a difference of two wall times and too jittery for a hard threshold;
rebaseline.py medians it for trend reading instead.

Refreshing the baseline after a deliberate perf change:
    cmake --build build --target refresh-baseline
then commit bench/baselines/BENCH_simcore.baseline.json with the PR that
changed the numbers (see README "Performance").

Exit codes: 0 pass, 1 regression/coverage failure, 2 usage or I/O error.
"""

import argparse
import json
import sys


def collect_rows(doc):
    """Flatten an artifact into {row_key: (events_per_sec, wall_ms)}."""
    rows = {}
    for w in doc.get("workloads", []):
        key = "workloads/{}/{}".format(w["protocol"], w["cluster"])
        rows[key] = (float(w["events_per_sec"]), float(w.get("wall_ms", 0)))
    for v in doc.get("valuevector", []):
        key = "valuevector/{}/{}/{}".format(
            v["protocol"], v["cluster"], v["workload"]
        )
        rows[key] = (float(v["events_per_sec"]), float(v.get("wall_ms", 0)))
    for m in doc.get("million_client", []):
        key = "million_client/{}/{}x{}".format(
            m["protocol"], m["clients"], m["ops_per_client"]
        )
        # Schema v4: coalesced rows share (protocol, clients, ops) with
        # their per-message twins; the suffix keeps per-message keys stable
        # so v3 baselines stay comparable. Schema v5 twins the coalesced
        # rows again on the drain: "/coalesced" stays the default engine
        # (dest-major — absent field defaults True so v4 baselines keep
        # their key), the frame-order ablation gets its own suffix.
        if m.get("coalesce", False):
            key += (
                "/coalesced"
                if m.get("dest_major", True)
                else "/coalesced/frame-order"
            )
        rows[key] = (float(m["events_per_sec"]), float(m.get("wall_ms", 0)))
    fo = doc.get("fanout_replay")
    if fo:
        # Deterministic schedule, wall-clock denominator: both drain lanes
        # ride the normalized ratio gate like every other row.
        for field, name in (
            ("frame_order_events_per_sec", "frame_order"),
            ("dest_major_events_per_sec", "dest_major"),
        ):
            rows["fanout_replay/" + name] = (
                float(fo[field]),
                float(fo.get("wall_ms", 100.0)),
            )
    cs = doc.get("checked_soak")
    if cs:
        # Rides the normalized ratio gate like every other long row; the
        # soak-specific absolute gates live in checked_soak_failures.
        rows["checked_soak/million_client_checked"] = (
            float(cs["events_per_sec"]),
            float(cs.get("wall_ms", 0)),
        )
    co = doc.get("coalescing")
    if co:
        # The batched-delivery replay has no per-row wall_ms; each number is
        # a best-of-5 over ~20ms timed runs, solid enough to hard-gate.
        for field, name in (
            ("per_message_events_per_sec", "per_message"),
            ("coalesced_events_per_sec", "coalesced"),
        ):
            rows["coalescing/" + name] = (float(co[field]), 100.0)
    # Schema v4: the batched cost-model engine rides the same calibration
    # as every other row (legacy stays the denominator), so its ratio to
    # the per-message engines is machine-independent and gateable.
    batched = doc.get("engine_comparison", {}).get("batched_events_per_sec")
    if batched is not None:
        rows["engine_comparison/batched"] = (float(batched), 100.0)
    return rows


def coalescing_lines(doc):
    """Schema v4 coalescing summary: engine ratio + batch-size histogram."""
    co = doc.get("coalescing")
    if not co:
        return []
    lines = [
        "coalescing: {:.2f}x over per-message ({:.1f} frames/batch, "
        "{} batches)".format(
            float(co.get("coalesce_speedup", 0)),
            float(co.get("frames_per_batch", 0)),
            int(co.get("batches", 0)),
        )
    ]
    hist = co.get("batch_size_hist", [])
    if hist:
        lines.append(
            "  batch size   " + " ".join(
                "{:>8}".format(">=" + str(b["ge"])) for b in hist if b["count"]
            )
        )
        lines.append(
            "  batches      " + " ".join(
                "{:>8}".format(b["count"]) for b in hist if b["count"]
            )
        )
    return lines


MIN_MEAN_RUN_LEN = 8.0


def run_length_failures(doc):
    """Schema v5 hard gate: the dest-major drain must keep dispatched runs
    long on the W2R2 table fan-out. Deterministic, so gated absolutely."""
    fo = doc.get("fanout_replay")
    if not fo:
        return []
    mean = float(fo.get("mean_run_len", 0.0))
    if mean < MIN_MEAN_RUN_LEN:
        return [
            "fanout_replay: dest-major mean run length {:.2f} < {:g} "
            "(dispatched runs went short)".format(mean, MIN_MEAN_RUN_LEN)
        ]
    return []


PEAK_WINDOW_HEADROOM = 2.0


def checked_soak_failures(artifact, baseline):
    """Schema v6 absolute gates on the checked_soak section: the live
    verdict must be atomic, the checker must stay allocation-free in steady
    state, and its memory high-water mark (peak_window, deterministic for
    the seeded schedule) must not outgrow the baseline by more than
    PEAK_WINDOW_HEADROOM."""
    cs = artifact.get("checked_soak")
    if not cs:
        return []
    bad = []
    if not cs.get("verdict_atomic", False):
        bad.append(
            "checked_soak: streaming checker reported a violation on the "
            "soak run"
        )
    steady = int(cs.get("steady_engine_allocs", 0)) + int(
        cs.get("steady_pool_misses", 0)
    )
    if steady != 0:
        bad.append(
            "checked_soak: steady-state allocations = {}".format(steady)
        )
    base_cs = baseline.get("checked_soak")
    if base_cs:
        peak = int(cs.get("peak_window", 0))
        base_peak = int(base_cs.get("peak_window", 0))
        if base_peak > 0 and peak > base_peak * PEAK_WINDOW_HEADROOM:
            bad.append(
                "checked_soak: peak_window {} > {:g}x baseline {} "
                "(checker memory no longer window-bounded?)".format(
                    peak, PEAK_WINDOW_HEADROOM, base_peak
                )
            )
    return bad


def checked_soak_lines(doc):
    cs = doc.get("checked_soak")
    if not cs:
        return []
    return [
        "checked_soak: {} ops checked, verdict {}, peak window {} "
        "(pending {}), {} tags retired, {:.1f} ns/op checker overhead".format(
            int(cs.get("ops_checked", 0)),
            "atomic" if cs.get("verdict_atomic", False) else "VIOLATION",
            int(cs.get("peak_window", 0)),
            int(cs.get("peak_pending", 0)),
            int(cs.get("retired_tags", 0)),
            float(cs.get("checker_ns_per_op", 0.0)),
        )
    ]


def fanout_lines(doc):
    fo = doc.get("fanout_replay")
    if not fo:
        return []
    return [
        "fanout_replay: mean run {:.2f} dest-major vs {:.2f} frame-order "
        "({:.2f}x events/sec, {} staged replies)".format(
            float(fo.get("mean_run_len", 0)),
            float(fo.get("frame_order_mean_run_len", 0)),
            float(fo.get("dest_major_speedup", 0)),
            int(fo.get("staged_replies", 0)),
        )
    ]


def calibration(doc):
    """In-run machine-speed reference; None when absent (raw comparison)."""
    eps = doc.get("engine_comparison", {}).get("legacy_events_per_sec")
    if eps is None:
        return None
    eps = float(eps)
    return eps if eps > 0 else None


def steady_alloc_failures(doc):
    bad = []
    for w in doc.get("workloads", []):
        steady = int(w.get("steady_engine_allocs", 0)) + int(
            w.get("steady_pool_misses", 0)
        )
        if steady != 0:
            bad.append(
                "workloads/{}/{}: steady-state allocations = {}".format(
                    w["protocol"], w["cluster"], steady
                )
            )
    for m in doc.get("million_client", []):
        steady = int(m.get("steady_engine_allocs", 0)) + int(
            m.get("steady_pool_misses", 0)
        )
        if steady != 0:
            bad.append(
                "million_client/{}/{}x{}: steady-state allocations = {}".format(
                    m["protocol"], m["clients"], m["ops_per_client"], steady
                )
            )
    co = doc.get("coalescing")
    if co:
        steady = int(co.get("steady_engine_allocs", 0)) + int(
            co.get("steady_pool_misses", 0)
        )
        if steady != 0:
            bad.append(
                "coalescing: steady-state allocations = {}".format(steady)
            )
    return bad


# Must match kPartialVersion in src/exp/partial.h (and PARTIAL_VERSION in
# scripts/merge_shards.py). Artifacts assembled from a sharded sweep
# fleet stamp the partial format they were merged from as
# "sweep_partial_version"; unstamped artifacts (the single-process bench
# path) are exempt.
SWEEP_PARTIAL_VERSION = 1


def partial_version_failures(artifact, baseline):
    """Refuse to gate across sweep-partial format versions.

    A version skew means one side was produced by binaries whose partial
    codec this tree cannot read — the numbers may aggregate differently,
    so a ratio against them is meaningless rather than merely noisy.
    """
    bad = []
    for name, doc in (("artifact", artifact), ("baseline", baseline)):
        version = doc.get("sweep_partial_version")
        if version is not None and version != SWEEP_PARTIAL_VERSION:
            bad.append(
                "{}: assembled from sweep partials v{}, but this gate "
                "reads v{} — regenerate with matching binaries".format(
                    name, version, SWEEP_PARTIAL_VERSION
                )
            )
    return bad


def compare(artifact, baseline, max_regression, min_wall_ms=5.0):
    """Return (failures, report_lines).

    Rows whose wall time is below `min_wall_ms` in either run are reported
    but not hard-gated: at millisecond scale a single scheduler preemption
    exceeds any reasonable threshold, so tiny rows would flake. (Benches
    already report best-of-3 wall times; this is the second guard.)
    Row *presence* is still enforced for every baselined row.
    """
    failures = []
    lines = []
    art_rows = collect_rows(artifact)
    base_rows = collect_rows(baseline)
    art_cal = calibration(artifact)
    base_cal = calibration(baseline)
    normalized = art_cal is not None and base_cal is not None
    if not normalized:
        lines.append(
            "warning: engine_comparison calibration missing; "
            "comparing raw events/sec (machine-speed sensitive)"
        )

    lines.append(
        "{:<58} {:>12} {:>12} {:>8}".format("row", "baseline", "artifact", "ratio")
    )
    for key in sorted(base_rows):
        if key not in art_rows:
            failures.append("row disappeared from artifact: " + key)
            continue
        base_eps, base_wall = base_rows[key]
        art_eps, art_wall = art_rows[key]
        base_v = base_eps / (base_cal if normalized else 1.0)
        art_v = art_eps / (art_cal if normalized else 1.0)
        ratio = art_v / base_v if base_v > 0 else float("inf")
        flag = ""
        if ratio < 1.0 - max_regression:
            if min(base_wall, art_wall) < min_wall_ms:
                flag = "  (regressed, ungated: wall < {:g} ms)".format(
                    min_wall_ms
                )
            else:
                failures.append(
                    "{}: normalized events/sec fell to {:.0%} of baseline".format(
                        key, ratio
                    )
                )
                flag = "  << FAIL"
        lines.append(
            "{:<58} {:>12.4g} {:>12.4g} {:>7.2f}x{}".format(
                key, base_eps, art_eps, ratio, flag
            )
        )
    for key in sorted(set(art_rows) - set(base_rows)):
        lines.append(
            "{:<58} {:>12} {:>12.4g}   (new row, not gated)".format(
                key, "-", art_rows[key][0]
            )
        )

    lines.extend(coalescing_lines(artifact))
    lines.extend(fanout_lines(artifact))
    lines.extend(checked_soak_lines(artifact))
    for msg in steady_alloc_failures(artifact):
        failures.append(msg)
    for msg in run_length_failures(artifact):
        failures.append(msg)
    for msg in checked_soak_failures(artifact, baseline):
        failures.append(msg)
    for msg in partial_version_failures(artifact, baseline):
        failures.append(msg)
    return failures, lines


# ---- self-test -------------------------------------------------------------


def _doc(
    rows,
    legacy_eps=1_000_000.0,
    steady=0,
    wall_ms=100.0,
    million=None,
    coalescing=None,
    batched_eps=None,
    fanout=None,
    soak=None,
):
    """Synthetic artifact with the given {(proto, cluster): eps} workloads.

    `million` is an optional {(clients, ops[, coalesce[, dest_major]]):
    (eps, steady)} dict rendered as the million_client section.
    `coalescing` is an optional (per_message_eps, coalesced_eps, steady)
    tuple rendered as the schema v4 coalescing section. `batched_eps`
    populates the v4 engine_comparison batched-engine row. `fanout` is an
    optional (frame_order_eps, dest_major_eps, mean_run_len) tuple rendered
    as the schema v5 fanout_replay section. `soak` is an optional
    (eps, verdict_atomic, peak_window, steady) tuple rendered as the schema
    v6 checked_soak section.
    """
    doc = {
        "bench": "simcore_throughput",
        "schema_version": 5,
        "engine_comparison": {"legacy_events_per_sec": legacy_eps},
        "workloads": [
            {
                "protocol": p,
                "cluster": c,
                "events_per_sec": eps,
                "wall_ms": wall_ms,
                "steady_engine_allocs": steady,
                "steady_pool_misses": 0,
            }
            for (p, c), eps in rows.items()
        ],
        "million_client": [
            {
                "protocol": "mw-abd(W2R2)",
                "clients": key[0],
                "ops_per_client": key[1],
                "coalesce": bool(key[2]) if len(key) > 2 else False,
                "dest_major": bool(key[3]) if len(key) > 3 else True,
                "events_per_sec": eps,
                "wall_ms": wall_ms,
                "steady_engine_allocs": msteady,
                "steady_pool_misses": 0,
            }
            for key, (eps, msteady) in (million or {}).items()
        ],
        "valuevector": [],
    }
    if batched_eps is not None:
        doc["engine_comparison"]["batched_events_per_sec"] = batched_eps
    if fanout is not None:
        fo_eps, dm_eps, mean_run = fanout
        doc["fanout_replay"] = {
            "workload": "w2r2_table_fanout",
            "protocol": "mw-abd(W2R2)",
            "clients": 10_000,
            "ops_per_client": 4,
            "frames": 800_000,
            "frame_order_events_per_sec": fo_eps,
            "frame_order_mean_run_len": 3.0,
            "dest_major_events_per_sec": dm_eps,
            "dest_major_speedup": dm_eps / fo_eps if fo_eps else 0,
            "mean_run_len": mean_run,
            "dest_major_ticks": 12_000,
            "staged_replies": 600_000,
            "wall_ms": wall_ms,
        }
    if soak is not None:
        s_eps, s_atomic, s_peak, s_steady = soak
        doc["checked_soak"] = {
            "workload": "million_client_checked",
            "protocol": "mw-abd(W2R2)",
            "keyspace": "keys=64 shards=8 zipf=0.99",
            "clients": 100_000,
            "ops_per_client": 10,
            "ops_checked": 1_000_000,
            "verdict_atomic": s_atomic,
            "peak_window": s_peak,
            "peak_pending": s_peak * 2,
            "retired_tags": 450_000,
            "history_live": 30_000,
            "events": 40_000_000,
            "wall_ms": wall_ms,
            "events_per_sec": s_eps,
            "checker_ns_per_op": 55.0,
            "steady_engine_allocs": s_steady,
            "steady_pool_misses": 0,
        }
    if coalescing is not None:
        per_msg, coalesced, csteady = coalescing
        doc["coalescing"] = {
            "workload": "w2r1_replay_real_network",
            "frames": 300_000,
            "per_message_events_per_sec": per_msg,
            "coalesced_events_per_sec": coalesced,
            "coalesce_speedup": coalesced / per_msg if per_msg else 0,
            "batches": 50_000,
            "frames_per_batch": 6.0,
            "batch_size_hist": [
                {"ge": 1, "count": 10_000},
                {"ge": 2, "count": 20_000},
                {"ge": 4, "count": 20_000},
            ],
            "steady_engine_allocs": csteady,
            "steady_pool_misses": 0,
        }
    return doc


def self_test():
    base = _doc({("fr", "S=5"): 400_000.0, ("abd", "S=3"): 8_000_000.0})
    checks = []

    def check(name, doc, want_fail, max_regression=0.25):
        failures, _ = compare(doc, base, max_regression)
        ok = bool(failures) == want_fail
        checks.append((name, ok, failures))
        return ok

    # Identical numbers pass.
    check("identical", _doc({("fr", "S=5"): 400_000.0, ("abd", "S=3"): 8e6}), False)
    # A 10% dip is shared-runner noise: pass.
    check("10pc-dip", _doc({("fr", "S=5"): 360_000.0, ("abd", "S=3"): 8e6}), False)
    # A >25% regression on one row fails.
    check("30pc-drop", _doc({("fr", "S=5"): 280_000.0, ("abd", "S=3"): 8e6}), True)
    # A vanished row fails (coverage loss must be loud).
    check("missing-row", _doc({("fr", "S=5"): 400_000.0}), True)
    # A new, un-baselined row passes (it gets gated once baselined).
    check(
        "new-row",
        _doc({("fr", "S=5"): 4e5, ("abd", "S=3"): 8e6, ("new", "S=9"): 1.0}),
        False,
    )
    # Machine speed cancels: a runner half as fast shows half the eps
    # everywhere, including the calibration row, and still passes.
    check(
        "slow-machine",
        _doc(
            {("fr", "S=5"): 200_000.0, ("abd", "S=3"): 4e6},
            legacy_eps=500_000.0,
        ),
        False,
    )
    # ... but a real 30% drop is still caught on the slow machine.
    check(
        "slow-machine-real-drop",
        _doc(
            {("fr", "S=5"): 140_000.0, ("abd", "S=3"): 4e6},
            legacy_eps=500_000.0,
        ),
        True,
    )
    # Steady-state allocations fail regardless of speed.
    check(
        "steady-allocs",
        _doc({("fr", "S=5"): 4e5, ("abd", "S=3"): 8e6}, steady=3),
        True,
    )
    # An artifact stamped with the supported sweep-partial version passes;
    # a foreign version is refused outright (numbers from a codec this
    # tree cannot read are meaningless to ratio against).
    stamped = _doc({("fr", "S=5"): 4e5, ("abd", "S=3"): 8e6})
    stamped["sweep_partial_version"] = SWEEP_PARTIAL_VERSION
    check("partial-version-ok", stamped, False)
    foreign = _doc({("fr", "S=5"): 4e5, ("abd", "S=3"): 8e6})
    foreign["sweep_partial_version"] = SWEEP_PARTIAL_VERSION + 1
    check("partial-version-skew", foreign, True)
    # Millisecond-scale rows are reported but not hard-gated: at that
    # duration one scheduler preemption exceeds any threshold.
    check(
        "tiny-row-exempt",
        _doc({("fr", "S=5"): 280_000.0, ("abd", "S=3"): 8e6}, wall_ms=2.0),
        False,
    )
    # million_client rows ride the same gates: once baselined, a vanished
    # or regressed row fails, and steady-state allocations always fail.
    mbase = _doc(
        {("fr", "S=5"): 4e5}, million={(100_000, 10): (2e6, 0)}
    )
    mchecks = [
        (
            "million-identical",
            _doc({("fr", "S=5"): 4e5}, million={(100_000, 10): (2e6, 0)}),
            False,
        ),
        (
            "million-30pc-drop",
            _doc({("fr", "S=5"): 4e5}, million={(100_000, 10): (1.4e6, 0)}),
            True,
        ),
        ("million-missing-row", _doc({("fr", "S=5"): 4e5}), True),
        (
            "million-steady-allocs",
            _doc({("fr", "S=5"): 4e5}, million={(100_000, 10): (2e6, 7)}),
            True,
        ),
    ]
    for name, doc, want_fail in mchecks:
        failures, _ = compare(doc, mbase, 0.25)
        checks.append((name, bool(failures) == want_fail, failures))

    # Schema v4: the coalescing section contributes two gated rows (both
    # delivery engines), its steady counters are enforced, and coalesced
    # million_client rows are keyed apart from their per-message twins.
    cbase = _doc(
        {("fr", "S=5"): 4e5},
        million={(100_000, 10): (2e6, 0), (100_000, 10, True): (6e6, 0)},
        coalescing=(15e6, 45e6, 0),
    )
    cchecks = [
        (
            "coalescing-identical",
            _doc(
                {("fr", "S=5"): 4e5},
                million={(100_000, 10): (2e6, 0), (100_000, 10, True): (6e6, 0)},
                coalescing=(15e6, 45e6, 0),
            ),
            False,
        ),
        (
            "coalescing-30pc-drop",
            _doc(
                {("fr", "S=5"): 4e5},
                million={(100_000, 10): (2e6, 0), (100_000, 10, True): (6e6, 0)},
                coalescing=(15e6, 30e6, 0),
            ),
            True,
        ),
        (
            "coalescing-steady-allocs",
            _doc(
                {("fr", "S=5"): 4e5},
                million={(100_000, 10): (2e6, 0), (100_000, 10, True): (6e6, 0)},
                coalescing=(15e6, 45e6, 9),
            ),
            True,
        ),
        (
            # Only the coalesced million row regresses; the per-message twin
            # with the same (clients, ops) must not mask it.
            "coalesced-million-drop",
            _doc(
                {("fr", "S=5"): 4e5},
                million={(100_000, 10): (2e6, 0), (100_000, 10, True): (3e6, 0)},
                coalescing=(15e6, 45e6, 0),
            ),
            True,
        ),
        (
            "coalescing-section-vanished",
            _doc(
                {("fr", "S=5"): 4e5},
                million={(100_000, 10): (2e6, 0), (100_000, 10, True): (6e6, 0)},
            ),
            True,
        ),
    ]
    for name, doc, want_fail in cchecks:
        failures, _ = compare(doc, cbase, 0.25)
        checks.append((name, bool(failures) == want_fail, failures))

    # Schema v5: the fanout_replay section carries two ratio-gated rows and
    # the absolute mean-run-length gate; frame-order million twins are keyed
    # apart from both the dest-major default and the per-message rows.
    fbase = _doc(
        {("fr", "S=5"): 4e5},
        million={
            (100_000, 10): (2e6, 0),
            (100_000, 10, True, False): (6e6, 0),
            (100_000, 10, True, True): (9e6, 0),
        },
        fanout=(3e6, 6e6, 11.0),
    )
    fchecks = [
        (
            "fanout-identical",
            _doc(
                {("fr", "S=5"): 4e5},
                million={
                    (100_000, 10): (2e6, 0),
                    (100_000, 10, True, False): (6e6, 0),
                    (100_000, 10, True, True): (9e6, 0),
                },
                fanout=(3e6, 6e6, 11.0),
            ),
            False,
        ),
        (
            # Run length is gated absolutely: a short-run artifact fails
            # even with throughput intact.
            "fanout-short-runs",
            _doc(
                {("fr", "S=5"): 4e5},
                million={
                    (100_000, 10): (2e6, 0),
                    (100_000, 10, True, False): (6e6, 0),
                    (100_000, 10, True, True): (9e6, 0),
                },
                fanout=(3e6, 6e6, 5.0),
            ),
            True,
        ),
        (
            "fanout-dest-major-eps-drop",
            _doc(
                {("fr", "S=5"): 4e5},
                million={
                    (100_000, 10): (2e6, 0),
                    (100_000, 10, True, False): (6e6, 0),
                    (100_000, 10, True, True): (9e6, 0),
                },
                fanout=(3e6, 4e6, 11.0),
            ),
            True,
        ),
        (
            "fanout-section-vanished",
            _doc(
                {("fr", "S=5"): 4e5},
                million={
                    (100_000, 10): (2e6, 0),
                    (100_000, 10, True, False): (6e6, 0),
                    (100_000, 10, True, True): (9e6, 0),
                },
            ),
            True,
        ),
        (
            # Only the frame-order million twin regresses; neither sibling
            # key may mask it.
            "frame-order-million-drop",
            _doc(
                {("fr", "S=5"): 4e5},
                million={
                    (100_000, 10): (2e6, 0),
                    (100_000, 10, True, False): (4e6, 0),
                    (100_000, 10, True, True): (9e6, 0),
                },
                fanout=(3e6, 6e6, 11.0),
            ),
            True,
        ),
    ]
    for name, doc, want_fail in fchecks:
        failures, _ = compare(doc, fbase, 0.25)
        checks.append((name, bool(failures) == want_fail, failures))

    # Schema v6: the checked_soak section rides the ratio gate on its
    # events_per_sec and carries three absolute gates — verdict, steady
    # counters, and the peak_window headroom bound.
    sbase = _doc({("fr", "S=5"): 4e5}, soak=(5e6, True, 1000, 0))
    schecks = [
        (
            "soak-identical",
            _doc({("fr", "S=5"): 4e5}, soak=(5e6, True, 1000, 0)),
            False,
        ),
        (
            "soak-30pc-drop",
            _doc({("fr", "S=5"): 4e5}, soak=(3.5e6, True, 1000, 0)),
            True,
        ),
        (
            "soak-violation",
            _doc({("fr", "S=5"): 4e5}, soak=(5e6, False, 1000, 0)),
            True,
        ),
        (
            # Window growth inside the headroom passes (concurrency shifts
            # with workload tweaks)...
            "soak-window-within-headroom",
            _doc({("fr", "S=5"): 4e5}, soak=(5e6, True, 1800, 0)),
            False,
        ),
        (
            # ... but a blow-up past 2x the baseline means the checker is no
            # longer window-bounded.
            "soak-window-blowup",
            _doc({("fr", "S=5"): 4e5}, soak=(5e6, True, 5000, 0)),
            True,
        ),
        (
            "soak-steady-allocs",
            _doc({("fr", "S=5"): 4e5}, soak=(5e6, True, 1000, 4)),
            True,
        ),
        ("soak-section-vanished", _doc({("fr", "S=5"): 4e5}), True),
    ]
    for name, doc, want_fail in schecks:
        failures, _ = compare(doc, sbase, 0.25)
        checks.append((name, bool(failures) == want_fail, failures))

    # The batched cost-model engine row is gated like any other once
    # baselined: identical passes, a >25% normalized drop fails.
    bbase = _doc({("fr", "S=5"): 4e5}, batched_eps=50e6)
    for name, doc, want_fail in (
        (
            "batched-engine-identical",
            _doc({("fr", "S=5"): 4e5}, batched_eps=50e6),
            False,
        ),
        (
            "batched-engine-30pc-drop",
            _doc({("fr", "S=5"): 4e5}, batched_eps=35e6),
            True,
        ),
    ):
        failures, _ = compare(doc, bbase, 0.25)
        checks.append((name, bool(failures) == want_fail, failures))

    bad = [name for name, ok, _ in checks if not ok]
    for name, ok, failures in checks:
        print(
            "self-test {:<24} {}".format(name, "ok" if ok else "FAILED"),
            "" if ok else failures,
        )
    if bad:
        print("self-test FAILED:", ", ".join(bad))
        return 1
    print("self-test passed ({} cases)".format(len(checks)))
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--artifact", help="fresh BENCH_simcore.json")
    ap.add_argument("--baseline", help="checked-in baseline artifact")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional drop of normalized events/sec (default 0.25)",
    )
    ap.add_argument(
        "--min-wall-ms",
        type=float,
        default=5.0,
        help="rows faster than this are reported but not gated (default 5)",
    )
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.artifact or not args.baseline:
        ap.error("--artifact and --baseline are required (or use --self-test)")

    try:
        with open(args.artifact) as f:
            artifact = json.load(f)
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, ValueError) as e:
        print("bench_trend: cannot load inputs:", e, file=sys.stderr)
        return 2

    failures, lines = compare(
        artifact, baseline, args.max_regression, args.min_wall_ms
    )
    print(
        "bench_trend: {} vs {} (max regression {:.0%}, {})".format(
            args.artifact,
            args.baseline,
            args.max_regression,
            "normalized by in-run calibration"
            if calibration(artifact) and calibration(baseline)
            else "raw",
        )
    )
    for line in lines:
        print(line)
    if failures:
        print("\nbench_trend: FAIL")
        for f in failures:
            print("  -", f)
        print(
            "If this change is a deliberate trade-off, refresh the baseline:\n"
            "  cmake --build build --target refresh-baseline\n"
            "and commit bench/baselines/BENCH_simcore.baseline.json."
        )
        return 1
    print("\nbench_trend: OK ({} rows gated)".format(len(collect_rows(baseline))))
    return 0


if __name__ == "__main__":
    sys.exit(main())
