// Candidate reader decision rules for W1R2 implementations.
//
// A decision rule is the reader side of a (hypothetical) fast-write
// implementation in the full-info model: a function from the reader's view
// to a return value in {1, 2}. Theorem 1 says NO rule yields an atomic
// register; the chain engine (src/chains) produces, for any given rule, a
// concrete execution whose history the Wing-Gong checker rejects.
//
// All rules here are "first-round invariant": they decide on the view with
// the other reader's first-round markers erased (the standing assumption of
// Section 3.1, lifted by the sieve of Section 4). RandomizedRule generates
// arbitrary such functions from a seed, which lets property tests quantify
// over thousands of rules.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fullinfo/execution.h"

namespace mwreg::fullinfo {

class DecisionRule {
 public:
  virtual ~DecisionRule() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Decide from the reader's (unfiltered) view; `reader` is 1 or 2.
  [[nodiscard]] int decide(const ReadView& view, int reader) const {
    return decide_filtered(filter_other_first_round(view, reader));
  }

 protected:
  /// Implementations see the filtered view only (first-round invariance).
  [[nodiscard]] virtual int decide_filtered(const ReadView& view) const = 0;
};

/// Majority of per-server write orders in the final round: more servers
/// reporting "12" than "21" -> return 2 (W2 is newest), ties -> 2.
/// The most natural "count the quorum" rule.
class MajorityOrderRule final : public DecisionRule {
 public:
  [[nodiscard]] std::string name() const override { return "majority-order"; }

 protected:
  [[nodiscard]] int decide_filtered(const ReadView& view) const override;
};

/// Return 1 only if EVERY heard server reports "21"; otherwise 2.
/// (Treats Rel2 as "cannot rule out W1 < W2, so return 2".)
class UnanimousTwoOneRule final : public DecisionRule {
 public:
  [[nodiscard]] std::string name() const override { return "unanimous-21"; }

 protected:
  [[nodiscard]] int decide_filtered(const ReadView& view) const override;
};

/// Return 1 if ANY heard server reports "21"; otherwise 2.
class AnyTwoOneRule final : public DecisionRule {
 public:
  [[nodiscard]] std::string name() const override { return "any-21"; }

 protected:
  [[nodiscard]] int decide_filtered(const ReadView& view) const override;
};

/// Decide from the first round only (ignores the second round entirely --
/// effectively a fast READER inside a fast-write protocol).
class FirstRoundMajorityRule final : public DecisionRule {
 public:
  [[nodiscard]] std::string name() const override {
    return "first-round-majority";
  }

 protected:
  [[nodiscard]] int decide_filtered(const ReadView& view) const override;
};

/// The lowest-indexed heard server acts as a leader; its order decides.
class LeaderOrderRule final : public DecisionRule {
 public:
  [[nodiscard]] std::string name() const override { return "leader-order"; }

 protected:
  [[nodiscard]] int decide_filtered(const ReadView& view) const override;
};

/// A coordination-aware rule: on a mixed (Rel2-looking) view, use the other
/// reader's SECOND-round markers to break the tie deterministically (both
/// readers see compatible marker patterns, so this is the natural "readers
/// coordinate through the servers" attempt from Section 4.1).
class MarkerCoordinationRule final : public DecisionRule {
 public:
  [[nodiscard]] std::string name() const override {
    return "marker-coordination";
  }

 protected:
  [[nodiscard]] int decide_filtered(const ReadView& view) const override;
};

/// A deterministic but arbitrary function of the view, derived from a seed:
/// hash(view, seed) -> {1,2}, except it respects the two executions atomicity
/// pins outright (all-"12" sequential-looking views -> 2, all-"21" -> 1) so
/// that random rules exercise the deep phases of the chain argument rather
/// than failing at the alpha ends. With force_sane_ends=false even that is
/// random.
class RandomizedRule final : public DecisionRule {
 public:
  explicit RandomizedRule(std::uint64_t seed, bool force_sane_ends = true)
      : seed_(seed), force_sane_ends_(force_sane_ends) {}
  [[nodiscard]] std::string name() const override {
    return "randomized-" + std::to_string(seed_) +
           (force_sane_ends_ ? "" : "-wild");
  }

 protected:
  [[nodiscard]] int decide_filtered(const ReadView& view) const override;

 private:
  std::uint64_t seed_;
  bool force_sane_ends_;
};

/// The standard library of named candidate rules (excluding randomized).
std::vector<std::unique_ptr<DecisionRule>> standard_rules();

}  // namespace mwreg::fullinfo
