#include "fullinfo/rules.h"

#include <algorithm>

namespace mwreg::fullinfo {
namespace {

std::string order_of(const ServerLog& log) {
  std::string order;
  for (Ev e : log) {
    if (e == Ev::kW1) order += '1';
    if (e == Ev::kW2) order += '2';
  }
  return order;
}

/// Count "12" vs "21" orders over a round's replies.
std::pair<int, int> count_orders(const RoundView& rv) {
  int n12 = 0, n21 = 0;
  for (const auto& [s, log] : rv.replies) {
    const std::string o = order_of(log);
    if (o == "12") ++n12;
    if (o == "21") ++n21;
  }
  return {n12, n21};
}

const RoundView& deciding_round(const ReadView& v) {
  return v.second.replies.empty() ? v.first : v.second;
}

}  // namespace

int MajorityOrderRule::decide_filtered(const ReadView& view) const {
  const auto [n12, n21] = count_orders(deciding_round(view));
  return n21 > n12 ? 1 : 2;
}

int UnanimousTwoOneRule::decide_filtered(const ReadView& view) const {
  const auto [n12, n21] = count_orders(deciding_round(view));
  return (n12 == 0 && n21 > 0) ? 1 : 2;
}

int AnyTwoOneRule::decide_filtered(const ReadView& view) const {
  const auto [n12, n21] = count_orders(deciding_round(view));
  (void)n12;
  return n21 > 0 ? 1 : 2;
}

int FirstRoundMajorityRule::decide_filtered(const ReadView& view) const {
  const auto [n12, n21] = count_orders(view.first);
  return n21 > n12 ? 1 : 2;
}

int LeaderOrderRule::decide_filtered(const ReadView& view) const {
  const RoundView& rv = deciding_round(view);
  for (const auto& [s, log] : rv.replies) {  // replies sorted by server id
    const std::string o = order_of(log);
    if (o == "21") return 1;
    if (o == "12") return 2;
  }
  return 2;
}

int MarkerCoordinationRule::decide_filtered(const ReadView& view) const {
  const auto [n12, n21] = count_orders(deciding_round(view));
  if (n21 == 0) return 2;
  if (n12 == 0) return 1;
  // Mixed view (the writes look concurrent): coordinate via the other
  // reader's visible second-round markers -- if the other reader's second
  // round is visible anywhere (it decided before us or alongside us), fall
  // back to 1, otherwise 2.
  for (const auto& [s, log] : deciding_round(view).replies) {
    for (Ev e : log) {
      if (e == Ev::kR1b || e == Ev::kR2b) return 1;
    }
  }
  return 2;
}

int RandomizedRule::decide_filtered(const ReadView& view) const {
  if (force_sane_ends_) {
    const auto [n12a, n21a] = count_orders(view.first);
    const auto [n12b, n21b] = count_orders(view.second);
    if (n21a == 0 && n21b == 0) return 2;  // every heard server says W1<W2
    if (n12a == 0 && n12b == 0) return 1;  // every heard server says W2<W1
  }
  std::uint64_t h = view.digest() ^ (seed_ * 0x9e3779b97f4a7c15ULL);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return (h & 1) ? 1 : 2;
}

std::vector<std::unique_ptr<DecisionRule>> standard_rules() {
  std::vector<std::unique_ptr<DecisionRule>> rules;
  rules.push_back(std::make_unique<MajorityOrderRule>());
  rules.push_back(std::make_unique<UnanimousTwoOneRule>());
  rules.push_back(std::make_unique<AnyTwoOneRule>());
  rules.push_back(std::make_unique<FirstRoundMajorityRule>());
  rules.push_back(std::make_unique<LeaderOrderRule>());
  rules.push_back(std::make_unique<MarkerCoordinationRule>());
  return rules;
}

}  // namespace mwreg::fullinfo
