#include "fullinfo/execution.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace mwreg::fullinfo {

const char* ev_name(Ev e) {
  switch (e) {
    case Ev::kW1:
      return "W1";
    case Ev::kW2:
      return "W2";
    case Ev::kR1a:
      return "R1a";
    case Ev::kR2a:
      return "R2a";
    case Ev::kR1b:
      return "R1b";
    case Ev::kR2b:
      return "R2b";
  }
  return "?";
}

bool Execution::receives(int s, Ev e) const {
  const ServerLog& log = servers.at(static_cast<std::size_t>(s));
  return std::find(log.begin(), log.end(), e) != log.end();
}

std::optional<ServerLog> Execution::prefix_at(int s, Ev e) const {
  const ServerLog& log = servers.at(static_cast<std::size_t>(s));
  const auto it = std::find(log.begin(), log.end(), e);
  if (it == log.end()) return std::nullopt;
  return ServerLog(log.begin(), it + 1);
}

std::string Execution::write_order(int s) const {
  std::string order;
  for (Ev e : servers.at(static_cast<std::size_t>(s))) {
    if (e == Ev::kW1) order += '1';
    if (e == Ev::kW2) order += '2';
  }
  return order;
}

bool Execution::well_formed() const {
  for (const ServerLog& log : servers) {
    std::set<Ev> seen;
    for (Ev e : log) {
      if (!seen.insert(e).second) return false;  // duplicate event
    }
    // Global round order: writes precede all read rounds; R1a and R2a
    // precede both second rounds. (R1b/R2b may appear in either order:
    // those are the swaps the chains perform.)
    auto pos = [&](Ev e) {
      const auto it = std::find(log.begin(), log.end(), e);
      return it == log.end() ? -1
                             : static_cast<int>(it - log.begin());
    };
    const int w1 = pos(Ev::kW1), w2 = pos(Ev::kW2);
    const int r1a = pos(Ev::kR1a), r2a = pos(Ev::kR2a);
    const int r1b = pos(Ev::kR1b), r2b = pos(Ev::kR2b);
    for (const int w : {w1, w2}) {
      for (const int r : {r1a, r2a, r1b, r2b}) {
        if (w >= 0 && r >= 0 && r < w) return false;  // read before a write
      }
    }
    for (const int a : {r1a, r2a}) {
      for (const int b : {r1b, r2b}) {
        if (a >= 0 && b >= 0 && b < a) return false;  // 2nd round before 1st
      }
    }
    if (!has_r2 && (r2a >= 0 || r2b >= 0)) return false;
  }
  return true;
}

std::string Execution::to_string() const {
  std::ostringstream os;
  os << label << " (writes ";
  switch (writes) {
    case WriteRelation::kW1ThenW2:
      os << "W1<W2";
      break;
    case WriteRelation::kConcurrent:
      os << "W1||W2";
      break;
    case WriteRelation::kW2ThenW1:
      os << "W2<W1";
      break;
  }
  os << ")\n";
  for (int s = 0; s < S(); ++s) {
    os << "  s" << (s + 1) << ": ";
    for (Ev e : servers[static_cast<std::size_t>(s)]) os << ev_name(e) << " ";
    os << "\n";
  }
  return os.str();
}

ReadView view_of(const Execution& e, int reader) {
  const Ev first = reader == 1 ? Ev::kR1a : Ev::kR2a;
  const Ev second = reader == 1 ? Ev::kR1b : Ev::kR2b;
  ReadView v;
  for (int s = 0; s < e.S(); ++s) {
    if (auto p = e.prefix_at(s, first)) v.first.replies.emplace_back(s, *p);
    if (auto p = e.prefix_at(s, second)) v.second.replies.emplace_back(s, *p);
  }
  return v;
}

ReadView filter_other_first_round(const ReadView& v, int reader) {
  const Ev other_first = reader == 1 ? Ev::kR2a : Ev::kR1a;
  auto strip = [&](const RoundView& rv) {
    RoundView out;
    for (const auto& [s, log] : rv.replies) {
      ServerLog stripped;
      for (Ev e : log) {
        if (e != other_first) stripped.push_back(e);
      }
      out.replies.emplace_back(s, std::move(stripped));
    }
    return out;
  };
  return ReadView{strip(v.first), strip(v.second)};
}

std::string ReadView::to_string() const {
  std::ostringstream os;
  auto dump = [&](const char* tag, const RoundView& rv) {
    os << tag << ":";
    for (const auto& [s, log] : rv.replies) {
      os << " s" << (s + 1) << "[";
      for (Ev e : log) os << ev_name(e) << ",";
      os << "]";
    }
    os << "\n";
  };
  dump("rt1", first);
  dump("rt2", second);
  return os.str();
}

std::uint64_t ReadView::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t x) {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0x100000001b3ULL;
  };
  for (const RoundView* rv : {&first, &second}) {
    mix(rv->replies.size());
    for (const auto& [s, log] : rv->replies) {
      mix(static_cast<std::uint64_t>(s) + 1000);
      for (Ev e : log) mix(static_cast<std::uint64_t>(e) + 7);
      mix(0xabcd);
    }
    mix(0xffff);
  }
  return h;
}

History to_history(const Execution& e, int r1_return, int r2_return) {
  History h;
  const TaggedValue v1{Tag{1, 101}, 1};
  const TaggedValue v2{Tag{1, 102}, 2};
  // Writes: [0,1]/[2,3] when sequential, [0,3] both when concurrent.
  Time w1s = 0, w1f = 3, w2s = 0, w2f = 3;
  if (e.writes == WriteRelation::kW1ThenW2) {
    w1s = 0;
    w1f = 1;
    w2s = 2;
    w2f = 3;
  } else if (e.writes == WriteRelation::kW2ThenW1) {
    w2s = 0;
    w2f = 1;
    w1s = 2;
    w1f = 3;
  }
  const OpId w1 = h.begin_op(101, OpKind::kWrite, w1s);
  const OpId w2 = h.begin_op(102, OpKind::kWrite, w2s);
  // begin_op must be called in invocation order for well-formedness checks;
  // our two writes share invocation times when concurrent, so order is fine.
  h.end_op(w1, w1f, v1);
  h.end_op(w2, w2f, v2);

  // Reads: rounds are non-concurrent in the order R1a, R2a, R1b, R2b.
  // R1 spans [10, 15], R2 spans [12, 17].
  const OpId r1 = h.begin_op(201, OpKind::kRead, 10);
  if (e.has_r2) {
    const OpId r2 = h.begin_op(202, OpKind::kRead, 12);
    h.end_op(r1, 15, r1_return == 1 ? v1 : v2);
    h.end_op(r2, 17, r2_return == 1 ? v1 : v2);
  } else {
    h.end_op(r1, 15, r1_return == 1 ? v1 : v2);
  }
  return h;
}

History to_history_one_round(const Execution& e, int r1_return,
                             int r2_return) {
  History h;
  const TaggedValue v1{Tag{1, 101}, 1};
  const TaggedValue v2{Tag{1, 102}, 2};
  Time w1s = 0, w1f = 3, w2s = 0, w2f = 3;
  if (e.writes == WriteRelation::kW1ThenW2) {
    w1f = 1;
    w2s = 2;
  } else if (e.writes == WriteRelation::kW2ThenW1) {
    w2f = 1;
    w1s = 2;
  }
  const OpId w1 = h.begin_op(101, OpKind::kWrite, w1s);
  const OpId w2 = h.begin_op(102, OpKind::kWrite, w2s);
  h.end_op(w1, w1f, v1);
  h.end_op(w2, w2f, v2);
  const OpId r1 = h.begin_op(201, OpKind::kRead, 10);
  h.end_op(r1, 11, r1_return == 1 ? v1 : v2);
  if (e.has_r2) {
    const OpId r2 = h.begin_op(202, OpKind::kRead, 12);
    h.end_op(r2, 13, r2_return == 1 ? v1 : v2);
  }
  return h;
}

}  // namespace mwreg::fullinfo
