// The full-info / crucial-info execution model of Sections 3 and 4.1.
//
// The impossibility proof reasons about executions containing exactly:
//   W1 = write(1), W2 = write(2)          (one round-trip each: W1R2),
//   R1 = read() with rounds R1a, R1b      (two round-trips),
//   R2 = read() with rounds R2a, R2b.
//
// An execution is, per server, the RECEIVE ORDER of those events; a round
// "skips" a server when its messages are delayed past the end of the
// execution (the event is simply absent from that server's log). Servers are
// full-info: they append everything and reply with their whole log, so a
// reader's knowledge ("view") is, for each of its rounds, the set of
// (server, log-prefix-at-reply-time) pairs it received.
//
// The global temporal order of rounds is fixed by the constructions:
//   both writes complete, then R1a, R2a, R1b, R2b (non-concurrent rounds).
// Whether W1 and W2 are concurrent *as operations* is a property of the
// execution (the ends of chain alpha have sequential writes; the middle has
// concurrent ones) and is recorded explicitly because atomicity constraints
// depend on it.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "consistency/history.h"

namespace mwreg::fullinfo {

enum class Ev : std::uint8_t { kW1, kW2, kR1a, kR2a, kR1b, kR2b };

const char* ev_name(Ev e);

using ServerLog = std::vector<Ev>;

/// Temporal relation of the two write operations (Section 4.1's Rel1-Rel3).
enum class WriteRelation : std::uint8_t {
  kW1ThenW2,    // W1 precedes W2 (alpha-head style)
  kConcurrent,  // W1 || W2
  kW2ThenW1,    // W2 precedes W1 (alpha-tail style)
};

struct Execution {
  std::string label;
  std::vector<ServerLog> servers;
  WriteRelation writes = WriteRelation::kConcurrent;
  bool has_r2 = false;  ///< chain-alpha executions carry only R1

  [[nodiscard]] int S() const { return static_cast<int>(servers.size()); }

  /// True when server s receives event e at some point.
  [[nodiscard]] bool receives(int s, Ev e) const;

  /// The log prefix of server s up to and INCLUDING event e, or nullopt if
  /// the server never receives e (the round skips it).
  [[nodiscard]] std::optional<ServerLog> prefix_at(int s, Ev e) const;

  /// The order in which server s received the two writes: "12", "21", "1",
  /// "2" or "" (the crucial info of Section 4.1).
  [[nodiscard]] std::string write_order(int s) const;

  /// Well-formedness: event sets per server are consistent with the global
  /// round order (a server receiving X also received every earlier
  /// *non-skipped* round... in our constructions: prefixes respect the global
  /// order W's < R1a < R2a < R1b < R2b except for explicitly swapped R1b/R2b)
  /// and no event appears twice.
  [[nodiscard]] bool well_formed() const;

  [[nodiscard]] std::string to_string() const;
};

/// One round's worth of reader knowledge: the (server, log-prefix) pairs the
/// reader received, sorted by server id.
struct RoundView {
  std::vector<std::pair<int, ServerLog>> replies;
  friend bool operator==(const RoundView& a, const RoundView& b) {
    return a.replies == b.replies;
  }
  friend bool operator!=(const RoundView& a, const RoundView& b) {
    return !(a == b);
  }
};

/// Everything a two-round reader knows when it must decide.
struct ReadView {
  RoundView first;
  RoundView second;
  friend bool operator==(const ReadView& a, const ReadView& b) {
    return a.first == b.first && a.second == b.second;
  }
  friend bool operator!=(const ReadView& a, const ReadView& b) {
    return !(a == b);
  }

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::uint64_t digest() const;
};

/// The view of reader 1 or reader 2 in `e`. For each of the reader's rounds,
/// every server whose log contains the round event contributes its prefix.
ReadView view_of(const Execution& e, int reader);

/// The Section 3.1 standing assumption ("the first round-trip of a read does
/// not affect the return values of other reads"), expressed on views: erase
/// the OTHER reader's first-round markers from every log prefix in the view.
/// Decision rules defined over filtered views form exactly the class the
/// chain argument of Section 3 covers; Section 4's sieve extends the result
/// beyond it.
ReadView filter_other_first_round(const ReadView& v, int reader);

/// Convert an execution plus chosen return values into an operation history
/// checkable by the atomicity checkers. W1 writes (tag (1,101), payload 1),
/// W2 writes (tag (1,102), payload 2); reads return the corresponding value.
/// r2_return is ignored when the execution has no R2. Returns in {1, 2}.
History to_history(const Execution& e, int r1_return, int r2_return = 0);

/// Same, but for ONE-round (fast) reads: R1 = [10,11] strictly precedes
/// R2 = [12,13]. Used by the W1R1 chain, where sequential fast reads after
/// completed writes must return equal values.
History to_history_one_round(const Execution& e, int r1_return, int r2_return);

}  // namespace mwreg::fullinfo
