// Wire messages shared by the register protocols.
//
// Two families:
//  - the ABD/quorum family (MW-ABD, SWMR-ABD, the fast-write strawman):
//    servers keep only the max tagged value;
//  - the fast-read family (the paper's Algorithm 2 servers): servers keep a
//    value vector with per-value `updated` sets.
//
// Each encoder has a pooled overload taking a BufferPool: protocol hot
// paths use it (via Process::pool()) so encoding reuses recycled payload
// capacity; the pool-less overloads allocate fresh and remain for tests
// and offline tooling. Decoders read through span ByteReaders and never
// copy the payload bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/codec.h"
#include "common/tag.h"
#include "sim/buffer_pool.h"
#include "sim/message.h"

namespace mwreg {

enum MsgTypes : MsgType {
  // ABD family
  kAbdReadReq = 1,   // client -> server: query current value
  kAbdReadAck = 2,   // server -> client: TaggedValue
  kAbdWriteReq = 3,  // client -> server: store TaggedValue
  kAbdWriteAck = 4,  // server -> client: ack

  // Fast-read family (Algorithm 1 & 2)
  kFrQueryReq = 10,  // writer -> server: query max timestamp (write RT 1)
  kFrQueryAck = 11,  // server -> writer: Tag
  kFrWriteReq = 12,  // writer -> server: store TaggedValue (write RT 2)
  kFrWriteAck = 13,  // server -> writer: ack
  kFrReadReq = 14,   // reader -> server: valQueue
  kFrReadAck = 15,   // server -> reader: value vector with updated sets
};

// ---- ABD family payloads ----

inline std::vector<std::uint8_t> encode_value(BufferPool& pool,
                                              const TaggedValue& v) {
  ByteWriter w(pool.acquire());
  w.put_value(v);
  return w.take();
}

inline std::vector<std::uint8_t> encode_value(const TaggedValue& v) {
  ByteWriter w;
  w.put_value(v);
  return w.take();
}

inline TaggedValue decode_value(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  return r.get_value();
}

// ---- Fast-read family payloads ----

/// One valuevector entry: a value plus the set of clients in its updated set
/// (Algorithm 2's valuevector[val].updated).
struct FrEntry {
  TaggedValue value;
  std::vector<NodeId> updated;  // sorted
};

inline std::vector<std::uint8_t> encode_tag(BufferPool& pool, const Tag& t) {
  ByteWriter w(pool.acquire());
  w.put_tag(t);
  return w.take();
}

inline std::vector<std::uint8_t> encode_tag(const Tag& t) {
  ByteWriter w;
  w.put_tag(t);
  return w.take();
}

inline Tag decode_tag(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  return r.get_tag();
}

inline void encode_value_list_into(ByteWriter& w,
                                   const std::vector<TaggedValue>& vals) {
  w.put_vector(vals,
               [](ByteWriter& bw, const TaggedValue& v) { bw.put_value(v); });
}

inline std::vector<std::uint8_t> encode_value_list(
    BufferPool& pool, const std::vector<TaggedValue>& vals) {
  ByteWriter w(pool.acquire());
  encode_value_list_into(w, vals);
  return w.take();
}

inline std::vector<std::uint8_t> encode_value_list(
    const std::vector<TaggedValue>& vals) {
  ByteWriter w;
  encode_value_list_into(w, vals);
  return w.take();
}

inline std::vector<TaggedValue> decode_value_list(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  return r.get_vector<TaggedValue>(
      [](ByteReader& br) { return br.get_value(); });
}

inline void encode_entries_into(ByteWriter& w,
                                const std::vector<FrEntry>& entries) {
  w.put_vector(entries, [](ByteWriter& bw, const FrEntry& e) {
    bw.put_value(e.value);
    bw.put_vector(e.updated,
                  [](ByteWriter& bw2, NodeId id) { bw2.put_signed(id); });
  });
}

inline std::vector<std::uint8_t> encode_entries(
    BufferPool& pool, const std::vector<FrEntry>& entries) {
  ByteWriter w(pool.acquire());
  encode_entries_into(w, entries);
  return w.take();
}

inline std::vector<std::uint8_t> encode_entries(
    const std::vector<FrEntry>& entries) {
  ByteWriter w;
  encode_entries_into(w, entries);
  return w.take();
}

inline std::vector<FrEntry> decode_entries(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  return r.get_vector<FrEntry>([](ByteReader& br) {
    FrEntry e;
    e.value = br.get_value();
    e.updated = br.get_vector<NodeId>(
        [](ByteReader& br2) { return static_cast<NodeId>(br2.get_signed()); });
    return e;
  });
}

}  // namespace mwreg
