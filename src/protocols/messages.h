// Wire messages shared by the register protocols.
//
// Two families:
//  - the ABD/quorum family (MW-ABD, SWMR-ABD, the fast-write strawman):
//    servers keep only the max tagged value;
//  - the fast-read family (the paper's Algorithm 2 servers): servers keep a
//    value vector with per-value `updated` sets.
//
// Each encoder has a pooled overload taking a BufferPool: protocol hot
// paths use it (via Process::pool()) so encoding reuses recycled payload
// capacity; the pool-less overloads allocate fresh and remain for tests
// and offline tooling. Decoders read through span ByteReaders and never
// copy the payload bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/codec.h"
#include "common/tag.h"
#include "sim/buffer_pool.h"
#include "sim/message.h"

namespace mwreg {

enum MsgTypes : MsgType {
  // ABD family
  kAbdReadReq = 1,   // client -> server: query current value
  kAbdReadAck = 2,   // server -> client: TaggedValue
  kAbdWriteReq = 3,  // client -> server: store TaggedValue
  kAbdWriteAck = 4,  // server -> client: ack

  // Fast-read family (Algorithm 1 & 2)
  kFrQueryReq = 10,  // writer -> server: query max timestamp (write RT 1)
  kFrQueryAck = 11,  // server -> writer: Tag
  kFrWriteReq = 12,  // writer -> server: store TaggedValue (write RT 2)
  kFrWriteAck = 13,  // server -> writer: ack
  kFrReadReq = 14,   // reader -> server: valQueue
  kFrReadAck = 15,   // server -> reader: value vector with updated sets

  // Incremental fast-read family (Algorithm 2 + GC, DESIGN.md section 6):
  // the reader carries its confirmed watermark and per-server acked
  // revisions; the server answers with only the entries that changed since
  // the acked revision plus its GC floor.
  kFrReadDeltaReq = 16,  // reader -> server: watermark value + acked revs
  kFrReadAckDelta = 17,  // server -> reader: revision, gc floor, changed
                         //   entries (same per-entry wire format as
                         //   kFrReadAck, so one decoder serves both)
};

// ---- ABD family payloads ----

inline std::vector<std::uint8_t> encode_value(BufferPool& pool,
                                              const TaggedValue& v) {
  ByteWriter w(pool.acquire());
  w.put_value(v);
  return w.take();
}

inline std::vector<std::uint8_t> encode_value(const TaggedValue& v) {
  ByteWriter w;
  w.put_value(v);
  return w.take();
}

inline TaggedValue decode_value(ByteSpan bytes) {
  ByteReader r(bytes);
  return r.get_value();
}

// ---- Fast-read family payloads ----

/// One valuevector entry: a value plus the set of clients in its updated set
/// (Algorithm 2's valuevector[val].updated).
struct FrEntry {
  TaggedValue value;
  std::vector<NodeId> updated;  // sorted
};

/// Non-owning view of a decoded valuevector message (one server's reply).
/// The admissibility machinery works on views so callers can back them with
/// reusable arenas or per-server caches instead of fresh nested vectors.
struct FrView {
  const FrEntry* data = nullptr;
  std::size_t size = 0;

  [[nodiscard]] const FrEntry* begin() const { return data; }
  [[nodiscard]] const FrEntry* end() const { return data + size; }
};

/// Reusable arena of FrEntry slots. reset() rewinds without destroying the
/// slots, so every slot's `updated` vector keeps its capacity; once a
/// workload has warmed the arena, building a snapshot or decoding a read
/// ack allocates nothing. grows() is the observable the allocation
/// regression test pins (it must stop moving after warmup).
class FrEntryArena {
 public:
  void reset() { used_ = 0; }

  FrEntry& append() {
    if (used_ == slots_.size()) {
      slots_.emplace_back();
      ++grows_;
    }
    FrEntry& e = slots_[used_++];
    e.updated.clear();  // keeps capacity
    return e;
  }

  [[nodiscard]] std::size_t size() const { return used_; }
  [[nodiscard]] FrView view() const { return FrView{slots_.data(), used_}; }
  [[nodiscard]] std::uint64_t grows() const { return grows_; }

 private:
  std::vector<FrEntry> slots_;
  std::size_t used_ = 0;
  std::uint64_t grows_ = 0;
};

inline std::vector<std::uint8_t> encode_tag(BufferPool& pool, const Tag& t) {
  ByteWriter w(pool.acquire());
  w.put_tag(t);
  return w.take();
}

inline std::vector<std::uint8_t> encode_tag(const Tag& t) {
  ByteWriter w;
  w.put_tag(t);
  return w.take();
}

inline Tag decode_tag(ByteSpan bytes) {
  ByteReader r(bytes);
  return r.get_tag();
}

inline void encode_value_list_into(ByteWriter& w,
                                   const std::vector<TaggedValue>& vals) {
  w.put_vector(vals,
               [](ByteWriter& bw, const TaggedValue& v) { bw.put_value(v); });
}

inline std::vector<std::uint8_t> encode_value_list(
    BufferPool& pool, const std::vector<TaggedValue>& vals) {
  ByteWriter w(pool.acquire());
  encode_value_list_into(w, vals);
  return w.take();
}

inline std::vector<std::uint8_t> encode_value_list(
    const std::vector<TaggedValue>& vals) {
  ByteWriter w;
  encode_value_list_into(w, vals);
  return w.take();
}

inline std::vector<TaggedValue> decode_value_list(ByteSpan bytes) {
  ByteReader r(bytes);
  return r.get_vector<TaggedValue>(
      [](ByteReader& br) { return br.get_value(); });
}

inline void put_fr_entry(ByteWriter& w, const FrEntry& e) {
  w.put_value(e.value);
  w.put_vector(e.updated,
               [](ByteWriter& bw, NodeId id) { bw.put_signed(id); });
}

inline void encode_entries_into(ByteWriter& w, FrView entries) {
  w.put_span(entries.data, entries.size,
             [](ByteWriter& bw, const FrEntry& e) { put_fr_entry(bw, e); });
}

inline void encode_entries_into(ByteWriter& w,
                                const std::vector<FrEntry>& entries) {
  encode_entries_into(w, FrView{entries.data(), entries.size()});
}

inline std::vector<std::uint8_t> encode_entries(BufferPool& pool,
                                                FrView entries) {
  ByteWriter w(pool.acquire());
  encode_entries_into(w, entries);
  return w.take();
}

inline std::vector<std::uint8_t> encode_entries(
    BufferPool& pool, const std::vector<FrEntry>& entries) {
  return encode_entries(pool, FrView{entries.data(), entries.size()});
}

inline std::vector<std::uint8_t> encode_entries(
    const std::vector<FrEntry>& entries) {
  ByteWriter w;
  encode_entries_into(w, entries);
  return w.take();
}

/// Streaming per-entry decode into a caller-owned slot; shared by the full
/// read-ack and delta read-ack decoders (identical per-entry wire format).
inline void decode_fr_entry_into(ByteReader& r, FrEntry& e) {
  e.value = r.get_value();
  e.updated.clear();
  const std::uint64_t n = r.get_count();
  e.updated.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    e.updated.push_back(static_cast<NodeId>(r.get_signed()));
  }
}

/// Decode a full read ack into a reusable arena (no fresh nested vectors).
/// Returns reader.ok(); on malformed input the arena holds the prefix that
/// decoded cleanly.
inline bool decode_entries_into(ByteReader& r, FrEntryArena& out) {
  out.reset();
  const std::uint64_t n = r.get_count();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    decode_fr_entry_into(r, out.append());
  }
  return r.ok();
}

inline std::vector<FrEntry> decode_entries(ByteSpan bytes) {
  ByteReader r(bytes);
  return r.get_vector<FrEntry>([](ByteReader& br) {
    FrEntry e;
    decode_fr_entry_into(br, e);
    return e;
  });
}

// ---- incremental fast-read payloads (Algorithm 2 + GC) ----

/// kFrReadDeltaReq: the reader's pruned valQueue (its confirmed watermark
/// value — the tail of the queue below the watermark carries no information
/// any server still needs, DESIGN.md section 6.3) plus, per server id, the
/// last reply revision the reader has applied from that server. One payload
/// is broadcast to every server; server s indexes acked_revs[s].
inline void encode_delta_read_req_into(ByteWriter& w,
                                       const std::vector<TaggedValue>& queue,
                                       const std::uint64_t* acked_revs,
                                       std::size_t num_servers) {
  encode_value_list_into(w, queue);
  w.put_span(acked_revs, num_servers,
             [](ByteWriter& bw, std::uint64_t rev) { bw.put_varint(rev); });
}

/// Decode into reusable buffers (cleared, capacity kept).
inline bool decode_delta_read_req_into(ByteReader& r,
                                       std::vector<TaggedValue>& queue,
                                       std::vector<std::uint64_t>& acked_revs) {
  queue.clear();
  acked_revs.clear();
  const std::uint64_t nq = r.get_count();
  queue.reserve(nq);
  for (std::uint64_t i = 0; i < nq && r.ok(); ++i) {
    queue.push_back(r.get_value());
  }
  const std::uint64_t na = r.get_count();
  acked_revs.reserve(na);
  for (std::uint64_t i = 0; i < na && r.ok(); ++i) {
    acked_revs.push_back(r.get_varint());
  }
  return r.ok();
}

/// kFrReadAckDelta header: the server's current revision (what the reader
/// acks next time), its GC floor (the reader drops cached entries strictly
/// below it), and the count of changed entries that follow. Entries are
/// streamed with put_fr_entry / decode_fr_entry_into — the server encodes
/// straight out of its valuevector map, the reader applies straight into
/// its per-server cache; neither side materializes an entry list.
struct FrDeltaHeader {
  std::uint64_t revision = 0;
  Tag gc_floor{};
  std::uint64_t count = 0;
};

inline void put_delta_ack_header(ByteWriter& w, const FrDeltaHeader& h) {
  w.put_varint(h.revision);
  w.put_tag(h.gc_floor);
  w.put_varint(h.count);
}

inline FrDeltaHeader get_delta_ack_header(ByteReader& r) {
  FrDeltaHeader h;
  h.revision = r.get_varint();
  h.gc_floor = r.get_tag();
  h.count = r.get_count();
  return h;
}

}  // namespace mwreg
