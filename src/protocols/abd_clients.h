// Clients of the ABD family.
//
//  - TwoRoundWriter: query max tag, then update with (maxTS+1, wid).
//    The multi-writer write of LS97 (the paper's W2R2 row).
//  - LocalTsWriter: bump a writer-local timestamp and update in ONE
//    round-trip. Correct with a single writer (ABD'95); with multiple
//    writers this is the natural "fast write" strawman whose histories the
//    checker rejects — exactly what Theorem 1 says must happen.
//  - TwoRoundReader: query max value, write it back, return it.
#pragma once

#include <algorithm>
#include <utility>

#include "core/register.h"
#include "core/rpc_client.h"
#include "protocols/messages.h"

namespace mwreg {

class TwoRoundWriter final : public RpcClient, public WriterApi {
 public:
  TwoRoundWriter(NodeId id, Network& net, const ClusterConfig& cfg)
      : RpcClient(id, net, cfg) {}

  void write(std::int64_t payload, std::function<void(Tag)> done) override {
    // RT 1: discover the highest tag on a quorum.
    round_trip(kAbdReadReq, {},
               [this, payload, done = std::move(done)](
                   const std::vector<ServerReply>& replies) mutable {
                 Tag max = kBottomTag;
                 for (const ServerReply& r : replies) {
                   max = std::max(max, decode_value(r.payload).tag);
                 }
                 const Tag tag{max.ts + 1, id()};
                 // RT 2: install the new value on a quorum.
                 round_trip(kAbdWriteReq,
                            encode_value(pool(), TaggedValue{tag, payload}),
                            [tag, done = std::move(done)](
                                const std::vector<ServerReply>&) {
                              done(tag);
                            });
               });
  }
};

class LocalTsWriter final : public RpcClient, public WriterApi {
 public:
  LocalTsWriter(NodeId id, Network& net, const ClusterConfig& cfg)
      : RpcClient(id, net, cfg) {}

  void write(std::int64_t payload, std::function<void(Tag)> done) override {
    const Tag tag{++ts_, id()};
    round_trip(kAbdWriteReq, encode_value(pool(), TaggedValue{tag, payload}),
               [tag, done = std::move(done)](
                   const std::vector<ServerReply>&) { done(tag); });
  }

 private:
  std::int64_t ts_ = 0;
};

/// One round-trip, no write-back: return the max value seen on a quorum.
/// This is what quorum stores give you when reads are required to be fast
/// without the paper's machinery (the Cassandra practice from Section 1):
/// REGULAR -- a read never misses a completed write -- but not atomic, since
/// two reads overlapping a write can see new-then-old.
class OneRoundMaxReader final : public RpcClient, public ReaderApi {
 public:
  OneRoundMaxReader(NodeId id, Network& net, const ClusterConfig& cfg)
      : RpcClient(id, net, cfg) {}

  void read(std::function<void(TaggedValue)> done) override {
    round_trip(kAbdReadReq, {},
               [done = std::move(done)](
                   const std::vector<ServerReply>& replies) {
                 TaggedValue best{};
                 for (const ServerReply& r : replies) {
                   const TaggedValue v = decode_value(r.payload);
                   if (v.tag > best.tag) best = v;
                 }
                 done(best);
               });
  }
};

class TwoRoundReader final : public RpcClient, public ReaderApi {
 public:
  TwoRoundReader(NodeId id, Network& net, const ClusterConfig& cfg)
      : RpcClient(id, net, cfg) {}

  void read(std::function<void(TaggedValue)> done) override {
    // RT 1: collect values from a quorum, pick the max.
    round_trip(kAbdReadReq, {},
               [this, done = std::move(done)](
                   const std::vector<ServerReply>& replies) mutable {
                 TaggedValue best{};
                 for (const ServerReply& r : replies) {
                   const TaggedValue v = decode_value(r.payload);
                   if (v.tag > best.tag) best = v;
                 }
                 // RT 2: write back so later reads cannot see older values
                 // ("atomic reads must write").
                 round_trip(kAbdWriteReq, encode_value(pool(), best),
                            [best, done = std::move(done)](
                                const std::vector<ServerReply>&) {
                              done(best);
                            });
               });
  }
};

}  // namespace mwreg
