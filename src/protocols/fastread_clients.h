// Clients of the paper's Algorithm 1 (Appendix A).
//
//  - FastReader: ONE round-trip read. Sends its valQueue, collects READACKs
//    from S - t servers, and returns the largest value that is
//    admissible(v, rcvMsg, a) for some a in [1, R+1]. With gc_enabled it
//    speaks the incremental protocol instead (kFrReadDeltaReq /
//    kFrReadAckDelta): it carries its confirmed watermark and per-server
//    acked revisions, reconstructs each server's valuevector in a
//    per-server cache, and runs the same admissibility decision over the
//    reconstructed views — observationally identical to the full-ack
//    protocol while keeping bytes-on-wire O(active values) (DESIGN.md
//    section 6).
//  - QueryThenWriter: the paper's two-round-trip multi-writer write (query
//    maxTS, then update (maxTS+1, wid)).
//  - LocalTsFrWriter: single-writer one-round-trip write (Dutta et al. [12]);
//    together with FastReader this is the W1R1 single-writer protocol.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/register.h"
#include "core/rpc_client.h"
#include "protocols/messages.h"

namespace mwreg {

/// Decide admissibility: exists mu subset of the READACKs such that every
/// message in mu contains v, |mu| >= S - a*t, and at least `a` clients are in
/// every chosen message's updated set for v. Equivalently: exists a set T of
/// `a` clients with T contained in at least S - a*t of v's updated sets.
/// Messages are non-owning views so hot paths can back them with reusable
/// arenas or caches. `bit_base` rebases client NodeIds into the 64-bit
/// witness masks (updated sets hold ids in [bit_base, bit_base + 64)); the
/// verdict is shift-invariant, so any base covering the group's clients
/// gives identical answers.
bool admissible(const TaggedValue& v, const std::vector<FrView>& msgs, int a,
                int num_servers, int max_faulty, NodeId bit_base = 0);

/// Convenience overload over owning nested vectors (tests, offline tools).
bool admissible(const TaggedValue& v,
                const std::vector<std::vector<FrEntry>>& msgs, int a,
                int num_servers, int max_faulty, NodeId bit_base = 0);

/// Reconstructed view of one server's valuevector (delta/gc mode): the
/// entries the server held at its last reply, sorted by tag, plus the reply
/// revision the reader acknowledges on its next request. Shared between the
/// object FastReader and the table-driven clients (core/client_table.h).
struct FrServerCache {
  std::uint64_t rev = 0;
  std::vector<FrEntry> entries;
};

/// Apply one kFrReadAckDelta payload to `cache`: drop entries below the
/// server's GC floor, upsert the streamed entries, and ack the revision only
/// when the whole delta decoded. `scratch` is a caller-owned reusable decode
/// buffer (its vectors keep their capacity across calls). Returns false on
/// malformed input.
bool fr_apply_delta(FrServerCache& cache, ByteSpan payload, FrEntry& scratch);

/// Largest candidate admissible at some degree a in [1, r+1] — the shared
/// decision of the full and delta read paths. `cands` must be sorted
/// ascending, unique. Returns bottom if nothing is admissible (unreachable
/// in a correct configuration).
TaggedValue fr_pick_admissible(const std::vector<TaggedValue>& cands,
                               const std::vector<FrView>& views, int r, int s,
                               int t, NodeId bit_base = 0);

class FastReader final : public RpcClient, public ReaderApi {
 public:
  FastReader(NodeId id, Network& net, const ClusterConfig& cfg,
             bool gc_enabled = false)
      : RpcClient(id, net, cfg), gc_enabled_(gc_enabled) {
    val_queue_.insert(TaggedValue{});  // (0, bottom)
    if (gc_enabled_) caches_.resize(static_cast<std::size_t>(cfg.s()));
  }

  void read(std::function<void(TaggedValue)> done) override;

  /// Exposed for tests: the reader's accumulated knowledge (legacy mode).
  [[nodiscard]] const std::set<TaggedValue>& val_queue() const {
    return val_queue_;
  }

  /// The reader's confirmed watermark: the largest value it has carried on
  /// a request. Every read completing after that point returns a tag >= it
  /// (Lemma 3) — the invariant the server-side GC relies on.
  [[nodiscard]] const TaggedValue& watermark() const { return watermark_; }

  /// Reconstructed valuevector size cached for one server (gc mode).
  [[nodiscard]] std::size_t cache_size(int server_index) const {
    return caches_.empty()
               ? 0
               : caches_[static_cast<std::size_t>(server_index)].entries.size();
  }

  /// Arena growth of the legacy decode path; must stop moving after warmup
  /// (tests/alloc_regression_test.cpp).
  [[nodiscard]] std::uint64_t decode_arena_grows() const {
    std::uint64_t total = 0;
    for (const FrEntryArena& a : reply_arenas_) total += a.grows();
    return total;
  }

 private:
  void read_full(std::function<void(TaggedValue)> done);
  void read_delta(std::function<void(TaggedValue)> done);

  bool gc_enabled_ = false;
  std::set<TaggedValue> val_queue_;

  // gc-mode state
  std::vector<FrServerCache> caches_;
  TaggedValue watermark_{};

  // reusable per-read scratch (both modes)
  std::vector<FrEntryArena> reply_arenas_;
  std::vector<FrView> views_;
  std::vector<TaggedValue> cand_;
  std::vector<std::uint64_t> acked_scratch_;
  std::vector<TaggedValue> queue_scratch_;
  FrEntry entry_scratch_;
};

class QueryThenWriter final : public RpcClient, public WriterApi {
 public:
  QueryThenWriter(NodeId id, Network& net, const ClusterConfig& cfg)
      : RpcClient(id, net, cfg) {}

  void write(std::int64_t payload, std::function<void(Tag)> done) override {
    round_trip(kFrQueryReq, {},
               [this, payload, done = std::move(done)](
                   const std::vector<ServerReply>& replies) mutable {
                 std::int64_t max_ts = 0;
                 for (const ServerReply& r : replies) {
                   max_ts = std::max(max_ts, decode_tag(r.payload).ts);
                 }
                 const Tag tag{max_ts + 1, id()};
                 round_trip(kFrWriteReq,
                            encode_value(pool(), TaggedValue{tag, payload}),
                            [tag, done = std::move(done)](
                                const std::vector<ServerReply>&) {
                              done(tag);
                            });
               });
  }
};

class LocalTsFrWriter final : public RpcClient, public WriterApi {
 public:
  LocalTsFrWriter(NodeId id, Network& net, const ClusterConfig& cfg)
      : RpcClient(id, net, cfg) {}

  void write(std::int64_t payload, std::function<void(Tag)> done) override {
    const Tag tag{++ts_, id()};
    round_trip(kFrWriteReq, encode_value(pool(), TaggedValue{tag, payload}),
               [tag, done = std::move(done)](
                   const std::vector<ServerReply>&) { done(tag); });
  }

 private:
  std::int64_t ts_ = 0;
};

}  // namespace mwreg
