// Clients of the paper's Algorithm 1 (Appendix A).
//
//  - FastReader: ONE round-trip read. Sends its valQueue, collects READACKs
//    from S - t servers, and returns the largest value that is
//    admissible(v, rcvMsg, a) for some a in [1, R+1].
//  - QueryThenWriter: the paper's two-round-trip multi-writer write (query
//    maxTS, then update (maxTS+1, wid)).
//  - LocalTsFrWriter: single-writer one-round-trip write (Dutta et al. [12]);
//    together with FastReader this is the W1R1 single-writer protocol.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/register.h"
#include "core/rpc_client.h"
#include "protocols/messages.h"

namespace mwreg {

/// Decide admissibility: exists mu subset of the READACKs such that every
/// message in mu contains v, |mu| >= S - a*t, and at least `a` clients are in
/// every chosen message's updated set for v. Equivalently: exists a set T of
/// `a` clients with T contained in at least S - a*t of v's updated sets.
bool admissible(const TaggedValue& v,
                const std::vector<std::vector<FrEntry>>& msgs, int a,
                int num_servers, int max_faulty);

class FastReader final : public RpcClient, public ReaderApi {
 public:
  FastReader(NodeId id, Network& net, const ClusterConfig& cfg)
      : RpcClient(id, net, cfg) {
    val_queue_.insert(TaggedValue{});  // (0, bottom)
  }

  void read(std::function<void(TaggedValue)> done) override;

  /// Exposed for tests: the reader's accumulated knowledge.
  [[nodiscard]] const std::set<TaggedValue>& val_queue() const {
    return val_queue_;
  }

 private:
  std::set<TaggedValue> val_queue_;
};

class QueryThenWriter final : public RpcClient, public WriterApi {
 public:
  QueryThenWriter(NodeId id, Network& net, const ClusterConfig& cfg)
      : RpcClient(id, net, cfg) {}

  void write(std::int64_t payload, std::function<void(Tag)> done) override {
    round_trip(kFrQueryReq, {},
               [this, payload, done = std::move(done)](
                   const std::vector<ServerReply>& replies) mutable {
                 std::int64_t max_ts = 0;
                 for (const ServerReply& r : replies) {
                   max_ts = std::max(max_ts, decode_tag(r.payload).ts);
                 }
                 const Tag tag{max_ts + 1, id()};
                 round_trip(kFrWriteReq,
                            encode_value(pool(), TaggedValue{tag, payload}),
                            [tag, done = std::move(done)](
                                const std::vector<ServerReply>&) {
                              done(tag);
                            });
               });
  }
};

class LocalTsFrWriter final : public RpcClient, public WriterApi {
 public:
  LocalTsFrWriter(NodeId id, Network& net, const ClusterConfig& cfg)
      : RpcClient(id, net, cfg) {}

  void write(std::int64_t payload, std::function<void(Tag)> done) override {
    const Tag tag{++ts_, id()};
    round_trip(kFrWriteReq, encode_value(pool(), TaggedValue{tag, payload}),
               [tag, done = std::move(done)](
                   const std::vector<ServerReply>&) { done(tag); });
  }

 private:
  std::int64_t ts_ = 0;
};

}  // namespace mwreg
