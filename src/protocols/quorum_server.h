// Server replica for the ABD family: keeps the maximum tagged value.
#pragma once

#include "common/tag.h"
#include "core/server_base.h"
#include "protocols/messages.h"

namespace mwreg {

class QuorumServer final : public ServerBase {
 public:
  QuorumServer(NodeId id, Network& net, const ClusterConfig& cfg)
      : ServerBase(id, net, cfg) {}

  [[nodiscard]] const TaggedValue& stored() const { return value_; }

  /// Batched delivery: one virtual dispatch per span, then a non-virtual
  /// per-frame loop (the switch in handle_request is the whole handler).
  /// Each reply() carries its request as the cause frame, so under a
  /// destination-major drain the whole run's acks are staged and flushed
  /// contiguously at batch end — the receiving table/client sees them as
  /// one run instead of interleaved singles.
  void on_deliver_batch(FrameSpan frames) final {
    for (const Frame& f : frames) handle_request(f);
  }

 protected:
  void handle_request(const Frame& req) final {
    switch (req.type) {
      case kAbdReadReq:
        reply(req, kAbdReadAck, encode_value(pool(), value_));
        break;
      case kAbdWriteReq: {
        const TaggedValue v = decode_value(req.payload);
        if (v.tag > value_.tag) value_ = v;
        reply(req, kAbdWriteAck, {});
        break;
      }
      default:
        break;  // not ours; a different protocol's message would be a bug
    }
  }

 private:
  TaggedValue value_{};  // starts at the bottom value
};

}  // namespace mwreg
