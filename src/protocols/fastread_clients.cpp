#include "protocols/fastread_clients.h"

#include <cassert>

namespace mwreg {
namespace {

/// DFS over client subsets T (|T| = a) checking that T is contained in at
/// least `need` of the updated sets. Client universes are tiny (W + R + 1),
/// and candidates are pruned to clients individually present in >= need sets.
bool exists_common_subset(const std::vector<std::uint64_t>& sets, int a,
                          int need) {
  if (static_cast<int>(sets.size()) < need) return false;
  if (a == 0) return true;

  // Candidate clients: those appearing in at least `need` sets.
  std::vector<int> cands;
  for (int c = 0; c < 64; ++c) {
    const std::uint64_t bit = 1ULL << c;
    int cnt = 0;
    for (std::uint64_t s : sets) {
      if (s & bit) ++cnt;
    }
    if (cnt >= need) cands.push_back(c);
  }
  if (static_cast<int>(cands.size()) < a) return false;

  // Choose `a` candidates; maintain the list of sets containing all chosen.
  struct Frame {
    std::vector<std::uint64_t> live;
    std::size_t next_cand;
    int chosen;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{sets, 0, 0});
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    if (f.chosen == a) return true;
    for (std::size_t i = f.next_cand; i < cands.size(); ++i) {
      const std::uint64_t bit = 1ULL << cands[i];
      std::vector<std::uint64_t> live;
      live.reserve(f.live.size());
      for (std::uint64_t s : f.live) {
        if (s & bit) live.push_back(s);
      }
      if (static_cast<int>(live.size()) < need) continue;
      // Enough candidates left to complete the subset?
      if (f.chosen + 1 + static_cast<int>(cands.size() - i - 1) < a) break;
      stack.push_back(Frame{std::move(live), i + 1, f.chosen + 1});
    }
  }
  return false;
}

}  // namespace

bool admissible(const TaggedValue& v,
                const std::vector<std::vector<FrEntry>>& msgs, int a,
                int num_servers, int max_faulty) {
  // mu must be nonempty (an empty witness set would make everything
  // admissible); in valid configurations S - a*t > t >= 1 anyway.
  const int need = std::max(1, num_servers - a * max_faulty);
  // Collect, per message that "has v", the updated set for v as a bitmask.
  std::vector<std::uint64_t> sets;
  sets.reserve(msgs.size());
  for (const std::vector<FrEntry>& m : msgs) {
    for (const FrEntry& e : m) {
      if (e.value == v) {
        std::uint64_t mask = 0;
        for (NodeId c : e.updated) {
          assert(c >= 0 && c < 64);
          mask |= 1ULL << c;
        }
        sets.push_back(mask);
        break;
      }
    }
  }
  return exists_common_subset(sets, a, need);
}

void FastReader::read(std::function<void(TaggedValue)> done) {
  std::vector<TaggedValue> queue(val_queue_.begin(), val_queue_.end());
  round_trip(
      kFrReadReq, encode_value_list(pool(), queue),
      [this, done = std::move(done)](const std::vector<ServerReply>& replies) {
        std::vector<std::vector<FrEntry>> msgs;
        msgs.reserve(replies.size());
        for (const ServerReply& r : replies) {
          msgs.push_back(decode_entries(r.payload));
        }
        // valQueue <- all values in rcvMsg, union previous queue.
        std::set<TaggedValue> candidates;
        for (const auto& m : msgs) {
          for (const FrEntry& e : m) {
            val_queue_.insert(e.value);
            candidates.insert(e.value);
          }
        }
        // Return the largest admissible candidate. Lemma 3 guarantees the
        // loop terminates: the max of the valQueue we sent is admissible
        // with degree 1, since every server confirmed it before replying.
        while (!candidates.empty()) {
          const TaggedValue v = *candidates.rbegin();
          for (int a = 1; a <= cfg().r() + 1; ++a) {
            if (admissible(v, msgs, a, cfg().s(), cfg().t())) {
              done(v);
              return;
            }
          }
          candidates.erase(v);
        }
        // Unreachable in a correct configuration; return bottom defensively.
        done(TaggedValue{});
      });
}

}  // namespace mwreg
