#include "protocols/fastread_clients.h"

#include <cassert>

namespace mwreg {
namespace {

/// DFS over client subsets T (|T| = a) checking that T is contained in at
/// least `need` of the updated sets. Client universes are tiny (W + R + 1),
/// and candidates are pruned to clients individually present in >= need sets.
bool exists_common_subset(const std::vector<std::uint64_t>& sets, int a,
                          int need) {
  if (static_cast<int>(sets.size()) < need) return false;
  if (a == 0) return true;

  // Candidate clients: those appearing in at least `need` sets.
  std::vector<int> cands;
  for (int c = 0; c < 64; ++c) {
    const std::uint64_t bit = 1ULL << c;
    int cnt = 0;
    for (std::uint64_t s : sets) {
      if (s & bit) ++cnt;
    }
    if (cnt >= need) cands.push_back(c);
  }
  if (static_cast<int>(cands.size()) < a) return false;

  // Choose `a` candidates; maintain the list of sets containing all chosen.
  struct Frame {
    std::vector<std::uint64_t> live;
    std::size_t next_cand;
    int chosen;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{sets, 0, 0});
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    if (f.chosen == a) return true;
    for (std::size_t i = f.next_cand; i < cands.size(); ++i) {
      const std::uint64_t bit = 1ULL << cands[i];
      std::vector<std::uint64_t> live;
      live.reserve(f.live.size());
      for (std::uint64_t s : f.live) {
        if (s & bit) live.push_back(s);
      }
      if (static_cast<int>(live.size()) < need) continue;
      // Enough candidates left to complete the subset?
      if (f.chosen + 1 + static_cast<int>(cands.size() - i - 1) < a) break;
      stack.push_back(Frame{std::move(live), i + 1, f.chosen + 1});
    }
  }
  return false;
}

}  // namespace

bool admissible(const TaggedValue& v, const std::vector<FrView>& msgs, int a,
                int num_servers, int max_faulty, NodeId bit_base) {
  // mu must be nonempty (an empty witness set would make everything
  // admissible); in valid configurations S - a*t > t >= 1 anyway.
  const int need = std::max(1, num_servers - a * max_faulty);
  // Collect, per message that "has v", the updated set for v as a bitmask.
  std::vector<std::uint64_t> sets;
  sets.reserve(msgs.size());
  for (const FrView& m : msgs) {
    for (const FrEntry& e : m) {
      if (e.value == v) {
        std::uint64_t mask = 0;
        for (NodeId c : e.updated) {
          assert(c >= bit_base && c - bit_base < 64);
          mask |= 1ULL << (c - bit_base);
        }
        sets.push_back(mask);
        break;
      }
    }
  }
  return exists_common_subset(sets, a, need);
}

bool admissible(const TaggedValue& v,
                const std::vector<std::vector<FrEntry>>& msgs, int a,
                int num_servers, int max_faulty, NodeId bit_base) {
  std::vector<FrView> views;
  views.reserve(msgs.size());
  for (const std::vector<FrEntry>& m : msgs) {
    views.push_back(FrView{m.data(), m.size()});
  }
  return admissible(v, views, a, num_servers, max_faulty, bit_base);
}

TaggedValue fr_pick_admissible(const std::vector<TaggedValue>& cands,
                               const std::vector<FrView>& views, int r, int s,
                               int t, NodeId bit_base) {
  // Return the largest admissible candidate. Lemma 3 guarantees the loop
  // terminates: the max of the valQueue the reader sent is admissible with
  // degree 1, since every server confirmed it before replying.
  for (auto it = cands.rbegin(); it != cands.rend(); ++it) {
    for (int a = 1; a <= r + 1; ++a) {
      if (admissible(*it, views, a, s, t, bit_base)) return *it;
    }
  }
  // Unreachable in a correct configuration; return bottom defensively.
  return TaggedValue{};
}

void FastReader::read(std::function<void(TaggedValue)> done) {
  if (gc_enabled_) {
    read_delta(std::move(done));
  } else {
    read_full(std::move(done));
  }
}

void FastReader::read_full(std::function<void(TaggedValue)> done) {
  std::vector<TaggedValue> queue(val_queue_.begin(), val_queue_.end());
  round_trip(
      kFrReadReq, encode_value_list(pool(), queue),
      [this, done = std::move(done)](const std::vector<ServerReply>& replies) {
        if (reply_arenas_.size() < replies.size()) {
          reply_arenas_.resize(replies.size());
        }
        views_.clear();
        cand_.clear();
        for (std::size_t i = 0; i < replies.size(); ++i) {
          ByteReader br(replies[i].payload);
          const bool ok = decode_entries_into(br, reply_arenas_[i]);
          assert(ok && "malformed kFrReadAck");
          (void)ok;
          views_.push_back(reply_arenas_[i].view());
        }
        // valQueue <- all values in rcvMsg, union previous queue.
        for (const FrView& m : views_) {
          for (const FrEntry& e : m) {
            val_queue_.insert(e.value);
            cand_.push_back(e.value);
          }
        }
        std::sort(cand_.begin(), cand_.end());
        cand_.erase(std::unique(cand_.begin(), cand_.end()), cand_.end());
        done(fr_pick_admissible(cand_, views_, cfg().r(), cfg().s(),
                                cfg().t()));
      });
}

void FastReader::read_delta(std::function<void(TaggedValue)> done) {
  // The pruned valQueue: only the confirmed watermark value. Every server
  // re-admits and confirms it before replying, which is all Lemma 3 needs;
  // the tail of the queue below the watermark only re-confirms values this
  // reader can never return again (DESIGN.md section 6.3).
  queue_scratch_.clear();
  queue_scratch_.push_back(watermark_);
  acked_scratch_.clear();
  for (const FrServerCache& c : caches_) acked_scratch_.push_back(c.rev);
  ByteWriter w(pool().acquire());
  encode_delta_read_req_into(w, queue_scratch_, acked_scratch_.data(),
                             acked_scratch_.size());
  round_trip(
      kFrReadDeltaReq, w.take(),
      [this, done = std::move(done)](const std::vector<ServerReply>& replies) {
        views_.clear();
        cand_.clear();
        for (const ServerReply& r : replies) {
          FrServerCache& cache = caches_[static_cast<std::size_t>(r.server)];
          const bool ok = fr_apply_delta(cache, r.payload, entry_scratch_);
          assert(ok && "malformed kFrReadAckDelta");
          (void)ok;
          views_.push_back(FrView{cache.entries.data(), cache.entries.size()});
        }
        for (const FrView& m : views_) {
          for (const FrEntry& e : m) cand_.push_back(e.value);
        }
        std::sort(cand_.begin(), cand_.end());
        cand_.erase(std::unique(cand_.begin(), cand_.end()), cand_.end());
        const TaggedValue v =
            fr_pick_admissible(cand_, views_, cfg().r(), cfg().s(), cfg().t());
        // valQueue semantics, compressed: the watermark is the max of
        // everything ever received (>= the value returned below).
        if (!cand_.empty()) watermark_ = std::max(watermark_, cand_.back());
        done(v);
      });
}

bool fr_apply_delta(FrServerCache& cache, ByteSpan payload,
                    FrEntry& scratch) {
  ByteReader r(payload);
  const FrDeltaHeader h = get_delta_ack_header(r);
  if (!r.ok()) return false;
  // Drop cached entries the server has garbage-collected. They sit
  // strictly below every reader's watermark, so this reader could never
  // return them again anyway; dropping keeps the cache O(active values).
  const auto floor_it = std::lower_bound(
      cache.entries.begin(), cache.entries.end(), h.gc_floor,
      [](const FrEntry& e, const Tag& t) { return e.value.tag < t; });
  cache.entries.erase(cache.entries.begin(), floor_it);
  // Upsert the changed entries (streamed in ascending tag order).
  for (std::uint64_t i = 0; i < h.count && r.ok(); ++i) {
    decode_fr_entry_into(r, scratch);
    if (!r.ok()) break;
    const auto it = std::lower_bound(
        cache.entries.begin(), cache.entries.end(), scratch.value.tag,
        [](const FrEntry& e, const Tag& t) { return e.value.tag < t; });
    if (it != cache.entries.end() && it->value.tag == scratch.value.tag) {
      it->value = scratch.value;
      it->updated = scratch.updated;  // copy-assign reuses capacity
    } else {
      cache.entries.insert(it, scratch);
    }
  }
  // Only ack a fully applied delta: on a truncated payload the loop above
  // stopped mid-stream, and acking the server's revision anyway would make
  // it skip the missed entries forever. Leaving rev untouched means the
  // next request re-requests everything since the last good ack.
  if (r.ok()) cache.rev = h.revision;
  return r.ok();
}

}  // namespace mwreg
