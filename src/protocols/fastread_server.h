// Server replica of the paper's Algorithm 2 (Appendix A).
//
// State: the current max value `vali` and a `valuevector` mapping every value
// ever received to the set of clients that updated/confirmed it.
//
// One deliberate clarification versus the printed pseudocode: on a READ the
// server records the reader in the updated set of EVERY value it reports
// (not only the values in the reader's valQueue). The printed Algorithm 2
// only updates valQueue values, but the proofs need more: Lemma 5 (MWA2)
// argues a just-written value is admissible with degree 2 at a following
// read, whose witness clients are {writer, reader} -- the reader must
// therefore be in the value's updated set at reply time even when a newer
// value has already superseded it, and Lemma 8's proof says "every server
// which replies to r2 ... adds r2 to its updated set before replying". The
// single-writer algorithm of Dutta et al. [12] does exactly this (its
// server stores one value and confirms the reader on it when replying).
// Without this clarification the schedule fuzzer finds MWA2 violations
// under heavy message reordering; DESIGN.md records the deviation.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "common/tag.h"
#include "core/server_base.h"
#include "protocols/messages.h"

namespace mwreg {

class FastReadServer final : public ServerBase {
 public:
  /// `confirm_reported = false` reverts to the pseudocode as printed
  /// (update only the reader's valQueue values): kept for the ablation
  /// showing the MWA2 violations that motivates the clarification above.
  explicit FastReadServer(NodeId id, Network& net, const ClusterConfig& cfg,
                          bool confirm_reported = true)
      : ServerBase(id, net, cfg), confirm_reported_(confirm_reported) {
    entries_[kBottomTag];  // valuevector starts with the bottom value
  }

  [[nodiscard]] const TaggedValue& current() const { return vali_; }
  [[nodiscard]] std::size_t valuevector_size() const { return entries_.size(); }

 protected:
  void handle_request(const Message& req) override {
    switch (req.type) {
      case kFrQueryReq:
        reply(req, kFrQueryAck, encode_tag(pool(), vali_.tag));
        break;
      case kFrWriteReq: {
        const TaggedValue v = decode_value(req.payload);
        update(v, req.src);
        reply(req, kFrWriteAck, {});
        break;
      }
      case kFrReadReq: {
        for (const TaggedValue& v : decode_value_list(req.payload)) {
          update(v, req.src);
        }
        // Confirm the reader on every value it is about to receive (see
        // the header comment: required by Lemmas 5 and 8).
        if (confirm_reported_) {
          for (auto& [tag, e] : entries_) e.updated.insert(req.src);
        }
        reply(req, kFrReadAck, encode_entries(pool(), snapshot()));
        break;
      }
      default:
        break;
    }
  }

 private:
  struct Entry {
    std::int64_t payload = 0;
    std::set<NodeId> updated;
  };

  /// Algorithm 2's update(val, c).
  void update(const TaggedValue& val, NodeId c) {
    Entry& e = entries_[val.tag];
    e.payload = val.payload;
    e.updated.insert(c);
    if (val.tag > vali_.tag) vali_ = val;
  }

  [[nodiscard]] std::vector<FrEntry> snapshot() const {
    std::vector<FrEntry> out;
    out.reserve(entries_.size());
    for (const auto& [tag, e] : entries_) {
      FrEntry fe;
      fe.value = TaggedValue{tag, e.payload};
      fe.updated.assign(e.updated.begin(), e.updated.end());
      out.push_back(std::move(fe));
    }
    return out;
  }

  bool confirm_reported_ = true;
  TaggedValue vali_{};
  std::map<Tag, Entry> entries_;
};

}  // namespace mwreg
