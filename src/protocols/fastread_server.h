// Server replica of the paper's Algorithm 2 (Appendix A).
//
// State: the current max value `vali` and a `valuevector` mapping every value
// ever received to the set of clients that updated/confirmed it.
//
// One deliberate clarification versus the printed pseudocode: on a READ the
// server records the reader in the updated set of EVERY value it reports
// (not only the values in the reader's valQueue). The printed Algorithm 2
// only updates valQueue values, but the proofs need more: Lemma 5 (MWA2)
// argues a just-written value is admissible with degree 2 at a following
// read, whose witness clients are {writer, reader} -- the reader must
// therefore be in the value's updated set at reply time even when a newer
// value has already superseded it, and Lemma 8's proof says "every server
// which replies to r2 ... adds r2 to its updated set before replying". The
// single-writer algorithm of Dutta et al. [12] does exactly this (its
// server stores one value and confirms the reader on it when replying).
// Without this clarification the schedule fuzzer finds MWA2 violations
// under heavy message reordering; DESIGN.md records the deviation.
//
// With Options::gc_enabled the server additionally garbage-collects the
// valuevector and serves incremental read acks (kFrReadDeltaReq /
// kFrReadAckDelta): entries strictly below the minimum confirmed watermark
// any reader has carried on its requests are pruned, and a read ack carries
// only the entries whose revision is newer than the revision the reader
// last acknowledged. DESIGN.md section 6 gives the safety argument against
// Lemmas 5 and 8; with gc_enabled=false the server is bit-exact with the
// pre-GC implementation (the ablation the benches compare against).
#pragma once

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <vector>

#include "common/tag.h"
#include "core/server_base.h"
#include "protocols/messages.h"

namespace mwreg {

class FastReadServer final : public ServerBase {
 public:
  struct Options {
    /// `confirm_reported = false` reverts to the pseudocode as printed
    /// (update only the reader's valQueue values): kept for the ablation
    /// showing the MWA2 violations that motivates the clarification above.
    bool confirm_reported = true;
    /// Watermark-based valuevector GC + delta read acks (DESIGN.md
    /// section 6). Off by default: the legacy protocols stay bit-exact.
    bool gc_enabled = false;
  };

  FastReadServer(NodeId id, Network& net, const ClusterConfig& cfg)
      : FastReadServer(id, net, cfg, Options{}) {}

  FastReadServer(NodeId id, Network& net, const ClusterConfig& cfg,
                 Options opts)
      : ServerBase(id, net, cfg), opts_(opts) {
    // valuevector starts with the bottom value; under GC it carries
    // revision 1 so a reader that has acked nothing (rev 0) receives it.
    entries_[kBottomTag].rev = ++rev_seq_;
    // Indexed by NodeId, so size to the end of the id space: in a re-based
    // keyspace group the reader ids sit far above total_nodes().
    watermark_.resize(static_cast<std::size_t>(cfg.id_end()));
  }

  [[nodiscard]] const TaggedValue& current() const { return vali_; }
  [[nodiscard]] std::size_t valuevector_size() const { return entries_.size(); }

  /// GC observables (zero / bottom while gc_enabled is false).
  [[nodiscard]] const Tag& gc_floor() const { return gc_floor_; }
  [[nodiscard]] std::uint64_t entries_pruned() const { return pruned_; }
  /// Arena growth for the full-snapshot reply path; must stop moving after
  /// warmup (tests/alloc_regression_test.cpp).
  [[nodiscard]] std::uint64_t snapshot_arena_grows() const {
    return snapshot_arena_.grows();
  }

  /// Batched delivery: one virtual dispatch per span, then a non-virtual
  /// per-frame loop through the request switch. Every reply (tag acks,
  /// full snapshots, delta acks) carries its request as the cause frame,
  /// so under a destination-major drain the run's fan-out is staged and
  /// lands contiguously at the receivers (network.h reply staging).
  void on_deliver_batch(FrameSpan frames) final {
    for (const Frame& f : frames) handle_request(f);
  }

 protected:
  void handle_request(const Frame& req) final {
    switch (req.type) {
      case kFrQueryReq:
        reply(req, kFrQueryAck, encode_tag(pool(), vali_.tag));
        break;
      case kFrWriteReq: {
        const TaggedValue v = decode_value(req.payload);
        update(v, req.src);
        reply(req, kFrWriteAck, {});
        break;
      }
      case kFrReadReq: {
        req_queue_ = decode_value_list(req.payload);
        for (const TaggedValue& v : req_queue_) update(v, req.src);
        confirm_all(req.src);
        // A full-ack read carries the same watermark information (the
        // valQueue maximum), so GC advances on it too — a cluster can mix
        // delta and full-ack readers.
        note_watermark(req.src);
        reply(req, kFrReadAck, encode_entries(pool(), snapshot()));
        break;
      }
      case kFrReadDeltaReq:
        handle_delta_read(req);
        break;
      default:
        break;
    }
  }

 private:
  struct Entry {
    std::int64_t payload = 0;
    std::set<NodeId> updated;
    /// Last server revision at which this entry changed (payload set,
    /// updated-set grew, or entry created). Only meaningful under GC.
    std::uint64_t rev = 0;
  };

  /// Algorithm 2's update(val, c).
  void update(const TaggedValue& val, NodeId c) {
    Entry& e = entries_[val.tag];
    bool changed = e.rev == 0;  // freshly created (GC keeps revs >= 1)
    if (e.payload != val.payload) {
      e.payload = val.payload;
      changed = true;
    }
    changed |= e.updated.insert(c).second;
    if (changed) e.rev = ++rev_seq_;
    if (val.tag > vali_.tag) vali_ = val;
  }

  /// Confirm the reader on every value it is about to receive (see the
  /// header comment: required by Lemmas 5 and 8).
  void confirm_all(NodeId reader) {
    if (!opts_.confirm_reported) return;
    for (auto& [tag, e] : entries_) {
      if (e.updated.insert(reader).second) e.rev = ++rev_seq_;
    }
  }

  /// The incremental read (Algorithm 2 + GC): record the reader's confirmed
  /// watermark, re-admit its watermark value, confirm it on every entry,
  /// advance the GC floor, then reply with only the entries newer than the
  /// revision the reader acknowledged.
  void handle_delta_read(const Frame& req) {
    ByteReader r(req.payload);
    const bool ok = decode_delta_read_req_into(r, req_queue_, req_acks_);
    assert(ok && "malformed kFrReadDeltaReq");
    if (!ok) {
      // Never reached in the simulator (payloads are self-produced), but
      // dropping the request would deadlock the reader's round: discard
      // the garbled queue and answer as if nothing were acked, which
      // resends the full state — always safe.
      req_queue_.clear();
      req_acks_.clear();
    }
    for (const TaggedValue& v : req_queue_) update(v, req.src);
    confirm_all(req.src);
    note_watermark(req.src);
    // Readers order the ack array by server index within the group, so a
    // re-based group (multi-key shards) must subtract its base; the classic
    // layout has server_base == 0 and is unchanged.
    const std::size_t self = static_cast<std::size_t>(id() - cfg().server_base);
    const std::uint64_t acked =
        self < req_acks_.size() ? req_acks_[self] : 0;

    FrDeltaHeader h;
    h.revision = rev_seq_;
    h.gc_floor = gc_floor_;
    for (const auto& [tag, e] : entries_) h.count += e.rev > acked;
    ByteWriter w(pool().acquire());
    put_delta_ack_header(w, h);
    // Stream changed entries straight out of the map: no snapshot vector.
    for (const auto& [tag, e] : entries_) {
      if (e.rev <= acked) continue;
      w.put_value(TaggedValue{tag, e.payload});
      w.put_varint(e.updated.size());
      for (NodeId c : e.updated) w.put_signed(c);
    }
    reply(req, kFrReadAckDelta, w.take());
  }

  /// Record the confirmed watermark a reader carried in `req_queue_` and
  /// advance the GC floor. No-op unless GC is enabled and `src` is a
  /// reader.
  void note_watermark(NodeId src) {
    if (!opts_.gc_enabled || !cfg().is_reader(src)) return;
    Tag wm = watermark_[static_cast<std::size_t>(src)];
    for (const TaggedValue& v : req_queue_) wm = std::max(wm, v.tag);
    watermark_[static_cast<std::size_t>(src)] = wm;
    collect_garbage();
  }

  /// Prune entries strictly below the minimum confirmed watermark across
  /// all readers. Safety (DESIGN.md section 6.2): no reader can ever again
  /// return a tag below its own watermark (Lemma 3 lower-bounds every read
  /// by the max of the valQueue it sent), so nothing below the minimum is
  /// returnable by anyone and Lemmas 5/8 hold vacuously for pruned tags.
  void collect_garbage() {
    Tag floor = watermark_[static_cast<std::size_t>(cfg().reader_id(0))];
    for (int i = 1; i < cfg().r(); ++i) {
      const auto slot = static_cast<std::size_t>(cfg().reader_id(i));
      floor = std::min(floor, watermark_[slot]);
    }
    if (gc_floor_ < floor) gc_floor_ = floor;  // floors only advance
    // Prune below the floor even when it did not just advance: a full-ack
    // reader re-admits its whole valQueue via update(), and those stale
    // sub-floor entries must not survive into the reply built next. (In a
    // pure delta cluster requests only carry watermarks >= the floor, so
    // this erase finds nothing.) The watermark carrier's value was just
    // re-admitted, so the map keeps at least the floor entry and vali_
    // survives.
    assert(gc_floor_ <= vali_.tag);
    const auto end = entries_.lower_bound(gc_floor_);
    for (auto it = entries_.begin(); it != end;) {
      it = entries_.erase(it);
      ++pruned_;
    }
  }

  [[nodiscard]] FrView snapshot() {
    snapshot_arena_.reset();
    for (const auto& [tag, e] : entries_) {
      FrEntry& fe = snapshot_arena_.append();
      fe.value = TaggedValue{tag, e.payload};
      fe.updated.assign(e.updated.begin(), e.updated.end());
    }
    return snapshot_arena_.view();
  }

  Options opts_;
  TaggedValue vali_{};
  std::map<Tag, Entry> entries_;
  std::uint64_t rev_seq_ = 0;
  /// Highest confirmed watermark carried on each reader's requests,
  /// indexed by NodeId (non-reader slots stay bottom).
  std::vector<Tag> watermark_;
  Tag gc_floor_{};
  std::uint64_t pruned_ = 0;
  FrEntryArena snapshot_arena_;
  /// Request decode scratch, reused across delta reads.
  std::vector<TaggedValue> req_queue_;
  std::vector<std::uint64_t> req_acks_;
};

}  // namespace mwreg
