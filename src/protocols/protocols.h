// The design-space protocols (Table 1 / Fig. 2).
//
//  MwAbdProtocol        W2R2  multi-writer ABD (LS97). Atomic iff t < S/2.
//  AbdSwmrProtocol      W1R2  single-writer ABD'95. Atomic iff W == 1, t < S/2.
//  NaiveFastWriteProto  W1R2  multi-writer strawman with one-round writes.
//                             NEVER atomic with W >= 2, R >= 2, t >= 1
//                             (Theorem 1); kept as the baseline whose
//                             violations the checker exhibits.
//  FastReadMwProtocol   W2R1  the paper's Algorithm 1 & 2. Atomic iff
//                             R < S/t - 2.
//  FastSwmrProtocol     W1R1  single-writer fast protocol (Dutta et al.).
//                             Atomic iff W == 1 and R < S/t - 2.
#pragma once

#include <memory>
#include <vector>

#include "core/protocol.h"

namespace mwreg {

class MwAbdProtocol final : public Protocol {
 public:
  std::string name() const override { return "mw-abd(W2R2)"; }
  int write_round_trips() const override { return 2; }
  int read_round_trips() const override { return 2; }
  bool guarantees_atomicity(const ClusterConfig& cfg) const override {
    return cfg.supports_w2r2();
  }
  TableWriterProgram table_writer() const override {
    return TableWriterProgram::kAbdTwoRound;
  }
  TableReaderProgram table_reader() const override {
    return TableReaderProgram::kAbdTwoRound;
  }
  std::unique_ptr<Process> make_server(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
  std::unique_ptr<WriterApi> make_writer(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
  std::unique_ptr<ReaderApi> make_reader(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
};

class AbdSwmrProtocol final : public Protocol {
 public:
  std::string name() const override { return "abd-swmr(W1R2)"; }
  int write_round_trips() const override { return 1; }
  int read_round_trips() const override { return 2; }
  bool guarantees_atomicity(const ClusterConfig& cfg) const override {
    return cfg.w() == 1 && cfg.supports_w2r2();
  }
  TableWriterProgram table_writer() const override {
    return TableWriterProgram::kAbdLocalTs;
  }
  TableReaderProgram table_reader() const override {
    return TableReaderProgram::kAbdTwoRound;
  }
  std::unique_ptr<Process> make_server(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
  std::unique_ptr<WriterApi> make_writer(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
  std::unique_ptr<ReaderApi> make_reader(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
};

class NaiveFastWriteProtocol final : public Protocol {
 public:
  std::string name() const override { return "naive-fast-write(W1R2)"; }
  int write_round_trips() const override { return 1; }
  int read_round_trips() const override { return 2; }
  bool guarantees_atomicity(const ClusterConfig& cfg) const override {
    // Theorem 1: no W1R2 implementation exists for W>=2, R>=2, t>=1.
    return cfg.w() == 1 && cfg.supports_w2r2();
  }
  TableWriterProgram table_writer() const override {
    return TableWriterProgram::kAbdLocalTs;
  }
  TableReaderProgram table_reader() const override {
    return TableReaderProgram::kAbdTwoRound;
  }
  std::unique_ptr<Process> make_server(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
  std::unique_ptr<WriterApi> make_writer(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
  std::unique_ptr<ReaderApi> make_reader(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
};

/// The paper's Algorithm 1 & 2, running (since PR 7, like fast-swmr since
/// PR 5) with valuevector garbage collection and incremental (delta) read
/// acks: servers prune entries strictly below the minimum confirmed reader
/// watermark and send only entries newer than the revision the reader
/// acknowledged (DESIGN.md section 6). Server memory and read-ack bytes
/// stay O(active values) instead of O(all writes ever). GC is
/// observationally invisible — same message counts, same returned values,
/// same verdicts (tests/gc_safety_test.cpp pins this against the no-GC
/// ablation below) — so flipping the default changed no digest.
class FastReadMwProtocol final : public Protocol {
 public:
  std::string name() const override { return "fast-read-mw(W2R1)"; }
  int write_round_trips() const override { return 2; }
  int read_round_trips() const override { return 1; }
  bool guarantees_atomicity(const ClusterConfig& cfg) const override {
    return cfg.supports_fast_read();
  }
  TableWriterProgram table_writer() const override {
    return TableWriterProgram::kFrQueryThenWrite;
  }
  TableReaderProgram table_reader() const override {
    return TableReaderProgram::kFrDelta;
  }
  std::unique_ptr<Process> make_server(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
  std::unique_ptr<WriterApi> make_writer(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
  std::unique_ptr<ReaderApi> make_reader(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
};

/// Algorithm 1 & 2 WITHOUT garbage collection: valuevectors grow with
/// every write and read acks replay the full vector — the O(ops^2)
/// baseline the GC'd default is measured against (bench_valuevector) and
/// the reference side of the gc_safety observational-identity pin. Kept
/// registered as an ablation; the separate registry name makes the GC
/// toggle a sweep axis: exp::cell_digest keys on the protocol name, so
/// GC-on and GC-off cells never share RNG streams.
class NoGcFastReadMwProtocol final : public Protocol {
 public:
  std::string name() const override { return "fast-read-mw-nogc(W2R1)"; }
  int write_round_trips() const override { return 2; }
  int read_round_trips() const override { return 1; }
  bool guarantees_atomicity(const ClusterConfig& cfg) const override {
    return cfg.supports_fast_read();
  }
  TableWriterProgram table_writer() const override {
    return TableWriterProgram::kFrQueryThenWrite;
  }
  TableReaderProgram table_reader() const override {
    return TableReaderProgram::kFrFull;
  }
  std::unique_ptr<Process> make_server(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
  std::unique_ptr<WriterApi> make_writer(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
  std::unique_ptr<ReaderApi> make_reader(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
};

/// Algorithm 1 & 2 with the server EXACTLY as printed in the paper (no
/// reader confirmation on reported values). Kept for the ablation in
/// bench_ablation_alg2: under heavy message reordering this variant
/// violates MWA2 (a read returns an older tag than a completed write),
/// which is why the repo's main FastReadMwProtocol deviates (DESIGN.md #5.1).
class LiteralFastReadMwProtocol final : public Protocol {
 public:
  std::string name() const override { return "fast-read-mw-literal(W2R1)"; }
  int write_round_trips() const override { return 2; }
  int read_round_trips() const override { return 1; }
  bool guarantees_atomicity(const ClusterConfig&) const override {
    return false;  // the ablation shows why
  }
  // The ablation only changes the server; the clients are the stock
  // Algorithm 1 programs, so the table can drive this variant too.
  TableWriterProgram table_writer() const override {
    return TableWriterProgram::kFrQueryThenWrite;
  }
  TableReaderProgram table_reader() const override {
    return TableReaderProgram::kFrFull;
  }
  std::unique_ptr<Process> make_server(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
  std::unique_ptr<WriterApi> make_writer(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
  std::unique_ptr<ReaderApi> make_reader(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
};

/// W2R1 with a plain max-of-quorum read and no admissibility machinery: the
/// pragmatic baseline the paper's introduction attributes to quorum stores.
/// Regular (no lost updates) but NOT atomic for any R -- exactly the gap
/// Algorithm 1 & 2 closes when R < S/t - 2.
class RegularFastReadProtocol final : public Protocol {
 public:
  std::string name() const override { return "regular-fast-read(W2R1)"; }
  int write_round_trips() const override { return 2; }
  int read_round_trips() const override { return 1; }
  bool guarantees_atomicity(const ClusterConfig&) const override {
    return false;  // regular only
  }
  TableWriterProgram table_writer() const override {
    return TableWriterProgram::kAbdTwoRound;
  }
  TableReaderProgram table_reader() const override {
    return TableReaderProgram::kAbdOneRoundMax;
  }
  std::unique_ptr<Process> make_server(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
  std::unique_ptr<WriterApi> make_writer(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
  std::unique_ptr<ReaderApi> make_reader(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
};

/// Since PR 5 the W1R1 protocol runs with valuevector GC and delta read
/// acks by default — the same bounded-memory path as fast-read-mw, which
/// a single writer benefits from just as much (the valuevector otherwise
/// grows with every write). Observational behavior (round-trips, verdicts)
/// is unchanged; message *contents* differ from the pre-PR-5 full-ack wire
/// format, which is why bench baselines were refreshed alongside.
class FastSwmrProtocol final : public Protocol {
 public:
  std::string name() const override { return "fast-swmr(W1R1)"; }
  int write_round_trips() const override { return 1; }
  int read_round_trips() const override { return 1; }
  bool guarantees_atomicity(const ClusterConfig& cfg) const override {
    return cfg.w() == 1 && cfg.supports_fast_read();
  }
  TableWriterProgram table_writer() const override {
    return TableWriterProgram::kFrLocalTs;
  }
  TableReaderProgram table_reader() const override {
    return TableReaderProgram::kFrDelta;
  }
  std::unique_ptr<Process> make_server(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
  std::unique_ptr<WriterApi> make_writer(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
  std::unique_ptr<ReaderApi> make_reader(
      NodeId id, Network& net, const ClusterConfig& cfg) const override;
};

/// All protocols, for benches and examples that sweep the design space.
std::vector<const Protocol*> all_protocols();

/// Lookup by the exact name() string; nullptr when unknown.
const Protocol* protocol_by_name(const std::string& name);

}  // namespace mwreg
