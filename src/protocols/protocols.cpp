#include "protocols/protocols.h"

#include "protocols/abd_clients.h"
#include "protocols/fastread_clients.h"
#include "protocols/fastread_server.h"
#include "protocols/quorum_server.h"

namespace mwreg {

// ---- MwAbd (W2R2) ----

std::unique_ptr<Process> MwAbdProtocol::make_server(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<QuorumServer>(id, net, cfg);
}
std::unique_ptr<WriterApi> MwAbdProtocol::make_writer(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<TwoRoundWriter>(id, net, cfg);
}
std::unique_ptr<ReaderApi> MwAbdProtocol::make_reader(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<TwoRoundReader>(id, net, cfg);
}

// ---- AbdSwmr (W1R2) ----

std::unique_ptr<Process> AbdSwmrProtocol::make_server(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<QuorumServer>(id, net, cfg);
}
std::unique_ptr<WriterApi> AbdSwmrProtocol::make_writer(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<LocalTsWriter>(id, net, cfg);
}
std::unique_ptr<ReaderApi> AbdSwmrProtocol::make_reader(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<TwoRoundReader>(id, net, cfg);
}

// ---- NaiveFastWrite (W1R2 strawman) ----

std::unique_ptr<Process> NaiveFastWriteProtocol::make_server(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<QuorumServer>(id, net, cfg);
}
std::unique_ptr<WriterApi> NaiveFastWriteProtocol::make_writer(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<LocalTsWriter>(id, net, cfg);
}
std::unique_ptr<ReaderApi> NaiveFastWriteProtocol::make_reader(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<TwoRoundReader>(id, net, cfg);
}

// ---- FastReadMw (W2R1, the paper's Algorithm 1 & 2; GC'd by default) ----

std::unique_ptr<Process> FastReadMwProtocol::make_server(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  FastReadServer::Options o;
  o.gc_enabled = true;
  return std::make_unique<FastReadServer>(id, net, cfg, o);
}
std::unique_ptr<WriterApi> FastReadMwProtocol::make_writer(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<QueryThenWriter>(id, net, cfg);
}
std::unique_ptr<ReaderApi> FastReadMwProtocol::make_reader(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<FastReader>(id, net, cfg, /*gc_enabled=*/true);
}

// ---- NoGcFastReadMw (W2R1 full-ack ablation, the O(ops^2) baseline) ----

std::unique_ptr<Process> NoGcFastReadMwProtocol::make_server(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<FastReadServer>(id, net, cfg);
}
std::unique_ptr<WriterApi> NoGcFastReadMwProtocol::make_writer(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<QueryThenWriter>(id, net, cfg);
}
std::unique_ptr<ReaderApi> NoGcFastReadMwProtocol::make_reader(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<FastReader>(id, net, cfg);
}

// ---- LiteralFastReadMw (pseudocode-as-printed ablation) ----

std::unique_ptr<Process> LiteralFastReadMwProtocol::make_server(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  FastReadServer::Options o;
  o.confirm_reported = false;
  return std::make_unique<FastReadServer>(id, net, cfg, o);
}
std::unique_ptr<WriterApi> LiteralFastReadMwProtocol::make_writer(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<QueryThenWriter>(id, net, cfg);
}
std::unique_ptr<ReaderApi> LiteralFastReadMwProtocol::make_reader(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<FastReader>(id, net, cfg);
}

// ---- RegularFastRead (W2R1, regular-only baseline) ----

std::unique_ptr<Process> RegularFastReadProtocol::make_server(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<QuorumServer>(id, net, cfg);
}
std::unique_ptr<WriterApi> RegularFastReadProtocol::make_writer(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<TwoRoundWriter>(id, net, cfg);
}
std::unique_ptr<ReaderApi> RegularFastReadProtocol::make_reader(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<OneRoundMaxReader>(id, net, cfg);
}

// ---- FastSwmr (W1R1) ----

std::unique_ptr<Process> FastSwmrProtocol::make_server(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  // GC + delta acks by default (PR 4's bounded-memory path): a single
  // writer still grows the valuevector with every write without it.
  FastReadServer::Options o;
  o.gc_enabled = true;
  return std::make_unique<FastReadServer>(id, net, cfg, o);
}
std::unique_ptr<WriterApi> FastSwmrProtocol::make_writer(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<LocalTsFrWriter>(id, net, cfg);
}
std::unique_ptr<ReaderApi> FastSwmrProtocol::make_reader(
    NodeId id, Network& net, const ClusterConfig& cfg) const {
  return std::make_unique<FastReader>(id, net, cfg, /*gc_enabled=*/true);
}

// ---- Registry ----

std::vector<const Protocol*> all_protocols() {
  static const MwAbdProtocol mw_abd;
  static const AbdSwmrProtocol abd_swmr;
  static const NaiveFastWriteProtocol naive;
  static const FastReadMwProtocol fast_read;
  static const NoGcFastReadMwProtocol fast_read_nogc;
  static const FastSwmrProtocol fast_swmr;
  static const RegularFastReadProtocol regular_fast;
  static const LiteralFastReadMwProtocol literal_fast_read;
  return {&mw_abd,    &abd_swmr,       &naive,
          &fast_read, &fast_read_nogc, &fast_swmr,
          &regular_fast, &literal_fast_read};
}

const Protocol* protocol_by_name(const std::string& name) {
  for (const Protocol* p : all_protocols()) {
    if (p->name() == name) return p;
  }
  return nullptr;
}

}  // namespace mwreg
