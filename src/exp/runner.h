// Runner: expands ExperimentSpecs into trials and executes them on a
// std::thread pool.
//
// Determinism contract: a trial's result depends only on (spec, user seed,
// protocol, cluster) — never on the thread that ran it, the completion
// order of sibling trials, or where the cell sits in a run_all() batch.
// Results come back indexed by the trial's position in the deterministic
// expansion order (spec-major, then protocol, cluster, seed), so the same
// spec list produces byte-identical aggregates at any thread count, and a
// single cell re-run alone reproduces its batch numbers.
// tests/exp_runner_test.cpp enforces this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/spec.h"

namespace mwreg::exp {

/// Outcome of one (protocol, cluster, fault plan, seed) simulation.
struct TrialResult {
  /// Position in the Runner's deterministic expansion order across the
  /// whole run()/run_all() batch. Under a ShardSpec only the shard's own
  /// slots are executed, and this index is what lets merge_partials()
  /// (exp/partial.h) put every trial back where the single-process run
  /// would have produced it.
  std::uint64_t trial_index = 0;
  int spec_index = 0;   ///< which spec in the run() batch
  int cell_index = 0;   ///< global cell ordinal across the batch
  std::string spec_name;
  std::string protocol;
  ClusterConfig cfg;
  std::string fault_plan;          ///< plan name; "" = fault-free
  /// Keyspace point (num_keys == 0 on classic single-register trials).
  KeyspaceConfig keyspace;
  std::uint64_t user_seed = 0;     ///< seed_lo + k, as reported to humans
  std::uint64_t harness_seed = 0;  ///< derive_seed(user_seed, cell_digest)

  bool expected_atomic = false;  ///< Protocol::guarantees_atomicity(cfg)
  bool tag_atomic = false;       ///< check_tag_witness verdict
  bool graph_atomic = true;      ///< check_unique_value_graph (if enabled)
  bool stream_atomic = true;     ///< live streaming checker (if enabled)
  /// Peak streaming-checker window occupancy across the trial's keys
  /// (0 when streaming is disabled).
  std::size_t stream_peak_window = 0;
  std::string violation;         ///< first checker violation, if any

  /// Raw per-operation latencies (ms, virtual time), kept so the
  /// Aggregator can pool exact percentiles across trials.
  std::vector<double> write_ms;
  std::vector<double> read_ms;

  std::size_t completed_ops = 0;
  std::uint64_t msgs_sent = 0;
  std::size_t sim_events = 0;

  /// Availability under the trial's fault plan (zeros / -1 when fault-free;
  /// see FaultMetrics in core/workload.h).
  int faults_injected = 0;
  std::size_t ops_under_fault = 0;
  double recovery_ms = -1;

  /// Atomic as far as the enabled checkers can tell.
  [[nodiscard]] bool atomic() const {
    return tag_atomic && graph_atomic && stream_atomic;
  }
};

/// Deterministic trial slice for multi-process sweeps: a process with
/// shard {i, N} executes exactly the trials whose expansion-order index
/// satisfies index % N == i. Because a trial's RNG stream is
/// derive_seed(user_seed, cell_digest) — a function of what the cell IS,
/// never of which process runs it — the union of all N shards is
/// bit-identical to the single-process run (see exp/partial.h for the
/// merge half).
struct ShardSpec {
  int index = 0;
  int count = 1;

  [[nodiscard]] bool sharded() const { return count > 1; }
  [[nodiscard]] bool valid() const {
    return count >= 1 && index >= 0 && index < count;
  }
  [[nodiscard]] std::string to_string() const {
    return std::to_string(index) + "/" + std::to_string(count);
  }
};

class Runner {
 public:
  struct Options {
    /// Worker threads; 0 means std::thread::hardware_concurrency()
    /// (at least 1). 1 runs everything inline on the calling thread.
    int threads = 0;
    /// Trial slice this process owns. The default {0, 1} runs everything.
    ShardSpec shard;
  };

  Runner() : Runner(Options{}) {}
  explicit Runner(Options opts);

  /// Run this shard's slice of `spec`'s trials. Throws
  /// std::invalid_argument when spec.validate() fails or the shard spec is
  /// malformed. Results are in expansion order; under a real shard
  /// ({i, N>1}) only the slice's trials are returned (still ordered), each
  /// carrying its global TrialResult::trial_index.
  [[nodiscard]] std::vector<TrialResult> run(const ExperimentSpec& spec) const;

  /// Run a batch of specs as one trial pool (better load balancing than
  /// sequential run() calls when specs are skewed). Sharding slices the
  /// batch-wide expansion order.
  [[nodiscard]] std::vector<TrialResult> run_all(
      const std::vector<ExperimentSpec>& specs) const;

 private:
  Options opts_;
};

/// Identity of a spec batch's full expansion, independent of sharding.
struct ExpansionInfo {
  std::uint64_t total_trials = 0;
  /// Digest over every trial's harness seed plus the workload/engine knobs
  /// that shape results. Two shards may only be merged when their digests
  /// agree: equal digests mean the shards executed slices of the same
  /// expansion, so the merged report is the single-process report.
  std::uint64_t digest = 0;
};

/// Compute the expansion identity of a batch (any shard can: expansion is
/// a pure function of the specs). Throws std::invalid_argument on an
/// invalid spec, like Runner::run_all.
ExpansionInfo expansion_info(const std::vector<ExperimentSpec>& specs);

/// Execute a single trial inline (no threads). The Runner is implemented on
/// top of this; exposed for tests and for callers that need one history.
/// `plan` selects the trial's fault plan (null = fault-free).
TrialResult run_trial(const ExperimentSpec& spec, int spec_index,
                      int cell_index, const std::string& protocol,
                      const ClusterConfig& cfg, std::uint64_t user_seed,
                      const FaultPlan* plan = nullptr,
                      const KeyspaceConfig* keyspace = nullptr);

/// Stable identity of a cell, used as the derive_seed stream: depends only
/// on the protocol name, cluster shape, and fault plan, so re-running one
/// cell alone reproduces its numbers from any batch. The two-argument form
/// is the fault-free cell (identical to its pre-fault-axis value).
std::uint64_t cell_digest(const std::string& protocol,
                          const ClusterConfig& cfg);
std::uint64_t cell_digest(const std::string& protocol,
                          const ClusterConfig& cfg, const FaultPlan& plan);
/// All-axes form. Single-register keyspaces (num_keys <= 1) do not change
/// the digest — a 1-key table-driven cell reuses its classic seeds, which
/// is what makes object-vs-table parity checkable bit for bit.
std::uint64_t cell_digest(const std::string& protocol,
                          const ClusterConfig& cfg, const FaultPlan* plan,
                          const KeyspaceConfig& keyspace);

}  // namespace mwreg::exp
