// Partial-aggregate artifacts: the merge half of the process-sharded
// sweep fleet.
//
// A shard process (Runner with ShardSpec {i, N}) executes the trial slice
// index % N == i of a spec batch's expansion order and serializes its
// TrialResults — per-cell metadata, counters, AND the raw latency sample
// pools (the Aggregator computes exact pooled percentiles, so partials
// must carry samples, not summaries) — into a versioned binary artifact.
// merge_partials() folds any complete set of such artifacts, in any order,
// back into the full expansion-order result vector: every trial returns to
// its TrialResult::trial_index slot, so aggregate() + to_csv()/to_json()
// render reports bit-for-bit identical to the single-process run at any
// shard count.
//
// Why that works: a trial's RNG stream is derive_seed(user_seed,
// cell_digest) — a function of the cell identity alone — so shard
// composition cannot affect any trial's bytes, and slot-indexed merging
// restores the exact expansion order the Aggregator's float accumulation
// depends on (DESIGN.md §11).
//
// The decoder refuses, with a clear error, anything it cannot prove whole:
// wrong magic, version mismatch, truncation, counts that overrun the
// buffer (ByteReader::get_count caps length prefixes by the bytes actually
// remaining — the PR 3 lesson), or trailing garbage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/runner.h"

namespace mwreg::exp {

/// Bumped whenever the encoding below changes shape. Readers refuse any
/// other version outright: a partial is an intermediate artifact consumed
/// by the merge step of the same build, not a compatibility surface.
inline constexpr std::uint32_t kPartialVersion = 1;

/// Artifact identity: which report, which slice, and which expansion.
struct PartialMeta {
  /// Report stem the merged cells will be written under (e.g. "ref_sweep"
  /// for ref_sweep.csv / ref_sweep.json). Merging refuses mixed names.
  std::string name;
  ShardSpec shard;
  /// Full expansion size — every shard of one run agrees on it.
  std::uint64_t total_trials = 0;
  /// expansion_info(specs).digest of the spec batch. Merging refuses
  /// partials whose digests differ: equal digests mean the shards sliced
  /// the same expansion, so their union IS the single-process run.
  std::uint64_t expansion_digest = 0;
};

/// A decoded partial: the shard's trials, each carrying its global
/// TrialResult::trial_index.
struct Partial {
  PartialMeta meta;
  std::vector<TrialResult> results;
};

/// Convenience: the meta a shard should stamp on its artifact.
PartialMeta make_partial_meta(const std::string& name,
                              const std::vector<ExperimentSpec>& specs,
                              const ShardSpec& shard);

/// Serialize one shard's results (as returned by a sharded Runner::run_all)
/// into the versioned binary artifact.
std::vector<std::uint8_t> encode_partial(const PartialMeta& meta,
                                         const std::vector<TrialResult>& results);

/// Decode an artifact. Returns false and fills *error (never throws) on
/// wrong magic, version mismatch, truncation, oversized counts, or
/// trailing bytes; *out is only valid on success.
bool decode_partial(const std::uint8_t* data, std::size_t size, Partial* out,
                    std::string* error);

/// File round-trip helpers. save_partial writes atomically enough for CI
/// (single write) and fails loudly; load_partial reads the whole file and
/// decodes it.
bool save_partial(const std::string& path, const PartialMeta& meta,
                  const std::vector<TrialResult>& results, std::string* error);
bool load_partial(const std::string& path, Partial* out, std::string* error);

/// Fold a complete shard set back into the full expansion-order result
/// vector. Accepts the partials in ANY order (slot-indexed placement
/// restores expansion order) and at any shard count. Returns false with
/// *error on: empty input, meta disagreement (name / total / expansion
/// digest), a trial index out of range or claimed twice, or missing trials
/// (an incomplete shard set must not quietly render a thinner report).
bool merge_partials(const std::vector<Partial>& partials,
                    std::vector<TrialResult>* out, std::string* error);

}  // namespace mwreg::exp
