// Tiny shared flag parser for the sweep drivers (sweep_explorer,
// sweep_merge). Replaces bare std::atoi(argv[i]) — which silently turns
// garbage into 0 — with strict full-token parsing: any unknown flag,
// malformed number, or out-of-range shard is a hard error the caller turns
// into usage + nonzero exit.
#pragma once

#include <string>
#include <vector>

#include "exp/runner.h"

namespace mwreg::exp {

/// Options every sweep driver shares.
struct SweepCli {
  /// --threads N (0 = hardware concurrency; Runner's default).
  int threads = 0;
  /// --shard i/N (default 0/1: run everything in this process).
  ShardSpec shard;
  /// --out DIR for reports / partial artifacts (default ".").
  std::string out_dir = ".";
  /// --help was asked for: print usage and exit 0.
  bool help = false;
  /// Flags the shared parser does not know, in order (e.g. a driver's
  /// --sweep selector or positional file arguments). Drivers either
  /// consume these or reject them.
  std::vector<std::string> extra;
};

/// Strict full-token integer parse; returns false on empty/trailing
/// garbage/overflow instead of atoi's silent 0.
bool parse_int(const std::string& token, int* out);

/// Parse "i/N" into a ShardSpec and require 0 <= i < N.
bool parse_shard(const std::string& token, ShardSpec* out);

/// Parse argv. Returns false and fills *error on the first malformed flag
/// (missing value, bad number, shard out of range). Unrecognized tokens
/// are collected into cli->extra, not errors — the caller decides.
bool parse_sweep_cli(int argc, char** argv, SweepCli* cli, std::string* error);

/// One-line usage for the shared flags, for drivers to print above their
/// own extras.
std::string sweep_cli_usage();

/// Join `dir` and `file` with exactly one '/'.
std::string join_path(const std::string& dir, const std::string& file);

/// The canonical shard-partial filename: <stem>.shard<i>of<N>.partial.
std::string partial_filename(const std::string& stem, const ShardSpec& shard);

}  // namespace mwreg::exp
