// Aggregator: folds per-trial results into per-cell rows and renders
// CSV / JSON reports.
//
// A cell is one (spec, protocol, cluster) point of the sweep; its row pools
// the raw latency samples of every seed in the cell, so percentiles are
// exact over the pooled distribution (not averages of per-trial
// percentiles). Rows keep the Runner's deterministic expansion order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/workload.h"
#include "exp/runner.h"

namespace mwreg::exp {

/// One aggregated (spec, protocol, cluster, fault plan) row.
struct CellStats {
  std::string spec_name;
  std::string protocol;
  ClusterConfig cfg;
  std::string fault_plan;  ///< plan name; "" = fault-free cell
  /// Keyspace point (num_keys == 0 on classic single-register cells).
  KeyspaceConfig keyspace;

  int trials = 0;
  int atomic_trials = 0;        ///< trials every enabled checker passed
  bool expected_atomic = false; ///< Protocol::guarantees_atomicity(cfg)
  std::string first_violation;  ///< from the first non-atomic trial, if any

  /// Checked-soak columns (ExperimentSpec::check_streaming). With streaming
  /// disabled every trial trivially passes, so stream_atomic_trials ==
  /// trials and the peak window is 0.
  int stream_atomic_trials = 0;       ///< trials the live checker passed
  std::size_t stream_peak_window = 0; ///< max window occupancy over trials

  LatencyStats write;  ///< pooled across all trials in the cell
  LatencyStats read;
  double msgs_per_op = 0;
  double events_per_trial = 0;

  /// Availability under the cell's fault plan (all zero / -1 when
  /// fault-free): mean executed fault steps per trial, mean ops completed
  /// inside the disruption window, and mean time from heal to the first
  /// completion after it (-1 when no trial healed).
  double faults_injected = 0;
  double ops_under_fault = 0;
  double recovery_ms = -1;

  /// A protocol that guarantees atomicity for this cluster must pass every
  /// trial; one that makes no guarantee cannot be contradicted.
  [[nodiscard]] bool matches_expectation() const {
    return !expected_atomic || atomic_trials == trials;
  }
  [[nodiscard]] bool all_atomic() const { return atomic_trials == trials; }
};

/// Group trial results into cells (expansion order preserved).
std::vector<CellStats> aggregate(const std::vector<TrialResult>& results);

/// Exact latency summary over raw samples. Forwards to
/// mwreg::summarize_latency (core/workload.h) — the single percentile
/// implementation shared by latency_of and the aggregator, so bench output
/// and reports agree on the same samples.
LatencyStats summarize_latency(std::vector<double> samples_ms);

/// Escape a string for embedding in a JSON document (quotes, backslashes,
/// and all control bytes). THE escaper for every JSON artifact in the repo
/// — reports here, BENCH_*.json in bench_util.h — so the rules can't drift.
std::string json_escape(const std::string& s);

/// CSV with a header row; one line per cell.
std::string to_csv(const std::vector<CellStats>& cells);

/// JSON array of cell objects (self-contained, no external deps).
std::string to_json(const std::vector<CellStats>& cells);

/// Write `content` to `path`; returns false (and logs) on I/O failure.
bool write_report(const std::string& path, const std::string& content);

}  // namespace mwreg::exp
