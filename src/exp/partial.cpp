#include "exp/partial.h"

#include <cstring>
#include <fstream>
#include <utility>

#include "common/codec.h"

namespace mwreg::exp {
namespace {

// "MWSP": mwreg sweep partial.
constexpr std::uint8_t kMagic[4] = {'M', 'W', 'S', 'P'};

// Doubles travel as their raw 8-byte little-endian bit pattern: latency
// samples must survive the round trip BIT-exactly (the whole point is a
// byte-identical merged report), and random mantissas make varints a
// pessimization anyway.
void put_f64(ByteWriter& w, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v, "double is 64-bit");
  std::memcpy(&bits, &v, sizeof bits);
  for (int i = 0; i < 8; ++i) {
    w.put_u8(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

double get_f64(ByteReader& r) {
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(r.get_u8()) << (8 * i);
  }
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void put_samples(ByteWriter& w, const std::vector<double>& v) {
  w.put_varint(v.size());
  for (double d : v) put_f64(w, d);
}

std::vector<double> get_samples(ByteReader& r) {
  // get_count caps the prefix by the bytes actually remaining, so a
  // truncated or hostile count can never force an oversized reserve; each
  // 8-byte sample then fails cleanly at end-of-buffer.
  const std::uint64_t n = r.get_count();
  std::vector<double> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) out.push_back(get_f64(r));
  return out;
}

void put_trial(ByteWriter& w, const TrialResult& tr) {
  w.put_varint(tr.trial_index);
  w.put_signed(tr.spec_index);
  w.put_signed(tr.cell_index);
  w.put_string(tr.spec_name);
  w.put_string(tr.protocol);
  w.put_signed(tr.cfg.num_servers);
  w.put_signed(tr.cfg.num_writers);
  w.put_signed(tr.cfg.num_readers);
  w.put_signed(tr.cfg.max_faulty);
  w.put_signed(tr.cfg.server_base);
  w.put_signed(tr.cfg.client_base);
  w.put_signed(tr.cfg.reader_base);
  w.put_string(tr.fault_plan);
  w.put_signed(tr.keyspace.num_keys);
  w.put_signed(tr.keyspace.shards);
  put_f64(w, tr.keyspace.zipf_s);
  w.put_varint(tr.user_seed);
  w.put_varint(tr.harness_seed);
  w.put_bool(tr.expected_atomic);
  w.put_bool(tr.tag_atomic);
  w.put_bool(tr.graph_atomic);
  w.put_bool(tr.stream_atomic);
  w.put_varint(tr.stream_peak_window);
  w.put_string(tr.violation);
  put_samples(w, tr.write_ms);
  put_samples(w, tr.read_ms);
  w.put_varint(tr.completed_ops);
  w.put_varint(tr.msgs_sent);
  w.put_varint(tr.sim_events);
  w.put_signed(tr.faults_injected);
  w.put_varint(tr.ops_under_fault);
  put_f64(w, tr.recovery_ms);
}

TrialResult get_trial(ByteReader& r) {
  TrialResult tr;
  tr.trial_index = r.get_varint();
  tr.spec_index = static_cast<int>(r.get_signed());
  tr.cell_index = static_cast<int>(r.get_signed());
  tr.spec_name = r.get_string();
  tr.protocol = r.get_string();
  tr.cfg.num_servers = static_cast<int>(r.get_signed());
  tr.cfg.num_writers = static_cast<int>(r.get_signed());
  tr.cfg.num_readers = static_cast<int>(r.get_signed());
  tr.cfg.max_faulty = static_cast<int>(r.get_signed());
  tr.cfg.server_base = static_cast<NodeId>(r.get_signed());
  tr.cfg.client_base = static_cast<NodeId>(r.get_signed());
  tr.cfg.reader_base = static_cast<NodeId>(r.get_signed());
  tr.fault_plan = r.get_string();
  tr.keyspace.num_keys = static_cast<int>(r.get_signed());
  tr.keyspace.shards = static_cast<int>(r.get_signed());
  tr.keyspace.zipf_s = get_f64(r);
  tr.user_seed = r.get_varint();
  tr.harness_seed = r.get_varint();
  tr.expected_atomic = r.get_bool();
  tr.tag_atomic = r.get_bool();
  tr.graph_atomic = r.get_bool();
  tr.stream_atomic = r.get_bool();
  tr.stream_peak_window = r.get_varint();
  tr.violation = r.get_string();
  tr.write_ms = get_samples(r);
  tr.read_ms = get_samples(r);
  tr.completed_ops = r.get_varint();
  tr.msgs_sent = r.get_varint();
  tr.sim_events = r.get_varint();
  tr.faults_injected = static_cast<int>(r.get_signed());
  tr.ops_under_fault = r.get_varint();
  tr.recovery_ms = get_f64(r);
  return tr;
}

bool refuse(std::string* error, std::string why) {
  if (error != nullptr) *error = std::move(why);
  return false;
}

}  // namespace

PartialMeta make_partial_meta(const std::string& name,
                              const std::vector<ExperimentSpec>& specs,
                              const ShardSpec& shard) {
  const ExpansionInfo info = expansion_info(specs);
  PartialMeta meta;
  meta.name = name;
  meta.shard = shard;
  meta.total_trials = info.total_trials;
  meta.expansion_digest = info.digest;
  return meta;
}

std::vector<std::uint8_t> encode_partial(
    const PartialMeta& meta, const std::vector<TrialResult>& results) {
  ByteWriter w;
  for (std::uint8_t b : kMagic) w.put_u8(b);
  w.put_varint(kPartialVersion);
  w.put_string(meta.name);
  w.put_signed(meta.shard.index);
  w.put_signed(meta.shard.count);
  w.put_varint(meta.total_trials);
  w.put_varint(meta.expansion_digest);
  w.put_varint(results.size());
  for (const TrialResult& tr : results) put_trial(w, tr);
  return w.take();
}

bool decode_partial(const std::uint8_t* data, std::size_t size, Partial* out,
                    std::string* error) {
  ByteReader r(data, size);
  for (std::uint8_t b : kMagic) {
    if (r.get_u8() != b || !r.ok()) {
      return refuse(error, "not a sweep partial (bad magic)");
    }
  }
  const std::uint64_t version = r.get_varint();
  if (!r.ok()) return refuse(error, "truncated partial header");
  if (version != kPartialVersion) {
    return refuse(error, "partial version mismatch: file has v" +
                             std::to_string(version) + ", this build reads v" +
                             std::to_string(kPartialVersion));
  }
  Partial p;
  p.meta.name = r.get_string();
  p.meta.shard.index = static_cast<int>(r.get_signed());
  p.meta.shard.count = static_cast<int>(r.get_signed());
  p.meta.total_trials = r.get_varint();
  p.meta.expansion_digest = r.get_varint();
  const std::uint64_t count = r.get_count();
  if (!r.ok()) return refuse(error, "truncated partial header");
  if (!p.meta.shard.valid()) {
    return refuse(error, "partial has invalid shard " + p.meta.shard.to_string());
  }
  p.results.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    p.results.push_back(get_trial(r));
    if (!r.ok()) {
      return refuse(error, "truncated partial: trial record " +
                               std::to_string(i) + " of " +
                               std::to_string(count) + " is cut short");
    }
  }
  if (!r.exhausted()) {
    return refuse(error, "partial has " + std::to_string(r.remaining()) +
                             " trailing bytes after the last trial record");
  }
  *out = std::move(p);
  return true;
}

bool save_partial(const std::string& path, const PartialMeta& meta,
                  const std::vector<TrialResult>& results,
                  std::string* error) {
  const std::vector<std::uint8_t> bytes = encode_partial(meta, results);
  std::ofstream f(path, std::ios::binary);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f.good()) return refuse(error, "failed to write partial: " + path);
  return true;
}

bool load_partial(const std::string& path, Partial* out, std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return refuse(error, "failed to open partial: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  if (f.bad()) return refuse(error, "failed to read partial: " + path);
  std::string derr;
  if (!decode_partial(bytes.data(), bytes.size(), out, &derr)) {
    return refuse(error, path + ": " + derr);
  }
  return true;
}

bool merge_partials(const std::vector<Partial>& partials,
                    std::vector<TrialResult>* out, std::string* error) {
  if (partials.empty()) return refuse(error, "no partials to merge");
  const PartialMeta& first = partials.front().meta;
  for (const Partial& p : partials) {
    if (p.meta.name != first.name) {
      return refuse(error, "partials name different reports: '" + first.name +
                               "' vs '" + p.meta.name + "'");
    }
    if (p.meta.total_trials != first.total_trials ||
        p.meta.expansion_digest != first.expansion_digest) {
      return refuse(error,
                    "partials come from different expansions (total/digest "
                    "mismatch) — refusing to merge shards of different runs");
    }
  }
  // Slot-indexed scatter: expansion order is restored no matter the order
  // the partials arrive in (merge is order-independent by construction).
  std::vector<TrialResult> merged(first.total_trials);
  std::vector<bool> seen(first.total_trials, false);
  for (const Partial& p : partials) {
    for (const TrialResult& tr : p.results) {
      if (tr.trial_index >= first.total_trials) {
        return refuse(error, "trial index " + std::to_string(tr.trial_index) +
                                 " out of range (expansion has " +
                                 std::to_string(first.total_trials) +
                                 " trials)");
      }
      if (seen[tr.trial_index]) {
        return refuse(error, "trial index " + std::to_string(tr.trial_index) +
                                 " appears in more than one partial");
      }
      seen[tr.trial_index] = true;
      merged[tr.trial_index] = tr;
    }
  }
  std::uint64_t missing = 0;
  for (bool s : seen) missing += !s;
  if (missing > 0) {
    return refuse(error, std::to_string(missing) + " of " +
                             std::to_string(first.total_trials) +
                             " trials missing — is a shard's partial absent?");
  }
  *out = std::move(merged);
  return true;
}

}  // namespace mwreg::exp
