// ExperimentSpec: a declarative description of a protocol sweep.
//
// A spec is the cross product
//   protocols x clusters x fault_plans x seeds(count, starting at seed_lo)
// run under one delay model and one workload shape. The Runner (runner.h)
// expands it into independent trials and fans them out across a thread
// pool; the Aggregator (aggregator.h) folds per-trial results back into
// per-cell rows. Benches and examples should construct specs instead of
// hand-rolling SimHarness loops: a new experiment is then one spec literal.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cluster.h"
#include "core/keyspace.h"
#include "core/workload.h"
#include "sim/delay_model.h"
#include "sim/fault_plan.h"

namespace mwreg::exp {

/// Builds a fresh DelayModel for one trial. Called once per trial (delay
/// models are stateless but not shareable across concurrent harnesses).
/// A null factory means the SimHarness default (uniform 1..10ms).
using DelayFactory =
    std::function<std::unique_ptr<DelayModel>(const ClusterConfig&)>;

/// Convenience factories for the common models.
DelayFactory constant_delay(Duration delay);
DelayFactory uniform_delay(Duration lo, Duration hi);
DelayFactory lognormal_delay(Duration median, double sigma);

struct ExperimentSpec {
  /// Label carried into reports; not interpreted.
  std::string name;

  /// Protocol names resolved via protocol_by_name(). Unknown names are a
  /// spec validation error (Runner::run asserts via validate()).
  std::vector<std::string> protocols;

  /// Cluster grid. Cells where cfg.valid() is false are rejected by
  /// validate(); cells where the protocol is not expected to be atomic are
  /// still run (that is often the point — see Table 1).
  std::vector<ClusterConfig> clusters;

  /// Fault scenario axis: every plan is crossed with every
  /// (protocol, cluster) pair. Empty means one fault-free run per pair.
  /// Plans must have distinct non-empty names (they key reports and RNG
  /// streams); see scenarios::all() for the canned library.
  std::vector<FaultPlan> fault_plans;

  /// Seed range: trials use user seeds seed_lo, seed_lo+1, ...,
  /// seed_lo+seeds-1. The harness seed for a trial is
  /// derive_seed(user_seed, cell_digest(protocol, cluster, plan)) so
  /// distinct cells never share RNG streams even at equal user seeds, yet a
  /// cell's results do not depend on its position in the spec or batch.
  std::uint64_t seed_lo = 1;
  int seeds = 1;

  /// One delay model shape for every trial (null = harness default).
  DelayFactory delay;

  /// Closed-loop workload driven against every trial harness.
  WorkloadOptions workload;

  /// Keyspace axis: every entry is crossed with every
  /// (protocol, cluster, plan) triple. Empty means one classic
  /// single-register run per triple. Multi-key entries (num_keys > 1)
  /// require table-client protocols and are incompatible with fault_plans;
  /// they run the keyed Zipfian workload (run_keyspace_workload) and check
  /// every per-key history.
  std::vector<KeyspaceConfig> keyspaces;

  /// Drive trials through the ClientTable instead of per-object clients.
  /// Wire-identical on single-register cells — deliberately NOT part of
  /// cell_digest, so flipping it reproduces the same harness seeds (and,
  /// for supporting protocols, bit-identical results).
  bool table_clients = false;

  /// FIFO per-link delivery (SimHarness::Options::fifo).
  bool fifo = false;

  /// Batched delivery (SimHarness::Options::coalesce / tick). Observably
  /// identical to the per-message engine — like table_clients, these are
  /// deliberately NOT part of cell_digest, so flipping them reproduces the
  /// same harness seeds and bit-identical results. Batched is the default
  /// since the destination-major PR; per-message is the registered
  /// ablation.
  bool coalesce = true;
  Duration tick = 1;
  /// Destination-major drain + reply staging (also NOT part of
  /// cell_digest; frame-order is the second ablation axis — golden tests
  /// pin digests identical on-vs-off).
  bool dest_major = true;

  /// Also run the O(n^2) exact unique-value-graph checker per trial (the
  /// O(n log n) tag-witness checker always runs).
  bool check_graph = false;

  /// Also run the streaming tag-witness checker LIVE during every trial
  /// (SimHarness::Options::streaming_check): atomicity is judged as
  /// operations complete, in window-bounded memory, and the trial reports
  /// the peak window occupancy ("checked soak" columns). Like the engine
  /// knobs above this is deliberately NOT part of cell_digest — a checked
  /// trial reproduces the unchecked trial's seeds and history bit for bit.
  bool check_streaming = false;

  /// One fault-free plan when fault_plans is empty.
  [[nodiscard]] int plans() const {
    return fault_plans.empty() ? 1 : static_cast<int>(fault_plans.size());
  }
  /// One classic single-register point when keyspaces is empty.
  [[nodiscard]] int keyspace_points() const {
    return keyspaces.empty() ? 1 : static_cast<int>(keyspaces.size());
  }
  [[nodiscard]] int cells() const {
    return static_cast<int>(protocols.size() * clusters.size()) * plans() *
           keyspace_points();
  }
  [[nodiscard]] int trials() const { return cells() * seeds; }

  /// Empty string when well-formed, else a human-readable reason
  /// (unknown protocol, invalid cluster, non-positive seed count, ...).
  [[nodiscard]] std::string validate() const;
};

}  // namespace mwreg::exp
