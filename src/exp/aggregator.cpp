#include "exp/aggregator.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

#include "common/log.h"

namespace mwreg::exp {
namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  return out + "\"";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // Any other control byte must be \u-escaped or the JSON is invalid.
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

LatencyStats summarize_latency(std::vector<double> samples_ms) {
  return mwreg::summarize_latency(std::move(samples_ms));
}

std::vector<CellStats> aggregate(const std::vector<TrialResult>& results) {
  std::vector<CellStats> cells;
  // Results arrive in expansion order, so a cell's trials are contiguous
  // and cell_index is nondecreasing — a linear pass groups them.
  int current_cell = -1;
  std::vector<double> write_pool, read_pool;
  std::uint64_t msgs = 0;
  std::size_t ops = 0, events = 0;
  std::int64_t faults = 0;
  std::size_t fault_ops = 0;
  double recovery_sum = 0;
  int recovered_trials = 0;

  auto flush = [&]() {
    if (cells.empty()) return;
    CellStats& cell = cells.back();
    cell.write = summarize_latency(std::move(write_pool));
    cell.read = summarize_latency(std::move(read_pool));
    cell.msgs_per_op =
        ops > 0 ? static_cast<double>(msgs) / static_cast<double>(ops) : 0;
    cell.events_per_trial =
        cell.trials > 0
            ? static_cast<double>(events) / static_cast<double>(cell.trials)
            : 0;
    if (cell.trials > 0) {
      cell.faults_injected =
          static_cast<double>(faults) / static_cast<double>(cell.trials);
      cell.ops_under_fault =
          static_cast<double>(fault_ops) / static_cast<double>(cell.trials);
    }
    cell.recovery_ms =
        recovered_trials > 0 ? recovery_sum / recovered_trials : -1;
    write_pool.clear();
    read_pool.clear();
    msgs = 0;
    ops = 0;
    events = 0;
    faults = 0;
    fault_ops = 0;
    recovery_sum = 0;
    recovered_trials = 0;
  };

  for (const TrialResult& tr : results) {
    if (tr.cell_index != current_cell) {
      flush();
      current_cell = tr.cell_index;
      CellStats cell;
      cell.spec_name = tr.spec_name;
      cell.protocol = tr.protocol;
      cell.cfg = tr.cfg;
      cell.fault_plan = tr.fault_plan;
      cell.keyspace = tr.keyspace;
      cell.expected_atomic = tr.expected_atomic;
      cells.push_back(std::move(cell));
    }
    CellStats& cell = cells.back();
    ++cell.trials;
    if (tr.atomic()) {
      ++cell.atomic_trials;
    } else if (cell.first_violation.empty()) {
      cell.first_violation = tr.violation;
    }
    if (tr.stream_atomic) ++cell.stream_atomic_trials;
    cell.stream_peak_window =
        std::max(cell.stream_peak_window, tr.stream_peak_window);
    write_pool.insert(write_pool.end(), tr.write_ms.begin(), tr.write_ms.end());
    read_pool.insert(read_pool.end(), tr.read_ms.begin(), tr.read_ms.end());
    msgs += tr.msgs_sent;
    ops += tr.completed_ops;
    events += tr.sim_events;
    faults += tr.faults_injected;
    fault_ops += tr.ops_under_fault;
    if (tr.recovery_ms >= 0) {
      recovery_sum += tr.recovery_ms;
      ++recovered_trials;
    }
  }
  flush();
  return cells;
}

std::string to_csv(const std::vector<CellStats>& cells) {
  std::string out =
      "spec,protocol,S,W,R,t,keys,shards,zipf,fault_plan,trials,atomic_trials,"
      "stream_atomic_trials,stream_peak_window,expected_atomic,"
      "write_count,write_mean_ms,write_p50_ms,write_p99_ms,write_max_ms,"
      "read_count,read_mean_ms,read_p50_ms,read_p99_ms,read_max_ms,"
      "msgs_per_op,events_per_trial,"
      "faults_injected,ops_under_fault,recovery_ms,first_violation\n";
  for (const CellStats& c : cells) {
    out += csv_escape(c.spec_name) + "," + csv_escape(c.protocol) + "," +
           std::to_string(c.cfg.s()) + "," + std::to_string(c.cfg.w()) + "," +
           std::to_string(c.cfg.r()) + "," + std::to_string(c.cfg.t()) + "," +
           std::to_string(c.keyspace.num_keys) + "," +
           std::to_string(c.keyspace.shards) + "," + fmt(c.keyspace.zipf_s) +
           "," + csv_escape(c.fault_plan) + "," +
           std::to_string(c.trials) + "," + std::to_string(c.atomic_trials) +
           "," + std::to_string(c.stream_atomic_trials) + "," +
           std::to_string(c.stream_peak_window) + "," +
           (c.expected_atomic ? "1" : "0") + "," +
           std::to_string(c.write.count) + "," + fmt(c.write.mean_ms) + "," +
           fmt(c.write.p50_ms) + "," + fmt(c.write.p99_ms) + "," +
           fmt(c.write.max_ms) + "," + std::to_string(c.read.count) + "," +
           fmt(c.read.mean_ms) + "," + fmt(c.read.p50_ms) + "," +
           fmt(c.read.p99_ms) + "," + fmt(c.read.max_ms) + "," +
           fmt(c.msgs_per_op) + "," + fmt(c.events_per_trial) + "," +
           fmt(c.faults_injected) + "," + fmt(c.ops_under_fault) + "," +
           fmt(c.recovery_ms) + "," +
           csv_escape(c.first_violation) + "\n";
  }
  return out;
}

std::string to_json(const std::vector<CellStats>& cells) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellStats& c = cells[i];
    auto lat = [](const LatencyStats& s) {
      return std::string("{\"count\":") + std::to_string(s.count) +
             ",\"mean_ms\":" + fmt(s.mean_ms) + ",\"p50_ms\":" +
             fmt(s.p50_ms) + ",\"p99_ms\":" + fmt(s.p99_ms) + ",\"max_ms\":" +
             fmt(s.max_ms) + "}";
    };
    out += "  {\"spec\":\"" + json_escape(c.spec_name) + "\",\"protocol\":\"" +
           json_escape(c.protocol) + "\",\"cluster\":{\"S\":" +
           std::to_string(c.cfg.s()) + ",\"W\":" + std::to_string(c.cfg.w()) +
           ",\"R\":" + std::to_string(c.cfg.r()) + ",\"t\":" +
           std::to_string(c.cfg.t()) + "},\"keyspace\":{\"keys\":" +
           std::to_string(c.keyspace.num_keys) + ",\"shards\":" +
           std::to_string(c.keyspace.shards) + ",\"zipf\":" +
           fmt(c.keyspace.zipf_s) + "},\"fault_plan\":\"" +
           json_escape(c.fault_plan) + "\",\"trials\":" +
           std::to_string(c.trials) + ",\"atomic_trials\":" +
           std::to_string(c.atomic_trials) + ",\"stream_atomic_trials\":" +
           std::to_string(c.stream_atomic_trials) +
           ",\"stream_peak_window\":" +
           std::to_string(c.stream_peak_window) + ",\"expected_atomic\":" +
           (c.expected_atomic ? "true" : "false") + ",\"write\":" +
           lat(c.write) + ",\"read\":" + lat(c.read) + ",\"msgs_per_op\":" +
           fmt(c.msgs_per_op) + ",\"events_per_trial\":" +
           fmt(c.events_per_trial) + ",\"faults_injected\":" +
           fmt(c.faults_injected) + ",\"ops_under_fault\":" +
           fmt(c.ops_under_fault) + ",\"recovery_ms\":" + fmt(c.recovery_ms) +
           ",\"first_violation\":\"" +
           json_escape(c.first_violation) + "\"}";
    out += (i + 1 < cells.size()) ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

bool write_report(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary);
  f << content;
  if (!f.good()) {
    MWREG_ERROR << "failed to write report: " << path;
    return false;
  }
  return true;
}

}  // namespace mwreg::exp
