#include "exp/runner.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>

#include "consistency/checkers.h"
#include "core/harness.h"
#include "protocols/protocols.h"

namespace mwreg::exp {

// ---- spec.h pieces that need protocol/delay definitions ----

DelayFactory constant_delay(Duration delay) {
  return [delay](const ClusterConfig&) {
    return std::make_unique<ConstantDelay>(delay);
  };
}

DelayFactory uniform_delay(Duration lo, Duration hi) {
  return [lo, hi](const ClusterConfig&) {
    return std::make_unique<UniformDelay>(lo, hi);
  };
}

DelayFactory lognormal_delay(Duration median, double sigma) {
  return [median, sigma](const ClusterConfig&) {
    return std::make_unique<LogNormalDelay>(median, sigma);
  };
}

std::string ExperimentSpec::validate() const {
  if (protocols.empty()) return "spec has no protocols";
  if (clusters.empty()) return "spec has no clusters";
  if (seeds <= 0) return "spec needs seeds >= 1";
  for (const std::string& p : protocols) {
    if (protocol_by_name(p) == nullptr) return "unknown protocol: " + p;
  }
  for (const ClusterConfig& c : clusters) {
    if (!c.valid()) return "invalid cluster: " + c.to_string();
  }
  std::set<std::string> plan_names;
  for (const FaultPlan& plan : fault_plans) {
    if (plan.name.empty()) return "fault plan needs a name";
    const std::string err = plan.validate();
    if (!err.empty()) return err;
    if (!plan_names.insert(plan.name).second) {
      return "duplicate fault plan name: " + plan.name;
    }
  }
  bool any_multi = false;
  for (const KeyspaceConfig& ks : keyspaces) {
    if (!ks.valid()) return "invalid keyspace: " + ks.to_string();
    any_multi = any_multi || ks.multi();
  }
  if (any_multi && !fault_plans.empty()) {
    return "fault plans cannot cross multi-key keyspaces";
  }
  if (table_clients || any_multi) {
    for (const std::string& p : protocols) {
      if (!protocol_by_name(p)->supports_table_clients()) {
        return "protocol has no table client programs: " + p;
      }
    }
  }
  for (const KeyspaceConfig& ks : keyspaces) {
    if (!ks.multi()) continue;
    for (const std::string& p : protocols) {
      const TableReaderProgram rp = protocol_by_name(p)->table_reader();
      const bool affine = rp == TableReaderProgram::kFrFull ||
                          rp == TableReaderProgram::kFrDelta;
      if (!affine) continue;
      for (const ClusterConfig& c : clusters) {
        if (ks.num_keys > c.r()) {
          return "reader-affine protocol " + p + " needs num_keys <= R (" +
                 ks.to_string() + " vs " + c.to_string() + ")";
        }
      }
    }
  }
  return "";
}

// ---- trial execution ----

std::uint64_t cell_digest(const std::string& protocol,
                          const ClusterConfig& cfg) {
  // FNV-1a over the protocol name and cluster shape: a cell's RNG stream
  // depends only on what the cell IS, never on where it sits in a batch.
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](std::uint64_t v) { h = (h ^ v) * 1099511628211ULL; };
  for (char c : protocol) mix(static_cast<unsigned char>(c));
  mix(static_cast<std::uint64_t>(cfg.s()));
  mix(static_cast<std::uint64_t>(cfg.w()));
  mix(static_cast<std::uint64_t>(cfg.r()));
  mix(static_cast<std::uint64_t>(cfg.t()));
  return h;
}

std::uint64_t cell_digest(const std::string& protocol,
                          const ClusterConfig& cfg, const FaultPlan& plan) {
  std::uint64_t h = cell_digest(protocol, cfg);
  // The fault-free cell keeps its historical digest so pre-fault-axis
  // sweeps reproduce bit-identically.
  if (plan.empty()) return h;
  return (h ^ plan.digest()) * 1099511628211ULL;
}

std::uint64_t cell_digest(const std::string& protocol,
                          const ClusterConfig& cfg, const FaultPlan* plan,
                          const KeyspaceConfig& keyspace) {
  std::uint64_t h = plan != nullptr ? cell_digest(protocol, cfg, *plan)
                                    : cell_digest(protocol, cfg);
  // Single-register keyspaces (and the table-clients flag, which is not
  // mixed at all) keep the historical digest: same seeds, comparable runs.
  if (!keyspace.multi()) return h;
  auto mix = [&h](std::uint64_t v) { h = (h ^ v) * 1099511628211ULL; };
  mix(static_cast<std::uint64_t>(keyspace.num_keys));
  mix(static_cast<std::uint64_t>(keyspace.shards));
  std::uint64_t zbits = 0;
  static_assert(sizeof zbits == sizeof keyspace.zipf_s, "double is 64-bit");
  std::memcpy(&zbits, &keyspace.zipf_s, sizeof zbits);
  mix(zbits);
  return h;
}

TrialResult run_trial(const ExperimentSpec& spec, int spec_index,
                      int cell_index, const std::string& protocol,
                      const ClusterConfig& cfg, std::uint64_t user_seed,
                      const FaultPlan* plan, const KeyspaceConfig* keyspace) {
  const Protocol* proto = protocol_by_name(protocol);
  if (proto == nullptr) {
    throw std::invalid_argument("unknown protocol: " + protocol);
  }
  TrialResult tr;
  tr.spec_index = spec_index;
  tr.cell_index = cell_index;
  tr.spec_name = spec.name;
  tr.protocol = protocol;
  tr.cfg = cfg;
  if (plan != nullptr) tr.fault_plan = plan->name;
  if (keyspace != nullptr) tr.keyspace = *keyspace;
  tr.user_seed = user_seed;
  tr.harness_seed =
      derive_seed(user_seed, cell_digest(protocol, cfg, plan, tr.keyspace));
  tr.expected_atomic = proto->guarantees_atomicity(cfg);

  SimHarness::Options o;
  o.cfg = cfg;
  o.seed = tr.harness_seed;
  o.fifo = spec.fifo;
  o.keyspace = tr.keyspace;
  o.table_clients = spec.table_clients || tr.keyspace.multi();
  o.coalesce = spec.coalesce;
  o.tick = spec.tick;
  o.dest_major = spec.dest_major;
  o.streaming_check = spec.check_streaming;
  if (spec.delay) o.delay = spec.delay(cfg);
  SimHarness h(*proto, std::move(o));
  if (plan != nullptr) h.install_fault_plan(*plan);
  if (tr.keyspace.multi()) {
    run_keyspace_workload(h, spec.workload);
  } else {
    run_random_workload(h, spec.workload);
  }

  // The trial is atomic iff every per-key history is (one history on the
  // classic layout). Latencies pool across keys.
  tr.tag_atomic = true;
  for (int k = 0; k < h.num_keys(); ++k) {
    const History& hist = h.key_history(k);
    const CheckResult tag = check_tag_witness(hist);
    if (!tag.atomic) {
      tr.tag_atomic = false;
      if (tr.violation.empty()) tr.violation = tag.violation;
    }
    if (spec.check_graph) {
      const CheckResult graph = check_unique_value_graph(hist);
      if (!graph.atomic) {
        tr.graph_atomic = false;
        if (tr.violation.empty()) tr.violation = graph.violation;
      }
    }
    if (spec.check_streaming) {
      StreamingTagWitness* sc = h.stream_checker(k);
      const CheckResult stream = sc->finish();
      if (!stream.atomic) {
        tr.stream_atomic = false;
        if (tr.violation.empty()) tr.violation = stream.violation;
      }
      tr.stream_peak_window =
          std::max(tr.stream_peak_window, sc->stats().peak_window);
    }
    const std::vector<double> w = latency_samples_ms(hist, OpKind::kWrite);
    const std::vector<double> r = latency_samples_ms(hist, OpKind::kRead);
    tr.write_ms.insert(tr.write_ms.end(), w.begin(), w.end());
    tr.read_ms.insert(tr.read_ms.end(), r.begin(), r.end());
    tr.completed_ops += hist.completed_count();
  }
  tr.msgs_sent = h.net().stats().sent;
  // Report the engine-independent (logical) event count: under coalescing a
  // batch event carries many frames, so substitute one event per enqueued
  // frame for each batch firing — exactly what the per-message engine would
  // have executed. Keeps trial digests comparable across engines.
  const CoalesceStats& cs = h.net().coalesce_stats();
  tr.sim_events =
      h.sim().executed() - cs.batches - cs.continuations + cs.enqueued;
  if (h.fault_log() != nullptr) {
    const FaultMetrics fm = compute_fault_metrics(h.history(), *h.fault_log());
    tr.faults_injected = fm.faults_injected;
    tr.ops_under_fault = fm.ops_under_fault;
    tr.recovery_ms = fm.recovery_ms;
  }
  return tr;
}

// ---- thread-pool fan-out ----

namespace {

/// A trial slot in the deterministic expansion order.
struct PendingTrial {
  const ExperimentSpec* spec;
  int spec_index;
  int cell_index;
  const std::string* protocol;
  const ClusterConfig* cfg;
  const FaultPlan* plan;          ///< null = fault-free
  const KeyspaceConfig* keyspace; ///< null = classic single register
  std::uint64_t user_seed;
};

std::vector<PendingTrial> expand(const std::vector<ExperimentSpec>& specs) {
  std::vector<PendingTrial> out;
  int cell = 0;
  for (std::size_t si = 0; si < specs.size(); ++si) {
    const ExperimentSpec& spec = specs[si];
    for (const std::string& p : spec.protocols) {
      for (const ClusterConfig& c : spec.clusters) {
        for (int ki = 0; ki < spec.keyspace_points(); ++ki) {
          const KeyspaceConfig* ks =
              spec.keyspaces.empty()
                  ? nullptr
                  : &spec.keyspaces[static_cast<std::size_t>(ki)];
          for (int pi = 0; pi < spec.plans(); ++pi) {
            const FaultPlan* plan =
                spec.fault_plans.empty()
                    ? nullptr
                    : &spec.fault_plans[static_cast<std::size_t>(pi)];
            for (int k = 0; k < spec.seeds; ++k) {
              out.push_back(
                  PendingTrial{&spec, static_cast<int>(si), cell, &p, &c, plan,
                               ks, spec.seed_lo + static_cast<unsigned>(k)});
            }
            ++cell;
          }
        }
      }
    }
  }
  return out;
}

}  // namespace

Runner::Runner(Options opts) : opts_(opts) {
  if (opts_.threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    opts_.threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
}

std::vector<TrialResult> Runner::run(const ExperimentSpec& spec) const {
  return run_all({spec});
}

ExpansionInfo expansion_info(const std::vector<ExperimentSpec>& specs) {
  for (const ExperimentSpec& spec : specs) {
    const std::string err = spec.validate();
    if (!err.empty()) {
      throw std::invalid_argument("ExperimentSpec '" + spec.name + "': " + err);
    }
  }
  const std::vector<PendingTrial> pending = expand(specs);
  ExpansionInfo info;
  info.total_trials = pending.size();
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](std::uint64_t v) { h = (h ^ v) * 1099511628211ULL; };
  auto mix_str = [&mix](const std::string& s) {
    mix(s.size());
    for (char c : s) mix(static_cast<unsigned char>(c));
  };
  for (const ExperimentSpec& spec : specs) {
    // Everything besides the cell identity that shapes a trial's numbers:
    // the workload shape and the result-identical engine knobs (the latter
    // so a per-message shard is never merged into a coalesced run even
    // though both would render the same report when complete).
    mix_str(spec.name);
    mix(static_cast<std::uint64_t>(spec.workload.ops_per_writer));
    mix(static_cast<std::uint64_t>(spec.workload.ops_per_reader));
    mix(static_cast<std::uint64_t>(spec.workload.think_lo));
    mix(static_cast<std::uint64_t>(spec.workload.think_hi));
    mix(static_cast<std::uint64_t>(spec.workload.crash_servers));
    mix(static_cast<std::uint64_t>(spec.workload.crash_after_ops));
    mix(static_cast<std::uint64_t>(spec.table_clients));
    mix(static_cast<std::uint64_t>(spec.fifo));
    mix(static_cast<std::uint64_t>(spec.coalesce));
    mix(static_cast<std::uint64_t>(spec.tick));
    mix(static_cast<std::uint64_t>(spec.dest_major));
    mix(static_cast<std::uint64_t>(spec.check_graph));
    mix(static_cast<std::uint64_t>(spec.check_streaming));
  }
  for (const PendingTrial& t : pending) {
    // derive_seed(user_seed, cell_digest) already folds in the protocol,
    // cluster, fault plan, and keyspace — the full cell identity.
    KeyspaceConfig ks;
    if (t.keyspace != nullptr) ks = *t.keyspace;
    mix(derive_seed(t.user_seed,
                    cell_digest(*t.protocol, *t.cfg, t.plan, ks)));
  }
  info.digest = h;
  return info;
}

std::vector<TrialResult> Runner::run_all(
    const std::vector<ExperimentSpec>& specs) const {
  for (const ExperimentSpec& spec : specs) {
    const std::string err = spec.validate();
    if (!err.empty()) {
      throw std::invalid_argument("ExperimentSpec '" + spec.name + "': " + err);
    }
  }
  if (!opts_.shard.valid()) {
    throw std::invalid_argument("invalid shard spec " + opts_.shard.to_string());
  }
  const std::vector<PendingTrial> expanded = expand(specs);
  // A process's slice of the expansion order: global index i belongs to
  // shard i % count. Trial results depend only on the cell and user seed
  // (derive_seed sub-seeding), never on slice composition, so the N slices
  // partition the single-process result set exactly.
  std::vector<std::uint64_t> indices;
  indices.reserve(opts_.shard.sharded()
                      ? expanded.size() / opts_.shard.count + 1
                      : expanded.size());
  for (std::size_t i = 0; i < expanded.size(); ++i) {
    if (static_cast<int>(i % opts_.shard.count) == opts_.shard.index) {
      indices.push_back(i);
    }
  }
  std::vector<PendingTrial> pending;
  pending.reserve(indices.size());
  for (std::uint64_t i : indices) pending.push_back(expanded[i]);
  std::vector<TrialResult> results(pending.size());

  // Work stealing off a shared counter: each worker claims the next
  // unclaimed trial and writes into its fixed slot, so the result vector's
  // order (and therefore every aggregate) is independent of scheduling.
  // A throwing trial (e.g. a DelayFactory that fails) stops the pool and
  // rethrows on the calling thread, same as the serial path.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&]() {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= pending.size()) return;
      const PendingTrial& t = pending[i];
      try {
        results[i] = run_trial(*t.spec, t.spec_index, t.cell_index,
                               *t.protocol, *t.cfg, t.user_seed, t.plan,
                               t.keyspace);
        results[i].trial_index = indices[i];
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const int threads =
      std::min<std::size_t>(static_cast<std::size_t>(opts_.threads),
                            pending.size() > 0 ? pending.size() : 1);
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace mwreg::exp
