#include "exp/cli.h"

#include <cerrno>
#include <climits>
#include <cstdlib>

namespace mwreg::exp {

bool parse_int(const std::string& token, int* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  if (v < INT_MIN || v > INT_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

bool parse_shard(const std::string& token, ShardSpec* out) {
  const std::size_t slash = token.find('/');
  if (slash == std::string::npos) return false;
  ShardSpec s;
  if (!parse_int(token.substr(0, slash), &s.index)) return false;
  if (!parse_int(token.substr(slash + 1), &s.count)) return false;
  if (!s.valid()) return false;
  *out = s;
  return true;
}

bool parse_sweep_cli(int argc, char** argv, SweepCli* cli,
                     std::string* error) {
  auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag, std::string* v) {
      if (i + 1 >= argc) return false;
      *v = argv[++i];
      (void)flag;
      return true;
    };
    if (arg == "--help" || arg == "-h") {
      cli->help = true;
    } else if (arg == "--threads") {
      std::string v;
      if (!value("--threads", &v) || !parse_int(v, &cli->threads) ||
          cli->threads < 0) {
        return fail("--threads needs a non-negative integer, got '" + v + "'");
      }
    } else if (arg == "--shard") {
      std::string v;
      if (!value("--shard", &v) || !parse_shard(v, &cli->shard)) {
        return fail("--shard needs i/N with 0 <= i < N, got '" + v + "'");
      }
    } else if (arg == "--out") {
      if (!value("--out", &cli->out_dir) || cli->out_dir.empty()) {
        return fail("--out needs a directory");
      }
    } else {
      cli->extra.push_back(arg);
    }
  }
  return true;
}

std::string sweep_cli_usage() {
  return "[--threads N] [--shard i/N] [--out DIR]";
}

std::string join_path(const std::string& dir, const std::string& file) {
  if (dir.empty() || dir == ".") return file;
  if (dir.back() == '/') return dir + file;
  return dir + "/" + file;
}

std::string partial_filename(const std::string& stem, const ShardSpec& shard) {
  return stem + ".shard" + std::to_string(shard.index) + "of" +
         std::to_string(shard.count) + ".partial";
}

}  // namespace mwreg::exp
