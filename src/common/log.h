// Minimal leveled logging. Off by default so tests and benchmarks stay quiet;
// examples turn it on to narrate executions.
#pragma once

#include <sstream>
#include <string>

namespace mwreg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold. Messages below this level are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line at `level` (thread-safe; the simulator is single-threaded
/// but examples may log from helper threads).
void log_line(LogLevel level, const std::string& msg);

namespace detail {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, os_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace mwreg

#define MWREG_LOG(level)                                 \
  if (static_cast<int>(level) < static_cast<int>(::mwreg::log_level())) { \
  } else                                                 \
    ::mwreg::detail::LogMessage(level)

#define MWREG_DEBUG MWREG_LOG(::mwreg::LogLevel::kDebug)
#define MWREG_INFO MWREG_LOG(::mwreg::LogLevel::kInfo)
#define MWREG_WARN MWREG_LOG(::mwreg::LogLevel::kWarn)
#define MWREG_ERROR MWREG_LOG(::mwreg::LogLevel::kError)
