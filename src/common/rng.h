// Deterministic, seedable random number generation.
//
// Every randomized component (delay models, workloads, property tests) takes
// an explicit Rng so that a run is reproducible from its seed alone.
#pragma once

#include <cstdint>
#include <vector>

namespace mwreg {

/// SplitMix64: used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna. Fast, high-quality, tiny state.
/// Satisfies the UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial.
  bool next_bool(double p_true = 0.5);

  /// Derive an independent child stream (for per-component determinism that
  /// does not depend on the draw order of sibling components).
  Rng fork();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[next_below(i)]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// Deterministically derive an independent sub-seed from a base seed and a
/// stream index. Used wherever many harnesses must be seeded from one user
/// seed (experiment trials, sharded workloads) so that trial k's randomness
/// depends only on (base, k) — never on scheduling or sibling trials.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

}  // namespace mwreg
