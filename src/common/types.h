// Basic identifier and time types shared by every module.
#pragma once

#include <cstdint>
#include <limits>

namespace mwreg {

/// Identifier of a process (server or client). Globally unique within a
/// cluster; the mapping between roles and id ranges is owned by
/// ClusterConfig (cluster.h).
using NodeId = std::int32_t;

/// Sentinel for "no node" (also used as the bottom writer id in Tag).
inline constexpr NodeId kNoNode = -1;

/// Virtual time of the discrete-event simulator, in nanoseconds.
using Time = std::int64_t;

/// A duration in simulated nanoseconds.
using Duration = std::int64_t;

inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

/// Convenience literals for simulated durations.
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

}  // namespace mwreg
