// Basic identifier and time types shared by every module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace mwreg {

/// Identifier of a process (server or client). Globally unique within a
/// cluster; the mapping between roles and id ranges is owned by
/// ClusterConfig (cluster.h).
using NodeId = std::int32_t;

/// Sentinel for "no node" (also used as the bottom writer id in Tag).
inline constexpr NodeId kNoNode = -1;

/// Virtual time of the discrete-event simulator, in nanoseconds.
using Time = std::int64_t;

/// A duration in simulated nanoseconds.
using Duration = std::int64_t;

inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

/// Convenience literals for simulated durations.
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

/// Non-owning view of a byte sequence (C++17 stand-in for
/// std::span<const uint8_t>). The delivery pipeline hands payloads to
/// handlers as spans over batch slabs, and the decode helpers accept spans,
/// so a payload is never copied between the wire and the decoder. The
/// implicit constructor from std::vector keeps every owning-buffer call
/// site working unchanged. The viewed bytes must outlive the span.
struct ByteSpan {
  const std::uint8_t* ptr = nullptr;
  std::size_t len = 0;

  ByteSpan() = default;
  ByteSpan(const std::uint8_t* p, std::size_t n) : ptr(p), len(n) {}
  // NOLINTNEXTLINE(google-explicit-constructor): deliberate implicit view.
  ByteSpan(const std::vector<std::uint8_t>& v) : ptr(v.data()), len(v.size()) {}

  [[nodiscard]] const std::uint8_t* data() const { return ptr; }
  [[nodiscard]] std::size_t size() const { return len; }
  [[nodiscard]] bool empty() const { return len == 0; }
  [[nodiscard]] const std::uint8_t* begin() const { return ptr; }
  [[nodiscard]] const std::uint8_t* end() const { return ptr + len; }
};

}  // namespace mwreg
