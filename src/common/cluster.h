// Cluster layout: how many servers / writers / readers, the failure budget t,
// and the id ranges assigned to each role (Fig. 1 of the paper).
//
// By default ids are laid out as: servers [0, S), writers [S, S+W), readers
// [S+W, S+W+R). Keyspace deployments (core/keyspace.h) place many replica
// groups and one shared client population inside a single simulation, so a
// group's roles may be re-based anywhere in the id space via server_base /
// client_base / reader_base; the defaults reproduce the historical layout
// exactly, and nothing digest-relevant depends on the bases (exp::cell_digest
// mixes only S, W, R, t).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace mwreg {

struct ClusterConfig {
  int num_servers = 3;  ///< S
  int num_writers = 2;  ///< W
  int num_readers = 2;  ///< R
  int max_faulty = 1;   ///< t — servers that may crash

  /// Id-range re-basing for multi-group (keyspace) deployments. kNoNode
  /// means "immediately after the previous role", i.e. the default layout.
  NodeId server_base = 0;
  NodeId client_base = kNoNode;  ///< first writer id
  NodeId reader_base = kNoNode;  ///< first reader id

  [[nodiscard]] int s() const { return num_servers; }
  [[nodiscard]] int w() const { return num_writers; }
  [[nodiscard]] int r() const { return num_readers; }
  [[nodiscard]] int t() const { return max_faulty; }

  /// Quorum size every round-trip waits for: S - t (the paper's model).
  [[nodiscard]] int quorum() const { return num_servers - max_faulty; }

  [[nodiscard]] NodeId first_client() const {
    return client_base == kNoNode ? server_base + num_servers : client_base;
  }
  [[nodiscard]] NodeId first_reader() const {
    return reader_base == kNoNode ? first_client() + num_writers : reader_base;
  }

  [[nodiscard]] NodeId server_id(int i) const { return server_base + i; }
  [[nodiscard]] NodeId writer_id(int i) const { return first_client() + i; }
  [[nodiscard]] NodeId reader_id(int i) const { return first_reader() + i; }

  [[nodiscard]] int total_nodes() const {
    return num_servers + num_writers + num_readers;
  }

  /// One past the largest id any role occupies: the size every dense
  /// NodeId-indexed table needs. Equal to total_nodes() in the default
  /// layout.
  [[nodiscard]] NodeId id_end() const {
    const NodeId s_end = server_base + num_servers;
    const NodeId w_end = first_client() + num_writers;
    const NodeId r_end = first_reader() + num_readers;
    return s_end > w_end ? (s_end > r_end ? s_end : r_end)
                         : (w_end > r_end ? w_end : r_end);
  }

  [[nodiscard]] bool is_server(NodeId id) const {
    return id >= server_base && id < server_base + num_servers;
  }
  [[nodiscard]] bool is_writer(NodeId id) const {
    return id >= first_client() && id < first_client() + num_writers;
  }
  [[nodiscard]] bool is_reader(NodeId id) const {
    return id >= first_reader() && id < first_reader() + num_readers;
  }

  [[nodiscard]] std::vector<NodeId> server_ids() const;
  [[nodiscard]] std::vector<NodeId> writer_ids() const;
  [[nodiscard]] std::vector<NodeId> reader_ids() const;
  [[nodiscard]] std::vector<NodeId> client_ids() const;

  /// Feasibility of W2R2 (LS97 / MW-ABD): majorities must intersect.
  [[nodiscard]] bool supports_w2r2() const {
    return 2 * max_faulty < num_servers;
  }

  /// The paper's necessary & sufficient condition for fast reads (Section 5):
  /// R < S/t - 2, i.e. (R + 2) * t < S.
  [[nodiscard]] bool supports_fast_read() const {
    return max_faulty >= 1 && (num_readers + 2) * max_faulty < num_servers;
  }

  /// Well-formedness for the multi-writer setting the paper studies.
  [[nodiscard]] bool valid() const {
    return num_servers >= 2 && num_writers >= 1 && num_readers >= 1 &&
           max_faulty >= 0 && max_faulty < num_servers;
  }

  [[nodiscard]] std::string to_string() const;
};

}  // namespace mwreg
