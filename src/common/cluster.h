// Cluster layout: how many servers / writers / readers, the failure budget t,
// and the id ranges assigned to each role (Fig. 1 of the paper).
//
// Ids are laid out as: servers [0, S), writers [S, S+W), readers [S+W, S+W+R).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace mwreg {

struct ClusterConfig {
  int num_servers = 3;  ///< S
  int num_writers = 2;  ///< W
  int num_readers = 2;  ///< R
  int max_faulty = 1;   ///< t — servers that may crash

  [[nodiscard]] int s() const { return num_servers; }
  [[nodiscard]] int w() const { return num_writers; }
  [[nodiscard]] int r() const { return num_readers; }
  [[nodiscard]] int t() const { return max_faulty; }

  /// Quorum size every round-trip waits for: S - t (the paper's model).
  [[nodiscard]] int quorum() const { return num_servers - max_faulty; }

  [[nodiscard]] NodeId server_id(int i) const { return i; }
  [[nodiscard]] NodeId writer_id(int i) const { return num_servers + i; }
  [[nodiscard]] NodeId reader_id(int i) const {
    return num_servers + num_writers + i;
  }

  [[nodiscard]] int total_nodes() const {
    return num_servers + num_writers + num_readers;
  }

  [[nodiscard]] bool is_server(NodeId id) const {
    return id >= 0 && id < num_servers;
  }
  [[nodiscard]] bool is_writer(NodeId id) const {
    return id >= num_servers && id < num_servers + num_writers;
  }
  [[nodiscard]] bool is_reader(NodeId id) const {
    return id >= num_servers + num_writers && id < total_nodes();
  }

  [[nodiscard]] std::vector<NodeId> server_ids() const;
  [[nodiscard]] std::vector<NodeId> writer_ids() const;
  [[nodiscard]] std::vector<NodeId> reader_ids() const;
  [[nodiscard]] std::vector<NodeId> client_ids() const;

  /// Feasibility of W2R2 (LS97 / MW-ABD): majorities must intersect.
  [[nodiscard]] bool supports_w2r2() const {
    return 2 * max_faulty < num_servers;
  }

  /// The paper's necessary & sufficient condition for fast reads (Section 5):
  /// R < S/t - 2, i.e. (R + 2) * t < S.
  [[nodiscard]] bool supports_fast_read() const {
    return max_faulty >= 1 && (num_readers + 2) * max_faulty < num_servers;
  }

  /// Well-formedness for the multi-writer setting the paper studies.
  [[nodiscard]] bool valid() const {
    return num_servers >= 2 && num_writers >= 1 && num_readers >= 1 &&
           max_faulty >= 0 && max_faulty < num_servers;
  }

  [[nodiscard]] std::string to_string() const;
};

}  // namespace mwreg
