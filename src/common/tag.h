// Tag: the (timestamp, writer-id) pair that totally orders written values.
//
// The paper (Section 5.2) orders values lexicographically:
//   (ts1, w1) < (ts2, w2)  iff  ts1 < ts2, or ts1 == ts2 and w1 < w2.
// The initial register value carries the bottom tag (0, kNoNode).
#pragma once

#include <cstdint>
#include <tuple>
#include <functional>
#include <string>

#include "common/types.h"

namespace mwreg {

struct Tag {
  std::int64_t ts = 0;
  NodeId wid = kNoNode;

  friend bool operator==(const Tag& a, const Tag& b) {
    return a.ts == b.ts && a.wid == b.wid;
  }
  friend bool operator!=(const Tag& a, const Tag& b) { return !(a == b); }
  friend bool operator<(const Tag& a, const Tag& b) {
    return std::tie(a.ts, a.wid) < std::tie(b.ts, b.wid);
  }
  friend bool operator>(const Tag& a, const Tag& b) { return b < a; }
  friend bool operator<=(const Tag& a, const Tag& b) { return !(b < a); }
  friend bool operator>=(const Tag& a, const Tag& b) { return !(a < b); }

  [[nodiscard]] bool is_bottom() const { return ts == 0 && wid == kNoNode; }

  [[nodiscard]] std::string to_string() const {
    return "(" + std::to_string(ts) + "," +
           (wid == kNoNode ? std::string("_") : std::to_string(wid)) + ")";
  }
};

/// The tag of the register's initial value.
inline constexpr Tag kBottomTag{};

/// A register value: the totally ordered tag plus an opaque payload.
/// Protocol histories identify values by tag (tags are unique per write),
/// so the checker never needs to inspect the payload.
struct TaggedValue {
  Tag tag;
  std::int64_t payload = 0;

  friend bool operator==(const TaggedValue& a, const TaggedValue& b) {
    return a.tag == b.tag && a.payload == b.payload;
  }
  friend bool operator!=(const TaggedValue& a, const TaggedValue& b) {
    return !(a == b);
  }
  friend bool operator<(const TaggedValue& a, const TaggedValue& b) {
    return std::tie(a.tag, a.payload) < std::tie(b.tag, b.payload);
  }
  friend bool operator>(const TaggedValue& a, const TaggedValue& b) {
    return b < a;
  }
  friend bool operator<=(const TaggedValue& a, const TaggedValue& b) {
    return !(b < a);
  }
  friend bool operator>=(const TaggedValue& a, const TaggedValue& b) {
    return !(a < b);
  }

  [[nodiscard]] std::string to_string() const {
    return tag.to_string() + "=" + std::to_string(payload);
  }
};

}  // namespace mwreg

template <>
struct std::hash<mwreg::Tag> {
  std::size_t operator()(const mwreg::Tag& t) const noexcept {
    const std::size_t h = std::hash<std::int64_t>{}(t.ts);
    return h ^ (std::hash<std::int64_t>{}(t.wid) + 0x9e3779b97f4a7c15ULL +
                (h << 6) + (h >> 2));
  }
};
