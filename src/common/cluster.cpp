#include "common/cluster.h"

namespace mwreg {
namespace {

std::vector<NodeId> id_range(NodeId lo, int n) {
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ids.push_back(lo + i);
  return ids;
}

}  // namespace

std::vector<NodeId> ClusterConfig::server_ids() const {
  return id_range(server_base, num_servers);
}

std::vector<NodeId> ClusterConfig::writer_ids() const {
  return id_range(first_client(), num_writers);
}

std::vector<NodeId> ClusterConfig::reader_ids() const {
  return id_range(first_reader(), num_readers);
}

std::vector<NodeId> ClusterConfig::client_ids() const {
  std::vector<NodeId> ids = writer_ids();
  const std::vector<NodeId> readers = reader_ids();
  ids.insert(ids.end(), readers.begin(), readers.end());
  return ids;
}

std::string ClusterConfig::to_string() const {
  return "S=" + std::to_string(num_servers) + " W=" +
         std::to_string(num_writers) + " R=" + std::to_string(num_readers) +
         " t=" + std::to_string(max_faulty);
}

}  // namespace mwreg
