// Wire-format serialization for protocol messages.
//
// The simulator delivers opaque byte payloads; every protocol message type
// provides encode/decode via ByteWriter/ByteReader. Integers use LEB128
// varints with zigzag for signed values, so payload sizes track information
// content (relevant to the full-info vs. optimized implementation gap the
// paper discusses in Section 4.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/tag.h"
#include "common/types.h"

namespace mwreg {

class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_varint(std::uint64_t v);
  void put_signed(std::int64_t v);  // zigzag + varint
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_string(const std::string& s);
  void put_tag(const Tag& t);
  void put_value(const TaggedValue& v);

  template <typename T, typename Fn>
  void put_vector(const std::vector<T>& v, Fn&& put_one) {
    put_varint(v.size());
    for (const T& x : v) put_one(*this, x);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reader over an encoded payload. All get_* methods set the error flag on
/// malformed input instead of throwing; callers check ok() once at the end.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t get_u8();
  std::uint64_t get_varint();
  std::int64_t get_signed();
  bool get_bool() { return get_u8() != 0; }
  std::string get_string();
  Tag get_tag();
  TaggedValue get_value();

  template <typename T, typename Fn>
  std::vector<T> get_vector(Fn&& get_one) {
    const std::uint64_t n = get_varint();
    std::vector<T> out;
    if (n > buf_.size() + 1) {  // each element needs >= 0 bytes; cap wildly bad sizes
      fail();
      return out;
    }
    out.reserve(n);
    for (std::uint64_t i = 0; i < n && ok(); ++i) out.push_back(get_one(*this));
    return out;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool exhausted() const { return pos_ == buf_.size(); }

 private:
  void fail() { ok_ = false; }

  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace mwreg
