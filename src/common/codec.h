// Wire-format serialization for protocol messages.
//
// The simulator delivers opaque byte payloads; every protocol message type
// provides encode/decode via ByteWriter/ByteReader. Integers use LEB128
// varints with zigzag for signed values, so payload sizes track information
// content (relevant to the full-info vs. optimized implementation gap the
// paper discusses in Section 4.1).
//
// Hot-path contract: a ByteWriter adopts a caller-supplied buffer (usually
// from a BufferPool) so encoding reuses capacity instead of allocating, and
// a ByteReader is a non-owning (pointer, length) span so decoding never
// copies the payload.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/tag.h"
#include "common/types.h"

namespace mwreg {

class ByteWriter {
 public:
  ByteWriter() = default;
  /// Adopt `buf` as the output buffer: contents are cleared, capacity is
  /// kept. Pass a pooled buffer here to encode without allocating.
  explicit ByteWriter(std::vector<std::uint8_t> buf) : buf_(std::move(buf)) {
    buf_.clear();
  }

  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_varint(std::uint64_t v);
  void put_signed(std::int64_t v);  // zigzag + varint
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_string(const std::string& s);
  void put_tag(const Tag& t);
  void put_value(const TaggedValue& v);

  /// Length-prefixed sequence over a raw (pointer, count) span: the
  /// pool-aware encode paths hand slices of reusable arenas here so no
  /// intermediate std::vector is materialized.
  template <typename T, typename Fn>
  void put_span(const T* data, std::size_t n, Fn&& put_one) {
    put_varint(n);
    for (std::size_t i = 0; i < n; ++i) put_one(*this, data[i]);
  }

  template <typename T, typename Fn>
  void put_vector(const std::vector<T>& v, Fn&& put_one) {
    put_span(v.data(), v.size(), std::forward<Fn>(put_one));
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }

  /// Move the encoded bytes out. The writer is left empty and valid, so one
  /// writer can be reused for many encodes (take, refill, take, ...).
  [[nodiscard]] std::vector<std::uint8_t> take() {
    std::vector<std::uint8_t> out = std::move(buf_);
    buf_.clear();  // moved-from state is unspecified; make it empty again
    return out;
  }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Non-owning reader over an encoded payload. All get_* methods set the
/// error flag on malformed input instead of throwing; callers check ok()
/// once at the end. The underlying bytes must outlive the reader.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}
  explicit ByteReader(ByteSpan bytes) : ByteReader(bytes.data(), bytes.size()) {}

  std::uint8_t get_u8();
  std::uint64_t get_varint();
  std::int64_t get_signed();
  bool get_bool() { return get_u8() != 0; }
  std::string get_string();
  Tag get_tag();
  TaggedValue get_value();

  /// Guarded length prefix. Every element consumes at least one byte, so a
  /// prefix larger than the bytes actually left is malformed; failing here
  /// keeps a truncated or hostile prefix from forcing an oversized reserve.
  /// The streaming decode paths (decode-into-arena, delta-ack apply) read
  /// their counts through this instead of a raw get_varint.
  std::uint64_t get_count() {
    const std::uint64_t n = get_varint();
    if (n > remaining()) {
      fail();
      return 0;
    }
    return n;
  }

  template <typename T, typename Fn>
  std::vector<T> get_vector(Fn&& get_one) {
    const std::uint64_t n = get_count();
    std::vector<T> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n && ok(); ++i) out.push_back(get_one(*this));
    return out;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool exhausted() const { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  void fail() { ok_ = false; }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace mwreg
