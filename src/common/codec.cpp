#include "common/codec.h"

namespace mwreg {

void ByteWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_signed(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  put_varint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::put_string(const std::string& s) {
  put_varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::put_tag(const Tag& t) {
  put_signed(t.ts);
  put_signed(t.wid);
}

void ByteWriter::put_value(const TaggedValue& v) {
  put_tag(v.tag);
  put_signed(v.payload);
}

std::uint8_t ByteReader::get_u8() {
  if (pos_ >= size_) {
    fail();
    return 0;
  }
  return data_[pos_++];
}

std::uint64_t ByteReader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos_ >= size_ || shift > 63) {
      fail();
      return 0;
    }
    const std::uint8_t b = data_[pos_++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::int64_t ByteReader::get_signed() {
  const std::uint64_t u = get_varint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

std::string ByteReader::get_string() {
  const std::uint64_t n = get_varint();
  if (n > remaining()) {
    fail();
    return {};
  }
  if (n == 0) return {};
  std::string s(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<std::size_t>(n));
  pos_ += n;
  return s;
}

Tag ByteReader::get_tag() {
  Tag t;
  t.ts = get_signed();
  t.wid = static_cast<NodeId>(get_signed());
  return t;
}

TaggedValue ByteReader::get_value() {
  TaggedValue v;
  v.tag = get_tag();
  v.payload = get_signed();
  return v;
}

}  // namespace mwreg
