#include "common/rng.h"

#include <cmath>

namespace mwreg {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's nearly-divisionless method would be overkill here; simple
  // rejection keeps the distribution exactly uniform.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

Rng Rng::fork() { return Rng(next()); }

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  // Two SplitMix64 steps keyed by base, with the stream index injected
  // between them; adjacent (base, stream) pairs land far apart.
  SplitMix64 sm(base);
  std::uint64_t z = sm.next() ^ (stream * 0xD1B54A32D192ED03ULL);
  SplitMix64 sm2(z);
  return sm2.next();
}

}  // namespace mwreg
