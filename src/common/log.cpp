#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace mwreg {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kOff};
std::mutex g_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const std::scoped_lock lock(g_mu);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace mwreg
