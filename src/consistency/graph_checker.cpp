#include <map>
#include <sstream>
#include <vector>

#include "consistency/checkers.h"

namespace mwreg {
namespace {

// A cluster groups one write with every read that returned its value
// (Gibbons & Korach style). Cluster 0 is the virtual initial write of the
// bottom value, which really-precedes everything.
struct Cluster {
  TaggedValue value;
  const OpRecord* write = nullptr;            // null only for the bottom cluster
  std::vector<const OpRecord*> reads;
};

struct Span {
  Time first_invoke = kTimeMax;  // earliest invocation among the cluster's ops
  Time first_resp = kTimeMax;    // earliest response among the cluster's ops
};

}  // namespace

CheckResult check_unique_value_graph(const History& h) {
  if (!h.well_formed()) return CheckResult::bad("history is not well-formed");
  if (!h.unique_write_tags()) {
    return CheckResult::bad("graph checker requires unique write tags");
  }

  std::vector<Cluster> clusters;
  clusters.push_back(Cluster{TaggedValue{}, nullptr, {}});
  std::map<Tag, std::size_t> by_tag;
  by_tag[kBottomTag] = 0;
  for (const OpRecord& r : h.ops()) {
    if (r.kind != OpKind::kWrite) continue;
    if (!r.completed() && r.value.tag == kBottomTag) continue;  // tagless pending write
    auto [it, inserted] = by_tag.emplace(r.value.tag, clusters.size());
    if (inserted) {
      clusters.push_back(Cluster{r.value, &r, {}});
    } else {
      clusters[it->second].write = &r;
      clusters[it->second].value = r.value;
    }
  }
  for (const OpRecord& r : h.ops()) {
    if (r.kind != OpKind::kRead || !r.completed()) continue;
    auto it = by_tag.find(r.value.tag);
    if (it == by_tag.end()) {
      return CheckResult::bad("graph: read op#" + std::to_string(r.id) +
                              " returns a tag never written");
    }
    Cluster& c = clusters[it->second];
    if (it->second != 0) {
      if (c.write == nullptr) {
        return CheckResult::bad("graph: internal: cluster without write");
      }
      if (c.write->value.payload != r.value.payload) {
        return CheckResult::bad("graph: read op#" + std::to_string(r.id) +
                                " payload differs from the matching write");
      }
      // Intra-cluster order: the read must not really-precede its write.
      if (r.precedes(*c.write)) {
        return CheckResult::bad("graph: read op#" + std::to_string(r.id) +
                                " finished before its write was invoked");
      }
    } else if (r.value.payload != 0) {
      return CheckResult::bad("graph: read op#" + std::to_string(r.id) +
                              " returns bottom tag with nonzero payload");
    }
    c.reads.push_back(&r);
  }

  const std::size_t n = clusters.size();

  // Forced edge A -> B ("w_A linearizes before w_B") whenever some op of A
  // really-precedes some op of B. Instead of scanning op pairs we compare
  // cluster spans: exists a in A, b in B with a.resp < b.invoke
  //   iff  min-resp(A) < max-invoke(B).
  // We need all pairs, so precompute per-cluster earliest response and
  // latest invocation.
  std::vector<Time> min_resp(n, kTimeMax), max_invoke(n, -1);
  auto fold = [&](std::size_t c, const OpRecord* op) {
    if (op == nullptr) return;
    if (op->invoke > max_invoke[c]) max_invoke[c] = op->invoke;
    if (op->completed() && op->resp < min_resp[c]) min_resp[c] = op->resp;
  };
  for (std::size_t c = 0; c < n; ++c) {
    fold(c, clusters[c].write);
    for (const OpRecord* r : clusters[c].reads) fold(c, r);
  }
  // The bottom cluster's virtual write happened "before time": it precedes
  // everything and nothing precedes it unless a real op precedes one of its
  // reads.
  min_resp[0] = std::min(min_resp[0], static_cast<Time>(-1));
  max_invoke[0] = std::max(max_invoke[0], static_cast<Time>(-1));

  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      if (min_resp[a] < max_invoke[b] || a == 0) adj[a].push_back(b);
    }
  }

  // Cycle detection (iterative DFS, colors).
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(n, kWhite);
  for (std::size_t root = 0; root < n; ++root) {
    if (color[root] != kWhite) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack;  // (node, edge idx)
    stack.emplace_back(root, 0);
    color[root] = kGray;
    while (!stack.empty()) {
      auto& [u, i] = stack.back();
      if (i < adj[u].size()) {
        const std::size_t v = adj[u][i++];
        if (color[v] == kGray) {
          std::ostringstream os;
          os << "graph: precedence cycle through values "
             << clusters[u].value.to_string() << " and "
             << clusters[v].value.to_string();
          return CheckResult::bad(os.str());
        }
        if (color[v] == kWhite) {
          color[v] = kGray;
          stack.emplace_back(v, 0);
        }
      } else {
        color[u] = kBlack;
        stack.pop_back();
      }
    }
  }
  return CheckResult::ok();
}

}  // namespace mwreg
