// Weaker register consistency models, for placing implementations on the
// Fig. 2 consistency axis: safety < regularity < atomicity.
//
// Multi-writer generalizations (unique write tags assumed):
//  - check_safe: a read concurrent with NO write must return the value of
//    the latest write that precedes it (reads overlapping writes are
//    unconstrained).
//  - check_regular: every read must return either the value of a write
//    concurrent with it, or the value of a preceding write that is not
//    followed by another write also preceding the read (no lost updates;
//    new/old inversions between reads remain allowed).
//
// check_tag_witness => check_regular => check_safe on every history; the
// strict gaps are exercised by the naive protocols in the test suite.
#pragma once

#include "consistency/history.h"

namespace mwreg {

CheckResult check_safe(const History& h);
CheckResult check_regular(const History& h);

}  // namespace mwreg
