// AtomicityChecker registry and the streaming-replay shim.
//
// The batch algorithms live in their own translation units
// (tag_witness_checker.cpp, wing_gong_checker.cpp, graph_checker.cpp); this
// file gives each a registered identity so callers enumerate checkers
// instead of hand-calling entry points.
#include "consistency/checkers.h"

#include <algorithm>
#include <vector>

#include "consistency/streaming_checker.h"

namespace mwreg {
namespace {

class TagWitnessChecker final : public AtomicityChecker {
 public:
  [[nodiscard]] std::string_view name() const override { return "tag-witness"; }
  [[nodiscard]] CheckResult check(const History& h) const override {
    return check_tag_witness(h);
  }
};

class WingGongChecker final : public AtomicityChecker {
 public:
  [[nodiscard]] std::string_view name() const override { return "wing-gong"; }
  [[nodiscard]] CheckResult check(const History& h) const override {
    return check_wing_gong(h);
  }
};

class UniqueValueGraphChecker final : public AtomicityChecker {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "unique-value-graph";
  }
  [[nodiscard]] CheckResult check(const History& h) const override {
    return check_unique_value_graph(h);
  }
};

class StreamingTagWitnessChecker final : public AtomicityChecker {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "streaming-tag-witness";
  }
  [[nodiscard]] CheckResult check(const History& h) const override {
    return check_streaming(h);
  }
  [[nodiscard]] std::unique_ptr<StreamingFeed> make_streaming() const override {
    return std::make_unique<StreamingTagWitness>();
  }
};

}  // namespace

const std::vector<const AtomicityChecker*>& all_checkers() {
  static const TagWitnessChecker tag_witness;
  static const WingGongChecker wing_gong;
  static const UniqueValueGraphChecker graph;
  static const StreamingTagWitnessChecker streaming;
  static const std::vector<const AtomicityChecker*> table = {
      &tag_witness, &wing_gong, &graph, &streaming};
  return table;
}

const AtomicityChecker* checker_by_name(std::string_view name) {
  for (const AtomicityChecker* c : all_checkers()) {
    if (c->name() == name) return c;
  }
  return nullptr;
}

CheckResult check_streaming(const History& h) {
  // Replay the recorded history in event-time order (the order a live feed
  // would have produced) through a fresh streaming checker. Equal-time
  // invocations go before responses, exactly like the batch RT sweep; that
  // replay order can interleave clients' resp==invoke ties in a way the
  // incremental per-client check would misread, so well-formedness is
  // verified on the record up front instead.
  if (!h.well_formed()) {
    return CheckResult::bad("history is not well-formed");
  }
  struct Ev {
    Time at;
    bool is_resp;
    const OpRecord* op;
  };
  std::vector<Ev> evs;
  evs.reserve(h.ops().size() * 2);
  for (const OpRecord& r : h.ops()) {
    evs.push_back(Ev{r.invoke, false, &r});
    if (r.completed()) evs.push_back(Ev{r.resp, true, &r});
  }
  std::sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.is_resp != b.is_resp) return !a.is_resp;  // invocations first
    return a.op->id < b.op->id;
  });

  StreamingTagWitness feed;
  feed.trust_well_formed();
  for (const Ev& ev : evs) {
    if (ev.is_resp) {
      feed.on_complete(*ev.op);
    } else {
      feed.on_invoke(*ev.op);
      // A pending write whose value was recorded (set_value) surfaces it
      // right after its invocation, as a live feed would.
      if (!ev.op->completed() && ev.op->kind == OpKind::kWrite &&
          !(ev.op->value.tag == kBottomTag)) {
        feed.on_value(*ev.op);
      }
    }
  }
  return feed.finish();
}

}  // namespace mwreg
