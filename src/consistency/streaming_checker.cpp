#include "consistency/streaming_checker.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace mwreg {
namespace {

std::string describe_op(OpKind kind, OpId id) {
  std::ostringstream os;
  os << (kind == OpKind::kWrite ? "write" : "read") << " op#" << id;
  return os.str();
}

}  // namespace

void StreamingTagWitness::fail(std::string why) {
  if (!verdict_.atomic) return;  // first violation wins; stay sticky
  verdict_ = CheckResult::bad(std::move(why));
  // Free the window; every later event is ignored, so only the verdict and
  // the (frozen) settled frontier remain meaningful.
  window_.clear();
  unresolved_.clear();
}

void StreamingTagWitness::advance_time(Time t) {
  if (!any_time_) {
    any_time_ = true;
    cur_time_ = t;
    return;
  }
  if (t <= cur_time_) return;
  // Responses buffered at cur_time_ become "finished strictly before" only
  // now: same-time invocations must not see them (the batch sweep orders
  // invocations before responses at equal timestamps).
  if (buf_any_) {
    if (!max_finished_any_ || buf_tag_ > max_finished_) max_finished_ = buf_tag_;
    max_finished_any_ = true;
    buf_any_ = false;
  }
  cur_time_ = t;
}

void StreamingTagWitness::note_finished(const Tag& tag) {
  if (!buf_any_ || tag > buf_tag_) buf_tag_ = tag;
  buf_any_ = true;
}

void StreamingTagWitness::on_invoke(const OpRecord& op) {
  if (!verdict_.atomic) return;
  advance_time(op.invoke);
  if (!trust_well_formed_) {
    ClientState& cs = clients_[op.client];
    if (cs.in_flight || (cs.any && op.invoke < cs.last_resp)) {
      fail("history is not well-formed");
      return;
    }
    cs.in_flight = true;
  }
  PendingOp po;
  po.client = op.client;
  po.kind = op.kind;
  po.floor = max_finished_;
  po.floor_any = max_finished_any_;
  pending_.emplace(op.id, po);
  if (po.floor_any) {
    floors_.insert(po.floor);
  } else {
    ++no_floor_pending_;
  }
  if (op.id >= next_id_) next_id_ = op.id + 1;
  ++stats_.ops_seen;
  stats_.peak_pending = std::max(stats_.peak_pending, pending_.size());
}

void StreamingTagWitness::on_value(const OpRecord& op) {
  if (!verdict_.atomic) return;
  if (op.kind != OpKind::kWrite) return;
  if (op.value.tag == kBottomTag) return;
  auto it = pending_.find(op.id);
  if (it == pending_.end()) return;  // already completed; end_op rules
  PendingOp& po = it->second;
  if (po.has_provisional && !(po.provisional == op.value.tag)) {
    // Retagged while pending: the final record (what a batch check sees)
    // carries only the last tag, so drop the old provisional entry — unless
    // a read already resolved against it, which the batch check would flag
    // as reading a value never written.
    auto we = window_.find(po.provisional);
    if (we != window_.end() && we->second.writer_op == op.id) {
      if (we->second.resolved_reads > 0) {
        fail("read-from: a read resolved against " +
             describe_op(OpKind::kWrite, op.id) +
             " whose value was later retagged");
        return;
      }
      window_.erase(we);
    }
  }
  po.provisional = op.value.tag;
  po.has_provisional = true;
  record_write_value(op.id, op.value, /*completed=*/false, po);
}

void StreamingTagWitness::check_write_rt(const Tag& tag, const WriteEntry& e,
                                         OpId id) {
  if (e.floor_any && tag <= e.floor) {
    fail("real-time: " + describe_op(OpKind::kWrite, id) +
         " has tag <= an op that finished before its invocation");
  }
}

void StreamingTagWitness::resolve_waiting_reads(const Tag& tag, WriteEntry& e) {
  auto range = unresolved_.equal_range(tag);
  for (auto it = range.first; it != range.second && verdict_.atomic;) {
    if (it->second.payload != e.payload) {
      fail("read-from: " + describe_op(OpKind::kRead, it->second.reader) +
           " returns a payload differing from the write's");
      return;
    }
    ++e.resolved_reads;
    if (!e.completed && !e.activated) {
      // A completed read returned this pending write's tag, so the write
      // visibly took effect and is subject to the write RT condition at its
      // own invocation floor.
      e.activated = true;
      check_write_rt(tag, e, e.writer_op);
      if (!verdict_.atomic) return;
    }
    it = unresolved_.erase(it);
  }
}

void StreamingTagWitness::record_write_value(OpId id, const TaggedValue& v,
                                             bool completed,
                                             const PendingOp& po) {
  auto [it, inserted] = window_.try_emplace(v.tag);
  WriteEntry& e = it->second;
  if (inserted) {
    e.payload = v.payload;
    e.writer_op = id;
    e.floor = po.floor;
    e.floor_any = po.floor_any;
  } else {
    if (completed && e.completed) {
      fail("completed write tags are not unique");
      return;
    }
    if (id >= e.writer_op) {
      // Batch read-from resolves payloads against the highest write id for
      // a tag; a conflicting overwrite after reads already resolved means
      // those reads returned a payload the final map does not carry.
      if (v.payload != e.payload && e.resolved_reads > 0) {
        fail("read-from: a read resolved against a payload that a duplicate "
             "write of the same tag later replaced");
        return;
      }
      e.payload = v.payload;
      e.writer_op = id;
      if (!completed) {
        e.floor = po.floor;
        e.floor_any = po.floor_any;
      }
    }
  }
  if (completed) {
    e.completed = true;
    e.activated = true;  // RT check below covers it; no activation needed
    WriteEntry probe;    // the responder's own floor, not the entry's
    probe.floor = po.floor;
    probe.floor_any = po.floor_any;
    check_write_rt(v.tag, probe, id);
    if (!verdict_.atomic) return;
  }
  resolve_waiting_reads(v.tag, e);
  stats_.peak_window = std::max(stats_.peak_window, window_.size());
}

void StreamingTagWitness::on_complete(const OpRecord& op) {
  if (!verdict_.atomic) return;
  advance_time(op.resp);
  if (!trust_well_formed_) {
    ClientState& cs = clients_[op.client];
    if (op.resp < op.invoke) {
      fail("history is not well-formed");
      return;
    }
    cs.in_flight = false;
    cs.last_resp = op.resp;
    cs.any = true;
  }
  PendingOp po;
  auto pit = pending_.find(op.id);
  if (pit != pending_.end()) {
    po = pit->second;
    if (po.floor_any) {
      floors_.erase(floors_.find(po.floor));
    } else {
      --no_floor_pending_;
    }
    pending_.erase(pit);
  } else {
    // Directly driven feed without a matching on_invoke; judge against the
    // current floor (harness-driven feeds never take this path).
    po.floor = max_finished_;
    po.floor_any = max_finished_any_;
  }

  if (op.kind == OpKind::kRead) {
    if (po.floor_any && op.value.tag < po.floor) {
      fail("real-time: " + describe_op(OpKind::kRead, op.id) +
           " returns a tag older than an op that finished before its "
           "invocation");
      return;
    }
    if (op.value.tag == kBottomTag) {
      bottom_read_seen_ = true;
    } else {
      auto it = window_.find(op.value.tag);
      if (it != window_.end()) {
        WriteEntry& e = it->second;
        if (e.payload != op.value.payload) {
          fail("read-from: " + describe_op(OpKind::kRead, op.id) +
               " returns a payload differing from the write's");
          return;
        }
        ++e.resolved_reads;
        if (!e.completed && !e.activated) {
          e.activated = true;
          check_write_rt(op.value.tag, e, e.writer_op);
          if (!verdict_.atomic) return;
        }
      } else {
        // No write with this tag yet; either one is in flight (resolved
        // when its value surfaces) or the run ends and finish() flags it.
        unresolved_.emplace(op.value.tag,
                            UnresolvedRead{op.value.payload, op.id});
        stats_.peak_unresolved =
            std::max(stats_.peak_unresolved, unresolved_.size());
      }
    }
  } else {  // write
    if (po.has_provisional && !(po.provisional == op.value.tag)) {
      // The response carries a different tag than the provisional value
      // recorded mid-operation; the final record is all a batch check would
      // see, so the provisional entry must go (or, if a read already
      // resolved against it, that read returned a value never written).
      auto we = window_.find(po.provisional);
      if (we != window_.end() && we->second.writer_op == op.id) {
        if (we->second.resolved_reads > 0) {
          fail("read-from: a read resolved against " +
               describe_op(OpKind::kWrite, op.id) +
               " whose value was later retagged");
          return;
        }
        window_.erase(we);
      }
    }
    if (op.value.tag == kBottomTag) {
      // A completed bottom-tag write is always behind any finished op.
      ++bottom_completed_writes_;
      if (bottom_completed_writes_ > 1) {
        fail("completed write tags are not unique");
        return;
      }
      if (po.floor_any) {
        fail("real-time: " + describe_op(OpKind::kWrite, op.id) +
             " has tag <= an op that finished before its invocation");
        return;
      }
    } else {
      record_write_value(op.id, op.value, /*completed=*/true, po);
      if (!verdict_.atomic) return;
    }
  }

  note_finished(op.value.tag);
  ++stats_.completions;
  try_retire_window();
  note_settled_progress();
}

void StreamingTagWitness::try_retire_window() {
  if (!verdict_.atomic || !max_finished_any_ || no_floor_pending_ > 0) return;
  Tag watermark = max_finished_;
  if (!floors_.empty() && *floors_.begin() < watermark) {
    watermark = *floors_.begin();
  }
  auto end = window_.lower_bound(watermark);
  for (auto it = window_.begin(); it != end;) {
    ++stats_.retired_tags;
    it = window_.erase(it);
  }
}

OpId StreamingTagWitness::settled_frontier() const {
  return pending_.empty() ? next_id_ : pending_.begin()->first;
}

void StreamingTagWitness::note_settled_progress() {
  if (retire_target_ == nullptr || !verdict_.atomic) return;
  const OpId frontier = settled_frontier();
  if (static_cast<std::size_t>(frontier - last_retired_) < retire_stride_) {
    return;
  }
  last_retired_ = frontier;
  retire_target_->retire_prefix(frontier);
}

CheckResult StreamingTagWitness::finish() {
  if (!verdict_.atomic) return verdict_;
  if (!unresolved_.empty()) {
    fail("read-from: " +
         describe_op(OpKind::kRead, unresolved_.begin()->second.reader) +
         " returns a tag never written");
    return verdict_;
  }
  if (bottom_read_seen_) {
    // A completed read returned bottom, so a pending write whose value was
    // never recorded (still bottom) "visibly took effect" under the batch
    // rule and its bottom tag is <= any finished tag.
    for (const auto& [id, po] : pending_) {
      if (po.kind == OpKind::kWrite && !po.has_provisional && po.floor_any) {
        fail("real-time: " + describe_op(OpKind::kWrite, id) +
             " has tag <= an op that finished before its invocation");
        return verdict_;
      }
    }
  }
  return verdict_;
}

}  // namespace mwreg
