#include "consistency/weak_checkers.h"

#include <string>
#include <vector>

namespace mwreg {
namespace {

struct WriteInfo {
  const OpRecord* op;
};

std::vector<const OpRecord*> writes_of(const History& h) {
  std::vector<const OpRecord*> ws;
  for (const OpRecord& r : h.ops()) {
    if (r.kind == OpKind::kWrite) ws.push_back(&r);
  }
  return ws;
}

bool concurrent(const OpRecord& a, const OpRecord& b) {
  return !a.precedes(b) && !b.precedes(a);
}

/// The write a read is allowed to return under regularity: `w` precedes or
/// overlaps `rd`, and no other write is strictly between `w` and `rd`.
bool regular_allows(const OpRecord& rd, const OpRecord* w,
                    const std::vector<const OpRecord*>& writes) {
  if (w == nullptr) {
    // Bottom: allowed unless some write strictly precedes the read.
    for (const OpRecord* other : writes) {
      if (other->precedes(rd)) return false;
    }
    return true;
  }
  if (rd.precedes(*w)) return false;  // reading from the future
  if (concurrent(rd, *w)) return true;
  // w precedes rd: stale only if another write fits strictly in between.
  for (const OpRecord* other : writes) {
    if (other == w) continue;
    if (w->precedes(*other) && other->precedes(rd)) return false;
  }
  return true;
}

const OpRecord* find_write(const History& h, const Tag& tag) {
  for (const OpRecord& r : h.ops()) {
    if (r.kind == OpKind::kWrite && r.value.tag == tag) return &r;
  }
  return nullptr;
}

}  // namespace

CheckResult check_regular(const History& h) {
  if (!h.well_formed()) return CheckResult::bad("history is not well-formed");
  if (!h.unique_write_tags()) {
    return CheckResult::bad("regular checker requires unique write tags");
  }
  const std::vector<const OpRecord*> writes = writes_of(h);
  for (const OpRecord& rd : h.ops()) {
    if (rd.kind != OpKind::kRead || !rd.completed()) continue;
    const OpRecord* w = nullptr;
    if (rd.value.tag != kBottomTag) {
      w = find_write(h, rd.value.tag);
      if (w == nullptr) {
        return CheckResult::bad("regular: read op#" + std::to_string(rd.id) +
                                " returns a tag never written");
      }
      if (w->value.payload != rd.value.payload) {
        return CheckResult::bad("regular: read op#" + std::to_string(rd.id) +
                                " payload mismatch");
      }
    }
    if (!regular_allows(rd, w, writes)) {
      return CheckResult::bad(
          "regular: read op#" + std::to_string(rd.id) + " returns " +
          rd.value.to_string() +
          (w == nullptr ? " (bottom) after a completed write"
                        : " which was overwritten before the read began"));
    }
  }
  return CheckResult::ok();
}

CheckResult check_safe(const History& h) {
  if (!h.well_formed()) return CheckResult::bad("history is not well-formed");
  if (!h.unique_write_tags()) {
    return CheckResult::bad("safe checker requires unique write tags");
  }
  const std::vector<const OpRecord*> writes = writes_of(h);
  for (const OpRecord& rd : h.ops()) {
    if (rd.kind != OpKind::kRead || !rd.completed()) continue;
    bool overlaps_write = false;
    for (const OpRecord* w : writes) {
      if (concurrent(rd, *w)) {
        overlaps_write = true;
        break;
      }
    }
    if (overlaps_write) continue;  // unconstrained under safety
    const OpRecord* w = rd.value.tag == kBottomTag ? nullptr
                                                   : find_write(h, rd.value.tag);
    if (rd.value.tag != kBottomTag && w == nullptr) {
      return CheckResult::bad("safe: read op#" + std::to_string(rd.id) +
                              " returns a tag never written");
    }
    if (!regular_allows(rd, w, writes)) {
      return CheckResult::bad("safe: read op#" + std::to_string(rd.id) +
                              " misses the latest completed write");
    }
  }
  return CheckResult::ok();
}

}  // namespace mwreg
