// Operation histories of a single shared register (Section 2.1).
//
// A history is the sequence of invocation/response events produced by a run.
// We store it as one record per operation with invocation and response
// timestamps; an operation that never responded (client crashed, or the run
// was truncated) has resp == kTimeMax and is treated as concurrent with
// everything after its invocation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/tag.h"
#include "common/types.h"

namespace mwreg {

enum class OpKind : std::uint8_t { kWrite, kRead };

using OpId = std::int32_t;

struct OpRecord {
  OpId id = -1;
  NodeId client = kNoNode;
  OpKind kind = OpKind::kWrite;
  Time invoke = 0;
  Time resp = kTimeMax;  ///< kTimeMax while pending
  /// For a write: the value written (tag fixed by the protocol during the
  /// operation). For a read: the value returned.
  TaggedValue value;

  [[nodiscard]] bool completed() const { return resp != kTimeMax; }
  /// Real-time precedence (the paper's O1 \prec_sigma O2).
  [[nodiscard]] bool precedes(const OpRecord& other) const {
    return completed() && resp < other.invoke;
  }
};

/// Observer interface for `History` recording events. A sink sees each event
/// as the recorder does (in simulation-time order for harness-driven runs),
/// which is what lets a streaming checker run without post-hoc scanning.
/// All hooks default to no-ops so sinks override only what they consume.
class HistorySink {
 public:
  virtual ~HistorySink() = default;
  /// An operation was invoked (begin_op).
  virtual void on_invoke(const OpRecord& op) { (void)op; }
  /// A pending operation's value became known early (set_value).
  virtual void on_value(const OpRecord& op) { (void)op; }
  /// An operation responded (end_op); `op` carries the final record.
  virtual void on_complete(const OpRecord& op) { (void)op; }
  /// Records with id < first_live were retired from the recorder.
  virtual void on_retire(OpId first_live) { (void)first_live; }
};

/// Append-only recorder used by the harness; also the input to all checkers.
///
/// Long checked runs may retire provably-settled prefixes (retire_prefix) so
/// recorder memory tracks the concurrency window rather than the horizon;
/// op ids stay stable (they index the full logical history) and ops() then
/// returns only the live suffix.
class History {
 public:
  /// Record an invocation; the value of a write may be filled in later (the
  /// tag is chosen mid-operation by two-round-trip writers).
  OpId begin_op(NodeId client, OpKind kind, Time invoke);

  /// Record the matching response.
  void end_op(OpId id, Time resp, const TaggedValue& value);

  /// Record the value of an operation that may never respond (e.g. a write
  /// whose tag became known mid-operation before the client crashed). A
  /// pending write with an unrecorded value (bottom tag) is invisible to the
  /// checkers: it cannot be read from.
  void set_value(OpId id, const TaggedValue& value);

  /// Live records (the suffix with id >= retired_count(), in id order).
  [[nodiscard]] const std::vector<OpRecord>& ops() const { return ops_; }
  /// Logical history length, retired prefix included.
  [[nodiscard]] std::size_t size() const { return base_ + ops_.size(); }
  [[nodiscard]] const OpRecord& op(OpId id) const {
    return ops_.at(static_cast<std::size_t>(id) - base_);
  }

  [[nodiscard]] std::size_t completed_count() const;

  /// True when each client's subsequence is sequential (well-formedness,
  /// Section 2.1) and response times follow invocations.
  [[nodiscard]] bool well_formed() const;

  /// True when every completed write's tag is distinct (required by the
  /// scalable checkers; all protocols in this repo guarantee it).
  [[nodiscard]] bool unique_write_tags() const;

  [[nodiscard]] std::string to_string() const;

  /// Subscribe an observer to future recording events. The sink must outlive
  /// its subscription; unsubscribe before destroying it.
  void subscribe(HistorySink* sink);
  void unsubscribe(HistorySink* sink);

  /// Drop every record with id < first_live. The caller asserts the prefix is
  /// settled (e.g. via StreamingTagWitness::settled_frontier()); retiring live
  /// state silently weakens any later batch check. Safe to call from a sink
  /// hook. No-op unless it advances the retirement point.
  void retire_prefix(OpId first_live);

  /// Number of records retired so far (== id of the first live record).
  [[nodiscard]] std::size_t retired_count() const { return base_; }

  void clear() {
    ops_.clear();
    base_ = 0;
  }

 private:
  std::vector<OpRecord> ops_;   ///< live suffix; ops_[i].id == base_ + i
  std::size_t base_ = 0;        ///< count of retired records
  std::vector<HistorySink*> sinks_;
};

/// Result of an atomicity check.
struct CheckResult {
  bool atomic = true;
  /// The checker declined to decide (e.g. wing-gong past its max_ops bound).
  /// A refused result carries atomic == true so "no violation found" logic
  /// keeps working, but it is NOT evidence of atomicity — callers comparing
  /// verdicts must treat refused as "no verdict".
  bool refused = false;
  std::string violation;  ///< human-readable description when !atomic/refused

  [[nodiscard]] bool decided() const { return !refused; }

  static CheckResult ok() { return {true, false, ""}; }
  static CheckResult bad(std::string why) {
    return {false, false, std::move(why)};
  }
  static CheckResult refuse(std::string why) {
    return {true, true, std::move(why)};
  }
};

}  // namespace mwreg
