// Operation histories of a single shared register (Section 2.1).
//
// A history is the sequence of invocation/response events produced by a run.
// We store it as one record per operation with invocation and response
// timestamps; an operation that never responded (client crashed, or the run
// was truncated) has resp == kTimeMax and is treated as concurrent with
// everything after its invocation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/tag.h"
#include "common/types.h"

namespace mwreg {

enum class OpKind : std::uint8_t { kWrite, kRead };

using OpId = std::int32_t;

struct OpRecord {
  OpId id = -1;
  NodeId client = kNoNode;
  OpKind kind = OpKind::kWrite;
  Time invoke = 0;
  Time resp = kTimeMax;  ///< kTimeMax while pending
  /// For a write: the value written (tag fixed by the protocol during the
  /// operation). For a read: the value returned.
  TaggedValue value;

  [[nodiscard]] bool completed() const { return resp != kTimeMax; }
  /// Real-time precedence (the paper's O1 \prec_sigma O2).
  [[nodiscard]] bool precedes(const OpRecord& other) const {
    return completed() && resp < other.invoke;
  }
};

/// Append-only recorder used by the harness; also the input to all checkers.
class History {
 public:
  /// Record an invocation; the value of a write may be filled in later (the
  /// tag is chosen mid-operation by two-round-trip writers).
  OpId begin_op(NodeId client, OpKind kind, Time invoke);

  /// Record the matching response.
  void end_op(OpId id, Time resp, const TaggedValue& value);

  /// Record the value of an operation that may never respond (e.g. a write
  /// whose tag became known mid-operation before the client crashed). A
  /// pending write with an unrecorded value (bottom tag) is invisible to the
  /// checkers: it cannot be read from.
  void set_value(OpId id, const TaggedValue& value) {
    ops_.at(static_cast<std::size_t>(id)).value = value;
  }

  [[nodiscard]] const std::vector<OpRecord>& ops() const { return ops_; }
  [[nodiscard]] std::size_t size() const { return ops_.size(); }
  [[nodiscard]] const OpRecord& op(OpId id) const {
    return ops_.at(static_cast<std::size_t>(id));
  }

  [[nodiscard]] std::size_t completed_count() const;

  /// True when each client's subsequence is sequential (well-formedness,
  /// Section 2.1) and response times follow invocations.
  [[nodiscard]] bool well_formed() const;

  /// True when every completed write's tag is distinct (required by the
  /// scalable checkers; all protocols in this repo guarantee it).
  [[nodiscard]] bool unique_write_tags() const;

  [[nodiscard]] std::string to_string() const;

  void clear() { ops_.clear(); }

 private:
  std::vector<OpRecord> ops_;
};

/// Result of an atomicity check.
struct CheckResult {
  bool atomic = true;
  std::string violation;  ///< human-readable description when !atomic

  static CheckResult ok() { return {true, ""}; }
  static CheckResult bad(std::string why) { return {false, std::move(why)}; }
};

}  // namespace mwreg
