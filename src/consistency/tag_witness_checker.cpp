#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "consistency/checkers.h"

namespace mwreg {
namespace {

std::string describe(const OpRecord& r) {
  std::ostringstream os;
  os << (r.kind == OpKind::kWrite ? "write" : "read") << " op#" << r.id
     << " by client " << r.client << " value " << r.value.to_string();
  return os.str();
}

}  // namespace

CheckResult check_tag_witness(const History& h) {
  if (!h.well_formed()) return CheckResult::bad("history is not well-formed");
  if (!h.unique_write_tags()) {
    return CheckResult::bad("completed write tags are not unique");
  }

  // (RF): reads return bottom or an actual written value, payload included.
  std::map<Tag, std::int64_t> written;  // tag -> payload (pending included)
  for (const OpRecord& r : h.ops()) {
    if (r.kind == OpKind::kWrite) written[r.value.tag] = r.value.payload;
  }
  for (const OpRecord& r : h.ops()) {
    if (r.kind != OpKind::kRead || !r.completed()) continue;
    if (r.value.tag == kBottomTag) continue;
    auto it = written.find(r.value.tag);
    if (it == written.end()) {
      return CheckResult::bad("read-from: " + describe(r) +
                              " returns a tag never written");
    }
    if (it->second != r.value.payload) {
      return CheckResult::bad("read-from: " + describe(r) +
                              " returns a payload differing from the write's");
    }
  }

  // (RT): sweep ops by invocation time, tracking the maximum tag among
  // operations that have already responded. Completed ops only; a pending op
  // precedes nothing.
  struct Ev {
    Time at;
    bool is_resp;  // responses before invocations at equal time? see below
    const OpRecord* op;
  };
  std::vector<Ev> evs;
  evs.reserve(h.size() * 2);
  for (const OpRecord& r : h.ops()) {
    evs.push_back(Ev{r.invoke, false, &r});
    if (r.completed()) evs.push_back(Ev{r.resp, true, &r});
  }
  // O1 precedes O2 iff O1.resp < O2.invoke (strict), so at equal timestamps
  // invocations must be processed BEFORE responses to avoid fabricating a
  // precedence that is really concurrency.
  std::sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.is_resp != b.is_resp) return !a.is_resp;  // invocations first
    return a.op->id < b.op->id;
  });

  // Tags of pending writes that some completed read returned: such a write
  // MUST appear in any linearization (it visibly took effect), so it is
  // subject to the same real-time constraints as a completed write.
  std::set<Tag> read_tags;
  for (const OpRecord& r : h.ops()) {
    if (r.kind == OpKind::kRead && r.completed()) read_tags.insert(r.value.tag);
  }

  Tag max_finished = kBottomTag;
  bool any_finished = false;
  const OpRecord* max_holder = nullptr;
  for (const Ev& ev : evs) {
    const OpRecord& op = *ev.op;
    if (ev.is_resp) {
      if (!any_finished || op.value.tag > max_finished) {
        max_finished = op.value.tag;
        max_holder = &op;
        any_finished = true;
      }
      continue;
    }
    if (!any_finished) continue;
    const Tag t = op.value.tag;
    if (op.kind == OpKind::kWrite) {
      // A write must be strictly above every finished op's tag: an equal or
      // smaller finished write breaks MWA0 / uniqueness, an equal or greater
      // finished read would have read this write before it was invoked.
      // A pending write constrains the order only if it visibly took effect.
      if (!op.completed() && read_tags.find(t) == read_tags.end()) continue;
      if (t <= max_finished) {
        return CheckResult::bad("real-time: " + describe(op) +
                                " has tag <= earlier finished " +
                                describe(*max_holder));
      }
    } else {
      if (!op.completed()) continue;
      if (t < max_finished) {
        return CheckResult::bad("real-time: " + describe(op) +
                                " returns a tag older than earlier finished " +
                                describe(*max_holder));
      }
    }
  }
  return CheckResult::ok();
}

}  // namespace mwreg
