#include <cstdint>
#include <unordered_set>
#include <vector>

#include "consistency/checkers.h"

namespace mwreg {
namespace {

struct SearchOp {
  const OpRecord* rec;
  std::uint32_t bit;
};

class WingGongSearch {
 public:
  explicit WingGongSearch(std::vector<SearchOp> ops) : ops_(std::move(ops)) {
    // Values are interned so the memo key is (placed-mask, value-index).
    values_.push_back(TaggedValue{});  // the initial value
    for (const SearchOp& o : ops_) {
      if (o.rec->kind == OpKind::kWrite) intern(o.rec->value);
    }
    required_ = 0;
    for (const SearchOp& o : ops_) {
      if (o.rec->completed()) required_ |= o.bit;
    }
  }

  bool linearizable() { return dfs(0, 0); }

 private:
  int intern(const TaggedValue& v) {
    for (std::size_t i = 0; i < values_.size(); ++i) {
      if (values_[i] == v) return static_cast<int>(i);
    }
    values_.push_back(v);
    return static_cast<int>(values_.size() - 1);
  }

  int index_of(const TaggedValue& v) const {
    for (std::size_t i = 0; i < values_.size(); ++i) {
      if (values_[i] == v) return static_cast<int>(i);
    }
    return -1;
  }

  bool dfs(std::uint32_t placed, int current) {
    if ((placed & required_) == required_) return true;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(placed) << 8) | static_cast<std::uint32_t>(current);
    if (!visited_.insert(key).second) return false;

    for (const SearchOp& o : ops_) {
      if (placed & o.bit) continue;
      // o may be linearized next only if no unplaced op really-precedes it.
      bool blocked = false;
      for (const SearchOp& p : ops_) {
        if ((placed & p.bit) || p.bit == o.bit) continue;
        if (p.rec->precedes(*o.rec)) {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;

      if (o.rec->kind == OpKind::kWrite) {
        const int v = index_of(o.rec->value);
        if (dfs(placed | o.bit, v)) return true;
      } else {
        const int want = index_of(o.rec->value);
        if (want == current && dfs(placed | o.bit, current)) return true;
      }
    }
    return false;
  }

  std::vector<SearchOp> ops_;
  std::vector<TaggedValue> values_;
  std::uint32_t required_ = 0;
  std::unordered_set<std::uint64_t> visited_;
};

}  // namespace

CheckResult check_wing_gong(const History& h, std::size_t max_ops) {
  if (!h.well_formed()) return CheckResult::bad("history is not well-formed");

  // Pending reads never returned a value; they impose no constraint.
  // Pending writes whose value was never recorded (bottom tag) are equally
  // invisible: no read can name their tag, so they constrain nothing.
  std::vector<SearchOp> ops;
  for (const OpRecord& r : h.ops()) {
    if (!r.completed()) {
      if (r.kind == OpKind::kRead) continue;
      if (r.value.tag == kBottomTag) continue;
    }
    ops.push_back(SearchOp{&r, 0});
  }
  if (ops.size() > max_ops || ops.size() > 24) {
    // Refusing to decide is NOT a violation: callers comparing verdicts
    // must treat this as "no verdict" (CheckResult::refused).
    return CheckResult::refuse(
        "wing-gong: history too large for exhaustive check");
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i].bit = 1u << i;
  }

  // Reads must return bottom or a tag that appears as some write's tag; the
  // search below would simply fail to place such a read, but a crisp message
  // is more useful.
  for (const SearchOp& o : ops) {
    if (o.rec->kind != OpKind::kRead) continue;
    if (o.rec->value.tag == kBottomTag) continue;
    bool found = false;
    for (const SearchOp& w : ops) {
      if (w.rec->kind == OpKind::kWrite && w.rec->value == o.rec->value) {
        found = true;
        break;
      }
    }
    if (!found) {
      return CheckResult::bad("wing-gong: read op#" +
                              std::to_string(o.rec->id) +
                              " returns a value never written");
    }
  }

  WingGongSearch search(std::move(ops));
  if (search.linearizable()) return CheckResult::ok();
  return CheckResult::bad("wing-gong: no valid linearization exists");
}

}  // namespace mwreg
