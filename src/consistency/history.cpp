#include "consistency/history.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace mwreg {

OpId History::begin_op(NodeId client, OpKind kind, Time invoke) {
  OpRecord rec;
  rec.id = static_cast<OpId>(size());
  rec.client = client;
  rec.kind = kind;
  rec.invoke = invoke;
  ops_.push_back(rec);
  for (HistorySink* s : sinks_) s->on_invoke(rec);
  return rec.id;
}

void History::end_op(OpId id, Time resp, const TaggedValue& value) {
  OpRecord& rec = ops_.at(static_cast<std::size_t>(id) - base_);
  rec.resp = resp;
  rec.value = value;
  // Copy before notifying: a sink may reentrantly retire_prefix(), which
  // erases from ops_ and would leave `rec` dangling.
  const OpRecord copy = rec;
  for (HistorySink* s : sinks_) s->on_complete(copy);
}

void History::set_value(OpId id, const TaggedValue& value) {
  OpRecord& rec = ops_.at(static_cast<std::size_t>(id) - base_);
  rec.value = value;
  const OpRecord copy = rec;
  for (HistorySink* s : sinks_) s->on_value(copy);
}

void History::subscribe(HistorySink* sink) { sinks_.push_back(sink); }

void History::unsubscribe(HistorySink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

void History::retire_prefix(OpId first_live) {
  const auto target = static_cast<std::size_t>(first_live);
  if (target <= base_) return;
  const std::size_t drop = std::min(target - base_, ops_.size());
  ops_.erase(ops_.begin(), ops_.begin() + static_cast<std::ptrdiff_t>(drop));
  base_ += drop;
  for (HistorySink* s : sinks_) s->on_retire(static_cast<OpId>(base_));
}

std::size_t History::completed_count() const {
  return static_cast<std::size_t>(std::count_if(
      ops_.begin(), ops_.end(), [](const OpRecord& r) { return r.completed(); }));
}

bool History::well_formed() const {
  std::map<NodeId, Time> last_resp;
  // ops_ is ordered by invocation (begin_op call order).
  for (const OpRecord& r : ops_) {
    if (r.completed() && r.resp < r.invoke) return false;
    auto it = last_resp.find(r.client);
    if (it != last_resp.end() && r.invoke < it->second) return false;
    last_resp[r.client] = r.completed() ? r.resp : kTimeMax;
  }
  return true;
}

bool History::unique_write_tags() const {
  std::set<Tag> seen;
  for (const OpRecord& r : ops_) {
    if (r.kind != OpKind::kWrite || !r.completed()) continue;
    if (!seen.insert(r.value.tag).second) return false;
  }
  return true;
}

std::string History::to_string() const {
  std::ostringstream os;
  for (const OpRecord& r : ops_) {
    os << (r.kind == OpKind::kWrite ? "W" : "R") << " c" << r.client << " ["
       << r.invoke << ",";
    if (r.completed()) {
      os << r.resp;
    } else {
      os << "inf";
    }
    os << "] " << r.value.to_string() << "\n";
  }
  return os.str();
}

}  // namespace mwreg
