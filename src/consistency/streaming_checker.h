// Incremental (streaming) tag-witness atomicity checker.
//
// The batch tag-witness check (tag_witness_checker.cpp) buffers the whole
// history and sweeps it twice; this class consumes the same information as a
// HistorySink, one event at a time, and keeps only the *concurrency window*:
//
//  * per-op state while the op is in flight (its invocation-time tag floor),
//  * a tag-ordered window of writes that could still be read from,
//  * reads that returned a tag whose write has not yet surfaced.
//
// The key observation (DESIGN.md §10, the same watermark argument as the
// PR 4 GC proof) is that a write whose tag is below BOTH the max finished
// tag and every in-flight op's invocation floor can never participate in a
// future violation without that violation also being caught by a real-time
// check on the referencing op alone — so its window entry can be retired.
// Memory is therefore bounded by the number of concurrent operations, not
// by the horizon, and a 10^6-op run checks in O(window) space.
//
// Verdict parity: finish() equals check_tag_witness() on every history the
// repo generates (enforced by streaming_checker_test across fuzzer
// schedules, fault scenarios, and adversary-injected violations). The one
// deliberate conservatism: a pending write whose recorded value is retagged
// after a read already resolved against it is reported as a violation
// directly (the batch checker reaches the same verdict via read-from).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "consistency/checkers.h"
#include "consistency/history.h"

namespace mwreg {

/// Occupancy statistics for the bench / aggregator ("checked soak" columns).
struct StreamingStats {
  std::size_t ops_seen = 0;         ///< invocations observed
  std::size_t completions = 0;      ///< responses observed
  std::size_t peak_window = 0;      ///< max live write-window entries
  std::size_t peak_pending = 0;     ///< max in-flight ops tracked
  std::size_t peak_unresolved = 0;  ///< max reads awaiting their write
  std::size_t retired_tags = 0;     ///< window entries retired by watermark
};

/// Streaming tag-witness checker. Subscribe to a History (or drive the
/// HistorySink hooks directly, in event-time order); read the verdict with
/// result()/finish(). Optionally retires the settled prefix of a target
/// History so recorder memory stays bounded too (checked soak runs).
class StreamingTagWitness final : public StreamingFeed {
 public:
  StreamingTagWitness() = default;

  // HistorySink feed. Events must arrive in nondecreasing event-time order
  // with same-time invocations before responses (exactly the order a
  // simulation-driven History produces).
  void on_invoke(const OpRecord& op) override;
  void on_value(const OpRecord& op) override;
  void on_complete(const OpRecord& op) override;

  /// Verdict over the events seen so far (in-flight ops not yet judged).
  [[nodiscard]] CheckResult result() const override { return verdict_; }

  /// End-of-run verdict: additionally rules on reads whose tag never
  /// surfaced as a write and on pending bottom-tag writes that visibly took
  /// effect. This is the verdict to compare against check_tag_witness.
  CheckResult finish() override;

  [[nodiscard]] const StreamingStats& stats() const { return stats_; }

  /// Every op with id below the frontier is completed and fully judged; a
  /// History prefix up to it may be retired without weakening this checker.
  [[nodiscard]] OpId settled_frontier() const;

  /// Ask the checker to retire the settled prefix of `h` as the frontier
  /// advances (every `stride` settled ops). `h` must be the History this
  /// sink is subscribed to. Retired records are gone for good: batch
  /// re-checks and latency scans of `h` then see only the live suffix.
  void retire_history(History* h, std::size_t stride = 1024) {
    retire_target_ = h;
    retire_stride_ = stride;
  }

  /// Shim-replay support: the caller verified History::well_formed() up
  /// front, so the incremental per-client checks (which would misfire on
  /// the sorted replay's legal resp==invoke ties) are skipped.
  void trust_well_formed() { trust_well_formed_ = true; }

 private:
  struct PendingOp {
    NodeId client = kNoNode;
    OpKind kind = OpKind::kWrite;
    Tag floor;               ///< max finished tag at invocation
    bool floor_any = false;  ///< false: invoked before any completion
    Tag provisional;         ///< write value recorded early (set_value)
    bool has_provisional = false;
  };
  struct WriteEntry {
    std::int64_t payload = 0;
    OpId writer_op = -1;  ///< highest write id recorded for this tag
    Tag floor;            ///< the (pending) writer's invocation floor
    bool floor_any = false;
    bool completed = false;   ///< some write with this tag responded
    bool activated = false;   ///< pending-write RT check already ran
    int resolved_reads = 0;   ///< reads that read-from this entry
  };
  struct ClientState {
    bool in_flight = false;
    Time last_resp = 0;
    bool any = false;
  };
  struct UnresolvedRead {
    std::int64_t payload = 0;
    OpId reader = -1;
  };

  void fail(std::string why);
  void advance_time(Time t);
  /// Fold `tag` of an op responding at the current time into the buffer.
  void note_finished(const Tag& tag);
  /// RT check for a (visibly effective) write against its invocation floor.
  void check_write_rt(const Tag& tag, const WriteEntry& e, OpId id);
  /// Insert/refresh the window entry for a write value; runs payload
  /// conflict + duplicate checks and resolves waiting reads.
  void record_write_value(OpId id, const TaggedValue& v, bool completed,
                          const PendingOp& po);
  void resolve_waiting_reads(const Tag& tag, WriteEntry& e);
  void try_retire_window();
  void note_settled_progress();

  CheckResult verdict_ = CheckResult::ok();
  bool trust_well_formed_ = false;

  Time cur_time_ = 0;
  bool any_time_ = false;
  Tag max_finished_;  ///< folded responses with time < cur_time_
  bool max_finished_any_ = false;
  Tag buf_tag_;  ///< max tag among responses at exactly cur_time_
  bool buf_any_ = false;

  std::map<OpId, PendingOp> pending_;  ///< ordered: begin() is the frontier
  std::multiset<Tag> floors_;          ///< floors of pending ops (floor_any)
  std::size_t no_floor_pending_ = 0;   ///< pending ops with floor_any==false
  std::unordered_map<NodeId, ClientState> clients_;

  std::map<Tag, WriteEntry> window_;
  std::multimap<Tag, UnresolvedRead> unresolved_;

  OpId next_id_ = 0;                 ///< one past the highest id invoked
  bool bottom_read_seen_ = false;    ///< some completed read returned bottom
  std::size_t bottom_completed_writes_ = 0;

  History* retire_target_ = nullptr;
  std::size_t retire_stride_ = 1024;
  OpId last_retired_ = 0;

  StreamingStats stats_;
};

}  // namespace mwreg
