// Atomicity (linearizability of a read/write register) checkers.
//
// Three independent algorithms with different cost/strength trade-offs:
//
//  1. check_tag_witness  — O(n log n). Uses the protocol's tags as the
//     linearization witness (Lynch, "Distributed Algorithms", Lemma 13.16
//     style). Sufficient for atomicity, not necessary: a history can be
//     atomic even though the tags are not a witness. All protocols in this
//     repo are designed so their tags *are* witnesses, so this is the
//     checker used on large protocol-generated histories.
//
//  2. check_wing_gong    — exponential worst case, memoized. Exhaustive
//     search over linearizations (Wing & Gong 1993). Exact. Ground truth
//     for small histories in property tests.
//
//  3. check_unique_value_graph — O(n^2). Exact for histories with unique
//     write tags (which fixes the reads-from relation), in the spirit of
//     Gibbons & Korach's "Testing Shared Memories": per-write clusters,
//     forced precedence edges, cycle detection.
//
// Checkers 2 and 3 agree on every history with unique write tags; checker 1
// implies both. These relations are enforced by property tests.
#pragma once

#include <cstddef>

#include "consistency/history.h"

namespace mwreg {

/// Tag-witness check. Requires unique completed-write tags. Conditions:
///  (RF) every read tag is bottom or the tag of some write, with equal payload;
///  (RT) if O1 precedes O2 in real time then tag(O1) <= tag(O2), strictly if
///       O2 is a write.
CheckResult check_tag_witness(const History& h);

/// Exhaustive linearization search. Pending reads are dropped; pending writes
/// may or may not take effect. Refuses histories larger than `max_ops`
/// (returns a violation explaining why) to keep tests bounded.
CheckResult check_wing_gong(const History& h, std::size_t max_ops = 24);

/// Cluster/constraint-graph check, exact when completed-write tags are unique.
CheckResult check_unique_value_graph(const History& h);

}  // namespace mwreg
