// Atomicity (linearizability of a read/write register) checkers.
//
// Four independent algorithms with different cost/strength trade-offs:
//
//  1. tag-witness          — O(n log n) batch. Uses the protocol's tags as
//     the linearization witness (Lynch, "Distributed Algorithms", Lemma
//     13.16 style). Sufficient for atomicity, not necessary: a history can
//     be atomic even though the tags are not a witness. All protocols in
//     this repo are designed so their tags *are* witnesses, so this is the
//     checker used on large protocol-generated histories.
//
//  2. wing-gong            — exponential worst case, memoized. Exhaustive
//     search over linearizations (Wing & Gong 1993). Exact. Ground truth
//     for small histories in property tests. Refuses (CheckResult::refused)
//     histories larger than its bound.
//
//  3. unique-value-graph   — O(n^2). Exact for histories with unique write
//     tags (which fixes the reads-from relation), in the spirit of Gibbons
//     & Korach's "Testing Shared Memories": per-write clusters, forced
//     precedence edges, cycle detection.
//
//  4. streaming-tag-witness — the incremental form of (1): consumes
//     operations as they complete via a HistorySink feed, retires settled
//     prefixes, memory bounded by the concurrency window (DESIGN.md §10).
//     Verdict-identical to (1) on every history the repo generates.
//
// Checkers 2 and 3 agree on every history with unique write tags; checker 1
// implies both; checker 4 equals checker 1. These relations are enforced by
// property tests.
//
// Tests, sweeps, and the fuzzer enumerate checkers through the
// AtomicityChecker registry (all_checkers / checker_by_name) instead of
// hand-calling entry points; the free functions below remain as thin shims.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "consistency/history.h"

namespace mwreg {

/// Incremental checker feed: subscribe it to a History (or drive the hooks
/// directly), then read the verdict. `result()` is the verdict over events
/// seen so far (pending ops still in flight); `finish()` additionally rules
/// on end-of-run conditions (e.g. reads whose write never completed) and is
/// the verdict to compare against a batch check of the same history.
class StreamingFeed : public HistorySink {
 public:
  [[nodiscard]] virtual CheckResult result() const = 0;
  virtual CheckResult finish() = 0;
};

/// A registered atomicity checker: a stable name for reports/CLIs, a batch
/// entry point, and (when the algorithm supports it) a streaming feed.
class AtomicityChecker {
 public:
  virtual ~AtomicityChecker() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual CheckResult check(const History& h) const = 0;
  /// nullptr when the algorithm is inherently batch (needs the full history).
  [[nodiscard]] virtual std::unique_ptr<StreamingFeed> make_streaming() const {
    return nullptr;
  }
};

/// All registered checkers, in documentation order (tag-witness first).
[[nodiscard]] const std::vector<const AtomicityChecker*>& all_checkers();

/// Lookup by registered name; nullptr when unknown.
[[nodiscard]] const AtomicityChecker* checker_by_name(std::string_view name);

// ---- free-function shims (source compat; forward to the registry) ---------

/// Tag-witness check. Requires unique completed-write tags. Conditions:
///  (RF) every read tag is bottom or the tag of some write, with equal payload;
///  (RT) if O1 precedes O2 in real time then tag(O1) <= tag(O2), strictly if
///       O2 is a write.
CheckResult check_tag_witness(const History& h);

/// Exhaustive linearization search. Pending reads are dropped; pending writes
/// may or may not take effect. Refuses histories larger than `max_ops`
/// (CheckResult::refused — distinct from a violation) to keep tests bounded.
CheckResult check_wing_gong(const History& h, std::size_t max_ops = 24);

/// Cluster/constraint-graph check, exact when completed-write tags are unique.
CheckResult check_unique_value_graph(const History& h);

/// One-shot streaming tag-witness replay over a recorded history (builds a
/// StreamingTagWitness, replays events in time order, returns finish()).
CheckResult check_streaming(const History& h);

}  // namespace mwreg
