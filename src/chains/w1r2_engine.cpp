#include "chains/w1r2_engine.h"

#include <sstream>

#include "consistency/checkers.h"

namespace mwreg::chains {

using fullinfo::DecisionRule;
using fullinfo::filter_other_first_round;
using fullinfo::ReadView;
using fullinfo::to_history;
using fullinfo::view_of;

namespace {

LinkCheck check_views_equal(const std::string& name, const ReadView& a,
                            const ReadView& b) {
  LinkCheck c;
  c.name = name;
  c.ok = a == b;
  if (!c.ok) c.detail = "views differ:\n" + a.to_string() + "--\n" + b.to_string();
  return c;
}

LinkCheck check_well_formed(const Execution& e) {
  LinkCheck c;
  c.name = "well-formed " + e.label;
  c.ok = e.well_formed();
  if (!c.ok) c.detail = e.to_string();
  return c;
}

}  // namespace

std::vector<LinkCheck> verify_w1r2_construction(int S) {
  std::vector<LinkCheck> out;

  // Chain alpha and its tail twin.
  for (int i = 0; i <= S; ++i) out.push_back(check_well_formed(make_alpha(S, i)));
  out.push_back(check_views_equal("R1: alpha_S == alpha_tail",
                                  view_of(make_alpha(S, S), 1),
                                  view_of(make_alpha_tail(S), 1)));

  for (int i1 = 1; i1 <= S; ++i1) {
    const int crit = i1 - 1;
    const std::string pre = "i1=" + std::to_string(i1) + ": ";

    // Phase 2: the modified tails are indistinguishable to R2 (the only
    // server distinguishing beta' from beta'' is s_{i1}, which R2 skips).
    const Execution mt_p = make_beta(S, i1 - 1, S, crit);
    const Execution mt_pp = make_beta(S, i1, S, crit);
    out.push_back(check_views_equal(pre + "R2: modified beta'_S == beta''_S",
                                    view_of(mt_p, 2), view_of(mt_pp, 2)));

    for (const int stem : {i1 - 1, i1}) {
      const std::string sp = pre + "stem=" + std::to_string(stem) + ": ";

      // Bridge (the Section 3.1 assumption, on filtered views): appending a
      // skip-s_{i1} R2 to alpha_stem does not change what R1 can see beyond
      // R2's first round.
      out.push_back(check_views_equal(
          sp + "R1(filtered): beta_0 == alpha_stem",
          filter_other_first_round(view_of(make_beta(S, stem, 0, crit), 1), 1),
          filter_other_first_round(view_of(make_alpha(S, stem), 1), 1)));

      for (int k = 0; k < S; ++k) {
        const Execution beta_k = make_beta(S, stem, k, crit);
        const Execution beta_k1 = make_beta(S, stem, k + 1, crit);
        const LinkBundle links = make_links(S, stem, k, i1);
        const std::string kp = sp + "k=" + std::to_string(k) + ": ";

        out.push_back(check_well_formed(beta_k));
        out.push_back(check_well_formed(links.gamma));
        out.push_back(check_well_formed(links.gamma_p));

        if (k + 1 != i1) {
          out.push_back(check_views_equal(kp + "R1: beta_k == temp_k",
                                          view_of(beta_k, 1),
                                          view_of(*links.temp, 1)));
          out.push_back(check_views_equal(kp + "R2: temp_k == gamma_k",
                                          view_of(*links.temp, 2),
                                          view_of(links.gamma, 2)));
          out.push_back(check_views_equal(kp + "R2: beta_{k+1} == temp'_k",
                                          view_of(beta_k1, 2),
                                          view_of(*links.temp_p, 2)));
          out.push_back(check_views_equal(kp + "R1: temp'_k == gamma'_k",
                                          view_of(*links.temp_p, 1),
                                          view_of(links.gamma_p, 1)));
        } else {
          out.push_back(check_views_equal(kp + "R2: beta_k == gamma_k (k+1=i1)",
                                          view_of(beta_k, 2),
                                          view_of(links.gamma, 2)));
          out.push_back(check_views_equal(
              kp + "R2: beta_{k+1} == gamma'_k (k+1=i1)", view_of(beta_k1, 2),
              view_of(links.gamma_p, 2)));
        }
        // gamma'_k and gamma_k are the same execution (server logs equal) --
        // the payoff of the "seemingly unnecessary" R1b skip (Section 3.4.1).
        LinkCheck same;
        same.name = kp + "gamma_k == gamma'_k (identical server logs)";
        same.ok = links.gamma.servers == links.gamma_p.servers;
        if (!same.ok) {
          same.detail = links.gamma.to_string() + links.gamma_p.to_string();
        }
        out.push_back(std::move(same));
      }
    }
  }
  return out;
}

namespace {

/// Evaluate the rule on an execution and Wing-Gong-check the induced
/// history. Returns true (and fills the certificate) on a violation.
bool check_execution(const DecisionRule& rule, const Execution& e,
                     Certificate& cert) {
  ++cert.executions_checked;
  const int r1 = rule.decide(view_of(e, 1), 1);
  const int r2 = e.has_r2 ? rule.decide(view_of(e, 2), 2) : 0;
  const History h = to_history(e, r1, r2);
  const CheckResult wg = check_wing_gong(h);
  if (wg.atomic) return false;
  cert.found = true;
  cert.execution_label = e.label;
  cert.execution_dump = e.to_string();
  cert.history_dump = h.to_string();
  cert.wg_violation = wg.violation;
  std::ostringstream os;
  os << "VIOLATION at " << e.label << ": rule returns R1=" << r1;
  if (e.has_r2) os << ", R2=" << r2;
  os << " but no linearization exists (" << wg.violation << ")";
  cert.narrative.push_back(os.str());
  return true;
}

}  // namespace

Certificate prove_w1r2_impossible(const DecisionRule& rule, int S) {
  Certificate cert;
  cert.rule_name = rule.name();
  auto note = [&cert](const std::string& s) { cert.narrative.push_back(s); };

  // ---- Phase 1: chain alpha, find the critical server ----
  std::vector<int> vals;
  for (int i = 0; i <= S; ++i) {
    const Execution a = make_alpha(S, i);
    vals.push_back(rule.decide(view_of(a, 1), 1));
  }
  {
    std::ostringstream os;
    os << "Phase 1: R1 over chain alpha returns [";
    for (int v : vals) os << v;
    os << "]";
    note(os.str());
  }
  // Atomicity pins the head: in alpha_0 the operations are sequential
  // W1 < W2 < R1, so R1 must return 2.
  if (check_execution(rule, make_alpha(S, 0), cert)) return cert;
  // ... and the tail twin (same view as alpha_S, sequential W2 < W1 < R1).
  if (check_execution(rule, make_alpha_tail(S), cert)) return cert;

  // The rule survived both ends, so vals[0] == 2 and vals[S] == 1 (the
  // latter because view(alpha_S) == view(alpha_tail)); a 2 -> 1 flip exists.
  int i1 = 0;
  for (int i = 1; i <= S; ++i) {
    if (vals[static_cast<std::size_t>(i) - 1] == 2 &&
        vals[static_cast<std::size_t>(i)] == 1) {
      i1 = i;
      break;
    }
  }
  cert.critical_server = i1;
  note("Phase 1: critical server s_" + std::to_string(i1) +
       " (R1 flips 2 -> 1 between alpha_" + std::to_string(i1 - 1) +
       " and alpha_" + std::to_string(i1) + ")");

  const int crit = i1 - 1;

  // ---- Phase 2: choose beta' or beta'' from the modified tails ----
  const Execution mt_prime = make_beta(S, i1 - 1, S, crit);
  const Execution mt_dprime = make_beta(S, i1, S, crit);
  const int v_tail = rule.decide(view_of(mt_prime, 2), 2);
  note("Phase 2: R2 returns " + std::to_string(v_tail) +
       " in both modified tail executions (indistinguishable to R2)");
  // Choose the candidate chain whose head value differs from the tail value:
  // if R2 returns 1 at the tails, start from alpha_{i1-1} (where R1 = 2).
  const int stem = v_tail == 1 ? i1 - 1 : i1;
  note("Phase 2: chain beta stems from alpha_" + std::to_string(stem) +
       " (chose beta" + std::string(v_tail == 1 ? "'" : "''") + ")");
  if (check_execution(rule, mt_prime, cert)) return cert;
  if (check_execution(rule, mt_dprime, cert)) return cert;

  // ---- Phase 3: walk the zigzag chain Z ----
  note("Phase 3: checking beta_k, temp_k, gamma_k, temp'_k, gamma'_k for k=0.." +
       std::to_string(S - 1));
  for (int k = 0; k <= S; ++k) {
    if (check_execution(rule, make_beta(S, stem, k, crit), cert)) return cert;
  }
  for (int k = 0; k < S; ++k) {
    const LinkBundle links = make_links(S, stem, k, i1);
    if (links.temp && check_execution(rule, *links.temp, cert)) return cert;
    if (check_execution(rule, links.gamma, cert)) return cert;
    if (links.temp_p && check_execution(rule, *links.temp_p, cert)) return cert;
    if (check_execution(rule, links.gamma_p, cert)) return cert;
  }

  // Unreachable for a first-round-invariant rule: the zigzag equalities
  // force v(beta_0) == v(beta_S), the bridge forces v(beta_0) == R1's value
  // at the stem, and the tail choice made those differ. If we get here the
  // construction (or the rule's invariance) is broken.
  note("NO VIOLATION FOUND -- this contradicts Theorem 1; the rule is not a "
       "function of filtered views, or the construction is broken.");
  return cert;
}

}  // namespace mwreg::chains
