// Fig. 9 / Section 5.1: the fast-read impossibility schedule, executed
// against the REAL Algorithm 1 & 2 on the simulator.
//
// Blocks: B1 = servers {0..t-1}, Bm = the last t servers (m = R+2 when
// S = (R+2)t). The adversary:
//   1. lets the writer's query round complete, then confines the write's
//      update round to B1 (the write stays pending -- its tag is known
//      deterministically and recorded via History::set_value);
//   2. runs first reads by readers r_1..r_{R-2}; their REQUESTS reach every
//      server (so B1's updated set for the new value grows), but B1's
//      REPLIES are delayed past each read -- the readers decide from the
//      other S-t servers, see no trace of the new value, return the old one
//      and keep their valQueue clean;
//   3. runs a read by r_{R-1} that hears B1 (missing the last block instead):
//      it sees the new value on t servers whose updated sets now contain
//      {writer, r_1..r_{R-2}, r_{R-1} itself} = R clients... and with the
//      extra degree from its own confirmation, admissible(v, a = R+1) holds
//      exactly when S <= (R+2)t, i.e. R >= S/t - 2: the read returns NEW;
//   4. runs a second read by r_R (fresh, clean valQueue) that again misses
//      B1: it sees nothing and returns OLD.
// NEW followed by OLD is a new/old inversion: the checker rejects the
// history. Below the bound, step 3's admissibility test fails, the read
// returns OLD, and the history stays atomic -- the feasibility frontier of
// Table 1 falls exactly at R = ceil(S/t) - 2.
#pragma once

#include <string>

#include "common/cluster.h"
#include "consistency/history.h"

namespace mwreg::chains {

struct FastReadAdversaryResult {
  ClusterConfig cfg;
  bool bound_violated = false;   ///< R >= S/t - 2 (the impossible region)
  bool violation_found = false;  ///< checker rejected the produced history
  /// The streaming tag witness reached the same verdict as the batch one
  /// (soaked on both sides of the bound by streaming_checker_test).
  bool stream_agrees = false;
  std::string history_dump;
  std::string check_detail;
  /// Values returned by the "flip" read (step 3) and the "stale" read
  /// (step 4); the inversion is flip=new, stale=old.
  std::int64_t flip_read_payload = 0;
  std::int64_t stale_read_payload = 0;
};

/// Run the schedule on fast-read-mw(W2R1) with S servers, failure budget t
/// and R readers (R >= 2). Uses a constant-delay network so round
/// boundaries are exact.
FastReadAdversaryResult run_fastread_adversary(int S, int t, int R,
                                               std::uint64_t seed = 1);

}  // namespace mwreg::chains
