#include "chains/universal.h"

#include <map>
#include <sstream>

#include "chains/w1r1.h"
#include "chains/w1r2_chains.h"
#include "consistency/checkers.h"
#include "fullinfo/execution.h"

namespace mwreg::chains {

using fullinfo::Execution;
using fullinfo::filter_other_first_round;
using fullinfo::ReadView;
using fullinfo::to_history;
using fullinfo::to_history_one_round;
using fullinfo::view_of;

namespace {

/// Union-find over interned view classes, with two value terminals.
class ViewUnion {
 public:
  ViewUnion() {
    pin1_ = intern_key("PIN:value-1");
    pin2_ = intern_key("PIN:value-2");
  }

  int intern(const ReadView& v) { return intern_key(v.to_string()); }

  void join(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) {
      parent_[static_cast<std::size_t>(a)] = b;
      ++edges_;
    }
  }

  int pin(int value) { return value == 1 ? pin1_ : pin2_; }

  [[nodiscard]] bool pins_connected() { return find(pin1_) == find(pin2_); }
  [[nodiscard]] std::size_t classes() const { return parent_.size() - 2; }
  [[nodiscard]] std::size_t edges() const { return edges_; }

 private:
  int intern_key(const std::string& key) {
    auto [it, inserted] = ids_.emplace(key, static_cast<int>(parent_.size()));
    if (inserted) parent_.push_back(static_cast<int>(parent_.size()));
    return it->second;
  }

  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  std::map<std::string, int> ids_;
  std::vector<int> parent_;
  std::size_t edges_ = 0;
  int pin1_ = 0, pin2_ = 0;
};

/// The "reads must agree" test on the execution's history template: both
/// (1,2) and (2,1) assignments must be non-atomic for the edge to be forced.
bool reads_forced_equal(const Execution& e, bool one_round) {
  const History h12 = one_round ? to_history_one_round(e, 1, 2) : to_history(e, 1, 2);
  const History h21 = one_round ? to_history_one_round(e, 2, 1) : to_history(e, 2, 1);
  return !check_wing_gong(h12).atomic && !check_wing_gong(h21).atomic;
}

/// Pin a single-read execution's view to the only value atomicity allows,
/// if there is exactly one. Returns 0 when both values are allowed.
int forced_single_value(const Execution& e, bool one_round) {
  const History h1 = one_round ? to_history_one_round(e, 1, 0) : to_history(e, 1);
  const History h2 = one_round ? to_history_one_round(e, 2, 0) : to_history(e, 2);
  const bool ok1 = check_wing_gong(h1).atomic;
  const bool ok2 = check_wing_gong(h2).atomic;
  if (ok1 && !ok2) return 1;
  if (ok2 && !ok1) return 2;
  return 0;
}

}  // namespace

UniversalResult prove_w1r2_universal(int S) {
  UniversalResult res;
  res.S = S;
  ViewUnion u;
  auto note = [&res](const std::string& s) { res.narrative.push_back(s); };

  auto r1_class = [&](const Execution& e) {
    return u.intern(filter_other_first_round(view_of(e, 1), 1));
  };
  auto r2_class = [&](const Execution& e) {
    return u.intern(filter_other_first_round(view_of(e, 2), 2));
  };
  auto add_within_exec = [&](const Execution& e) {
    ++res.executions;
    if (reads_forced_equal(e, /*one_round=*/false)) {
      u.join(r1_class(e), r2_class(e));
    }
  };

  // Pins from the sequential ends of chain alpha.
  {
    const Execution head = make_alpha(S, 0);
    const Execution tail = make_alpha_tail(S);
    res.executions += 2;
    const int vh = forced_single_value(head, false);
    const int vt = forced_single_value(tail, false);
    u.join(r1_class(head), u.pin(vh));
    u.join(r1_class(tail), u.pin(vt));
    note("pins: alpha_0 -> " + std::to_string(vh) + ", alpha_tail -> " +
         std::to_string(vt));
    // alpha_S shares alpha_tail's view: the intern takes care of it.
    u.join(r1_class(make_alpha(S, S)), r1_class(tail));
  }

  // For every critical-server position and both stems: the bridge, the
  // zigzag, and the modified-tail splice. All view identities are implicit
  // (identical views intern to the same class); only the forced
  // within-execution equalities add edges.
  for (int i1 = 1; i1 <= S; ++i1) {
    const int crit = i1 - 1;
    for (const int stem : {i1 - 1, i1}) {
      // Bridge: R1's filtered view of beta_0 IS alpha_stem's view.
      u.join(r1_class(make_beta(S, stem, 0, crit)),
             r1_class(make_alpha(S, stem)));
      for (int k = 0; k <= S; ++k) {
        add_within_exec(make_beta(S, stem, k, crit));
      }
      for (int k = 0; k < S; ++k) {
        const LinkBundle links = make_links(S, stem, k, i1);
        if (links.temp) add_within_exec(*links.temp);
        add_within_exec(links.gamma);
        if (links.temp_p) add_within_exec(*links.temp_p);
        add_within_exec(links.gamma_p);
      }
    }
    // Splice: R2 cannot distinguish the two modified tails, so the two
    // stems' chains share R2's tail view class (again implicit via intern;
    // assert it with an explicit join for clarity).
    u.join(r2_class(make_beta(S, i1 - 1, S, crit)),
           r2_class(make_beta(S, i1, S, crit)));
  }

  res.view_classes = u.classes();
  res.equality_edges = u.edges();
  res.unsat = u.pins_connected();
  note("view classes: " + std::to_string(res.view_classes) +
       ", forced-equality edges: " + std::to_string(res.equality_edges));
  note(res.unsat ? "UNSAT: pins 1 and 2 connected -- no decision rule exists"
                 : "SAT?! the pins did not connect (construction broken)");
  return res;
}

UniversalResult prove_w1r1_universal(int S) {
  UniversalResult res;
  res.S = S;
  ViewUnion u;
  auto note = [&res](const std::string& s) { res.narrative.push_back(s); };

  // One-round reads: R1 finishes before R2 starts, so R1's view carries no
  // trace of R2 at all, and the eps-pair equality for R2 holds with R1's
  // markers INCLUDED. No filtering -- this quantifies over ALL rules.
  auto r1_class = [&](const Execution& e) { return u.intern(view_of(e, 1)); };
  auto r2_class = [&](const Execution& e) { return u.intern(view_of(e, 2)); };

  // Pins: in delta_0 / delta_tail BOTH reads are forced (sequential).
  {
    const Execution head = make_delta(S, 0);
    const Execution tail = make_delta_tail(S);
    res.executions += 2;
    u.join(r1_class(head), u.pin(2));
    u.join(r2_class(head), u.pin(2));
    u.join(r1_class(tail), u.pin(1));
    u.join(r2_class(tail), u.pin(1));
    u.join(r1_class(make_delta(S, S)), r1_class(tail));
    u.join(r2_class(make_delta(S, S)), r2_class(tail));
    note("pins: delta_0 -> 2, delta_tail -> 1");
  }

  for (int i1 = 1; i1 <= S; ++i1) {
    const int crit = i1 - 1;
    for (const int i : {i1 - 1, i1}) {
      const Execution eps = make_eps(S, i, crit);
      ++res.executions;
      // Bridge: R1's view in eps_i equals delta_i's (exact).
      u.join(r1_class(eps), r1_class(make_delta(S, i)));
      // Within-execution: sequential reads after completed writes agree.
      if (reads_forced_equal(eps, /*one_round=*/true)) {
        u.join(r1_class(eps), r2_class(eps));
      }
    }
    // R2 cannot distinguish the eps pair (implicit by intern; make explicit).
    u.join(r2_class(make_eps(S, i1 - 1, crit)),
           r2_class(make_eps(S, i1, crit)));
  }

  res.view_classes = u.classes();
  res.equality_edges = u.edges();
  res.unsat = u.pins_connected();
  note("view classes: " + std::to_string(res.view_classes) +
       ", forced-equality edges: " + std::to_string(res.equality_edges));
  note(res.unsat ? "UNSAT: no one-round-read decision rule exists"
                 : "SAT?! construction broken");
  return res;
}

}  // namespace mwreg::chains
