#include "chains/fastread_adversary.h"

#include <memory>

#include "consistency/checkers.h"
#include "core/harness.h"
#include "protocols/protocols.h"

namespace mwreg::chains {

FastReadAdversaryResult run_fastread_adversary(int S, int t, int R,
                                               std::uint64_t seed) {
  FastReadAdversaryResult res;
  res.cfg = ClusterConfig{S, 1, R, t};
  res.bound_violated = !res.cfg.supports_fast_read();

  const Protocol* proto = protocol_by_name("fast-read-mw(W2R1)");
  const Duration d = 1 * kMillisecond;
  SimHarness::Options opts;
  opts.cfg = res.cfg;
  opts.seed = seed;
  opts.delay = std::make_unique<ConstantDelay>(d);
  SimHarness h(*proto, std::move(opts));

  const NodeId writer = res.cfg.writer_id(0);
  auto block_replies_from_block = [&](int first, int count, NodeId reader) {
    for (int sv = first; sv < first + count; ++sv) {
      h.net().block_link(sv, reader);
    }
  };

  // Step 1: the write. Its query round completes (requests out at 0,
  // delivered at d, acks at 2d); just after the update requests leave (2d)
  // we cut the writer's links to everything outside B1, confining the new
  // value to B1 = servers {0..t-1}. The write never completes; its tag is
  // deterministic on a fresh register: (maxTS + 1, writer) = (1, writer).
  const OpId wop = h.async_write(0, 42);
  h.sim().schedule_at(2 * d + 1, [&]() {
    for (int sv = t; sv < S; ++sv) h.net().block_link(writer, sv);
  });
  h.run();
  const TaggedValue v{Tag{1, writer}, 42};
  h.history().set_value(wop, v);

  // Step 2: pumping reads by r_1..r_{R-1}. Their requests reach B1 (growing
  // updated[v] there) but B1's replies are delayed past the read, so each
  // reader decides from the other S - t servers, returns the old value and
  // keeps its valQueue clean.
  for (int i = 0; i + 1 < R; ++i) {
    block_replies_from_block(0, t, res.cfg.reader_id(i));
    h.sim().run_until(h.sim().now() + 1);  // strictly separate the operations
    h.async_read(i);
    h.run();
  }

  // Step 3: the flip read by r_R hears B1 (missing the LAST block instead).
  // It sees v on t servers whose updated sets hold {writer, r_1..r_{R-1}}
  // plus itself: R+1 clients. admissible(v, R+1) needs S - (R+1)t <= t,
  // i.e. S <= (R+2)t -- exactly the impossible region.
  block_replies_from_block(S - t, t, res.cfg.reader_id(R - 1));
  h.sim().run_until(h.sim().now() + 1);
  h.async_read(R - 1, [&res](TaggedValue got) { res.flip_read_payload = got.payload; });
  h.run();

  // Step 4: the stale read: r_1 reads again, still cut off from B1. Its
  // valQueue never saw v, so nothing pushes v to the servers it hears.
  h.sim().run_until(h.sim().now() + 1);
  h.async_read(0, [&res](TaggedValue got) { res.stale_read_payload = got.payload; });
  h.run();

  res.history_dump = h.history().to_string();
  const CheckResult tw = check_tag_witness(h.history());
  const CheckResult wg = check_wing_gong(h.history());
  res.violation_found = !tw.atomic;
  res.stream_agrees = check_streaming(h.history()).atomic == tw.atomic;
  res.check_detail = tw.atomic ? wg.violation : tw.violation;
  // Ground truth and witness checker must agree on this small history (a
  // refused wing-gong verdict is "no verdict", not agreement material).
  if (wg.decided() && tw.atomic != wg.atomic) {
    res.check_detail += " [CHECKER DISAGREEMENT: wg=" +
                        std::string(wg.atomic ? "atomic" : "violation") + "]";
    res.violation_found = !wg.atomic;
  }
  return res;
}

}  // namespace mwreg::chains
