// The Theorem 1 engine.
//
// Two artifacts:
//
//  1. verify_w1r2_construction(S): machine-checks every indistinguishability
//     claim the proof makes (Figs. 4-7), for every possible critical server
//     i1 and both possible stems: the relevant reader's views are equal as
//     data structures (exact equality; the only step needing the Section 3.1
//     first-round assumption is the alpha->beta bridge, checked on views
//     filtered of the other reader's first round).
//
//  2. prove_w1r2_impossible(rule, S): for ANY first-round-invariant decision
//     rule, walks the three phases and returns a concrete execution from the
//     construction whose induced history fails the Wing-Gong atomicity
//     check. The chain argument guarantees one exists; the engine finds it
//     and independently verifies it.
#pragma once

#include <string>
#include <vector>

#include "chains/w1r2_chains.h"
#include "fullinfo/rules.h"

namespace mwreg::chains {

struct LinkCheck {
  std::string name;
  bool ok = false;
  std::string detail;
};

/// Verify every structural claim of the Section 3 construction for all
/// i1 in [1, S] and both stems. All entries must come back ok.
std::vector<LinkCheck> verify_w1r2_construction(int S);

struct Certificate {
  bool found = false;            ///< a violating execution was found
  std::string rule_name;
  int critical_server = 0;       ///< i1 (1-based), 0 if violation in chain alpha
  std::string execution_label;   ///< which constructed execution violates
  std::string execution_dump;    ///< server logs of that execution
  std::string history_dump;      ///< the induced operation history
  std::string wg_violation;      ///< the Wing-Gong checker's verdict
  std::vector<std::string> narrative;  ///< phase-by-phase proof replay

  /// Total executions evaluated and checked along the way.
  int executions_checked = 0;
};

Certificate prove_w1r2_impossible(const fullinfo::DecisionRule& rule, int S);

}  // namespace mwreg::chains
