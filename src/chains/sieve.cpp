#include "chains/sieve.h"

#include <sstream>

#include "consistency/checkers.h"

namespace mwreg::chains {

using fullinfo::Ev;
using fullinfo::Execution;
using fullinfo::ReadView;
using fullinfo::RoundView;
using fullinfo::ServerLog;

namespace {

/// R1's view in alpha-hat_i: round a shows PRE-effect orders (R1a precedes
/// R2a), round b shows POST-effect orders. Servers j < i (inside Sigma2) had
/// their writes swapped; servers >= x (Sigma1) flip on R2a.
ReadView alpha_hat_view(int S, int x, int i) {
  ReadView v;
  for (int j = 0; j < S; ++j) {
    const bool swapped_writes = j < i;       // the chain's swap (Sigma2 only)
    const bool affected = j >= x;            // Sigma1 flips on R2a
    const ServerLog pre = swapped_writes ? ServerLog{Ev::kW2, Ev::kW1}
                                         : ServerLog{Ev::kW1, Ev::kW2};
    ServerLog post = pre;
    if (affected) std::swap(post[0], post[1]);  // the blind effect

    ServerLog first = pre;
    first.push_back(Ev::kR1a);
    v.first.replies.emplace_back(j, std::move(first));

    ServerLog second = post;
    second.push_back(Ev::kR1a);
    second.push_back(Ev::kR2a);
    second.push_back(Ev::kR1b);
    v.second.replies.emplace_back(j, std::move(second));
  }
  return v;
}

/// Point (1): R1 decides from Sigma2's replies only.
ReadView restrict_to_sigma2(const ReadView& v, int x) {
  ReadView out;
  for (const auto& [s, log] : v.first.replies) {
    if (s < x) out.first.replies.emplace_back(s, log);
  }
  for (const auto& [s, log] : v.second.replies) {
    if (s < x) out.second.replies.emplace_back(s, log);
  }
  return out;
}

/// The Sigma1 part of the view (for the constancy check).
ReadView restrict_to_sigma1(const ReadView& v, int x) {
  ReadView out;
  for (const auto& [s, log] : v.second.replies) {
    if (s >= x) out.second.replies.emplace_back(s, log);
  }
  return out;
}

History sequential_history(bool w1_first, int r1_return) {
  Execution stub;
  stub.writes = w1_first ? fullinfo::WriteRelation::kW1ThenW2
                         : fullinfo::WriteRelation::kW2ThenW1;
  stub.has_r2 = false;
  return fullinfo::to_history(stub, r1_return);
}

}  // namespace

SieveResult run_sieve(const fullinfo::DecisionRule& rule, int S, int x) {
  SieveResult res;
  res.S = S;
  res.x = x;
  res.enough_servers = x >= 3;
  auto note = [&res](const std::string& s) { res.narrative.push_back(s); };

  note("Sieve: |Sigma2| = " + std::to_string(x) + " unaffected servers, " +
       "|Sigma1| = " + std::to_string(S - x) + " affected by R2's 1st round");

  // Point (1): the Sigma1 slice of R1's knowledge is identical in every
  // alpha-hat execution -- those servers received exactly the same inputs.
  res.sigma1_constant_ok = true;
  const ReadView sigma1_ref = restrict_to_sigma1(alpha_hat_view(S, x, 0), x);
  for (int i = 1; i <= x; ++i) {
    if (!(restrict_to_sigma1(alpha_hat_view(S, x, i), x) == sigma1_ref)) {
      res.sigma1_constant_ok = false;
    }
  }
  note(std::string("Sigma1 servers behave identically across the chain: ") +
       (res.sigma1_constant_ok ? "yes" : "NO"));

  // Evaluate the (Sigma2-restricted) rule along the shortened chain.
  for (int i = 0; i <= x; ++i) {
    const ReadView v = restrict_to_sigma2(alpha_hat_view(S, x, i), x);
    res.r1_values.push_back(rule.decide(v, 1));
  }
  {
    std::ostringstream os;
    os << "alpha-hat chain returns: [";
    for (int v : res.r1_values) os << v;
    os << "]";
    note(os.str());
  }

  // Ends: alpha-hat_0 restricted to Sigma2 is all-"12" with sequential
  // W1 < W2, so atomicity forces 2; alpha-hat_x restricted to Sigma2 is
  // all-"21", indistinguishable from a sequential W2 < W1 execution, so 1.
  res.head_forced_ok =
      check_wing_gong(sequential_history(true, res.r1_values.front())).atomic;
  res.tail_forced_ok =
      check_wing_gong(sequential_history(false, res.r1_values.back())).atomic;
  note(std::string("head forced to 2: ") + (res.head_forced_ok ? "ok" : "VIOLATED"));
  note(std::string("tail forced to 1: ") + (res.tail_forced_ok ? "ok" : "VIOLATED"));

  if (res.head_forced_ok && res.tail_forced_ok) {
    for (int i = 1; i <= x; ++i) {
      if (res.r1_values[static_cast<std::size_t>(i - 1)] == 2 &&
          res.r1_values[static_cast<std::size_t>(i)] == 1) {
        res.pivot = i;
        break;
      }
    }
    note("critical server inside Sigma2: s_" + std::to_string(res.pivot));
  }
  if (res.chain_argument_survives()) {
    note("Chain argument survives the sieve: Phase 2/3 proceed on Sigma2.");
  }
  return res;
}

}  // namespace mwreg::chains
