#include "chains/w1r2_chains.h"

#include <algorithm>
#include <cassert>

namespace mwreg::chains {
namespace {

fullinfo::ServerLog writes_part(bool swapped) {
  return swapped ? fullinfo::ServerLog{Ev::kW2, Ev::kW1}
                 : fullinfo::ServerLog{Ev::kW1, Ev::kW2};
}

}  // namespace

Execution make_alpha(int S, int i) {
  assert(S >= 3 && i >= 0 && i <= S);
  Execution x;
  x.label = "alpha_" + std::to_string(i);
  x.has_r2 = false;
  x.writes = i == 0 ? WriteRelation::kW1ThenW2 : WriteRelation::kConcurrent;
  for (int j = 0; j < S; ++j) {
    fullinfo::ServerLog log = writes_part(j < i);
    log.push_back(Ev::kR1a);
    log.push_back(Ev::kR1b);
    x.servers.push_back(std::move(log));
  }
  return x;
}

Execution make_alpha_tail(int S) {
  Execution x = make_alpha(S, S);
  x.label = "alpha_tail";
  x.writes = WriteRelation::kW2ThenW1;
  return x;
}

Execution make_beta(int S, int stem, int k, int r2_skip) {
  assert(S >= 3 && stem >= 0 && stem <= S && k >= 0 && k <= S);
  Execution x;
  x.label = "beta[stem=" + std::to_string(stem) + ",k=" + std::to_string(k) +
            (r2_skip >= 0 ? ",R2skips_s" + std::to_string(r2_skip + 1) : "") +
            "]";
  x.has_r2 = true;
  x.writes = stem == 0 ? WriteRelation::kW1ThenW2 : WriteRelation::kConcurrent;
  for (int j = 0; j < S; ++j) {
    fullinfo::ServerLog log = writes_part(j < stem);
    log.push_back(Ev::kR1a);
    const bool skip = j == r2_skip;
    if (!skip) log.push_back(Ev::kR2a);
    if (j < k && !skip) {
      log.push_back(Ev::kR2b);
      log.push_back(Ev::kR1b);
    } else {
      log.push_back(Ev::kR1b);
      if (!skip) log.push_back(Ev::kR2b);
    }
    x.servers.push_back(std::move(log));
  }
  return x;
}

Execution remove_event(Execution x, int s, Ev e) {
  auto& log = x.servers.at(static_cast<std::size_t>(s));
  log.erase(std::remove(log.begin(), log.end(), e), log.end());
  return x;
}

Execution append_event(Execution x, int s, Ev e) {
  x.servers.at(static_cast<std::size_t>(s)).push_back(e);
  return x;
}

LinkBundle make_links(int S, int stem, int k, int i1) {
  assert(k >= 0 && k < S && i1 >= 1 && i1 <= S);
  const int crit = i1 - 1;  // server index of s_{i1}
  const Execution beta_k = make_beta(S, stem, k, crit);
  const Execution beta_k1 = make_beta(S, stem, k + 1, crit);

  LinkBundle out;
  if (k + 1 != i1) {
    // Horizontal (Section 3.4.1): temp_k = beta_k except R2b skips s_{k+1}
    // and no longer skips s_{i1} (added back AFTER R1b there, so R1 cannot
    // see the change). gamma_k = temp_k except R1b skips s_{k+1}.
    Execution temp = remove_event(beta_k, k, Ev::kR2b);
    temp = append_event(std::move(temp), crit, Ev::kR2b);
    temp.label = "temp_" + std::to_string(k);
    out.gamma = remove_event(temp, k, Ev::kR1b);
    out.gamma.label = "gamma_" + std::to_string(k);
    out.temp = std::move(temp);

    // Diagonal (Section 3.4.2): temp'_k = beta_{k+1} except R1b skips
    // s_{k+1} (R2b finished first there, so R2 cannot see the change).
    // gamma'_k = temp'_k except R2b skips s_{k+1} and is added back on
    // s_{i1} after R1b.
    Execution tp = remove_event(beta_k1, k, Ev::kR1b);
    tp.label = "temp'_" + std::to_string(k);
    Execution gp = remove_event(tp, k, Ev::kR2b);
    gp = append_event(std::move(gp), crit, Ev::kR2b);
    gp.label = "gamma'_" + std::to_string(k);
    out.temp_p = std::move(tp);
    out.gamma_p = std::move(gp);
  } else {
    // Special case k+1 == i1 (simpler, Section 3.4.1/3.4.2 endnotes):
    // s_{k+1} is the critical server, which R2 skips entirely; gamma_k is
    // beta_k with R1b skipping s_{k+1}, and gamma'_k is beta_{k+1} with R1b
    // skipping s_{k+1}. (beta_k == beta_{k+1} here: the swap is vacuous on
    // a server with no R2b.)
    out.gamma = remove_event(beta_k, k, Ev::kR1b);
    out.gamma.label = "gamma_" + std::to_string(k) + "(k+1=i1)";
    out.gamma_p = remove_event(beta_k1, k, Ev::kR1b);
    out.gamma_p.label = "gamma'_" + std::to_string(k) + "(k+1=i1)";
  }
  return out;
}

}  // namespace mwreg::chains
