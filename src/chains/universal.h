// The universal (for-ALL-rules) form of both impossibility theorems.
//
// prove_w1r2_impossible() finds a violation for one given rule. This module
// proves the full quantification "no decision rule exists" for a fixed S,
// with no rule search at all:
//
//   - Nodes are equivalence classes of (filtered) reader views appearing in
//     the constructed executions, for EVERY critical-server position and
//     both stems.
//   - An edge joins R1's view and R2's view of the same execution whenever
//     atomicity forces the two reads to return the SAME value there (both
//     writes complete before both reads -- checked by Wing-Gong on the
//     execution's history template, not assumed).
//   - Two pins: atomicity forces value 2 on alpha_0's view (sequential
//     W1 < W2 < R1) and value 1 on alpha_tail's view.
//
// Any decision rule is a function of views, so along every edge a rule that
// never violates atomicity must assign equal values, and it must respect
// the pins. If union-find connects the two pins, NO such rule exists: every
// rule must violate atomicity in one of the constructed executions. That is
// Theorem 1 (for first-round-invariant rules, the Section 3 model), as one
// machine-checked connectivity fact.
//
// The key paths: the view-identity bridge alpha_stem == beta_0(stem, crit),
// the zigzag identities of Figs. 4-7 within each stem, and the modified-tail
// equality beta_S(i1-1, crit) == beta_S(i1, crit) which splices NEIGHBORING
// stems together -- walking the pivot across all of chain alpha.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mwreg::chains {

struct UniversalResult {
  int S = 0;
  bool unsat = false;        ///< pins connected: no rule can exist
  std::size_t view_classes = 0;
  std::size_t equality_edges = 0;
  std::size_t executions = 0;
  std::vector<std::string> narrative;
};

/// Theorem 1 (W1R2), universally over all first-round-invariant rules.
UniversalResult prove_w1r2_universal(int S);

/// The W1R1 impossibility, universally over all rules.
UniversalResult prove_w1r1_universal(int S);

}  // namespace mwreg::chains
