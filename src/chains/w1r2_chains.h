// Constructions of Sections 3.2-3.4: chain alpha, chains beta'/beta''/beta,
// and the Phase-3 executions temp_k, gamma_k, temp'_k, gamma'_k that form the
// horizontal and diagonal links of the zigzag chain Z.
//
// Conventions: servers are 0-indexed (the paper's s_{j+1} is index j); the
// critical server s_{i1} is index i1-1. "Pattern p" means the first p
// servers receive W2 before W1 (the swapping of Section 3.2 applied p
// times).
#pragma once

#include <optional>
#include <vector>

#include "fullinfo/execution.h"

namespace mwreg::chains {

using fullinfo::Ev;
using fullinfo::Execution;
using fullinfo::WriteRelation;

/// alpha_i (Section 3.2): W1, W2 with pattern i, then a skip-free two-round
/// R1. alpha_0 is the head (sequential W1 < W2); 0 < i <= S have concurrent
/// writes (different servers see different orders).
Execution make_alpha(int S, int i);

/// The tail execution: same server logs as alpha_S but with the operations
/// temporally ordered W2 < W1. R1 cannot distinguish it from alpha_S.
Execution make_alpha_tail(int S);

/// beta'_k / beta''_k (Section 3.3): the alpha execution with pattern `stem`
/// extended with R2; round order R1a, R2a, R1b, R2b; the second rounds are
/// swapped (R2b delivered before R1b) on the first k servers. When
/// r2_skip >= 0, R2 (both round-trips) skips that server index -- chain beta
/// uses r2_skip = i1-1, chains beta'/beta'' use -1 (skip-free), and the
/// modified tails are k = S with r2_skip = i1-1.
Execution make_beta(int S, int stem, int k, int r2_skip);

/// Phase-3 execution bundle for one k (Section 3.4). When k+1 == i1 the
/// temp executions are not needed (the simpler special case) and are nullopt.
struct LinkBundle {
  std::optional<Execution> temp;    ///< temp_k  (horizontal intermediate)
  Execution gamma;                  ///< gamma_k
  std::optional<Execution> temp_p;  ///< temp'_k (diagonal intermediate)
  Execution gamma_p;                ///< gamma'_k
};

/// Build the Phase-3 executions from beta_k and beta_{k+1}.
/// `stem` and `i1` identify the underlying chain beta (i1 is 1-based).
LinkBundle make_links(int S, int stem, int k, int i1);

/// Remove every occurrence of `e` from server `s` ("the round skips s").
Execution remove_event(Execution x, int s, Ev e);

/// Append `e` at the END of server s's log (e.g. adding R2b back on the
/// critical server after R1b, so R1 cannot see the change).
Execution append_event(Execution x, int s, Ev e);

}  // namespace mwreg::chains
