// The W1R1 impossibility (Table 1, row 4; Dutta et al. [12]), replayed in
// the same machinery: one-round reads cannot see anything that happens after
// their single round, so the chain argument needs no Phase 2/3 -- a single
// pivot pair suffices.
//
// Construction: delta_i = writes with pattern i, then non-concurrent
// one-round reads R1 then R2 (both skip-free); eps_i = delta_i with R2
// skipping the critical server. For any decision rule:
//   - atomicity pins delta_0 (W1<W2<R1<R2 => both reads return 2) and the
//     tail twin of delta_S (both return 1), Wing-Gong-checked;
//   - R1's view in eps_i equals its view in delta_i EXACTLY (R2's round
//     happens after R1's, so R1 sees no trace of it);
//   - R2's views in eps_{i1-1} and eps_{i1} are EXACTLY equal (the only
//     differing server is skipped);
//   - within each eps execution the two sequential reads (after both writes
//     completed) must return the same value, Wing-Gong-checked.
// Propagation forces 2 == 1, so one of the checked executions must violate
// atomicity; the engine returns it.
#pragma once

#include "chains/w1r2_engine.h"  // LinkCheck, Certificate
#include "fullinfo/rules.h"

namespace mwreg::chains {

/// delta_i: writes pattern i + one-round R1 then one-round R2.
/// R1 is event kR1a, R2 is event kR2a (single rounds).
fullinfo::Execution make_delta(int S, int i);
fullinfo::Execution make_delta_tail(int S);
/// eps_i: delta_i with R2 skipping server index `r2_skip`.
fullinfo::Execution make_eps(int S, int i, int r2_skip);

/// Structural checks of the construction for all pivots.
std::vector<LinkCheck> verify_w1r1_construction(int S);

/// Find a Wing-Gong-verified violating execution for `rule`.
Certificate prove_w1r1_impossible(const fullinfo::DecisionRule& rule, int S);

}  // namespace mwreg::chains
