#include "chains/w1r1.h"

#include <sstream>

#include "consistency/checkers.h"

namespace mwreg::chains {

using fullinfo::DecisionRule;
using fullinfo::Execution;
using fullinfo::to_history_one_round;
using fullinfo::view_of;

Execution make_delta(int S, int i) {
  Execution x;
  x.label = "delta_" + std::to_string(i);
  x.has_r2 = true;
  x.writes = i == 0 ? WriteRelation::kW1ThenW2 : WriteRelation::kConcurrent;
  for (int j = 0; j < S; ++j) {
    fullinfo::ServerLog log =
        j < i ? fullinfo::ServerLog{Ev::kW2, Ev::kW1}
              : fullinfo::ServerLog{Ev::kW1, Ev::kW2};
    log.push_back(Ev::kR1a);
    log.push_back(Ev::kR2a);
    x.servers.push_back(std::move(log));
  }
  return x;
}

Execution make_delta_tail(int S) {
  Execution x = make_delta(S, S);
  x.label = "delta_tail";
  x.writes = WriteRelation::kW2ThenW1;
  return x;
}

Execution make_eps(int S, int i, int r2_skip) {
  Execution x = make_delta(S, i);
  x = remove_event(std::move(x), r2_skip, Ev::kR2a);
  x.label = "eps_" + std::to_string(i) + "[R2skips_s" +
            std::to_string(r2_skip + 1) + "]";
  return x;
}

std::vector<LinkCheck> verify_w1r1_construction(int S) {
  std::vector<LinkCheck> out;
  auto eq = [&out](const std::string& name, const fullinfo::ReadView& a,
                   const fullinfo::ReadView& b) {
    LinkCheck c;
    c.name = name;
    c.ok = a == b;
    if (!c.ok) c.detail = a.to_string() + "--\n" + b.to_string();
    out.push_back(std::move(c));
  };
  eq("R1: delta_S == delta_tail", view_of(make_delta(S, S), 1),
     view_of(make_delta_tail(S), 1));
  eq("R2: delta_S == delta_tail", view_of(make_delta(S, S), 2),
     view_of(make_delta_tail(S), 2));
  for (int i1 = 1; i1 <= S; ++i1) {
    const int crit = i1 - 1;
    const std::string pre = "i1=" + std::to_string(i1) + ": ";
    eq(pre + "R1: eps_{i1-1} == delta_{i1-1}",
       view_of(make_eps(S, i1 - 1, crit), 1), view_of(make_delta(S, i1 - 1), 1));
    eq(pre + "R1: eps_{i1} == delta_{i1}", view_of(make_eps(S, i1, crit), 1),
       view_of(make_delta(S, i1), 1));
    eq(pre + "R2: eps_{i1-1} == eps_{i1}", view_of(make_eps(S, i1 - 1, crit), 2),
       view_of(make_eps(S, i1, crit), 2));
  }
  return out;
}

namespace {

bool check_one(const DecisionRule& rule, const Execution& e, Certificate& cert) {
  ++cert.executions_checked;
  const int r1 = rule.decide(view_of(e, 1), 1);
  const int r2 = rule.decide(view_of(e, 2), 2);
  const History h = to_history_one_round(e, r1, r2);
  const CheckResult wg = check_wing_gong(h);
  if (wg.atomic) return false;
  cert.found = true;
  cert.execution_label = e.label;
  cert.execution_dump = e.to_string();
  cert.history_dump = h.to_string();
  cert.wg_violation = wg.violation;
  cert.narrative.push_back("VIOLATION at " + e.label + ": R1=" +
                           std::to_string(r1) + ", R2=" + std::to_string(r2) +
                           " -- " + wg.violation);
  return true;
}

}  // namespace

Certificate prove_w1r1_impossible(const DecisionRule& rule, int S) {
  Certificate cert;
  cert.rule_name = rule.name();
  auto note = [&cert](const std::string& s) { cert.narrative.push_back(s); };

  std::vector<int> vals;
  for (int i = 0; i <= S; ++i) {
    vals.push_back(rule.decide(view_of(make_delta(S, i), 1), 1));
  }
  {
    std::ostringstream os;
    os << "W1R1 chain delta: R1 returns [";
    for (int v : vals) os << v;
    os << "]";
    note(os.str());
  }
  if (check_one(rule, make_delta(S, 0), cert)) return cert;
  if (check_one(rule, make_delta_tail(S), cert)) return cert;

  int i1 = 0;
  for (int i = 1; i <= S; ++i) {
    if (vals[static_cast<std::size_t>(i - 1)] == 2 &&
        vals[static_cast<std::size_t>(i)] == 1) {
      i1 = i;
      break;
    }
  }
  cert.critical_server = i1;
  note("critical server s_" + std::to_string(i1));

  if (check_one(rule, make_eps(S, i1 - 1, i1 - 1), cert)) return cert;
  if (check_one(rule, make_eps(S, i1, i1 - 1), cert)) return cert;

  note("NO VIOLATION FOUND -- contradicts the W1R1 impossibility.");
  return cert;
}

}  // namespace mwreg::chains
