// The sieve of Section 4.2 (Fig. 8): lifting the "first round-trips do not
// affect other reads" assumption.
//
// Adversarial model: servers in Sigma1 are "affected by R2's first round" --
// upon receiving R2a they flip their stored write order (the only change of
// crucial info that can matter, Section 4.1). Servers in Sigma2 =
// {s_1..s_x} are unaffected.
//
// The sieve observations, machine-checked here:
//   (1) Sigma1 servers behave identically in every execution of the
//       shortened chain alpha-hat (they receive the same inputs: the
//       swapping only touches Sigma2), so they carry no information about
//       the write order -- R1 must decide from Sigma2's crucial info alone.
//   (2) Restricted to Sigma2, the chain alpha-hat_0..alpha-hat_x is exactly
//       a (shorter) chain alpha: ends forced by atomicity, so a critical
//       server still exists INSIDE Sigma2.
//   (3) The downstream Phase 2/3 argument needs at least 3 unaffected
//       servers (t = 1), i.e. x >= 3.
#pragma once

#include <string>
#include <vector>

#include "chains/w1r2_engine.h"
#include "fullinfo/rules.h"

namespace mwreg::chains {

struct SieveResult {
  int S = 0;
  int x = 0;  ///< |Sigma2|; Sigma1 = servers x..S-1

  /// R1's value along alpha-hat_0..alpha-hat_x under the Sigma2-restricted
  /// rule (the sieve's point (1) justifies the restriction).
  std::vector<int> r1_values;
  int pivot = 0;  ///< critical server (1-based, within Sigma2), 0 = none

  bool sigma1_constant_ok = false;  ///< point (1), structural
  bool head_forced_ok = false;      ///< alpha-hat_0 must return 2 (WG)
  bool tail_forced_ok = false;      ///< alpha-hat_x must return 1 (WG + view eq)
  bool enough_servers = false;      ///< x >= 3

  /// The whole sieve succeeded: a critical server exists inside Sigma2 and
  /// the chain argument can proceed on the unaffected servers.
  [[nodiscard]] bool chain_argument_survives() const {
    return sigma1_constant_ok && head_forced_ok && tail_forced_ok &&
           enough_servers && pivot >= 1 && pivot <= x;
  }

  std::vector<std::string> narrative;
};

/// Run the sieve for a cluster of S servers with x unaffected ones.
/// The rule decides on views; the sieve evaluates it on the Sigma2-restricted
/// view (point (1)). Requires 3 <= x <= S.
SieveResult run_sieve(const fullinfo::DecisionRule& rule, int S, int x);

}  // namespace mwreg::chains
