// Base class for register server replicas: routes each request to a
// handler and offers a reply helper that mirrors rpc_id back to the caller.
#pragma once

#include <vector>

#include "common/cluster.h"
#include "sim/network.h"

namespace mwreg {

class ServerBase : public Process {
 public:
  ServerBase(NodeId id, Network& net, const ClusterConfig& cfg)
      : Process(id, net), cfg_(cfg) {}

  void on_message(const Frame& m) final { handle_request(m); }

 protected:
  const ClusterConfig& cfg() const { return cfg_; }

  virtual void handle_request(const Frame& req) = 0;

  /// Ack/reply to `req`, mirroring its rpc_id. Carries `req` down as the
  /// cause frame: under a destination-major drain the network stages the
  /// reply and flushes a whole run's fan-out contiguously at batch end
  /// (in canonical frame order), so a server's acks land as one run at the
  /// receiving table/client instead of scattering through the next tick.
  void reply(const Frame& req, MsgType type,
             std::vector<std::uint8_t> payload) {
    send_from(req, req.src, type, req.rpc_id, std::move(payload));
  }

 private:
  ClusterConfig cfg_;
};

}  // namespace mwreg
