// Base class for register server replicas: routes each request to a
// handler and offers a reply helper that mirrors rpc_id back to the caller.
#pragma once

#include <vector>

#include "common/cluster.h"
#include "sim/network.h"

namespace mwreg {

class ServerBase : public Process {
 public:
  ServerBase(NodeId id, Network& net, const ClusterConfig& cfg)
      : Process(id, net), cfg_(cfg) {}

  void on_message(const Frame& m) final { handle_request(m); }

 protected:
  const ClusterConfig& cfg() const { return cfg_; }

  virtual void handle_request(const Frame& req) = 0;

  void reply(const Frame& req, MsgType type,
             std::vector<std::uint8_t> payload) {
    send(req.src, type, req.rpc_id, std::move(payload));
  }

 private:
  ClusterConfig cfg_;
};

}  // namespace mwreg
