// First-class multi-register keyspace support: one SimHarness hosting many
// keys, each key its own quorum group (replica state + per-key history)
// inside a single simulation.
//
// Layout. With S servers per group and `shards` physical shards, the id
// space is
//   servers  [0, shards*S)        shard j owns [j*S, (j+1)*S)
//   writers  [shards*S, +W)       shared by every key
//   readers  [shards*S + W, +R)   shared, or partitioned into per-key
//                                 blocks for reader-affine protocols
// Key k maps to shard k % shards; its per-key ClusterConfig re-bases the
// server range onto that shard (cluster.h base offsets). A KeyRouter sits
// at each physical server id and dispatches on Message::key to the per-key
// replica it owns — server implementations stay single-register and
// completely unaware of the keyspace.
//
// Key popularity is Zipfian (ZipfSampler); zipf_s = 0 degrades to uniform.
#pragma once

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/cluster.h"
#include "common/rng.h"
#include "sim/network.h"

namespace mwreg {

struct KeyspaceConfig {
  /// Number of registers. 0 disables the keyspace (classic single-register
  /// harness); 1 is a single-key keyspace (table-driven clients, same
  /// wire behavior as the classic layout).
  int num_keys = 0;
  /// Physical server groups; keys map to shard `key % shards`.
  int shards = 1;
  /// Zipf skew of key popularity (0 = uniform).
  double zipf_s = 0.0;

  [[nodiscard]] bool enabled() const { return num_keys >= 1; }
  /// Multi-key deployments change the id layout; single-key ones do not.
  [[nodiscard]] bool multi() const { return num_keys > 1; }

  [[nodiscard]] bool valid() const {
    return num_keys >= 0 && shards >= 1 && zipf_s >= 0.0 &&
           (!multi() || shards <= num_keys);
  }

  [[nodiscard]] std::string to_string() const;
};

/// Sample key indexes with Zipfian popularity: key k has weight
/// (k + 1)^-s. Precomputes the CDF once; sampling is one Rng draw plus a
/// binary search, allocation-free.
class ZipfSampler {
 public:
  ZipfSampler() = default;
  ZipfSampler(int num_keys, double s);

  /// Key index in [0, num_keys). Draws exactly one next_double().
  [[nodiscard]] int sample(Rng& rng) const;

  [[nodiscard]] int num_keys() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;  ///< inclusive prefix sums, normalized to 1
};

/// Reader-affine partitioning: key k's reader block is
/// [k*R/num_keys, (k+1)*R/num_keys). Used for protocols whose readers carry
/// per-register state (valQueues, server caches, watermarks) and therefore
/// serve exactly one key.
[[nodiscard]] inline int reader_block_begin(int key, int num_keys,
                                            int num_readers) {
  return static_cast<int>(static_cast<long long>(key) * num_readers /
                          num_keys);
}

/// Inverse of the block map: the key reader `ri` is affine to.
[[nodiscard]] int reader_key_of(int ri, int num_keys, int num_readers);

/// One physical server slot of a shard: owns the per-key replicas of every
/// key on its shard and dispatches incoming requests on Message::key.
/// Replicas are constructed with this router's node id (their replies carry
/// the right src); the router re-claims the network slot after each one so
/// deliveries land here first.
class KeyRouter final : public Process {
 public:
  KeyRouter(NodeId id, Network& net, int shards)
      : Process(id, net), shards_(shards) {}

  /// Add the replica for the next key on this shard (call in increasing
  /// key order: keys j, j+shards, j+2*shards, ... for shard j).
  void add_replica(std::unique_ptr<Process> server) {
    replicas_.push_back(std::move(server));
    // The replica's Process ctor attached itself at our id; take it back.
    net().attach(id(), *this);
  }

  void on_message(const Frame& m) override {
    replica_of(m.key).on_message(m);
  }

  /// Batched delivery: forward maximal same-replica runs as subspans, so a
  /// burst of requests for one key costs one demux and one virtual dispatch
  /// instead of one per frame. A router sits at exactly one node id, so its
  /// spans stay pure same-destination even under the destination-major
  /// drain; replica replies carry their request as the cause frame and get
  /// staged by the network like any direct server's.
  void on_deliver_batch(FrameSpan frames) override {
    std::size_t i = 0;
    while (i < frames.size()) {
      const std::size_t rep =
          static_cast<std::size_t>(frames[i].key) /
          static_cast<std::size_t>(shards_);
      std::size_t j = i + 1;
      while (j < frames.size() &&
             static_cast<std::size_t>(frames[j].key) /
                     static_cast<std::size_t>(shards_) ==
                 rep) {
        ++j;
      }
      replicas_[rep]->on_deliver_batch(frames.subspan(i, j - i));
      i = j;
    }
  }

  [[nodiscard]] std::size_t num_replicas() const { return replicas_.size(); }

 private:
  [[nodiscard]] Process& replica_of(std::uint32_t key) const {
    return *replicas_[static_cast<std::size_t>(key) /
                      static_cast<std::size_t>(shards_)];
  }

  int shards_;
  std::vector<std::unique_ptr<Process>> replicas_;
};

}  // namespace mwreg
