#include "core/harness.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace mwreg {

SimHarness::SimHarness(const Protocol& proto, Options opts)
    : cfg_(opts.cfg), keyspace_(opts.keyspace), rng_(opts.seed) {
  assert(cfg_.valid());
  assert(keyspace_.valid());
  std::unique_ptr<DelayModel> delay = std::move(opts.delay);
  if (!delay) {
    delay = std::make_unique<UniformDelay>(1 * kMillisecond, 10 * kMillisecond);
  }
  // Every harness delay is wrapped in a SpikeDelay so fault plans can
  // inject delay spikes; at factor 1.0 the wrapper is transparent.
  auto spike = std::make_unique<SpikeDelay>(std::move(delay));
  spike_ = spike.get();
  Network::Options nopts;
  nopts.fifo = opts.fifo;
  nopts.coalesce = opts.coalesce;
  nopts.tick = opts.tick;
  nopts.dest_major = opts.dest_major;
  net_ = std::make_unique<Network>(sim_, std::move(spike), rng_.fork(), nopts);
  if (opts.coalesce) {
    // Pre-size the batch rings from cluster shape. A batch is one delivery
    // tick; the number concurrently open is bounded by the in-flight
    // horizon (at fine ticks, roughly the number of nodes with traffic in
    // flight), and a tick's frame count starts around the quorum fan-in of
    // one round. ~64 payload bytes covers the fast-read entry encodings
    // seen in practice; real traffic ratchets every capacity from actual
    // shapes during warmup, so these are seeds, not ceilings.
    const int shards = keyspace_.multi() ? keyspace_.shards : 1;
    const std::size_t dests = static_cast<std::size_t>(shards * cfg_.s()) +
                              static_cast<std::size_t>(cfg_.w() + cfg_.r());
    const auto fan_in = static_cast<std::size_t>(
        std::min(std::max(cfg_.s(), cfg_.w() + cfg_.r()), 64));
    net_->reserve_coalescing(dests, fan_in, 64);
  }

  const bool table_mode = opts.table_clients || keyspace_.multi();
  if (!table_mode) {
    for (NodeId s : cfg_.server_ids()) {
      servers_.push_back(proto.make_server(s, *net_, cfg_));
    }
    for (NodeId w : cfg_.writer_ids()) {
      writers_.push_back(proto.make_writer(w, *net_, cfg_));
    }
    for (NodeId r : cfg_.reader_ids()) {
      readers_.push_back(proto.make_reader(r, *net_, cfg_));
    }
    if (opts.streaming_check) setup_streaming(opts.retire_history);
    return;
  }

  assert(proto.supports_table_clients() &&
         "protocol has no table client programs");
  const bool affine = proto.table_reader() == TableReaderProgram::kFrFull ||
                      proto.table_reader() == TableReaderProgram::kFrDelta;
  if (!keyspace_.multi()) {
    // Single register, table driver: the classic layout verbatim — same
    // server ids, same client ids, same single history — so fault plans and
    // golden digests carry over unchanged.
    for (NodeId s : cfg_.server_ids()) {
      servers_.push_back(proto.make_server(s, *net_, cfg_));
    }
    table_global_ = cfg_;
    key_cfgs_.push_back(cfg_);
  } else {
    const int nk = keyspace_.num_keys;
    const int num_shards = keyspace_.shards;
    const int servers_per_group = cfg_.s();
    assert(!affine || nk <= cfg_.r());
    // Per-key quorum groups: same shape as cfg_, re-based onto the owning
    // shard; all keys share the client id range after the server block.
    key_cfgs_.reserve(static_cast<std::size_t>(nk));
    for (int k = 0; k < nk; ++k) {
      ClusterConfig kc = cfg_;
      kc.server_base = static_cast<NodeId>((k % num_shards) * servers_per_group);
      kc.client_base = static_cast<NodeId>(num_shards * servers_per_group);
      if (affine) {
        const int begin = reader_block_begin(k, nk, cfg_.r());
        const int end = reader_block_begin(k + 1, nk, cfg_.r());
        kc.reader_base = kc.client_base + cfg_.w() + begin;
        kc.num_readers = end - begin;
      }
      key_cfgs_.push_back(kc);
    }
    key_histories_.resize(static_cast<std::size_t>(nk));
    // One KeyRouter per physical server id; shard j's router at slot i owns
    // the replicas of keys j, j+shards, j+2*shards, ...
    for (int j = 0; j < num_shards; ++j) {
      for (int i = 0; i < servers_per_group; ++i) {
        const NodeId id = static_cast<NodeId>(j * servers_per_group + i);
        auto router = std::make_unique<KeyRouter>(id, *net_, num_shards);
        for (int k = j; k < nk; k += num_shards) {
          router->add_replica(
              proto.make_server(id, *net_, key_cfgs_[static_cast<std::size_t>(k)]));
        }
        servers_.push_back(std::move(router));
      }
    }
    table_global_ = cfg_;
    table_global_.client_base =
        static_cast<NodeId>(num_shards * servers_per_group);
  }

  std::vector<History*> histories;
  if (key_histories_.empty()) {
    histories.push_back(&history_);
  } else {
    histories.reserve(key_histories_.size());
    for (History& h : key_histories_) histories.push_back(&h);
  }
  table_ = std::make_unique<ClientTable>(*net_, table_global_, key_cfgs_,
                                         proto.table_writer(),
                                         proto.table_reader(),
                                         std::move(histories));
  write_done_.resize(static_cast<std::size_t>(cfg_.w()));
  read_done_.resize(static_cast<std::size_t>(cfg_.r()));
  table_->set_on_complete(
      [this](int slot, OpKind kind, const TaggedValue& value) {
        if (kind == OpKind::kWrite) {
          auto done = std::move(write_done_[static_cast<std::size_t>(slot)]);
          write_done_[static_cast<std::size_t>(slot)] = nullptr;
          if (done) done();
        } else {
          const auto ri =
              static_cast<std::size_t>(slot - table_->writer_count());
          auto done = std::move(read_done_[ri]);
          read_done_[ri] = nullptr;
          if (done) done(value);
        }
        if (user_hook_) user_hook_(slot, kind, value);
      });
  if (opts.streaming_check) setup_streaming(opts.retire_history);
}

void SimHarness::setup_streaming(bool retire) {
  // One live checker per key history; the recorder feeds it every
  // invocation/value/completion in simulation-time order, which is exactly
  // the event order the streaming algorithm requires.
  stream_checkers_.reserve(static_cast<std::size_t>(num_keys()));
  for (int k = 0; k < num_keys(); ++k) {
    auto checker = std::make_unique<StreamingTagWitness>();
    History& hist = key_history(k);
    if (retire) checker->retire_history(&hist);
    hist.subscribe(checker.get());
    stream_checkers_.push_back(std::move(checker));
  }
}

OpId SimHarness::async_write(int wi, std::int64_t payload,
                             std::function<void()> done) {
  if (table_) return async_write_key(wi, 0, payload, std::move(done));
  const NodeId client = cfg_.writer_id(wi);
  const OpId op = history_.begin_op(client, OpKind::kWrite, sim_.now());
  writers_.at(static_cast<std::size_t>(wi))
      ->write(payload, [this, op, payload, done = std::move(done)](Tag tag) {
        history_.end_op(op, sim_.now(), TaggedValue{tag, payload});
        if (done) done();
      });
  return op;
}

OpId SimHarness::async_read(int ri, std::function<void(TaggedValue)> done) {
  if (table_) return async_read_key(ri, 0, std::move(done));
  const NodeId client = cfg_.reader_id(ri);
  const OpId op = history_.begin_op(client, OpKind::kRead, sim_.now());
  readers_.at(static_cast<std::size_t>(ri))
      ->read([this, op, done = std::move(done)](TaggedValue v) {
        history_.end_op(op, sim_.now(), v);
        if (done) done(v);
      });
  return op;
}

OpId SimHarness::async_write_key(int wi, std::uint32_t key,
                                 std::int64_t payload,
                                 std::function<void()> done) {
  assert(table_ && "keyed operations require table clients");
  write_done_.at(static_cast<std::size_t>(wi)) = std::move(done);
  return table_->start_write(wi, key, payload);
}

OpId SimHarness::async_read_key(int ri, std::uint32_t key,
                                std::function<void(TaggedValue)> done) {
  assert(table_ && "keyed operations require table clients");
  read_done_.at(static_cast<std::size_t>(ri)) = std::move(done);
  return table_->start_read(ri, key);
}

void SimHarness::install_fault_plan(const FaultPlan& plan) {
  assert(!keyspace_.multi() &&
         "fault plans resolve against the single-register layout");
  // Repeated installs share one log, so composed plans account together.
  fault_log_ = mwreg::install_fault_plan(*net_, cfg_, plan, spike_, fault_log_);
}

std::vector<NodeId> SimHarness::crash_random_servers(int count) {
  std::vector<NodeId> ids = cfg_.server_ids();
  rng_.shuffle(ids);
  ids.resize(static_cast<std::size_t>(count));
  for (NodeId id : ids) net_->crash(id);
  return ids;
}

}  // namespace mwreg
