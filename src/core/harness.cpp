#include "core/harness.h"

#include <cassert>
#include <utility>

namespace mwreg {

SimHarness::SimHarness(const Protocol& proto, Options opts)
    : cfg_(opts.cfg), rng_(opts.seed) {
  assert(cfg_.valid());
  std::unique_ptr<DelayModel> delay = std::move(opts.delay);
  if (!delay) {
    delay = std::make_unique<UniformDelay>(1 * kMillisecond, 10 * kMillisecond);
  }
  // Every harness delay is wrapped in a SpikeDelay so fault plans can
  // inject delay spikes; at factor 1.0 the wrapper is transparent.
  auto spike = std::make_unique<SpikeDelay>(std::move(delay));
  spike_ = spike.get();
  net_ = std::make_unique<Network>(sim_, std::move(spike), rng_.fork(),
                                   opts.fifo);
  for (NodeId s : cfg_.server_ids()) {
    servers_.push_back(proto.make_server(s, *net_, cfg_));
  }
  for (NodeId w : cfg_.writer_ids()) {
    writers_.push_back(proto.make_writer(w, *net_, cfg_));
  }
  for (NodeId r : cfg_.reader_ids()) {
    readers_.push_back(proto.make_reader(r, *net_, cfg_));
  }
}

OpId SimHarness::async_write(int wi, std::int64_t payload,
                             std::function<void()> done) {
  const NodeId client = cfg_.writer_id(wi);
  const OpId op = history_.begin_op(client, OpKind::kWrite, sim_.now());
  writers_.at(static_cast<std::size_t>(wi))
      ->write(payload, [this, op, payload, done = std::move(done)](Tag tag) {
        history_.end_op(op, sim_.now(), TaggedValue{tag, payload});
        if (done) done();
      });
  return op;
}

OpId SimHarness::async_read(int ri, std::function<void(TaggedValue)> done) {
  const NodeId client = cfg_.reader_id(ri);
  const OpId op = history_.begin_op(client, OpKind::kRead, sim_.now());
  readers_.at(static_cast<std::size_t>(ri))
      ->read([this, op, done = std::move(done)](TaggedValue v) {
        history_.end_op(op, sim_.now(), v);
        if (done) done(v);
      });
  return op;
}

void SimHarness::install_fault_plan(const FaultPlan& plan) {
  // Repeated installs share one log, so composed plans account together.
  fault_log_ = mwreg::install_fault_plan(*net_, cfg_, plan, spike_, fault_log_);
}

std::vector<NodeId> SimHarness::crash_random_servers(int count) {
  std::vector<NodeId> ids = cfg_.server_ids();
  rng_.shuffle(ids);
  ids.resize(static_cast<std::size_t>(count));
  for (NodeId id : ids) net_->crash(id);
  return ids;
}

}  // namespace mwreg
