#include "core/client_table.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <utility>

namespace mwreg {

ClientTable::ClientTable(Network& net, const ClusterConfig& global,
                         const std::vector<ClusterConfig>& key_cfgs,
                         TableWriterProgram writer_program,
                         TableReaderProgram reader_program,
                         std::vector<History*> histories)
    : Process(global.writer_id(0), net),
      global_(global),
      key_cfgs_(key_cfgs),
      writer_program_(writer_program),
      reader_program_(reader_program),
      histories_(std::move(histories)),
      w_(global.w()),
      r_(global.r()) {
  assert(writer_program_ != TableWriterProgram::kNone);
  assert(reader_program_ != TableReaderProgram::kNone);
  const int n = w_ + r_;
  phase_.assign(static_cast<std::size_t>(n), 0);
  key_.assign(static_cast<std::size_t>(n), 0);
  rpc_.assign(static_cast<std::size_t>(n), 0);
  next_rpc_.assign(static_cast<std::size_t>(n), 1);
  acks_.assign(static_cast<std::size_t>(n), 0);
  op_.assign(static_cast<std::size_t>(n), -1);
  wr_payload_.assign(static_cast<std::size_t>(n), 0);
  acc_tag_.assign(static_cast<std::size_t>(n), Tag{});
  acc_val_.assign(static_cast<std::size_t>(n), TaggedValue{});
  local_ts_.assign(static_cast<std::size_t>(n), 0);
  // The Process ctor claimed the first client id; claim the rest.
  for (int s = 1; s < n; ++s) net.attach(slot_node(s), *this);
  if (reader_key_affine()) {
    fr_.resize(static_cast<std::size_t>(r_));
    for (int ri = 0; ri < r_; ++ri) {
      auto st = std::make_unique<FrReaderState>();
      st->val_queue.push_back(TaggedValue{});  // (0, bottom), like FastReader
      if (reader_program_ == TableReaderProgram::kFrDelta) {
        st->caches.resize(static_cast<std::size_t>(global_.s()));
      }
      fr_[static_cast<std::size_t>(ri)] = std::move(st);
    }
  }
}

std::uint64_t ClientTable::decode_arena_grows() const {
  std::uint64_t total = 0;
  for (const auto& st : fr_) {
    if (!st) continue;
    for (const FrEntryArena& a : st->arenas) total += a.grows();
  }
  return total;
}

void ClientTable::broadcast(int slot, std::uint32_t key, MsgType type,
                            std::vector<std::uint8_t> payload) {
  const ClusterConfig& kc = key_cfgs_[key];
  const NodeId src = slot_node(slot);
  const std::uint64_t rpc = next_rpc_[static_cast<std::size_t>(slot)]++;
  rpc_[static_cast<std::size_t>(slot)] = rpc;
  acks_[static_cast<std::size_t>(slot)] = 0;
  // Fan out through the byte-span path, original released afterwards — the
  // same fan-out RpcClient::round_trip performs, in the same server order.
  // The per-message engine makes one pooled copy per server (empty requests
  // skip the pool: a capacity-0 vector costs no allocation, and draining
  // the free list for them would starve the capacity-carrying payloads at
  // 10^5-client bursts); the batched engine copies the bytes straight into
  // each destination's slab. Pool stats are not part of any digest.
  // cause_ (the reply being handled, when this round chains off one)
  // routes the fan-out through the reply-staging buffer under a
  // destination-major drain; it is null for workload-initiated rounds.
  for (int i = 0; i < kc.s(); ++i) {
    net().send_bytes(src, kc.server_id(i), type, key, rpc, ByteSpan(payload),
                     cause_);
  }
  pool().release(std::move(payload));
}

OpId ClientTable::start_write(int wi, std::uint32_t key, std::int64_t payload) {
  const int slot = wi;
  const auto s = static_cast<std::size_t>(slot);
  assert(wi >= 0 && wi < w_);
  assert(key < key_cfgs_.size());
  assert(phase_[s] == 0 && "writer already has an operation in flight");
  const NodeId node = slot_node(slot);
  const OpId op = histories_[key]->begin_op(node, OpKind::kWrite, sim().now());
  op_[s] = op;
  key_[s] = key;
  wr_payload_[s] = payload;
  switch (writer_program_) {
    case TableWriterProgram::kAbdTwoRound:
      acc_tag_[s] = kBottomTag;
      phase_[s] = 1;
      broadcast(slot, key, kAbdReadReq, {});
      break;
    case TableWriterProgram::kFrQueryThenWrite:
      acc_tag_[s] = kBottomTag;
      phase_[s] = 1;
      broadcast(slot, key, kFrQueryReq, {});
      break;
    case TableWriterProgram::kAbdLocalTs:
      begin_write_round2(slot, Tag{++local_ts_[s], node});
      break;
    case TableWriterProgram::kFrLocalTs:
      begin_write_round2(slot, Tag{++local_ts_[s], node});
      break;
    case TableWriterProgram::kNone:
      break;
  }
  return op;
}

void ClientTable::begin_write_round2(int slot, Tag tag) {
  const auto s = static_cast<std::size_t>(slot);
  acc_tag_[s] = tag;
  phase_[s] = 2;
  const bool fr = writer_program_ == TableWriterProgram::kFrQueryThenWrite ||
                  writer_program_ == TableWriterProgram::kFrLocalTs;
  broadcast(slot, key_[s], fr ? kFrWriteReq : kAbdWriteReq,
            encode_value(pool(), TaggedValue{tag, wr_payload_[s]}));
}

OpId ClientTable::start_read(int ri, std::uint32_t key) {
  const int slot = w_ + ri;
  const auto s = static_cast<std::size_t>(slot);
  assert(ri >= 0 && ri < r_);
  assert(key < key_cfgs_.size());
  assert(phase_[s] == 0 && "reader already has an operation in flight");
  const NodeId node = slot_node(slot);
  const OpId op = histories_[key]->begin_op(node, OpKind::kRead, sim().now());
  op_[s] = op;
  key_[s] = key;
  switch (reader_program_) {
    case TableReaderProgram::kAbdTwoRound:
    case TableReaderProgram::kAbdOneRoundMax:
      acc_val_[s] = TaggedValue{};
      phase_[s] = 1;
      broadcast(slot, key, kAbdReadReq, {});
      break;
    case TableReaderProgram::kFrFull: {
      FrReaderState& st = *fr_[static_cast<std::size_t>(ri)];
      phase_[s] = 1;
      broadcast(slot, key, kFrReadReq,
                encode_value_list(pool(), st.val_queue));
      break;
    }
    case TableReaderProgram::kFrDelta: {
      FrReaderState& st = *fr_[static_cast<std::size_t>(ri)];
      st.queue_scratch.clear();
      st.queue_scratch.push_back(st.watermark);
      st.acked_scratch.clear();
      for (const FrServerCache& c : st.caches) {
        st.acked_scratch.push_back(c.rev);
      }
      ByteWriter wtr(pool().acquire());
      encode_delta_read_req_into(wtr, st.queue_scratch,
                                 st.acked_scratch.data(),
                                 st.acked_scratch.size());
      st.round_servers.clear();
      phase_[s] = 1;
      broadcast(slot, key, kFrReadDeltaReq, wtr.take());
      break;
    }
    case TableReaderProgram::kNone:
      break;
  }
  return op;
}

void ClientTable::on_message(const Frame& m) {
  cause_ = &m;
  handle_reply(m);
  cause_ = nullptr;
}

void ClientTable::handle_reply(const Frame& m) {
  const int slot = slot_of(m.dst);
  if (slot < 0) return;
  const auto s = static_cast<std::size_t>(slot);
  // Late reply to a finished round (rpc_ is zeroed at completion and never
  // reused: per-slot ids start at 1).
  if (phase_[s] == 0 || m.rpc_id != rpc_[s]) return;
  if (slot < w_) {
    on_writer_reply(slot, m);
  } else {
    on_reader_reply(slot, m);
  }
}

void ClientTable::on_writer_reply(int slot, const Frame& m) {
  const auto s = static_cast<std::size_t>(slot);
  const ClusterConfig& kc = key_cfgs_[key_[s]];
  if (phase_[s] == 1) {
    // RT 1: accumulate the max tag incrementally — same result as the
    // object writers' fold over the completed reply vector.
    if (writer_program_ == TableWriterProgram::kAbdTwoRound) {
      acc_tag_[s] = std::max(acc_tag_[s], decode_value(m.payload).tag);
    } else {
      acc_tag_[s].ts = std::max(acc_tag_[s].ts, decode_tag(m.payload).ts);
    }
    if (++acks_[s] < kc.quorum()) return;
    ++rounds_done_;
    begin_write_round2(slot, Tag{acc_tag_[s].ts + 1, slot_node(slot)});
    return;
  }
  if (++acks_[s] < kc.quorum()) return;
  ++rounds_done_;
  complete_write(slot);
}

void ClientTable::on_reader_reply(int slot, const Frame& m) {
  const auto s = static_cast<std::size_t>(slot);
  const ClusterConfig& kc = key_cfgs_[key_[s]];
  const int ri = slot - w_;
  switch (reader_program_) {
    case TableReaderProgram::kAbdTwoRound:
    case TableReaderProgram::kAbdOneRoundMax: {
      if (phase_[s] == 1) {
        const TaggedValue v = decode_value(m.payload);
        if (v.tag > acc_val_[s].tag) acc_val_[s] = v;
        if (++acks_[s] < kc.quorum()) return;
        ++rounds_done_;
        if (reader_program_ == TableReaderProgram::kAbdOneRoundMax) {
          complete_read(slot, acc_val_[s]);
          return;
        }
        // RT 2: write back ("atomic reads must write").
        phase_[s] = 2;
        broadcast(slot, key_[s], kAbdWriteReq,
                  encode_value(pool(), acc_val_[s]));
        return;
      }
      if (++acks_[s] < kc.quorum()) return;
      ++rounds_done_;
      complete_read(slot, acc_val_[s]);
      return;
    }
    case TableReaderProgram::kFrFull: {
      FrReaderState& st = *fr_[static_cast<std::size_t>(ri)];
      // Decode in place, one arena per reply index (arrival order), instead
      // of buffering pooled copies until quorum — same decoded views.
      const auto i = static_cast<std::size_t>(acks_[s]);
      if (st.arenas.size() <= i) st.arenas.resize(i + 1);
      ByteReader br(m.payload);
      const bool ok = decode_entries_into(br, st.arenas[i]);
      assert(ok && "malformed kFrReadAck");
      (void)ok;
      if (++acks_[s] < kc.quorum()) return;
      ++rounds_done_;
      reader_decide_full(slot);
      return;
    }
    case TableReaderProgram::kFrDelta: {
      FrReaderState& st = *fr_[static_cast<std::size_t>(ri)];
      const auto si = static_cast<std::size_t>(m.src - kc.server_base);
      const bool ok =
          fr_apply_delta(st.caches[si], m.payload, st.entry_scratch);
      assert(ok && "malformed kFrReadAckDelta");
      (void)ok;
      st.round_servers.push_back(static_cast<int>(si));
      if (++acks_[s] < kc.quorum()) return;
      ++rounds_done_;
      reader_decide_delta(slot);
      return;
    }
    case TableReaderProgram::kNone:
      return;
  }
}

void ClientTable::reader_decide_full(int slot) {
  const auto s = static_cast<std::size_t>(slot);
  FrReaderState& st = *fr_[static_cast<std::size_t>(slot - w_)];
  const ClusterConfig& kc = key_cfgs_[key_[s]];
  st.views.clear();
  st.cand.clear();
  for (std::int32_t i = 0; i < acks_[s]; ++i) {
    st.views.push_back(st.arenas[static_cast<std::size_t>(i)].view());
  }
  for (const FrView& v : st.views) {
    for (const FrEntry& e : v) st.cand.push_back(e.value);
  }
  std::sort(st.cand.begin(), st.cand.end());
  st.cand.erase(std::unique(st.cand.begin(), st.cand.end()), st.cand.end());
  // valQueue <- valQueue union everything received (kept sorted unique —
  // the same contents the object reader's std::set holds).
  st.queue_merge.clear();
  std::set_union(st.val_queue.begin(), st.val_queue.end(), st.cand.begin(),
                 st.cand.end(), std::back_inserter(st.queue_merge));
  st.val_queue.swap(st.queue_merge);
  const TaggedValue v = fr_pick_admissible(st.cand, st.views, kc.r(), kc.s(),
                                           kc.t(), kc.first_client());
  complete_read(slot, v);
}

void ClientTable::reader_decide_delta(int slot) {
  const auto s = static_cast<std::size_t>(slot);
  FrReaderState& st = *fr_[static_cast<std::size_t>(slot - w_)];
  const ClusterConfig& kc = key_cfgs_[key_[s]];
  st.views.clear();
  st.cand.clear();
  for (const int si : st.round_servers) {
    const FrServerCache& c = st.caches[static_cast<std::size_t>(si)];
    st.views.push_back(FrView{c.entries.data(), c.entries.size()});
  }
  for (const FrView& v : st.views) {
    for (const FrEntry& e : v) st.cand.push_back(e.value);
  }
  std::sort(st.cand.begin(), st.cand.end());
  st.cand.erase(std::unique(st.cand.begin(), st.cand.end()), st.cand.end());
  const TaggedValue v = fr_pick_admissible(st.cand, st.views, kc.r(), kc.s(),
                                           kc.t(), kc.first_client());
  if (!st.cand.empty()) st.watermark = std::max(st.watermark, st.cand.back());
  complete_read(slot, v);
}

void ClientTable::complete_write(int slot) {
  const auto s = static_cast<std::size_t>(slot);
  phase_[s] = 0;
  rpc_[s] = 0;
  const TaggedValue v{acc_tag_[s], wr_payload_[s]};
  histories_[key_[s]]->end_op(op_[s], sim().now(), v);
  if (on_complete_) on_complete_(slot, OpKind::kWrite, v);
}

void ClientTable::complete_read(int slot, const TaggedValue& v) {
  const auto s = static_cast<std::size_t>(slot);
  phase_[s] = 0;
  rpc_[s] = 0;
  histories_[key_[s]]->end_op(op_[s], sim().now(), v);
  if (on_complete_) on_complete_(slot, OpKind::kRead, v);
}

}  // namespace mwreg
