#include "core/rpc_client.h"

#include <utility>

namespace mwreg {

void RpcClient::round_trip(MsgType type, std::vector<std::uint8_t> payload,
                           int quorum, RoundDone done) {
  const std::uint64_t rpc = next_rpc_++;
  PendingRound& round = pending_[rpc];
  round.quorum = quorum;
  round.done = std::move(done);
  round.replies.reserve(static_cast<std::size_t>(cfg_.s()));
  for (NodeId s : cfg_.server_ids()) {
    send(s, type, rpc, payload);
  }
}

void RpcClient::on_message(const Message& m) {
  auto it = pending_.find(m.rpc_id);
  if (it == pending_.end()) return;  // late reply to a finished round
  PendingRound& round = it->second;
  round.replies.push_back(ServerReply{m.src, m.type, m.payload});
  if (static_cast<int>(round.replies.size()) < round.quorum) return;
  RoundDone done = std::move(round.done);
  std::vector<ServerReply> replies = std::move(round.replies);
  pending_.erase(it);
  ++rounds_done_;
  done(std::move(replies));
}

}  // namespace mwreg
