#include "core/rpc_client.h"

#include <utility>

namespace mwreg {

void RpcClient::retire_round(PendingRound&& round) {
  for (ServerReply& r : round.replies) {
    pool().release(std::move(r.payload));
  }
  round.replies.clear();
  round.done = nullptr;
  spare_ = std::move(round);  // keep the replies vector's capacity
}

void RpcClient::round_trip(MsgType type, std::vector<std::uint8_t> payload,
                           int quorum, RoundDone done) {
  const std::uint64_t rpc = next_rpc_++;
  PendingRound round = std::move(spare_);
  spare_ = PendingRound{};
  round.rpc_id = rpc;
  round.quorum = quorum;
  round.done = std::move(done);
  round.replies.reserve(static_cast<std::size_t>(cfg_.s()));
  pending_.push_back(std::move(round));
  // Fan out through the byte-span path, then recycle the original buffer:
  // the per-message engine makes one pooled copy per server (a memcpy into
  // recycled capacity, not an allocation); the batched engine copies the
  // bytes straight into each destination's slab. cause_ (the reply being
  // handled, when this round chains off one) routes the fan-out through
  // the reply-staging buffer under a destination-major drain.
  for (NodeId s : cfg_.server_ids()) {
    net().send_bytes(id(), s, type, /*key=*/0, rpc, ByteSpan(payload), cause_);
  }
  pool().release(std::move(payload));
}

void RpcClient::handle_reply(const Frame& m) {
  std::size_t idx = pending_.size();
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].rpc_id == m.rpc_id) {
      idx = i;
      break;
    }
  }
  if (idx == pending_.size()) return;  // late reply to a finished round
  PendingRound& round = pending_[idx];
  std::vector<std::uint8_t> buf = pool().acquire();
  buf.assign(m.payload.begin(), m.payload.end());
  round.replies.push_back(ServerReply{m.src, m.type, std::move(buf)});
  if (static_cast<int>(round.replies.size()) < round.quorum) return;
  // Detach the round before running the callback: `done` may start the
  // next round_trip (two-round writers/readers chain them), which appends
  // to pending_ and would invalidate references into it.
  PendingRound finished = std::move(round);
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(idx));
  ++rounds_done_;
  finished.done(finished.replies);
  retire_round(std::move(finished));
}

}  // namespace mwreg
