// Round-trip engine for clients.
//
// A round-trip ("query all / update all", Section 2.2) broadcasts one request
// to every server and completes when a quorum of S - t replies has arrived.
// Late replies are counted but not delivered. One round-trip is exactly one
// unit of the latency the paper's W#R# taxonomy counts.
//
// Hot-path layout: outstanding rounds live in a small flat vector (a
// closed-loop client has exactly one), reply payloads are copied into
// pooled buffers and recycled after the completion callback returns, and a
// finished round's storage is kept as a spare so the next round_trip reuses
// its capacity.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/cluster.h"
#include "sim/network.h"

namespace mwreg {

struct ServerReply {
  NodeId server = kNoNode;
  MsgType type = 0;
  std::vector<std::uint8_t> payload;
};

class RpcClient : public Process {
 public:
  /// Replies are only valid during the callback; the payload buffers are
  /// recycled into the network pool when it returns.
  using RoundDone = std::function<void(const std::vector<ServerReply>&)>;

  RpcClient(NodeId id, Network& net, const ClusterConfig& cfg)
      : Process(id, net), cfg_(cfg) {}

  void on_message(const Frame& m) final {
    cause_ = &m;
    handle_reply(m);
    cause_ = nullptr;
  }

  /// Batched delivery: acks from several servers in one tick arrive as one
  /// span; demux to rounds without re-entering the virtual dispatcher.
  /// Tracks the frame being processed so round chaining (a completion
  /// callback starting the next round_trip) attributes its fan-out to the
  /// triggering reply for reply staging.
  void on_deliver_batch(FrameSpan frames) final {
    for (const Frame& f : frames) {
      cause_ = &f;
      handle_reply(f);
    }
    cause_ = nullptr;
  }

  /// Number of round-trips completed by this client (for latency accounting).
  [[nodiscard]] std::uint64_t rounds_completed() const { return rounds_done_; }

 protected:
  const ClusterConfig& cfg() const { return cfg_; }

  /// Broadcast `payload` with `type` to all servers; invoke `done` with the
  /// first `quorum` replies. `done` is called at most once.
  void round_trip(MsgType type, std::vector<std::uint8_t> payload, int quorum,
                  RoundDone done);

  /// Convenience: quorum = S - t.
  void round_trip(MsgType type, std::vector<std::uint8_t> payload,
                  RoundDone done) {
    round_trip(type, std::move(payload), cfg_.quorum(), std::move(done));
  }

 private:
  struct PendingRound {
    std::uint64_t rpc_id = 0;
    int quorum = 0;
    std::vector<ServerReply> replies;
    RoundDone done;
  };

  /// Recycle a completed round's reply buffers and vector capacity.
  void retire_round(PendingRound&& round);

  void handle_reply(const Frame& m);

  ClusterConfig cfg_;
  /// Frame currently being handled (null outside delivery): the cause
  /// passed to the network so mid-run fan-outs get staged (network.h).
  const Frame* cause_ = nullptr;
  std::uint64_t next_rpc_ = 1;
  std::uint64_t rounds_done_ = 0;
  /// Outstanding rounds, newest last; closed-loop clients hold at most one,
  /// so linear search beats any tree or hash structure here.
  std::vector<PendingRound> pending_;
  /// Storage of the last finished round, reused by the next round_trip.
  PendingRound spare_;
};

}  // namespace mwreg
