// SimHarness: wires a cluster (Fig. 1) for one protocol on the simulator,
// instruments operations into a History, and exposes fault injection —
// one-shot (crash_random_servers) or declarative (install_fault_plan).
//
// Two client drivers share this front end:
//  - object clients (default): one WriterApi/ReaderApi heap object per
//    client, the original per-object drivers;
//  - the ClientTable (opt-in via Options::table_clients, mandatory for
//    multi-key keyspaces): every client is a struct-of-arrays slot in one
//    Process, scaling to ~10^6 concurrent clients per harness.
// Both present the same async_write/async_read surface and produce
// bit-identical histories on the single-register layout.
//
// A KeyspaceConfig with num_keys > 1 turns the harness into a sharded
// multi-register deployment: each key is its own quorum group (KeyRouter
// per physical server id, per-key History), hosted by this ONE harness.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/cluster.h"
#include "common/rng.h"
#include "consistency/history.h"
#include "consistency/streaming_checker.h"
#include "core/client_table.h"
#include "core/keyspace.h"
#include "core/protocol.h"
#include "sim/delay_model.h"
#include "sim/fault_plan.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace mwreg {

class SimHarness {
 public:
  struct Options {
    ClusterConfig cfg;
    std::uint64_t seed = 1;
    /// Defaults to UniformDelay(1ms, 10ms) when null.
    std::unique_ptr<DelayModel> delay;
    bool fifo = false;
    /// num_keys > 1 shards the harness into a multi-register keyspace
    /// (implies table clients). num_keys <= 1 keeps the classic layout.
    KeyspaceConfig keyspace;
    /// Drive clients through the ClientTable instead of per-object
    /// WriterApi/ReaderApi instances. Wire-identical on a single register;
    /// required (and implied) for multi-key keyspaces.
    bool table_clients = false;
    /// Batch same-(destination, tick) deliveries into one simulator event
    /// (Network::Options::coalesce). Observably identical to the
    /// per-message engine — histories, digests, and stats match bit for
    /// bit — it only changes how fast the simulation runs. Default ON
    /// since the destination-major PR; per-message (false) is the
    /// registered ablation, soaked by the schedule fuzzer's parity lanes.
    bool coalesce = true;
    /// Delivery-time quantum (Network::Options::tick); 1 = exact-ns.
    Duration tick = 1;
    /// Destination-major drain + reply staging when a tick's whole frame
    /// window is foreign-event-free (Network::Options::dest_major).
    /// Frame-order (false) is the second ablation axis.
    bool dest_major = true;
    /// Subscribe a StreamingTagWitness to every key history so atomicity is
    /// checked live as operations complete (memory bounded by the
    /// concurrency window). Verdicts via stream_checker(k)->finish().
    bool streaming_check = false;
    /// With streaming_check: also retire each history's settled prefix as
    /// the checker's frontier advances, so recorder memory stays bounded on
    /// million-op runs. Retired records are gone — batch re-checks and
    /// latency scans then see only the live suffix.
    bool retire_history = false;
  };

  SimHarness(const Protocol& proto, Options opts);

  Simulator& sim() { return sim_; }
  Network& net() { return *net_; }
  const ClusterConfig& cfg() const { return cfg_; }
  History& history() { return history_; }
  Rng& rng() { return rng_; }

  /// Issue a write by writer index `wi` (key 0), recording it in the
  /// history. Returns the history OpId (useful to set_value on writes that
  /// never complete under fault injection).
  OpId async_write(int wi, std::int64_t payload,
                   std::function<void()> done = nullptr);
  /// Issue a read by reader index `ri` (key 0), recording it in the history.
  OpId async_read(int ri, std::function<void(TaggedValue)> done = nullptr);

  /// Keyed variants (table mode). The OpId indexes key `key`'s history.
  OpId async_write_key(int wi, std::uint32_t key, std::int64_t payload,
                       std::function<void()> done = nullptr);
  OpId async_read_key(int ri, std::uint32_t key,
                      std::function<void(TaggedValue)> done = nullptr);

  /// Crash `count` distinct servers chosen with the harness Rng. In
  /// multi-key mode the ids drawn are shard 0's physical servers.
  std::vector<NodeId> crash_random_servers(int count);

  /// Schedule every step of `plan` as simulator events (resolved against
  /// this harness's cluster). The log is observable via fault_log() during
  /// and after run(). Call before run(); repeated installs compose.
  /// Single-register harnesses only (plans resolve against the classic id
  /// layout).
  void install_fault_plan(const FaultPlan& plan);

  /// Log of the most recently installed plan (null when none installed).
  [[nodiscard]] const FaultPlanLog* fault_log() const {
    return fault_log_.get();
  }

  /// Run the simulator to quiescence and return events executed.
  std::size_t run() { return sim_.run(); }

  // ---- keyspace / table-client surface ----

  [[nodiscard]] bool table_mode() const { return table_ != nullptr; }
  [[nodiscard]] const KeyspaceConfig& keyspace() const { return keyspace_; }
  /// Number of registers hosted (1 for the classic layout).
  [[nodiscard]] int num_keys() const {
    return key_cfgs_.empty() ? 1 : static_cast<int>(key_cfgs_.size());
  }
  /// Key `k`'s quorum group (the full cluster config for the classic
  /// layout).
  [[nodiscard]] const ClusterConfig& key_cfg(int k) const {
    return key_cfgs_.empty() ? cfg_ : key_cfgs_[static_cast<std::size_t>(k)];
  }
  /// Key `k`'s history (the single history when not multi-key).
  History& key_history(int k) {
    return key_histories_.empty() ? history_
                                  : key_histories_[static_cast<std::size_t>(k)];
  }
  /// Key `k`'s live streaming checker; null unless Options::streaming_check.
  [[nodiscard]] StreamingTagWitness* stream_checker(int k) {
    return stream_checkers_.empty()
               ? nullptr
               : stream_checkers_[static_cast<std::size_t>(k)].get();
  }
  /// The table driver; null when running object clients.
  [[nodiscard]] ClientTable* table() { return table_.get(); }
  /// Observe every table-client completion (fires after any per-op done
  /// callback). Table mode only; pass nullptr to clear.
  void set_table_completion(ClientTable::CompleteFn fn) {
    user_hook_ = std::move(fn);
  }

 private:
  void setup_streaming(bool retire);

  ClusterConfig cfg_;
  KeyspaceConfig keyspace_;
  Rng rng_;
  Simulator sim_;
  std::unique_ptr<Network> net_;
  SpikeDelay* spike_ = nullptr;  ///< owned by net_'s delay chain
  std::shared_ptr<FaultPlanLog> fault_log_;
  std::vector<std::unique_ptr<Process>> servers_;
  std::vector<std::unique_ptr<WriterApi>> writers_;
  std::vector<std::unique_ptr<ReaderApi>> readers_;
  History history_;

  // Table mode. key_cfgs_ / key_histories_ are sized once in the ctor and
  // never resized (the table holds pointers into them).
  ClusterConfig table_global_;
  std::vector<ClusterConfig> key_cfgs_;
  std::vector<History> key_histories_;
  std::unique_ptr<ClientTable> table_;
  std::vector<std::function<void()>> write_done_;
  std::vector<std::function<void(TaggedValue)>> read_done_;
  ClientTable::CompleteFn user_hook_;

  /// One live checker per key history (empty unless streaming_check).
  std::vector<std::unique_ptr<StreamingTagWitness>> stream_checkers_;
};

}  // namespace mwreg
