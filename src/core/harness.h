// SimHarness: wires a cluster (Fig. 1) for one protocol on the simulator,
// instruments operations into a History, and exposes fault injection —
// one-shot (crash_random_servers) or declarative (install_fault_plan).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/cluster.h"
#include "common/rng.h"
#include "consistency/history.h"
#include "core/protocol.h"
#include "sim/delay_model.h"
#include "sim/fault_plan.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace mwreg {

class SimHarness {
 public:
  struct Options {
    ClusterConfig cfg;
    std::uint64_t seed = 1;
    /// Defaults to UniformDelay(1ms, 10ms) when null.
    std::unique_ptr<DelayModel> delay;
    bool fifo = false;
  };

  SimHarness(const Protocol& proto, Options opts);

  Simulator& sim() { return sim_; }
  Network& net() { return *net_; }
  const ClusterConfig& cfg() const { return cfg_; }
  History& history() { return history_; }
  Rng& rng() { return rng_; }

  /// Issue a write by writer index `wi`, recording it in the history.
  /// Returns the history OpId (useful to set_value on writes that never
  /// complete under fault injection).
  OpId async_write(int wi, std::int64_t payload,
                   std::function<void()> done = nullptr);
  /// Issue a read by reader index `ri`, recording it in the history.
  OpId async_read(int ri, std::function<void(TaggedValue)> done = nullptr);

  /// Crash `count` distinct servers chosen with the harness Rng.
  std::vector<NodeId> crash_random_servers(int count);

  /// Schedule every step of `plan` as simulator events (resolved against
  /// this harness's cluster). The log is observable via fault_log() during
  /// and after run(). Call before run(); repeated installs compose.
  void install_fault_plan(const FaultPlan& plan);

  /// Log of the most recently installed plan (null when none installed).
  [[nodiscard]] const FaultPlanLog* fault_log() const {
    return fault_log_.get();
  }

  /// Run the simulator to quiescence and return events executed.
  std::size_t run() { return sim_.run(); }

 private:
  ClusterConfig cfg_;
  Rng rng_;
  Simulator sim_;
  std::unique_ptr<Network> net_;
  SpikeDelay* spike_ = nullptr;  ///< owned by net_'s delay chain
  std::shared_ptr<FaultPlanLog> fault_log_;
  std::vector<std::unique_ptr<Process>> servers_;
  std::vector<std::unique_ptr<WriterApi>> writers_;
  std::vector<std::unique_ptr<ReaderApi>> readers_;
  History history_;
};

}  // namespace mwreg
