// Public client-facing API of an emulated multi-writer atomic register.
//
// Operations are asynchronous: they complete via callback when enough
// servers have replied (Section 2.2's round-trip schema). A client runs one
// operation at a time (well-formedness).
#pragma once

#include <cstdint>
#include <functional>

#include "common/tag.h"

namespace mwreg {

/// Write-side API. Only writers may write.
class WriterApi {
 public:
  virtual ~WriterApi() = default;
  /// Store `payload`; `done` receives the tag the protocol assigned.
  virtual void write(std::int64_t payload, std::function<void(Tag)> done) = 0;
};

/// Read-side API. Only readers may read.
class ReaderApi {
 public:
  virtual ~ReaderApi() = default;
  /// Return the register's value.
  virtual void read(std::function<void(TaggedValue)> done) = 0;
};

}  // namespace mwreg
