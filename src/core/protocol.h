// A Protocol bundles the factories and metadata of one register emulation
// (one cell of the paper's design space, Fig. 2).
#pragma once

#include <memory>
#include <string>

#include "common/cluster.h"
#include "core/register.h"
#include "sim/network.h"

namespace mwreg {

class Protocol {
 public:
  virtual ~Protocol() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Round-trips per write / read operation (the W#R# taxonomy).
  [[nodiscard]] virtual int write_round_trips() const = 0;
  [[nodiscard]] virtual int read_round_trips() const = 0;

  /// Whether the protocol guarantees atomicity on this cluster (e.g. MW-ABD
  /// needs t < S/2; the paper's W2R1 needs R < S/t - 2; the fast-write
  /// strawman never does — that is Theorem 1).
  [[nodiscard]] virtual bool guarantees_atomicity(
      const ClusterConfig& cfg) const = 0;

  [[nodiscard]] virtual std::unique_ptr<Process> make_server(
      NodeId id, Network& net, const ClusterConfig& cfg) const = 0;
  /// The returned objects are also Processes attached to `net`.
  [[nodiscard]] virtual std::unique_ptr<WriterApi> make_writer(
      NodeId id, Network& net, const ClusterConfig& cfg) const = 0;
  [[nodiscard]] virtual std::unique_ptr<ReaderApi> make_reader(
      NodeId id, Network& net, const ClusterConfig& cfg) const = 0;
};

}  // namespace mwreg
