// A Protocol bundles the factories and metadata of one register emulation
// (one cell of the paper's design space, Fig. 2).
#pragma once

#include <memory>
#include <string>

#include "common/cluster.h"
#include "core/register.h"
#include "sim/network.h"

namespace mwreg {

/// Which table-driven writer state machine a protocol's writes run as
/// (core/client_table.h). kNone means the protocol has no table program and
/// can only be driven by its heap-allocated object clients.
enum class TableWriterProgram {
  kNone,
  kAbdTwoRound,       ///< query max tag, then write (maxTS+1, wid)
  kAbdLocalTs,        ///< single-writer: one round with a local timestamp
  kFrQueryThenWrite,  ///< fast-read query (kFrQueryReq) then kFrWriteReq
  kFrLocalTs,         ///< single-writer kFrWriteReq with a local timestamp
};

/// Which table-driven reader state machine a protocol's reads run as.
enum class TableReaderProgram {
  kNone,
  kAbdTwoRound,     ///< query max value, then write-back
  kAbdOneRoundMax,  ///< max-of-quorum, no write-back (regular only)
  kFrFull,          ///< Algorithm 1 full-ack fast read
  kFrDelta,         ///< GC'd incremental (delta-ack) fast read
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Round-trips per write / read operation (the W#R# taxonomy).
  [[nodiscard]] virtual int write_round_trips() const = 0;
  [[nodiscard]] virtual int read_round_trips() const = 0;

  /// Whether the protocol guarantees atomicity on this cluster (e.g. MW-ABD
  /// needs t < S/2; the paper's W2R1 needs R < S/t - 2; the fast-write
  /// strawman never does — that is Theorem 1).
  [[nodiscard]] virtual bool guarantees_atomicity(
      const ClusterConfig& cfg) const = 0;

  /// Table-driven client programs (core/client_table.h). Protocols whose
  /// clients are ported to the dense ClientTable override these; the table
  /// reproduces the object clients' wire behavior bit-for-bit, so either
  /// driver yields identical histories.
  [[nodiscard]] virtual TableWriterProgram table_writer() const {
    return TableWriterProgram::kNone;
  }
  [[nodiscard]] virtual TableReaderProgram table_reader() const {
    return TableReaderProgram::kNone;
  }
  [[nodiscard]] bool supports_table_clients() const {
    return table_writer() != TableWriterProgram::kNone &&
           table_reader() != TableReaderProgram::kNone;
  }

  [[nodiscard]] virtual std::unique_ptr<Process> make_server(
      NodeId id, Network& net, const ClusterConfig& cfg) const = 0;
  /// The returned objects are also Processes attached to `net`.
  [[nodiscard]] virtual std::unique_ptr<WriterApi> make_writer(
      NodeId id, Network& net, const ClusterConfig& cfg) const = 0;
  [[nodiscard]] virtual std::unique_ptr<ReaderApi> make_reader(
      NodeId id, Network& net, const ClusterConfig& cfg) const = 0;
};

}  // namespace mwreg
