#include "core/workload.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <sstream>
#include <vector>

namespace mwreg {
namespace {

/// Shared driver state: counts completed ops to trigger the optional crash.
struct DriverState {
  int completed = 0;
  bool crashed = false;
};

void maybe_crash(SimHarness& h, const WorkloadOptions& opts, DriverState& st) {
  ++st.completed;
  if (st.crashed || opts.crash_servers <= 0) return;
  if (st.completed >= opts.crash_after_ops) {
    st.crashed = true;
    h.crash_random_servers(opts.crash_servers);
  }
}

void writer_loop(SimHarness& h, const WorkloadOptions& opts,
                 std::shared_ptr<DriverState> st, int wi, int remaining,
                 std::shared_ptr<Rng> rng) {
  if (remaining <= 0) return;
  const Duration think = rng->next_in(opts.think_lo, opts.think_hi);
  h.sim().schedule_after(think, [&h, &opts, st, wi, remaining, rng]() {
    // Payload encodes (writer, sequence) so violations are easy to read.
    const std::int64_t payload = static_cast<std::int64_t>(wi) * 1'000'000 +
                                 (opts.ops_per_writer - remaining + 1);
    h.async_write(wi, payload, [&h, &opts, st, wi, remaining, rng]() {
      maybe_crash(h, opts, *st);
      writer_loop(h, opts, st, wi, remaining - 1, rng);
    });
  });
}

void reader_loop(SimHarness& h, const WorkloadOptions& opts,
                 std::shared_ptr<DriverState> st, int ri, int remaining,
                 std::shared_ptr<Rng> rng) {
  if (remaining <= 0) return;
  const Duration think = rng->next_in(opts.think_lo, opts.think_hi);
  h.sim().schedule_after(think, [&h, &opts, st, ri, remaining, rng]() {
    h.async_read(ri, [&h, &opts, st, ri, remaining, rng](TaggedValue) {
      maybe_crash(h, opts, *st);
      reader_loop(h, opts, st, ri, remaining - 1, rng);
    });
  });
}

}  // namespace

void run_random_workload(SimHarness& h, const WorkloadOptions& opts) {
  auto st = std::make_shared<DriverState>();
  for (int wi = 0; wi < h.cfg().w(); ++wi) {
    writer_loop(h, opts, st, wi, opts.ops_per_writer,
                std::make_shared<Rng>(h.rng().fork()));
  }
  for (int ri = 0; ri < h.cfg().r(); ++ri) {
    reader_loop(h, opts, st, ri, opts.ops_per_reader,
                std::make_shared<Rng>(h.rng().fork()));
  }
  h.run();
}

namespace {

/// Per-slot closed-loop driver over the ClientTable. Lives on the caller's
/// stack for the duration of one run(); the think-timer closures capture
/// only {driver pointer, slot} and stay inside the simulator's inline
/// closure budget.
struct KeyspaceDriver {
  SimHarness* h = nullptr;
  const WorkloadOptions* opts = nullptr;
  ZipfSampler zipf;
  std::vector<Rng> rngs;                  ///< per slot, writers then readers
  std::vector<int> remaining;             ///< ops left to complete, per slot
  std::vector<std::uint32_t> reader_key;  ///< affine key per reader, or empty
  int w = 0;

  void schedule_next(int slot) {
    const Duration think =
        rngs[static_cast<std::size_t>(slot)].next_in(opts->think_lo,
                                                     opts->think_hi);
    KeyspaceDriver* self = this;
    h->sim().schedule_after(think, [self, slot]() { self->start_op(slot); });
  }

  void start_op(int slot) {
    const auto s = static_cast<std::size_t>(slot);
    if (slot < w) {
      const std::uint32_t key =
          static_cast<std::uint32_t>(zipf.sample(rngs[s]));
      // Payload encodes (writer, sequence), as in run_random_workload.
      const std::int64_t payload =
          static_cast<std::int64_t>(slot) * 1'000'000 +
          (opts->ops_per_writer - remaining[s] + 1);
      h->async_write_key(slot, key, payload);
    } else {
      const int ri = slot - w;
      const std::uint32_t key =
          reader_key.empty()
              ? static_cast<std::uint32_t>(zipf.sample(rngs[s]))
              : reader_key[static_cast<std::size_t>(ri)];
      h->async_read_key(ri, key);
    }
  }
};

}  // namespace

void run_keyspace_workload(SimHarness& h, const WorkloadOptions& opts) {
  assert(h.table_mode() && "keyspace workloads require table clients");
  ClientTable& table = *h.table();
  const int w = table.writer_count();
  const int r = table.reader_count();
  KeyspaceDriver d;
  d.h = &h;
  d.opts = &opts;
  d.zipf = ZipfSampler(h.num_keys(), h.keyspace().zipf_s);
  d.w = w;
  d.rngs.reserve(static_cast<std::size_t>(w + r));
  for (int i = 0; i < w + r; ++i) d.rngs.push_back(h.rng().fork());
  d.remaining.resize(static_cast<std::size_t>(w + r));
  for (int wi = 0; wi < w; ++wi) {
    d.remaining[static_cast<std::size_t>(wi)] = opts.ops_per_writer;
  }
  for (int ri = 0; ri < r; ++ri) {
    d.remaining[static_cast<std::size_t>(w + ri)] = opts.ops_per_reader;
  }
  if (table.reader_key_affine()) {
    d.reader_key.resize(static_cast<std::size_t>(r));
    for (int ri = 0; ri < r; ++ri) {
      d.reader_key[static_cast<std::size_t>(ri)] = static_cast<std::uint32_t>(
          reader_key_of(ri, h.num_keys(), r));
    }
  }
  h.set_table_completion([&d](int slot, OpKind, const TaggedValue&) {
    if (--d.remaining[static_cast<std::size_t>(slot)] > 0) {
      d.schedule_next(slot);
    }
  });
  for (int slot = 0; slot < w + r; ++slot) {
    if (d.remaining[static_cast<std::size_t>(slot)] > 0) d.schedule_next(slot);
  }
  h.run();
  h.set_table_completion(nullptr);
}

std::vector<double> latency_samples_ms(const History& h, OpKind kind) {
  std::vector<double> lat;
  for (const OpRecord& r : h.ops()) {
    if (r.kind != kind || !r.completed()) continue;
    lat.push_back(static_cast<double>(r.resp - r.invoke) /
                  static_cast<double>(kMillisecond));
  }
  return lat;
}

namespace {

/// Interpolated percentile over a sorted sample vector (same convention as
/// numpy's default): exact for the pooled distribution, no nearest-rank
/// bias at small counts.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace

LatencyStats summarize_latency(std::vector<double> samples_ms) {
  LatencyStats s;
  s.count = samples_ms.size();
  if (samples_ms.empty()) return s;
  std::sort(samples_ms.begin(), samples_ms.end());
  double sum = 0;
  for (double v : samples_ms) sum += v;
  s.mean_ms = sum / static_cast<double>(samples_ms.size());
  s.p50_ms = percentile(samples_ms, 0.50);
  s.p99_ms = percentile(samples_ms, 0.99);
  s.max_ms = samples_ms.back();
  return s;
}

LatencyStats latency_of(const History& h, OpKind kind) {
  return summarize_latency(latency_samples_ms(h, kind));
}

FaultMetrics compute_fault_metrics(const History& h, const FaultPlanLog& log) {
  FaultMetrics m;
  m.faults_injected = log.faults_injected;
  if (!log.disrupted()) return m;
  const Time start = log.disruption_start;
  const Time end = log.healed() ? log.heal_time : kTimeMax;
  Time first_after = kTimeMax;
  for (const OpRecord& r : h.ops()) {
    if (!r.completed()) continue;
    if (r.resp >= start && r.resp <= end) ++m.ops_under_fault;
    if (log.healed() && r.resp > end) {
      first_after = std::min(first_after, r.resp);
    }
  }
  if (first_after != kTimeMax) {
    m.recovery_ms = static_cast<double>(first_after - log.heal_time) /
                    static_cast<double>(kMillisecond);
  }
  return m;
}

std::string to_string(const LatencyStats& s) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << "n=" << s.count << " mean=" << s.mean_ms
     << "ms p50=" << s.p50_ms << "ms p99=" << s.p99_ms << "ms max=" << s.max_ms
     << "ms";
  return os.str();
}

}  // namespace mwreg
