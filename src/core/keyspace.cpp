#include "core/keyspace.h"

#include <algorithm>
#include <sstream>

namespace mwreg {

std::string KeyspaceConfig::to_string() const {
  std::ostringstream os;
  os << "K=" << num_keys << " shards=" << shards << " zipf=" << zipf_s;
  return os.str();
}

ZipfSampler::ZipfSampler(int num_keys, double s) {
  cdf_.resize(static_cast<std::size_t>(num_keys));
  double sum = 0;
  for (int k = 0; k < num_keys; ++k) {
    sum += std::pow(static_cast<double>(k + 1), -s);
    cdf_[static_cast<std::size_t>(k)] = sum;
  }
  for (double& c : cdf_) c /= sum;
}

int ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<int>(it - cdf_.begin());
  return std::min(idx, static_cast<int>(cdf_.size()) - 1);
}

int reader_key_of(int ri, int num_keys, int num_readers) {
  // begin(k) = floor(k*R/K) is nondecreasing; start at the proportional
  // guess and nudge — at most one step in either direction.
  int k = static_cast<int>(static_cast<long long>(ri) * num_keys /
                           num_readers);
  if (k >= num_keys) k = num_keys - 1;
  while (k > 0 && reader_block_begin(k, num_keys, num_readers) > ri) --k;
  while (k + 1 < num_keys &&
         reader_block_begin(k + 1, num_keys, num_readers) <= ri) {
    ++k;
  }
  return k;
}

}  // namespace mwreg
