// Closed-loop random workloads and latency accounting over histories.
#pragma once

#include <cstdint>
#include <string>

#include "core/harness.h"

namespace mwreg {

struct WorkloadOptions {
  int ops_per_writer = 10;
  int ops_per_reader = 10;
  /// Uniform think time between a client's operations.
  Duration think_lo = 0;
  Duration think_hi = 5 * kMillisecond;
  /// Crash this many random servers once `crash_after` operations completed
  /// cluster-wide (0 = never crash).
  int crash_servers = 0;
  int crash_after_ops = 0;
};

/// Drive every writer and reader through its closed loop until all ops
/// complete; runs the simulator to quiescence. Works with both client
/// drivers (object clients and the ClientTable), always on key 0.
void run_random_workload(SimHarness& h, const WorkloadOptions& opts);

/// Keyed closed loop over a table-driven harness: writers pick a Zipfian
/// key per op; readers read their affine key (reader-affine protocols) or
/// a Zipfian key. Ignores the crash options — fault plans and crashes are
/// single-register features. Callable repeatedly on one harness, so
/// steady-state probes can reuse a warm table.
void run_keyspace_workload(SimHarness& h, const WorkloadOptions& opts);

/// Latency summary extracted from a history.
struct LatencyStats {
  std::size_t count = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

/// Latencies (ms, virtual time) of every completed op of `kind`, in
/// history order.
std::vector<double> latency_samples_ms(const History& h, OpKind kind);

/// THE latency summary over raw samples: mean, interpolated p50/p99 over
/// the sorted distribution, max. The single implementation behind both
/// latency_of and the experiment Aggregator (exp::summarize_latency
/// forwards here), so bench output and aggregator reports agree on the
/// same samples.
LatencyStats summarize_latency(std::vector<double> samples_ms);

LatencyStats latency_of(const History& h, OpKind kind);

std::string to_string(const LatencyStats& s);

/// Availability accounting of one trial against an executed fault plan.
struct FaultMetrics {
  int faults_injected = 0;
  /// Ops that completed inside the disruption window
  /// [disruption_start, heal_time] (open-ended when never healed).
  std::size_t ops_under_fault = 0;
  /// Time from the heal to the first completion after it, in ms;
  /// -1 when the plan never healed or nothing completed afterwards.
  double recovery_ms = -1;
};

FaultMetrics compute_fault_metrics(const History& h, const FaultPlanLog& log);

}  // namespace mwreg
