// Dense table-driven client state machines: one Process hosting every
// writer and reader of a harness as struct-of-arrays slots.
//
// The object clients (RpcClient subclasses in src/protocols/) are one heap
// allocation plus a vtable plus per-op std::function closures per client —
// fine for tens of clients, fatal for 10^6. The ClientTable is the same
// move PR 3 made for events: per-client state lives inline in flat arrays
// indexed by slot (writers first, then readers), each in-flight operation
// is a phase enum plus an accumulator in those arrays, and replies dispatch
// through one on_message entry point — no closures, no virtual calls, no
// per-op allocation.
//
// Wire parity. The table reproduces the object clients' behavior exactly:
// per-slot rpc ids start at 1 and increment per round, fan-out walks the
// key's server ids in order acquiring one pooled payload copy per server
// and releasing the original afterwards, and a round completes at the
// quorum-th reply (late replies are dropped). Identical send sequences mean
// identical delay draws, identical event interleavings, identical
// histories — tests/client_table_test.cpp pins the golden batch digest on
// both drivers. (The only divergence is invisible to the simulation: the
// table decodes replies in place instead of buffering pooled copies until
// quorum, which changes pool stats but no message, event, or history.)
//
// Keys. Every operation addresses a key of a keyspace (core/keyspace.h);
// requests carry Message::key so KeyRouters can dispatch to per-key
// replicas. The classic single-register harness is the 1-key special case.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/cluster.h"
#include "consistency/history.h"
#include "core/protocol.h"
#include "protocols/fastread_clients.h"
#include "protocols/messages.h"
#include "sim/network.h"

namespace mwreg {

class ClientTable final : public Process {
 public:
  /// Completion hook: `slot` is the table slot (writers [0, W), readers
  /// [W, W+R)), `value` the written (tag, payload) or the value read. The
  /// per-key History has already been updated when it fires.
  using CompleteFn =
      std::function<void(int slot, OpKind kind, const TaggedValue& value)>;

  /// `global` supplies the client id ranges (its writer/reader ids must
  /// cover every per-key config's clients); `key_cfgs[k]` is key k's quorum
  /// group; `histories[k]` records key k's operations. Both vectors must
  /// outlive the table. Attaches itself at every client id.
  ClientTable(Network& net, const ClusterConfig& global,
              const std::vector<ClusterConfig>& key_cfgs,
              TableWriterProgram writer_program,
              TableReaderProgram reader_program,
              std::vector<History*> histories);

  void on_message(const Frame& m) override;

  /// Batched delivery: a tick's worth of replies to many table clients
  /// lands as one span; one virtual dispatch, then a non-virtual demux per
  /// frame (slot lookup is an id-range subtraction, not worth run-batching).
  /// Under the destination-major drain this span covers EVERY table client
  /// addressed in the tick (the table is one process at many node ids) —
  /// the per-frame dst demux makes that free. Tracks the frame being
  /// processed so mid-run round transitions (RT1 quorum -> RT2 broadcast)
  /// attribute their fan-out to the triggering reply for reply staging.
  void on_deliver_batch(FrameSpan frames) override {
    for (const Frame& f : frames) {
      cause_ = &f;
      handle_reply(f);
    }
    cause_ = nullptr;
  }

  /// Start a write by writer `wi` on `key`; one op per slot at a time.
  /// Returns the OpId in key `key`'s history.
  OpId start_write(int wi, std::uint32_t key, std::int64_t payload);
  /// Start a read by reader `ri` on `key`.
  OpId start_read(int ri, std::uint32_t key);

  void set_on_complete(CompleteFn fn) { on_complete_ = std::move(fn); }

  /// True when the reader program carries per-register state (valQueues,
  /// server caches, watermarks): each reader must then serve exactly one
  /// key (core/keyspace.h reader blocks).
  [[nodiscard]] bool reader_key_affine() const {
    return reader_program_ == TableReaderProgram::kFrFull ||
           reader_program_ == TableReaderProgram::kFrDelta;
  }

  [[nodiscard]] int writer_count() const { return w_; }
  [[nodiscard]] int reader_count() const { return r_; }
  [[nodiscard]] std::uint64_t rounds_completed() const { return rounds_done_; }

  /// Decode-arena growth across all fr-full readers; pinned flat after
  /// warmup by the allocation regression tests.
  [[nodiscard]] std::uint64_t decode_arena_grows() const;

 private:
  /// Per-reader state of the fast-read programs. Heap-boxed (one allocation
  /// per reader at construction, none afterwards) so non-fr tables carry
  /// zero per-slot overhead.
  struct FrReaderState {
    std::vector<TaggedValue> val_queue;  ///< sorted unique; starts {bottom}
    std::vector<FrEntryArena> arenas;    ///< full mode: one per reply index
    std::vector<FrServerCache> caches;   ///< delta mode: per server index
    std::vector<int> round_servers;      ///< delta mode: arrival order
    TaggedValue watermark{};
    // reusable per-read scratch
    std::vector<FrView> views;
    std::vector<TaggedValue> cand;
    std::vector<TaggedValue> queue_merge;
    std::vector<std::uint64_t> acked_scratch;
    std::vector<TaggedValue> queue_scratch;
    FrEntry entry_scratch;
  };

  [[nodiscard]] NodeId slot_node(int slot) const {
    return slot < w_ ? global_.writer_id(slot) : global_.reader_id(slot - w_);
  }
  [[nodiscard]] int slot_of(NodeId id) const {
    if (global_.is_writer(id)) return id - global_.first_client();
    if (global_.is_reader(id)) return w_ + (id - global_.first_reader());
    return -1;
  }

  /// Open a new round for `slot`: broadcast one pooled copy of `payload`
  /// per server of `key`'s group, mirroring RpcClient::round_trip exactly.
  void broadcast(int slot, std::uint32_t key, MsgType type,
                 std::vector<std::uint8_t> payload);

  void handle_reply(const Frame& m);
  void on_writer_reply(int slot, const Frame& m);
  void on_reader_reply(int slot, const Frame& m);
  void begin_write_round2(int slot, Tag tag);
  void complete_write(int slot);
  void complete_read(int slot, const TaggedValue& v);

  void reader_decide_full(int slot);
  void reader_decide_delta(int slot);

  ClusterConfig global_;
  const std::vector<ClusterConfig>& key_cfgs_;
  TableWriterProgram writer_program_;
  TableReaderProgram reader_program_;
  std::vector<History*> histories_;
  CompleteFn on_complete_;
  /// Frame currently being handled (null outside delivery): the cause
  /// passed to the network so mid-run broadcasts get staged (network.h).
  const Frame* cause_ = nullptr;
  int w_ = 0;
  int r_ = 0;
  std::uint64_t rounds_done_ = 0;

  // ---- struct-of-arrays client state, indexed by slot ----
  /// 0 = idle, 1 = first round-trip in flight, 2 = second.
  std::vector<std::uint8_t> phase_;
  std::vector<std::uint32_t> key_;
  std::vector<std::uint64_t> rpc_;       ///< current round's id (0 = none)
  std::vector<std::uint64_t> next_rpc_;  ///< per-slot counter, starts at 1
  std::vector<std::int32_t> acks_;
  std::vector<OpId> op_;
  std::vector<std::int64_t> wr_payload_;  ///< writers: value being written
  std::vector<Tag> acc_tag_;   ///< writers: RT1 max, then the assigned tag
  std::vector<TaggedValue> acc_val_;  ///< abd readers: best value so far
  std::vector<std::int64_t> local_ts_;  ///< local-timestamp writers
  std::vector<std::unique_ptr<FrReaderState>> fr_;  ///< fr readers only
};

}  // namespace mwreg
