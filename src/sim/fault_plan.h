// Declarative fault schedules ("fault plans") executed as simulator events.
//
// The paper's impossibility arguments are driven by adversarial schedules:
// crashed servers, "skipped" servers (links blocked for the rest of the
// execution), and delay inflation. A FaultPlan captures such a schedule as
// data — a list of timed steps — so the experiment runner can sweep
// protocols across fault scenarios exactly like it sweeps clusters and
// seeds. Plans are cluster-agnostic: symbolic scopes (fault budget,
// majority) are resolved against the concrete ClusterConfig when the plan
// is installed on a network, so one plan literal serves every cell of a
// sweep.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/cluster.h"
#include "common/types.h"
#include "sim/delay_model.h"
#include "sim/network.h"

namespace mwreg {

/// One timed action of a fault plan.
struct FaultStep {
  enum class Kind : std::uint8_t {
    kCrashServer,   ///< crash server `index`
    kRecoverServer, ///< recover server `index` (Network::recover)
    kPartition,     ///< isolate a server set from every node outside it
    kHeal,          ///< unblock every link this plan has blocked so far
    kSkipSchedule,  ///< Fig. 9-style skip: each client loses disjoint t-sets
    kDelaySpike,    ///< multiply message delays by `factor` from here on
  };

  /// How many servers a kPartition isolates; resolved per cluster.
  enum class Scope : std::uint8_t {
    kExplicit,    ///< `count` servers, starting at server index `index`
    /// Exactly t servers — within budget, quorums stay reachable. On a
    /// t = 0 cluster this isolates nothing (the step becomes a no-op).
    kFaultBudget,
    kMajority,    ///< floor(S/2)+1 servers — quorums unreachable until heal
  };

  Time at = 0;
  Kind kind = Kind::kCrashServer;
  int index = 0;    ///< server index (crash/recover, kExplicit partition base)
  int count = 1;    ///< partition width when scope == kExplicit
  Scope scope = Scope::kExplicit;
  double factor = 1.0;  ///< kDelaySpike multiplier (1.0 restores normal delays)
};

/// A named, ordered fault schedule. Plans are plain values: copyable,
/// comparable by digest(), and safe to share across the trials of a sweep.
struct FaultPlan {
  std::string name;
  std::vector<FaultStep> steps;

  [[nodiscard]] bool empty() const { return name.empty() && steps.empty(); }

  /// Empty string when well-formed, else a human-readable reason.
  [[nodiscard]] std::string validate() const;

  /// FNV-1a over the name and every step field; mixed into
  /// exp::cell_digest so distinct plans never share RNG streams.
  [[nodiscard]] std::uint64_t digest() const;

  // Fluent builders (return *this so plans read as schedules).
  FaultPlan& crash(int server_index, Time at);
  FaultPlan& recover(int server_index, Time at);
  FaultPlan& partition(FaultStep::Scope scope, Time at, int index = 0,
                       int count = 1);
  FaultPlan& heal(Time at);
  FaultPlan& skip_schedule(Time at);
  FaultPlan& delay_spike(double factor, Time at);
};

/// What a plan actually did in one trial, for availability accounting.
/// Updated live by the scheduled step events. heal_time is only set while
/// NO injected disruption remains active (every crash recovered, every
/// block lifted, delays back to normal); a later disruptive step reopens
/// the window, so healed() never claims recovery from a persistent fault.
/// One log may be shared by several installed plans (repeated
/// SimHarness::install_fault_plan calls compose into one log).
struct FaultPlanLog {
  int faults_injected = 0;           ///< disruptive steps executed
  Time disruption_start = kTimeMax;  ///< time of the first disruptive step
  Time heal_time = kTimeMax;         ///< when the last disruption was lifted

  [[nodiscard]] bool disrupted() const { return disruption_start != kTimeMax; }
  [[nodiscard]] bool healed() const { return heal_time != kTimeMax; }

  /// Live state the installer's events use to decide when the disruption
  /// has fully cleared; spans every plan sharing this log. Blocked links
  /// are refcounted per directed pair so that when composed plans declare
  /// overlapping partitions, one plan's heal never lifts a block another
  /// plan still holds.
  std::set<NodeId> active_crashes;
  std::map<std::pair<NodeId, NodeId>, int> block_refs;
  bool active_spike = false;

  [[nodiscard]] bool disruption_active() const {
    return !active_crashes.empty() || !block_refs.empty() || active_spike;
  }
};

/// Schedule every step of `plan` onto `net`'s simulator, resolving symbolic
/// scopes against `cfg`. `spike` (may be null) receives kDelaySpike factors;
/// a plan with spike steps but no spike model is a no-op for those steps.
/// Steps that resolve to nothing (empty partition or skip on a t = 0
/// cluster, spike without a model) are excluded from the log: they neither
/// count as injected faults nor open the disruption window.
/// Returns the log the scheduled events write into; `net` must outlive the
/// simulation run. Pass a previous install's `log` to compose several
/// plans into one shared accounting (null creates a fresh log).
std::shared_ptr<FaultPlanLog> install_fault_plan(
    Network& net, const ClusterConfig& cfg, const FaultPlan& plan,
    SpikeDelay* spike = nullptr, std::shared_ptr<FaultPlanLog> log = nullptr);

/// Canned scenario library used by benches, examples, and tests. Times are
/// tuned for the default closed-loop workload (ops complete in ~10–30 ms of
/// virtual time, runs last a few hundred ms).
namespace scenarios {

/// Crash one server permanently (within the failure budget when t >= 1).
FaultPlan single_crash(Time at = 30 * kMillisecond);

/// Crash one server, then recover it: crash -> recover availability dip.
FaultPlan crash_recover(Time at = 30 * kMillisecond,
                        Time recover_at = 90 * kMillisecond);

/// Crash and recover servers one at a time, at most one down at once.
FaultPlan rolling_crashes(int rounds = 3, Time start = 30 * kMillisecond,
                          Duration gap = 30 * kMillisecond);

/// Isolate t servers (a strict minority for t < S/2): quorums of S - t
/// remain reachable, so safe protocols must stay atomic AND live.
FaultPlan minority_partition(Time at = 30 * kMillisecond,
                             Time heal_at = 90 * kMillisecond);

/// Isolate floor(S/2)+1 servers: quorums are unreachable, operations stall
/// until the heal, then complete (degraded availability, preserved safety).
FaultPlan majority_partition(Time at = 30 * kMillisecond,
                             Time heal_at = 90 * kMillisecond);

/// The Fig. 9-style skip schedule: writer 0 and each reader lose links to
/// disjoint t-sized server sets (asymmetric blocks, within budget per
/// client), healed at `heal_at`.
FaultPlan fig9_skip(Time at = 30 * kMillisecond,
                    Time heal_at = 90 * kMillisecond);

/// Inflate every message delay by `factor` inside a window.
FaultPlan delay_spike(double factor = 5.0, Time at = 30 * kMillisecond,
                      Time settle_at = 90 * kMillisecond);

/// The whole library, distinct names, every plan valid.
std::vector<FaultPlan> all();

}  // namespace scenarios

}  // namespace mwreg
