// Recycled byte buffers for message payloads.
//
// Every message hop used to cost at least one fresh std::vector (the
// ByteWriter encode buffer, plus one copy per fan-out destination). The
// pool keeps released buffers and hands them back cleared with their old
// capacity, so steady-state traffic allocates nothing. The miss counter is
// the observable: once a workload has warmed the pool, misses stop growing
// (tests/alloc_regression_test.cpp asserts exactly that), and
// bench_simcore_throughput reports it per run.
//
// The pool is owned by a Network and is strictly single-threaded, like the
// simulator it serves: each experiment trial has its own pool, which is
// what keeps multi-threaded sweeps deterministic.
#pragma once

#include <cstdint>
#include <vector>

namespace mwreg {

class BufferPool {
 public:
  using Buffer = std::vector<std::uint8_t>;

  /// An empty buffer, with recycled capacity when the pool has one.
  [[nodiscard]] Buffer acquire() {
    ++stats_.acquired;
    if (free_.empty()) {
      ++stats_.misses;
      return Buffer{};
    }
    Buffer b = std::move(free_.back());
    free_.pop_back();
    b.clear();
    return b;
  }

  /// Return a buffer's storage to the pool. Capacity-less buffers are
  /// ignored; beyond the retention cap buffers are freed (counted).
  void release(Buffer b) {
    if (b.capacity() == 0) return;
    if (free_.size() >= kMaxFree) {
      ++stats_.dropped;
      return;
    }
    ++stats_.recycled;
    free_.push_back(std::move(b));
  }

  struct Stats {
    std::uint64_t acquired = 0;
    std::uint64_t misses = 0;    ///< acquires that handed out a fresh buffer
    std::uint64_t recycled = 0;  ///< buffers returned for reuse
    std::uint64_t dropped = 0;   ///< releases past the retention cap
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Buffers currently parked in the pool.
  [[nodiscard]] std::size_t idle_buffers() const { return free_.size(); }

 private:
  /// Bounds pool memory under pathological fan-out. Sized for million-client
  /// table-driven workloads, whose in-flight working set legitimately
  /// fluctuates by far more than the old 4096 cap: releasing a burst only to
  /// re-acquire it a tick later would show up as steady-state allocations.
  static constexpr std::size_t kMaxFree = 1 << 20;

  std::vector<Buffer> free_;
  Stats stats_;
};

}  // namespace mwreg
