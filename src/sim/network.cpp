#include "sim/network.h"

#include <algorithm>
#include <cassert>

namespace mwreg {

Network::Network(Simulator& sim, std::unique_ptr<DelayModel> delay, Rng rng,
                 bool fifo)
    : sim_(sim), delay_(std::move(delay)), rng_(rng), fifo_(fifo) {}

void Network::attach(NodeId id, Process& p) {
  if (static_cast<std::size_t>(id) >= procs_.size()) {
    procs_.resize(static_cast<std::size_t>(id) + 1, nullptr);
  }
  procs_[static_cast<std::size_t>(id)] = &p;
}

void Network::discard(Message&& m) { pool_.release(std::move(m.payload)); }

void Network::send(Message m) {
  ++stats_.sent;
  stats_.bytes_sent += m.payload.size();
  if (crashed(m.src)) {  // a crashed node sends nothing
    ++stats_.from_crashed;
    discard(std::move(m));
    return;
  }
  deliver_later(std::move(m), sim_.now());
}

void Network::deliver_later(Message m, Time sent) {
  if (crashed(m.dst)) {
    ++stats_.to_crashed;
    discard(std::move(m));
    return;
  }
  if (link_blocked(m.src, m.dst)) {
    held_.emplace_back(std::move(m), sent);
    ++stats_.held;
    return;
  }
  Duration d = delay_->sample(m.src, m.dst, rng_);
  Time at = sim_.now() + d;
  if (fifo_) {
    auto& row = last_delivery_;
    const auto s = static_cast<std::size_t>(m.src);
    const auto t = static_cast<std::size_t>(m.dst);
    if (row.size() <= s) row.resize(s + 1);
    if (row[s].size() <= t) row[s].resize(t + 1, 0);
    at = std::max(at, row[s][t]);
    row[s][t] = at;
  }
  // The capture (this + Message + Time) fits the simulator's inline event
  // storage, so a hop schedules without allocating.
  sim_.schedule_at(at, [this, m = std::move(m), sent]() mutable {
    deliver_now(std::move(m), sent);
  });
}

void Network::deliver_now(Message m, Time sent) {
  if (crashed(m.dst)) {
    ++stats_.to_crashed;
    discard(std::move(m));
    return;
  }
  // A message can be scheduled before its link is blocked; honor the block
  // at delivery time so block_link() acts as a clean cut.
  if (link_blocked(m.src, m.dst)) {
    held_.emplace_back(std::move(m), sent);
    ++stats_.held;
    return;
  }
  ++stats_.delivered;
  if (hook_) hook_(m, sent, sim_.now());
  Process* p = static_cast<std::size_t>(m.dst) < procs_.size()
                   ? procs_[static_cast<std::size_t>(m.dst)]
                   : nullptr;
  assert(p != nullptr && "message to unattached node");
  if (p != nullptr) p->on_message(m);
  discard(std::move(m));  // recycle the payload storage for the next hop
}

void Network::crash(NodeId id) {
  assert(id >= 0);
  if (id < 0) return;  // sentinel ids (kNoNode) never index the table
  const auto i = static_cast<std::size_t>(id);
  if (i >= crashed_.size()) crashed_.resize(i + 1, 0);
  if (crashed_[i] == 0) {
    crashed_[i] = 1;
    ++num_crashed_;
  }
}

void Network::recover(NodeId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= crashed_.size()) return;
  const auto i = static_cast<std::size_t>(id);
  if (crashed_[i] != 0) {
    crashed_[i] = 0;
    --num_crashed_;
  }
}

void Network::block_link(NodeId src, NodeId dst) {
  assert(src >= 0 && dst >= 0);
  if (src < 0 || dst < 0) return;  // sentinel ids never index the table
  const auto s = static_cast<std::size_t>(src);
  const auto d = static_cast<std::size_t>(dst);
  if (s >= blocked_.size()) blocked_.resize(s + 1);
  if (d >= blocked_[s].size()) blocked_[s].resize(d + 1, 0);
  if (blocked_[s][d] == 0) {
    blocked_[s][d] = 1;
    ++num_blocked_;
  }
}

void Network::block_pair(NodeId a, NodeId b) {
  block_link(a, b);
  block_link(b, a);
}

void Network::unblock_link(NodeId src, NodeId dst) {
  if (!link_blocked(src, dst)) return;
  blocked_[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)] = 0;
  --num_blocked_;
  std::vector<std::pair<Message, Time>> still_held;
  still_held.reserve(held_.size());
  for (auto& [m, sent] : held_) {
    if (m.src == src && m.dst == dst) {
      --stats_.held;
      deliver_later(std::move(m), sent);
    } else {
      still_held.emplace_back(std::move(m), sent);
    }
  }
  held_ = std::move(still_held);
}

void Network::unblock_pair(NodeId a, NodeId b) {
  unblock_link(a, b);
  unblock_link(b, a);
}

}  // namespace mwreg
