#include "sim/network.h"

#include <algorithm>
#include <cassert>

namespace mwreg {

Network::Network(Simulator& sim, std::unique_ptr<DelayModel> delay, Rng rng,
                 bool fifo)
    : sim_(sim), delay_(std::move(delay)), rng_(rng), fifo_(fifo) {}

void Network::attach(NodeId id, Process& p) {
  if (static_cast<std::size_t>(id) >= procs_.size()) {
    procs_.resize(static_cast<std::size_t>(id) + 1, nullptr);
  }
  procs_[static_cast<std::size_t>(id)] = &p;
}

void Network::send(Message m) {
  ++stats_.sent;
  if (crashed_.count(m.src) > 0) {  // a crashed node sends nothing
    ++stats_.from_crashed;
    return;
  }
  deliver_later(std::move(m), sim_.now());
}

void Network::deliver_later(Message m, Time sent) {
  if (crashed_.count(m.dst) > 0) {
    ++stats_.to_crashed;
    return;
  }
  if (blocked_.count({m.src, m.dst}) > 0) {
    held_.emplace_back(std::move(m), sent);
    ++stats_.held;
    return;
  }
  Duration d = delay_->sample(m.src, m.dst, rng_);
  Time at = sim_.now() + d;
  if (fifo_) {
    auto& row = last_delivery_;
    const auto s = static_cast<std::size_t>(m.src);
    const auto t = static_cast<std::size_t>(m.dst);
    if (row.size() <= s) row.resize(s + 1);
    if (row[s].size() <= t) row[s].resize(t + 1, 0);
    at = std::max(at, row[s][t]);
    row[s][t] = at;
  }
  sim_.schedule_at(
      at, [this, m = std::move(m), sent]() { deliver_now(m, sent); });
}

void Network::deliver_now(const Message& m, Time sent) {
  if (crashed_.count(m.dst) > 0) {
    ++stats_.to_crashed;
    return;
  }
  // A message can be scheduled before its link is blocked; honor the block
  // at delivery time so block_link() acts as a clean cut.
  if (blocked_.count({m.src, m.dst}) > 0) {
    held_.emplace_back(m, sent);
    ++stats_.held;
    return;
  }
  ++stats_.delivered;
  if (hook_) hook_(m, sent, sim_.now());
  Process* p = static_cast<std::size_t>(m.dst) < procs_.size()
                   ? procs_[static_cast<std::size_t>(m.dst)]
                   : nullptr;
  assert(p != nullptr && "message to unattached node");
  if (p != nullptr) p->on_message(m);
}

void Network::crash(NodeId id) { crashed_.insert(id); }

void Network::recover(NodeId id) { crashed_.erase(id); }

void Network::block_link(NodeId src, NodeId dst) {
  blocked_.insert({src, dst});
}

void Network::block_pair(NodeId a, NodeId b) {
  block_link(a, b);
  block_link(b, a);
}

void Network::unblock_link(NodeId src, NodeId dst) {
  blocked_.erase({src, dst});
  std::vector<std::pair<Message, Time>> still_held;
  still_held.reserve(held_.size());
  for (auto& [m, sent] : held_) {
    if (m.src == src && m.dst == dst) {
      --stats_.held;
      deliver_later(std::move(m), sent);
    } else {
      still_held.emplace_back(std::move(m), sent);
    }
  }
  held_ = std::move(still_held);
}

void Network::unblock_pair(NodeId a, NodeId b) {
  unblock_link(a, b);
  unblock_link(b, a);
}

}  // namespace mwreg
