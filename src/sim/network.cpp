#include "sim/network.h"

#include <algorithm>
#include <cassert>

namespace mwreg {

namespace {

/// Mix a deliver-time into a table index. Fibonacci-style multiply so
/// consecutive ticks land in different slots.
std::size_t open_hash(Time at) {
  std::uint64_t x = static_cast<std::uint64_t>(at);
  x *= 0x9E3779B97F4A7C15ULL;
  return static_cast<std::size_t>(x >> 32);
}

int span_bucket(std::size_t n) {
  int b = 0;
  while (n > 1 && b < CoalesceStats::kHistBuckets - 1) {
    n >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

Network::Network(Simulator& sim, std::unique_ptr<DelayModel> delay, Rng rng,
                 Options opts)
    : sim_(sim), delay_(std::move(delay)), rng_(rng), opts_(opts) {
  if (opts_.tick < 1) opts_.tick = 1;
  if (opts_.coalesce) open_tab_.resize(1024);
}

void Network::attach(NodeId id, Process& p) {
  if (static_cast<std::size_t>(id) >= procs_.size()) {
    procs_.resize(static_cast<std::size_t>(id) + 1, nullptr);
  }
  procs_[static_cast<std::size_t>(id)] = &p;
}

void Network::reserve_coalescing(std::size_t expected_batches,
                                 std::size_t frames_per_batch,
                                 std::size_t bytes_per_frame) {
  if (!opts_.coalesce) return;
  std::size_t tab = open_tab_.size();
  while (tab < 4 * expected_batches) tab <<= 1;
  if (tab > open_tab_.size()) open_tab_.assign(tab, OpenEntry{});
  // The lookup table is sized for the full destination count (entries are
  // cheap and collisions cost coalescing quality), but batch pre-creation
  // is bounded: past this, warmup traffic grows the pool organically and
  // capacities ratchet from real frame shapes instead of worst-case ones.
  const std::size_t precreate = std::min<std::size_t>(expected_batches, 4096);
  while (batches_.size() < precreate) {
    batches_.push_back(std::make_unique<Batch>());
    Batch& b = *batches_.back();
    b.slab.reserve(frames_per_batch * bytes_per_frame);
    b.frames.reserve(frames_per_batch);
    b.meta.reserve(frames_per_batch);
    free_batches_.push_back(static_cast<std::uint32_t>(batches_.size() - 1));
  }
}

void Network::discard(Message&& m) { pool_.release(std::move(m.payload)); }

Time Network::arrival_time(NodeId src, NodeId dst) {
  const Duration d = delay_->sample(src, dst, rng_);
  Time at = sim_.now() + d;
  if (opts_.tick > 1) {
    // Round up to the tick grid — applied identically in both engines, so
    // coalescing on/off stays bit-identical at any tick.
    at = ((at + opts_.tick - 1) / opts_.tick) * opts_.tick;
  }
  if (opts_.fifo) {
    const auto di = static_cast<std::size_t>(dst);
    const auto si = static_cast<std::size_t>(src);
    if (fifo_last_.size() <= di) fifo_last_.resize(di + 1);
    auto& row = fifo_last_[di];
    if (row.size() <= si) row.resize(si + 1, 0);
    at = std::max(at, row[si]);
    row[si] = at;
  }
  return at;
}

void Network::send(Message m, const Frame* cause) {
  ++stats_.sent;
  stats_.bytes_sent += m.payload.size();
  if (stage_active_ && cause != nullptr) {
    // Destination-major drain in progress: defer to the staging buffer
    // (crash/block checks and the delay draw happen at flush, in canonical
    // frame order).
    stage_send(cause->bix, m.src, m.dst, m.type, m.key, m.rpc_id,
               ByteSpan(m.payload));
    discard(std::move(m));
    return;
  }
  if (crashed(m.src)) {  // a crashed node sends nothing
    ++stats_.from_crashed;
    discard(std::move(m));
    return;
  }
  deliver_later(std::move(m), sim_.now());
}

void Network::send_bytes(NodeId src, NodeId dst, MsgType type,
                         std::uint32_t key, std::uint64_t rpc_id,
                         ByteSpan bytes, const Frame* cause) {
  ++stats_.sent;
  stats_.bytes_sent += bytes.size();
  if (stage_active_ && cause != nullptr) {
    stage_send(cause->bix, src, dst, type, key, rpc_id, bytes);
    return;
  }
  if (crashed(src)) {
    ++stats_.from_crashed;
    return;
  }
  if (opts_.coalesce) {
    // Same check order as deliver_later: crash, block, then delay sample —
    // blocked and dropped messages draw no randomness in either engine.
    if (crashed(dst)) {
      ++stats_.to_crashed;
      return;
    }
    if (link_blocked(src, dst)) {
      Frame f;
      f.src = src;
      f.dst = dst;
      f.type = type;
      f.key = key;
      f.rpc_id = rpc_id;
      f.payload = bytes;
      hold_copy(f, sim_.now());
      return;
    }
    enqueue_frame(src, dst, type, key, rpc_id, bytes, sim_.now(),
                  arrival_time(src, dst));
    return;
  }
  Message m;
  m.src = src;
  m.dst = dst;
  m.type = type;
  m.key = key;
  m.rpc_id = rpc_id;
  if (!bytes.empty()) {
    m.payload = pool_.acquire();
    m.payload.assign(bytes.begin(), bytes.end());
  }
  deliver_later(std::move(m), sim_.now());
}

void Network::deliver_later(Message m, Time sent) {
  if (crashed(m.dst)) {
    ++stats_.to_crashed;
    discard(std::move(m));
    return;
  }
  if (link_blocked(m.src, m.dst)) {
    held_.emplace_back(std::move(m), sent);
    ++stats_.held;
    return;
  }
  const Time at = arrival_time(m.src, m.dst);
  if (opts_.coalesce) {
    enqueue_frame(m.src, m.dst, m.type, m.key, m.rpc_id, ByteSpan(m.payload),
                  sent, at);
    discard(std::move(m));  // bytes now live in the batch slab
    return;
  }
  // The capture (this + Message + Time) fits the simulator's inline event
  // storage, so a hop schedules without allocating.
  sim_.schedule_at(at, [this, m = std::move(m), sent]() mutable {
    deliver_now(std::move(m), sent);
  });
}

void Network::deliver_now(Message m, Time sent) {
  if (crashed(m.dst)) {
    ++stats_.to_crashed;
    discard(std::move(m));
    return;
  }
  // A message can be scheduled before its link is blocked; honor the block
  // at delivery time so block_link() acts as a clean cut.
  if (link_blocked(m.src, m.dst)) {
    held_.emplace_back(std::move(m), sent);
    ++stats_.held;
    return;
  }
  Process* p = static_cast<std::size_t>(m.dst) < procs_.size()
                   ? procs_[static_cast<std::size_t>(m.dst)]
                   : nullptr;
  if (p == nullptr) {
    // Counted explicitly (not as delivered) so the conservation invariant
    // holds even when traffic targets a node nothing ever attached to.
    ++stats_.dropped_unattached;
    discard(std::move(m));
    return;
  }
  ++stats_.delivered;
  Frame f;
  f.src = m.src;
  f.dst = m.dst;
  f.type = m.type;
  f.key = m.key;
  f.rpc_id = m.rpc_id;
  f.payload = ByteSpan(m.payload);
  if (hook_) hook_(f, sent, sim_.now());
  p->on_message(f);
  discard(std::move(m));  // recycle the payload storage for the next hop
}

void Network::hold_copy(const Frame& f, Time sent) {
  Message m;
  m.src = f.src;
  m.dst = f.dst;
  m.type = f.type;
  m.key = f.key;
  m.rpc_id = f.rpc_id;
  if (!f.payload.empty()) {
    m.payload = pool_.acquire();
    m.payload.assign(f.payload.begin(), f.payload.end());
  }
  held_.emplace_back(std::move(m), sent);
  ++stats_.held;
}

std::uint32_t Network::acquire_batch() {
  if (!free_batches_.empty()) {
    const std::uint32_t bi = free_batches_.back();
    free_batches_.pop_back();
    Batch& b = *batches_[bi];
    b.slab.clear();   // capacities ratchet: a warmed batch pool
    b.frames.clear(); // appends and drains without allocating
    b.meta.clear();
    return bi;
  }
  batches_.push_back(std::make_unique<Batch>());
  return static_cast<std::uint32_t>(batches_.size() - 1);
}

void Network::recycle_batch(std::uint32_t bi) { free_batches_.push_back(bi); }

void Network::enqueue_frame(NodeId src, NodeId dst, MsgType type,
                            std::uint32_t key, std::uint64_t rpc_id,
                            ByteSpan bytes, Time sent, Time at) {
  // One sequence number per frame — exactly what scheduling it as its own
  // event would consume — pins the global (time, seq) order of every frame
  // regardless of which batch it rides in.
  const std::uint64_t seq = sim_.reserve_seq();
  ++coalesce_stats_.enqueued;
  OpenEntry& oe = open_tab_[open_hash(at) & (open_tab_.size() - 1)];
  std::uint32_t bi;
  if (oe.at == at) {
    bi = oe.batch;  // join the open batch; its event is already scheduled
  } else {
    bi = acquire_batch();
    Batch& nb = *batches_[bi];
    nb.at = at;
    nb.open_slot = static_cast<std::uint32_t>(&oe - open_tab_.data());
    nb.sealed = false;
    // Collision evicts the previous entry: that batch stays scheduled and
    // simply stops being joinable — less coalescing, never wrong order.
    oe.at = at;
    oe.batch = bi;
    sim_.schedule_at_seq(at, seq, [this, bi] { fire_batch(bi, 0); });
  }
  Batch& b = *batches_[bi];
  FrameMeta fm;
  fm.off = static_cast<std::uint32_t>(b.slab.size());
  fm.sent = sent;
  fm.seq = seq;
  b.meta.push_back(fm);
  b.slab.insert(b.slab.end(), bytes.begin(), bytes.end());
  Frame f;
  f.src = src;
  f.dst = dst;
  f.type = type;
  f.key = key;
  f.rpc_id = rpc_id;
  // Appends may still grow (and move) the slab; the pointer is fixed up at
  // seal time, the length is final now.
  f.payload = ByteSpan(nullptr, bytes.size());
  b.frames.push_back(f);
}

void Network::fire_batch(std::uint32_t bi, std::uint32_t from) {
  Batch& b = *batches_[bi];
  if (!b.sealed) {
    b.sealed = true;
    // Leave the open table (if we still own our slot — eviction may have
    // reused it), so same-tick sends from handlers open a fresh batch
    // instead of appending to one that is already draining.
    OpenEntry& oe = open_tab_[b.open_slot];
    if (oe.batch == bi && oe.at == b.at) oe.at = -1;
    const std::uint8_t* base = b.slab.data();
    for (std::size_t i = 0; i < b.frames.size(); ++i) {
      b.frames[i].payload.ptr = base + b.meta[i].off;
      b.frames[i].bix = static_cast<std::uint32_t>(i);
    }
    ++coalesce_stats_.batches;
  }
  const auto n = static_cast<std::uint32_t>(b.frames.size());
  // Destination-major eligibility: a fresh (non-continuation) fire, the
  // option on, no fault or hook active, and one peek proving no foreign
  // event orders anywhere inside the tick's frame window — i.e. before the
  // LAST frame's reserved sequence. If the whole window is ours, no
  // observer exists for the within-tick dispatch order and the batch can
  // drain destination-major; otherwise fall through to the exact
  // frame-order drain below.
  if (from == 0 && opts_.dest_major && n > 1 && num_crashed_ == 0 &&
      num_blocked_ == 0 && !hook_ &&
      !sim_.has_event_before(b.at, b.meta[n - 1].seq)) {
    fire_batch_dest_major(b);
    recycle_batch(bi);
    return;
  }
  std::uint32_t i = from;
  while (i < n) {
    // Yield whenever an intermediate event — a timer, a fault-plan step, an
    // evicted sibling batch — orders before the next frame's (time, seq);
    // the remainder reschedules at that frame's reserved sequence,
    // reproducing the per-message interleaving exactly. The tick's frame
    // list is in ascending sequence order by construction, so no event
    // enqueued during this drain (its sequence is above every frame here)
    // can ever force a yield.
    if (sim_.has_event_before(b.at, b.meta[i].seq)) {
      ++coalesce_stats_.continuations;
      sim_.schedule_at_seq(b.at, b.meta[i].seq,
                           [this, bi, i] { fire_batch(bi, i); });
      return;
    }
    const NodeId dst = b.frames[i].dst;
    Process* p = static_cast<std::size_t>(dst) < procs_.size()
                     ? procs_[static_cast<std::size_t>(dst)]
                     : nullptr;
    if (num_crashed_ == 0 && num_blocked_ == 0 && !hook_) {
      // Fast path: no fault is active, so every frame up to the next
      // destination switch or intermediate event delivers as one run.
      std::uint32_t j = i + 1;
      while (j < n && b.frames[j].dst == dst &&
             !sim_.has_event_before(b.at, b.meta[j].seq)) {
        ++j;
      }
      const std::uint32_t len = j - i;
      if (p != nullptr) {
        stats_.delivered += len;
        coalesce_stats_.frames += len;
        ++coalesce_stats_.hist[span_bucket(len)];
        p->on_deliver_batch(FrameSpan{b.frames.data() + i, len});
      } else {
        stats_.dropped_unattached += len;
      }
      i = j;
    } else {
      // Slow path: re-check fault state frame by frame, same order as the
      // per-message engine (crash check, then block check, then delivery).
      const Frame& f = b.frames[i];
      if (crashed(dst)) {
        ++stats_.to_crashed;
      } else if (link_blocked(f.src, dst)) {
        hold_copy(f, b.meta[i].sent);
      } else if (p == nullptr) {
        ++stats_.dropped_unattached;
      } else {
        ++stats_.delivered;
        ++coalesce_stats_.frames;
        ++coalesce_stats_.hist[0];
        if (hook_) hook_(f, b.meta[i].sent, sim_.now());
        p->on_deliver_batch(FrameSpan{&f, 1});
      }
      ++i;
    }
  }
  recycle_batch(bi);
}

void Network::fire_batch_dest_major(Batch& b) {
  const auto n = static_cast<std::uint32_t>(b.frames.size());
  ++coalesce_stats_.dest_major;
  // Group frames by attached Process (not NodeId): the ClientTable is ONE
  // process attached at every client id, so a tick's entire ack traffic to
  // all table clients becomes one run. The grouping is stable, so each
  // process's observed frame order — and every per-(src,dst) FIFO
  // projection inside it — is the frame-order drain's, verbatim.
  ++dm_epoch_;
  dm_groups_.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto d = static_cast<std::size_t>(b.frames[i].dst);
    if (dm_node_epoch_.size() <= d) {
      ++dm_grows_;
      dm_node_epoch_.resize(d + 1, 0);
      dm_group_of_.resize(d + 1, 0);
    }
    if (dm_node_epoch_[d] != dm_epoch_) {
      dm_node_epoch_[d] = dm_epoch_;
      Process* p = d < procs_.size() ? procs_[d] : nullptr;
      // Linear scan: distinct processes per tick are few (servers/routers
      // plus one table), and repeated destinations hit the epoch table.
      std::uint32_t g = 0;
      while (g < dm_groups_.size() && dm_groups_[g].proc != p) ++g;
      if (g == dm_groups_.size()) {
        note_growth(dm_groups_, dm_groups_.size() + 1);
        dm_groups_.push_back(DmGroup{p, 0, 0, 0});
      }
      dm_group_of_[d] = g;
    }
    ++dm_groups_[dm_group_of_[d]].count;
  }
  std::uint32_t off = 0;
  for (DmGroup& g : dm_groups_) {
    g.offset = off;
    g.fill = off;
    off += g.count;
  }
  note_growth(dm_frames_, n);
  note_growth(dm_sent_, n);
  dm_frames_.resize(n);
  dm_sent_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    DmGroup& g =
        dm_groups_[dm_group_of_[static_cast<std::size_t>(b.frames[i].dst)]];
    dm_frames_[g.fill] = b.frames[i];
    dm_sent_[g.fill] = b.meta[i].sent;
    ++g.fill;
  }
  // Dispatch one maximal run per process with reply staging active:
  // handler sends carrying a cause frame are deferred and flushed below in
  // canonical frame order, so their sequence/delay assignment is identical
  // to the frame-order drain's.
  stage_active_ = true;
  for (const DmGroup& g : dm_groups_) {
    if (g.proc == nullptr) {
      stats_.dropped_unattached += g.count;
      continue;
    }
    if (num_crashed_ != 0 || num_blocked_ != 0) {
      // A handler mutated fault state mid-drain (outside the documented
      // contract). Degrade to per-frame checks for the remaining groups so
      // no frame reaches a crashed or blocked destination.
      for (std::uint32_t k = g.offset; k < g.offset + g.count; ++k) {
        const Frame& f = dm_frames_[k];
        if (crashed(f.dst)) {
          ++stats_.to_crashed;
        } else if (link_blocked(f.src, f.dst)) {
          hold_copy(f, dm_sent_[k]);
        } else {
          ++stats_.delivered;
          ++coalesce_stats_.frames;
          ++coalesce_stats_.hist[0];
          g.proc->on_deliver_batch(FrameSpan{&f, 1});
        }
      }
      continue;
    }
    stats_.delivered += g.count;
    coalesce_stats_.frames += g.count;
    ++coalesce_stats_.hist[span_bucket(g.count)];
    g.proc->on_deliver_batch(FrameSpan{dm_frames_.data() + g.offset, g.count});
  }
  stage_active_ = false;
  flush_staged(n);
}

void Network::stage_send(std::uint32_t bix, NodeId src, NodeId dst,
                         MsgType type, std::uint32_t key, std::uint64_t rpc_id,
                         ByteSpan bytes) {
  StagedSend e;
  e.bix = bix;
  e.src = src;
  e.dst = dst;
  e.type = type;
  e.key = key;
  e.rpc_id = rpc_id;
  e.off = static_cast<std::uint32_t>(stage_slab_.size());
  e.len = static_cast<std::uint32_t>(bytes.size());
  note_growth(stage_slab_, stage_slab_.size() + bytes.size());
  note_growth(stage_entries_, stage_entries_.size() + 1);
  if (!bytes.empty()) {
    stage_slab_.insert(stage_slab_.end(), bytes.begin(), bytes.end());
  }
  stage_entries_.push_back(e);
}

void Network::flush_staged(std::uint32_t frame_count) {
  if (stage_entries_.empty()) return;
  coalesce_stats_.staged += stage_entries_.size();
  // Stable counting sort by originating frame index. Entries were appended
  // in (group, within-group frame) order; re-keying on bix restores the
  // exact order the frame-order drain would have emitted these sends in,
  // which makes sequence reservation and shared-RNG delay draws invariant
  // under the destination-major reorder.
  note_growth(stage_counts_, static_cast<std::size_t>(frame_count) + 1);
  stage_counts_.assign(static_cast<std::size_t>(frame_count) + 1, 0);
  for (const StagedSend& e : stage_entries_) ++stage_counts_[e.bix];
  std::uint32_t sum = 0;
  for (std::uint32_t& c : stage_counts_) {
    const std::uint32_t v = c;
    c = sum;
    sum += v;
  }
  note_growth(stage_order_, stage_entries_.size());
  stage_order_.resize(stage_entries_.size());
  for (std::uint32_t i = 0; i < stage_entries_.size(); ++i) {
    stage_order_[stage_counts_[stage_entries_[i].bix]++] = i;
  }
  for (const std::uint32_t idx : stage_order_) {
    const StagedSend& e = stage_entries_[idx];
    // `sent` and bytes were counted at stage time; run the rest of the
    // send pipeline now, in the same check order (src crash, dst crash,
    // block, then the delay draw) as an immediate send.
    if (crashed(e.src)) {
      ++stats_.from_crashed;
      continue;
    }
    if (crashed(e.dst)) {
      ++stats_.to_crashed;
      continue;
    }
    const ByteSpan bytes{stage_slab_.data() + e.off, e.len};
    if (link_blocked(e.src, e.dst)) {
      Frame f;
      f.src = e.src;
      f.dst = e.dst;
      f.type = e.type;
      f.key = e.key;
      f.rpc_id = e.rpc_id;
      f.payload = bytes;
      hold_copy(f, sim_.now());
      continue;
    }
    enqueue_frame(e.src, e.dst, e.type, e.key, e.rpc_id, bytes, sim_.now(),
                  arrival_time(e.src, e.dst));
  }
  stage_entries_.clear();
  stage_slab_.clear();
}

void Network::crash(NodeId id) {
  assert(id >= 0);
  if (id < 0) return;  // sentinel ids (kNoNode) never index the table
  const auto i = static_cast<std::size_t>(id);
  if (i >= crashed_.size()) crashed_.resize(i + 1, 0);
  if (crashed_[i] == 0) {
    crashed_[i] = 1;
    ++num_crashed_;
  }
}

void Network::recover(NodeId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= crashed_.size()) return;
  const auto i = static_cast<std::size_t>(id);
  if (crashed_[i] != 0) {
    crashed_[i] = 0;
    --num_crashed_;
  }
}

void Network::block_link(NodeId src, NodeId dst) {
  assert(src >= 0 && dst >= 0);
  if (src < 0 || dst < 0) return;  // sentinel ids never index the table
  const auto s = static_cast<std::size_t>(src);
  const auto d = static_cast<std::size_t>(dst);
  if (s >= blocked_.size()) blocked_.resize(s + 1);
  if (d >= blocked_[s].size()) blocked_[s].resize(d + 1, 0);
  if (blocked_[s][d] == 0) {
    blocked_[s][d] = 1;
    ++num_blocked_;
  }
}

void Network::block_pair(NodeId a, NodeId b) {
  block_link(a, b);
  block_link(b, a);
}

void Network::unblock_link(NodeId src, NodeId dst) {
  if (!link_blocked(src, dst)) return;
  blocked_[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)] = 0;
  --num_blocked_;
  std::vector<std::pair<Message, Time>> still_held;
  still_held.reserve(held_.size());
  for (auto& [m, sent] : held_) {
    if (m.src == src && m.dst == dst) {
      --stats_.held;
      deliver_later(std::move(m), sent);
    } else {
      still_held.emplace_back(std::move(m), sent);
    }
  }
  held_ = std::move(still_held);
}

void Network::unblock_pair(NodeId a, NodeId b) {
  unblock_link(a, b);
  unblock_link(b, a);
}

}  // namespace mwreg
