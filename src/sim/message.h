// The unit of communication between clients and servers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace mwreg {

/// Protocol-defined message type discriminator (each protocol defines its own
/// enum and casts it into this field).
using MsgType = std::uint32_t;

struct Message {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  MsgType type = 0;
  /// Register this request addresses in a multi-key deployment (0 for the
  /// classic single-register setup). Replies are matched by (dst, rpc_id)
  /// and need not echo it. Fills the padding hole after `type`, so the
  /// struct size — and the inline delivery-closure budget — is unchanged.
  std::uint32_t key = 0;
  /// Matches a reply to the round-trip (RPC) that solicited it.
  std::uint64_t rpc_id = 0;
  /// Protocol payload, encoded with common/codec.h.
  std::vector<std::uint8_t> payload;
};

}  // namespace mwreg
