// The unit of communication between clients and servers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace mwreg {

/// Protocol-defined message type discriminator (each protocol defines its own
/// enum and casts it into this field).
using MsgType = std::uint32_t;

struct Message {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  MsgType type = 0;
  /// Register this request addresses in a multi-key deployment (0 for the
  /// classic single-register setup). Replies are matched by (dst, rpc_id)
  /// and need not echo it. Fills the padding hole after `type`, so the
  /// struct size — and the inline delivery-closure budget — is unchanged.
  std::uint32_t key = 0;
  /// Matches a reply to the round-trip (RPC) that solicited it.
  std::uint64_t rpc_id = 0;
  /// Protocol payload, encoded with common/codec.h.
  std::vector<std::uint8_t> payload;
};

/// The delivery-side view of one message: same header fields as Message but
/// the payload is a non-owning span. In the batched pipeline frames point
/// into a per-tick slab; in the per-message path they view the Message's
/// own buffer. Valid only for the duration of the handler call.
struct Frame {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  MsgType type = 0;
  std::uint32_t key = 0;
  std::uint64_t rpc_id = 0;
  ByteSpan payload;
  /// Index of this frame within its delivery batch, in original (time, seq)
  /// frame order; set at batch seal time. The destination-major drain hands
  /// it to the reply-staging machinery so handler-emitted sends can be
  /// flushed in canonical frame order (network.h). 0 in the per-message
  /// engine, where no reordering ever happens.
  std::uint32_t bix = 0;
};

/// Contiguous run of frames delivered to one destination in one simulator
/// event (C++17 stand-in for std::span<const Frame>).
struct FrameSpan {
  const Frame* ptr = nullptr;
  std::size_t len = 0;

  FrameSpan() = default;
  FrameSpan(const Frame* p, std::size_t n) : ptr(p), len(n) {}

  [[nodiscard]] std::size_t size() const { return len; }
  [[nodiscard]] bool empty() const { return len == 0; }
  [[nodiscard]] const Frame& operator[](std::size_t i) const { return ptr[i]; }
  [[nodiscard]] const Frame* begin() const { return ptr; }
  [[nodiscard]] const Frame* end() const { return ptr + len; }
  [[nodiscard]] FrameSpan subspan(std::size_t off, std::size_t n) const {
    return FrameSpan{ptr + off, n};
  }
};

}  // namespace mwreg
