// The unit of communication between clients and servers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace mwreg {

/// Protocol-defined message type discriminator (each protocol defines its own
/// enum and casts it into this field).
using MsgType = std::uint32_t;

struct Message {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  MsgType type = 0;
  /// Matches a reply to the round-trip (RPC) that solicited it.
  std::uint64_t rpc_id = 0;
  /// Protocol payload, encoded with common/codec.h.
  std::vector<std::uint8_t> payload;
};

}  // namespace mwreg
