// Message delay distributions.
//
// The proofs in the paper only depend on ordering, but the latency
// experiments (Fig. 2) need realistic one-way delay distributions. Every
// model is deterministic given the Rng stream.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace mwreg {

class DelayModel {
 public:
  virtual ~DelayModel() = default;
  /// One-way delay for a message src -> dst.
  virtual Duration sample(NodeId src, NodeId dst, Rng& rng) = 0;
};

/// Every message takes exactly `delay`. Round-trip latency is then exactly
/// 2*delay per round-trip, which makes the factor-of-two between fast and
/// slow operations exact.
class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(Duration delay) : delay_(delay) {}
  Duration sample(NodeId, NodeId, Rng&) override { return delay_; }

 private:
  Duration delay_;
};

/// Uniform in [lo, hi].
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(Duration lo, Duration hi) : lo_(lo), hi_(hi) {}
  Duration sample(NodeId, NodeId, Rng& rng) override {
    return rng.next_in(lo_, hi_);
  }

 private:
  Duration lo_, hi_;
};

/// Heavy-tailed delay: median * exp(sigma * N(0,1)). A common fit for
/// datacenter RTT tails.
class LogNormalDelay final : public DelayModel {
 public:
  LogNormalDelay(Duration median, double sigma)
      : median_(median), sigma_(sigma) {}
  Duration sample(NodeId, NodeId, Rng& rng) override;

 private:
  Duration median_;
  double sigma_;
};

/// Wraps any model and scales its samples by an adjustable factor. Fault
/// plans use this for delay spikes: a scheduled step flips the factor at a
/// virtual time, no time-awareness needed inside the model. With the factor
/// at 1.0 the wrapper is transparent — samples and RNG consumption are
/// identical to the inner model's, so fault-free runs are unaffected.
class SpikeDelay final : public DelayModel {
 public:
  explicit SpikeDelay(std::unique_ptr<DelayModel> inner)
      : inner_(std::move(inner)) {}

  void set_factor(double f) { factor_ = f; }
  [[nodiscard]] double factor() const { return factor_; }

  Duration sample(NodeId src, NodeId dst, Rng& rng) override {
    const Duration base = inner_->sample(src, dst, rng);
    if (factor_ == 1.0) return base;
    return static_cast<Duration>(static_cast<double>(base) * factor_);
  }

 private:
  std::unique_ptr<DelayModel> inner_;
  double factor_ = 1.0;
};

/// Geo-replication: each node is pinned to a site; delay is half the
/// inter-site RTT plus uniform jitter. Models the WAN deployments that
/// motivate fast implementations (Cassandra-style, Section 1).
class GeoDelay final : public DelayModel {
 public:
  /// rtt_ms[a][b] is the round-trip time between sites a and b in
  /// milliseconds; site_of[n] maps node id -> site index.
  GeoDelay(std::vector<std::vector<double>> rtt_ms, std::vector<int> site_of,
           double jitter_fraction = 0.05);

  Duration sample(NodeId src, NodeId dst, Rng& rng) override;

 private:
  std::vector<std::vector<double>> rtt_ms_;
  std::vector<int> site_of_;
  double jitter_fraction_;
};

}  // namespace mwreg
