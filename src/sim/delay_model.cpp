#include "sim/delay_model.h"

#include <cmath>
#include <utility>

namespace mwreg {

Duration LogNormalDelay::sample(NodeId, NodeId, Rng& rng) {
  // Box-Muller. Two uniforms -> one normal; we discard the sibling to keep
  // the stream consumption simple and deterministic.
  const double u1 = 1.0 - rng.next_double();  // (0, 1]
  const double u2 = rng.next_double();
  const double n = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double factor = std::exp(sigma_ * n);
  const double d = static_cast<double>(median_) * factor;
  return d < 1.0 ? 1 : static_cast<Duration>(d);
}

GeoDelay::GeoDelay(std::vector<std::vector<double>> rtt_ms,
                   std::vector<int> site_of, double jitter_fraction)
    : rtt_ms_(std::move(rtt_ms)),
      site_of_(std::move(site_of)),
      jitter_fraction_(jitter_fraction) {}

Duration GeoDelay::sample(NodeId src, NodeId dst, Rng& rng) {
  const int a = site_of_.at(static_cast<std::size_t>(src));
  const int b = site_of_.at(static_cast<std::size_t>(dst));
  const double one_way_ms = rtt_ms_.at(static_cast<std::size_t>(a))
                                .at(static_cast<std::size_t>(b)) /
                            2.0;
  const double jitter = 1.0 + jitter_fraction_ * rng.next_double();
  const double ns = one_way_ms * jitter * static_cast<double>(kMillisecond);
  return ns < 1.0 ? 1 : static_cast<Duration>(ns);
}

}  // namespace mwreg
