// Asynchronous reliable message-passing network (Fig. 1 of the paper).
//
// Channels are bidirectional and reliable: messages are never lost, but may
// be delayed arbitrarily. The adversarial schedules in the proofs are
// expressed with block_link / unblock_link ("skipping" a server = blocking
// its links until the rest of the execution finishes) and crash().
//
// Hot-path layout: crash and block state are NodeId-indexed dense tables
// (node ids are dense by construction — ClusterConfig lays them out
// contiguously), so the per-delivery checks are array loads instead of
// std::set lookups, with a zero-cost fast path while no fault is active.
// Payload buffers come from a per-network BufferPool and are recycled after
// delivery, so steady-state traffic performs no allocation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/buffer_pool.h"
#include "sim/delay_model.h"
#include "sim/message.h"
#include "sim/simulator.h"

namespace mwreg {

class Process;

/// Message accounting. At quiescence (no scheduled deliveries in flight)
/// the counters satisfy the invariant
///   sent == delivered + held + to_crashed + from_crashed
/// — every sent message is either delivered, parked on a blocked link, or
/// dropped at exactly one of the two crash checks. tests/sim_test.cpp
/// asserts this across fault scenarios.
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t bytes_sent = 0;  ///< payload bytes across all sent messages
  std::uint64_t delivered = 0;
  std::uint64_t held = 0;         ///< currently parked on blocked links
  std::uint64_t to_crashed = 0;   ///< dropped because dst crashed
  std::uint64_t from_crashed = 0; ///< dropped because src had crashed
};

class Network {
 public:
  /// `fifo`: when true, per-link delivery preserves send order (delays are
  /// clamped to be nondecreasing per link). The paper's model is non-FIFO.
  Network(Simulator& sim, std::unique_ptr<DelayModel> delay, Rng rng,
          bool fifo = false);

  Simulator& sim() { return sim_; }

  /// Pool every payload buffer should come from and return to; processes
  /// reach it through Process::pool().
  BufferPool& pool() { return pool_; }

  /// Register the handler for a node. Must be called before any message is
  /// delivered to `id`. The process must outlive the network run.
  void attach(NodeId id, Process& p);

  /// Send a message. The src/dst fields must be filled in.
  void send(Message m);

  /// Crash a node: all future and in-flight messages to it are dropped, and
  /// nothing it sends afterwards is accepted.
  void crash(NodeId id);
  [[nodiscard]] bool crashed(NodeId id) const {
    return num_crashed_ > 0 && id >= 0 &&
           static_cast<std::size_t>(id) < crashed_.size() &&
           crashed_[static_cast<std::size_t>(id)] != 0;
  }

  /// Undo a crash: the node accepts and sends messages again. Messages
  /// dropped while it was crashed stay lost (they were counted in
  /// to_crashed / from_crashed); its process state is untouched, modeling a
  /// network-isolated node rejoining. Enables crash -> recover fault plans.
  void recover(NodeId id);

  /// Block the directed link src -> dst: messages are parked, not lost.
  void block_link(NodeId src, NodeId dst);
  /// Block both directions between a client and a server ("skip").
  void block_pair(NodeId a, NodeId b);
  /// Release a directed link; parked messages are delivered with fresh delays.
  void unblock_link(NodeId src, NodeId dst);
  void unblock_pair(NodeId a, NodeId b);
  [[nodiscard]] bool link_blocked(NodeId src, NodeId dst) const {
    if (num_blocked_ == 0 || src < 0 || dst < 0) return false;
    const auto s = static_cast<std::size_t>(src);
    const auto d = static_cast<std::size_t>(dst);
    return s < blocked_.size() && d < blocked_[s].size() &&
           blocked_[s][d] != 0;
  }

  /// Optional observer invoked at delivery time (used by trace capture).
  using DeliveryHook =
      std::function<void(const Message&, Time sent, Time delivered)>;
  void set_delivery_hook(DeliveryHook hook) { hook_ = std::move(hook); }

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }

 private:
  void deliver_later(Message m, Time sent);
  void deliver_now(Message m, Time sent);
  /// Drop `m`, recycling its payload storage.
  void discard(Message&& m);

  Simulator& sim_;
  std::unique_ptr<DelayModel> delay_;
  Rng rng_;
  bool fifo_;
  BufferPool pool_;
  std::vector<Process*> procs_;
  /// Dense crash flags indexed by NodeId, with a count for the fast path.
  std::vector<std::uint8_t> crashed_;
  int num_crashed_ = 0;
  /// Dense per-src rows of blocked-link flags, grown on demand.
  std::vector<std::vector<std::uint8_t>> blocked_;
  int num_blocked_ = 0;
  /// Messages parked on blocked links, with their original send time.
  std::vector<std::pair<Message, Time>> held_;
  /// Per-link last scheduled delivery time (FIFO mode).
  std::vector<std::vector<Time>> last_delivery_;
  DeliveryHook hook_;
  NetworkStats stats_;
};

/// A protocol participant: owns a node id and reacts to delivered messages.
class Process {
 public:
  Process(NodeId id, Network& net) : id_(id), net_(net) {
    net.attach(id, *this);
  }
  virtual ~Process() = default;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  virtual void on_message(const Message& m) = 0;

  [[nodiscard]] NodeId id() const { return id_; }

 protected:
  Network& net() { return net_; }
  Simulator& sim() { return net_.sim(); }
  /// Payload buffers should be acquired here and handed to send(); the
  /// network recycles them after delivery.
  BufferPool& pool() { return net_.pool(); }

  void send(NodeId dst, MsgType type, std::uint64_t rpc_id,
            std::vector<std::uint8_t> payload) {
    Message m;
    m.src = id_;
    m.dst = dst;
    m.type = type;
    m.rpc_id = rpc_id;
    m.payload = std::move(payload);
    net_.send(std::move(m));
  }

 private:
  NodeId id_;
  Network& net_;
};

}  // namespace mwreg
