// Asynchronous reliable message-passing network (Fig. 1 of the paper).
//
// Channels are bidirectional and reliable: messages are never lost, but may
// be delayed arbitrarily. The adversarial schedules in the proofs are
// expressed with block_link / unblock_link ("skipping" a server = blocking
// its links until the rest of the execution finishes) and crash().
//
// Hot-path layout: crash and block state are NodeId-indexed dense tables
// (node ids are dense by construction — ClusterConfig lays them out
// contiguously), so the per-delivery checks are array loads instead of
// std::set lookups, with a zero-cost fast path while no fault is active.
// Payload buffers come from a per-network BufferPool and are recycled after
// delivery, so steady-state traffic performs no allocation.
//
// Batched delivery (Options::coalesce). The per-message engine costs one
// heap event + one dispatch + one pooled buffer per message; at quorum
// fan-out most cycles are scheduler overhead. With coalescing on, the unit
// of simulation becomes the delivery *tick*: send appends the encoded frame
// into the open batch for its quantized arrival time (payload bytes
// memcpy'd into a per-batch slab, header recorded as a Frame view) and at
// most one delivery event is scheduled per open tick. Because every frame
// consumes one simulator sequence number via Simulator::reserve_seq()
// (exactly what scheduling it as its own event would have consumed) and
// sequences are handed out monotonically, a tick's frame list is *already*
// in exact global (time, seq) delivery order — no sorting, no merging. The
// drain chops it into maximal same-destination runs and hands each run to
// Process::on_deliver_batch, yielding back to the event heap only when a
// genuinely foreign event — a timer, a fault-plan step, an evicted sibling
// batch — orders before the next frame's (time, seq). The observable
// execution order is therefore identical to the per-message engine in
// every case, including same-tick ties and crash/recover landing
// mid-batch; golden digests match bit-for-bit with coalescing on and off
// (DESIGN.md section 8).
//
// Destination-major drain (Options::dest_major). Frame-order runs end at
// every destination switch, so interleaved fan-out traffic yields runs of
// 1-3 frames. When one has_event_before peek against the tick's LAST
// reserved sequence proves the whole window is foreign-event-free (and no
// fault or delivery hook is active), the drain instead regroups the tick's
// frames by attached process — stable, so per-(src,dst) FIFO and each
// process's observed order are untouched — and dispatches one maximal run
// per process. Handler-emitted sends with a known cause frame are staged
// and flushed at batch end in canonical frame order, so sequence
// reservation and shared-RNG delay draws match the frame-order drain
// exactly; the only residual reorder is send-vs-timer sequence assignment
// within one drain, observable solely at exact-ns time ties (DESIGN.md
// section 9). Whenever the window check fails the batch takes the exact
// frame-order drain above, unchanged.
//
// Contract: crash/block/unblock transitions originate from simulator events
// (fault plans, scheduled test steps) or between runs — not from inside a
// message handler. The drain re-checks fault state at every yield boundary
// and, whenever any fault is active, before every frame; a handler that
// mutates fault state mid-span would be observed one span late only under
// coalescing. Options::tick quantizes delivery times (round-up) so that
// same-destination traffic actually ties; tick == 1 keeps exact-ns timing
// and is the default, leaving every recorded golden digest valid.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/buffer_pool.h"
#include "sim/delay_model.h"
#include "sim/message.h"
#include "sim/simulator.h"

namespace mwreg {

class Process;

/// Message accounting. At quiescence (no scheduled deliveries in flight)
/// the counters satisfy the invariant
///   sent == delivered + held + to_crashed + from_crashed
///           + dropped_unattached
/// — every sent message is either delivered, parked on a blocked link,
/// dropped at exactly one of the two crash checks, or dropped because no
/// process was ever attached at its destination. tests/sim_test.cpp
/// asserts this across fault scenarios, with coalescing on and off (an open
/// batch always has a delivery event pending, so at quiescence every frame
/// has drained into exactly one of the five buckets).
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t bytes_sent = 0;  ///< payload bytes across all sent messages
  std::uint64_t delivered = 0;
  std::uint64_t held = 0;         ///< currently parked on blocked links
  std::uint64_t to_crashed = 0;   ///< dropped because dst crashed
  std::uint64_t from_crashed = 0; ///< dropped because src had crashed
  std::uint64_t dropped_unattached = 0;  ///< dst has no attached process
};

/// Coalescing observables (all zero while Options::coalesce is false).
/// bench_simcore_throughput reports them and scripts/bench_trend.py tracks
/// the coalesced-vs-per-message ratio and the batch-size histogram.
struct CoalesceStats {
  std::uint64_t batches = 0;        ///< batch delivery events fired
  std::uint64_t continuations = 0;  ///< mid-batch yields rescheduled
  std::uint64_t enqueued = 0;       ///< frames appended into batches
  std::uint64_t frames = 0;         ///< frames delivered through batches
  /// Batches drained destination-major (the window check passed); the
  /// remainder fell back to the exact frame-order drain.
  std::uint64_t dest_major = 0;
  /// Handler-emitted sends deferred by the reply-staging buffer and
  /// flushed in canonical frame order at batch end.
  std::uint64_t staged = 0;
  /// Dispatched span sizes, log2-bucketed: hist[b] counts spans of size
  /// [2^b, 2^(b+1)). Buckets past the last saturate into it.
  static constexpr int kHistBuckets = 16;
  std::uint64_t hist[kHistBuckets] = {};

  /// Mean dispatched-run length (frames per dispatched span); the
  /// run-length target the bench trend gate tracks.
  [[nodiscard]] double mean_run_len() const {
    std::uint64_t runs = 0;
    for (const std::uint64_t h : hist) runs += h;
    return runs == 0 ? 0.0 : static_cast<double>(frames) /
                                 static_cast<double>(runs);
  }
};

class Network {
 public:
  struct Options {
    /// When true, per-link delivery preserves send order (delays are
    /// clamped to be nondecreasing per link). The paper's model is non-FIFO.
    bool fifo = false;
    /// Batch all deliveries landing on one tick into one simulator event,
    /// dispatched as maximal same-destination runs.
    bool coalesce = false;
    /// Delivery-time quantum in simulated ns: arrival times round UP to a
    /// multiple of tick, in both engines, so coalescing on/off stays
    /// bit-identical at any tick. 1 = exact-ns (default; no timing change).
    Duration tick = 1;
    /// Destination-major drain (coalesce only): when a batch's whole frame
    /// window is provably free of foreign events (one has_event_before peek
    /// against the tick's last reserved seq) and no fault or hook is
    /// active, regroup the tick's frames by attached process — stable
    /// within each destination — and dispatch one maximal run per process,
    /// with handler-emitted sends staged and flushed in canonical frame
    /// order at batch end. Falls back to the exact frame-order drain
    /// whenever the window check fails. Off = always frame-order (the
    /// registered ablation).
    bool dest_major = true;
  };

  Network(Simulator& sim, std::unique_ptr<DelayModel> delay, Rng rng,
          Options opts);
  /// Back-compat convenience: fifo-only options.
  Network(Simulator& sim, std::unique_ptr<DelayModel> delay, Rng rng,
          bool fifo = false)
      : Network(sim, std::move(delay), std::move(rng), Options{fifo, false, 1}) {}

  Simulator& sim() { return sim_; }

  /// Pool every payload buffer should come from and return to; processes
  /// reach it through Process::pool().
  BufferPool& pool() { return pool_; }

  [[nodiscard]] bool coalescing() const { return opts_.coalesce; }

  /// Pre-size the coalescing engine: `expected_batches` concurrently open
  /// delivery ticks (bounded by max-delay / tick) of `frames_per_batch`
  /// frames averaging `bytes_per_frame` payload bytes, plus an open-batch
  /// lookup table sized so distinct ticks rarely collide. Growth past these
  /// shapes still works — every capacity ratchets — but then warmup (not
  /// steady state) allocates. No-op when coalescing is off.
  void reserve_coalescing(std::size_t expected_batches,
                          std::size_t frames_per_batch,
                          std::size_t bytes_per_frame);

  /// Register the handler for a node. Must be called before any message is
  /// delivered to `id`. The process must outlive the network run.
  void attach(NodeId id, Process& p);

  /// Send a message. The src/dst fields must be filled in. `cause` is the
  /// frame whose handler emitted this send, when known (replies, round
  /// chaining): during a destination-major drain such sends are staged and
  /// flushed at batch end in canonical frame order — keyed on cause->bix —
  /// so sequence reservation and delay draws match the frame-order drain
  /// exactly. Outside a drain (or with cause == nullptr) this is the plain
  /// immediate send.
  void send(Message m, const Frame* cause = nullptr);

  /// Fan-out entry point: send one message whose payload is copied from
  /// `bytes` (the caller keeps ownership). With coalescing on the bytes go
  /// straight into the destination batch's slab — no pooled buffer, no
  /// Message materialization; with it off this acquires a pooled copy,
  /// exactly what broadcast call sites used to do by hand. Empty payloads
  /// skip the pool in both modes (capacity-0 buffers never recycle).
  /// `cause` as in send().
  void send_bytes(NodeId src, NodeId dst, MsgType type, std::uint32_t key,
                  std::uint64_t rpc_id, ByteSpan bytes,
                  const Frame* cause = nullptr);

  /// Crash a node: all future and in-flight messages to it are dropped, and
  /// nothing it sends afterwards is accepted.
  void crash(NodeId id);
  [[nodiscard]] bool crashed(NodeId id) const {
    return num_crashed_ > 0 && id >= 0 &&
           static_cast<std::size_t>(id) < crashed_.size() &&
           crashed_[static_cast<std::size_t>(id)] != 0;
  }

  /// Undo a crash: the node accepts and sends messages again. Messages
  /// dropped while it was crashed stay lost (they were counted in
  /// to_crashed / from_crashed); its process state is untouched, modeling a
  /// network-isolated node rejoining. Enables crash -> recover fault plans.
  void recover(NodeId id);

  /// Block the directed link src -> dst: messages are parked, not lost.
  void block_link(NodeId src, NodeId dst);
  /// Block both directions between a client and a server ("skip").
  void block_pair(NodeId a, NodeId b);
  /// Release a directed link; parked messages are delivered with fresh delays.
  void unblock_link(NodeId src, NodeId dst);
  void unblock_pair(NodeId a, NodeId b);
  [[nodiscard]] bool link_blocked(NodeId src, NodeId dst) const {
    if (num_blocked_ == 0 || src < 0 || dst < 0) return false;
    const auto s = static_cast<std::size_t>(src);
    const auto d = static_cast<std::size_t>(dst);
    return s < blocked_.size() && d < blocked_[s].size() &&
           blocked_[s][d] != 0;
  }

  /// Optional observer invoked at delivery time (used by trace capture).
  /// The Frame (and its payload span) is valid only during the call.
  using DeliveryHook =
      std::function<void(const Frame&, Time sent, Time delivered)>;
  void set_delivery_hook(DeliveryHook hook) { hook_ = std::move(hook); }

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] const CoalesceStats& coalesce_stats() const {
    return coalesce_stats_;
  }
  /// Batches ever created (live + free). Ratchets during warmup, then must
  /// stay flat — the coalescing analogue of Simulator::allocations().
  [[nodiscard]] std::size_t batch_pool_size() const { return batches_.size(); }
  /// Capacity-growth events across the destination-major scratch and the
  /// reply-staging buffers (grouping tables, gathered frame array, staging
  /// slab/entries/order). Ratchets during warmup, then must stay flat —
  /// pinned by the allocation regression tests.
  [[nodiscard]] std::uint64_t dest_major_grows() const { return dm_grows_; }
  /// True while a destination-major drain is dispatching runs (sends with a
  /// cause frame are being staged).
  [[nodiscard]] bool staging_active() const { return stage_active_; }

 private:
  /// One coalesced delivery-tick batch: every frame arriving at time `at`,
  /// appended in send order — which IS global (time, seq) delivery order,
  /// because sequences are reserved monotonically at send time. Frames'
  /// payload bytes live concatenated in `slab`; Frame::payload pointers are
  /// fixed up at seal time (first fire), after which no append can move the
  /// slab. All vectors keep their capacity across recycling, so a warmed
  /// batch pool appends and drains without allocating.
  struct FrameMeta {
    std::uint32_t off = 0;   ///< payload offset into slab
    Time sent = 0;           ///< original send time (delivery hooks)
    std::uint64_t seq = 0;   ///< reserved simulator sequence of this frame
  };
  struct Batch {
    Time at = 0;
    std::uint32_t open_slot = 0;  ///< open-table index while joinable
    bool sealed = false;
    std::vector<std::uint8_t> slab;
    std::vector<Frame> frames;
    std::vector<FrameMeta> meta;
  };
  /// Direct-mapped open-batch lookup: deliver-time -> batch index.
  /// Collisions simply evict — the evicted batch stays scheduled and is
  /// merely no longer joinable, which costs a little coalescing but never
  /// correctness: an evicted batch's sequences all precede those of any
  /// batch opened later for the same tick, so it drains first, in order.
  struct OpenEntry {
    Time at = -1;
    std::uint32_t batch = 0;
  };

  void deliver_later(Message m, Time sent);
  void deliver_now(Message m, Time sent);
  /// Drop `m`, recycling its payload storage.
  void discard(Message&& m);

  /// Delay sample + tick quantization + FIFO clamp, shared verbatim by the
  /// per-message and batched paths (identical RNG draws, identical times).
  Time arrival_time(NodeId src, NodeId dst);
  /// Park a copy of a frame on a blocked link (batched slow path).
  void hold_copy(const Frame& f, Time sent);

  // ---- batched engine ----
  std::uint32_t acquire_batch();
  void recycle_batch(std::uint32_t bi);
  void enqueue_frame(NodeId src, NodeId dst, MsgType type, std::uint32_t key,
                     std::uint64_t rpc_id, ByteSpan bytes, Time sent, Time at);
  /// Seal (fix payload pointers, leave the open table) then drain frames
  /// [from, n) as maximal same-destination runs, yielding to the heap
  /// whenever an earlier event is due. When the whole window is provably
  /// foreign-event-free (and Options::dest_major allows), delegates to the
  /// destination-major drain instead.
  void fire_batch(std::uint32_t bi, std::uint32_t from);
  /// Destination-major drain: regroup the batch's frames by attached
  /// process (stable within each destination), dispatch one maximal run per
  /// process with reply staging active, then flush staged sends in
  /// canonical frame order. Only called when the window check proved no
  /// foreign event can observe the reorder.
  void fire_batch_dest_major(Batch& b);
  /// Append one handler-emitted send to the staging buffer (send /
  /// send_bytes route here while stage_active_ and a cause frame is known).
  void stage_send(std::uint32_t bix, NodeId src, NodeId dst, MsgType type,
                  std::uint32_t key, std::uint64_t rpc_id, ByteSpan bytes);
  /// Flush the staging buffer: counting-sort entries by originating frame
  /// index (stable), then run each through the normal post-send pipeline —
  /// crash check, block check, delay draw, enqueue — in exactly the order
  /// the frame-order drain would have emitted them.
  void flush_staged(std::uint32_t frame_count);
  /// Bump dm_grows_ if appending/assigning `needed` elements would grow `v`.
  template <typename V>
  void note_growth(const V& v, std::size_t needed) {
    if (v.capacity() < needed) ++dm_grows_;
  }

  Simulator& sim_;
  std::unique_ptr<DelayModel> delay_;
  Rng rng_;
  Options opts_;
  BufferPool pool_;
  std::vector<Process*> procs_;
  /// Dense crash flags indexed by NodeId, with a count for the fast path.
  std::vector<std::uint8_t> crashed_;
  int num_crashed_ = 0;
  /// Dense per-src rows of blocked-link flags, grown on demand.
  std::vector<std::vector<std::uint8_t>> blocked_;
  int num_blocked_ = 0;
  /// Messages parked on blocked links, with their original send time.
  std::vector<std::pair<Message, Time>> held_;
  /// FIFO mode: per-destination last scheduled delivery time, one per-src
  /// row grown on demand (fifo_last_[dst][src]) — rows exist only for
  /// destinations that actually receive traffic, the same per-destination
  /// scheme the batch engine keys on, instead of a dense S x S matrix.
  std::vector<std::vector<Time>> fifo_last_;
  DeliveryHook hook_;
  NetworkStats stats_;
  CoalesceStats coalesce_stats_;

  std::vector<std::unique_ptr<Batch>> batches_;
  std::vector<std::uint32_t> free_batches_;
  std::vector<OpenEntry> open_tab_;  ///< power-of-two, direct-mapped

  // ---- destination-major drain scratch (all capacities ratchet) ----
  /// One run per distinct attached process in the batch, in first-appearance
  /// order. `offset`/`fill` index into dm_frames_ during the scatter.
  struct DmGroup {
    Process* proc = nullptr;
    std::uint32_t count = 0;
    std::uint32_t offset = 0;
    std::uint32_t fill = 0;
  };
  std::vector<DmGroup> dm_groups_;
  /// Dense NodeId -> group index, O(1)-reset via the epoch stamp.
  std::vector<std::uint64_t> dm_node_epoch_;
  std::vector<std::uint32_t> dm_group_of_;
  std::uint64_t dm_epoch_ = 0;
  /// Frames gathered group-contiguous (copies; the batch slab still owns the
  /// payload bytes) plus their original send times for the degradation path.
  std::vector<Frame> dm_frames_;
  std::vector<Time> dm_sent_;
  std::uint64_t dm_grows_ = 0;

  // ---- reply staging (active only inside a destination-major drain) ----
  struct StagedSend {
    std::uint32_t bix = 0;  ///< originating frame's batch index
    NodeId src = kNoNode;
    NodeId dst = kNoNode;
    MsgType type = 0;
    std::uint32_t key = 0;
    std::uint64_t rpc_id = 0;
    std::uint32_t off = 0;  ///< payload offset into stage_slab_
    std::uint32_t len = 0;
  };
  bool stage_active_ = false;
  std::vector<StagedSend> stage_entries_;
  std::vector<std::uint8_t> stage_slab_;
  std::vector<std::uint32_t> stage_counts_;  ///< counting-sort workspace
  std::vector<std::uint32_t> stage_order_;   ///< canonical flush order
};

/// A protocol participant: owns a node id and reacts to delivered messages.
class Process {
 public:
  Process(NodeId id, Network& net) : id_(id), net_(net) {
    net.attach(id, *this);
  }
  virtual ~Process() = default;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Handle one delivered message. The frame and its payload span are valid
  /// only for the duration of the call.
  virtual void on_message(const Frame& m) = 0;

  /// Handle a coalesced run of frames addressed to this process (batched
  /// engine). The default replays on_message per frame; servers and client
  /// tables override it to hoist per-batch work (demux, virtual dispatch)
  /// out of the per-frame loop. Frames arrive in this process's observed
  /// delivery order; a process attached at several node ids (the
  /// ClientTable) may receive a mixed-destination run under the
  /// destination-major drain — each per-destination subsequence is still in
  /// exact global order, and single-id processes always see pure
  /// same-destination runs.
  virtual void on_deliver_batch(FrameSpan frames) {
    for (const Frame& f : frames) on_message(f);
  }

  [[nodiscard]] NodeId id() const { return id_; }

 protected:
  Network& net() { return net_; }
  Simulator& sim() { return net_.sim(); }
  /// Payload buffers should be acquired here and handed to send(); the
  /// network recycles them after delivery.
  BufferPool& pool() { return net_.pool(); }

  void send(NodeId dst, MsgType type, std::uint64_t rpc_id,
            std::vector<std::uint8_t> payload) {
    Message m;
    m.src = id_;
    m.dst = dst;
    m.type = type;
    m.rpc_id = rpc_id;
    m.payload = std::move(payload);
    net_.send(std::move(m));
  }

  /// Cause-carrying send: `cause` is the delivered frame this send is a
  /// direct reaction to (a server replying to a request, a client chaining
  /// rounds off a reply). Under a destination-major drain the network
  /// stages such sends and flushes them in canonical frame order, keeping
  /// sequence/delay assignment identical to the frame-order drain.
  void send_from(const Frame& cause, NodeId dst, MsgType type,
                 std::uint64_t rpc_id, std::vector<std::uint8_t> payload) {
    Message m;
    m.src = id_;
    m.dst = dst;
    m.type = type;
    m.rpc_id = rpc_id;
    m.payload = std::move(payload);
    net_.send(std::move(m), &cause);
  }

 private:
  NodeId id_;
  Network& net_;
};

}  // namespace mwreg
