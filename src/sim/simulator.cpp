#include "sim/simulator.h"

#include <utility>

namespace mwreg {

void Simulator::schedule_at(Time t, EventFn fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the closure handle (shared ownership is cheap enough here).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.t;
  ev.fn();
  ++executed_;
  return true;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().t <= deadline) {
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace mwreg
