#include "sim/simulator.h"

#include <stdexcept>

namespace mwreg {

Simulator::~Simulator() {
  // Destroy closures of events that never ran (e.g. run_until stopped short).
  for (const HeapEntry& e : heap_) {
    EventRecord& rec = record(e.slot());
    rec.destroy(rec);
  }
}

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const std::uint32_t slot =
      static_cast<std::uint32_t>(chunks_.size() * kChunkRecords);
  // Enforced in every build type: past this, packed heap keys would alias
  // slots and dispatch the wrong closures. ~16M *concurrently pending*
  // events means a runaway scheduling loop, not a real workload.
  if (slot + kChunkRecords - 1 > kSlotMask) {
    throw std::length_error("Simulator: over 2^24 concurrently pending events");
  }
  chunks_.push_back(std::make_unique<Chunk>());
  ++alloc_stats_.slab_chunks;
  free_slots_.reserve(free_slots_.size() + kChunkRecords);
  // Hand out the chunk's first record; queue the rest (descending, so low
  // slots are reused first — purely cosmetic, order is invisible to runs).
  for (std::uint32_t i = kChunkRecords - 1; i >= 1; --i) {
    free_slots_.push_back(slot + i);
  }
  return slot;
}

// Both sifts move the displaced entry through a "hole" and write it once at
// its final position instead of swapping entries at every level.

void Simulator::sift_up(std::size_t i) {
  const HeapEntry item = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(item, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = item;
}

void Simulator::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapEntry item = heap_[i];
  for (;;) {
    std::size_t best = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    const HeapEntry* cur = &item;
    if (l < n && earlier(heap_[l], *cur)) {
      best = l;
      cur = &heap_[l];
    }
    if (r < n && earlier(heap_[r], *cur)) {
      best = r;
    }
    if (best == i) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = item;
}

void Simulator::pop_top() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_.front();
  pop_top();
  now_ = top.t;
  EventRecord& rec = record(top.slot());
  // The record stays put while its closure runs: nested schedule_at calls
  // can only grow the slab or consume free slots, never move live records.
  // The slot is recycled only after the closure is gone — run() invokes
  // and destroys it on the normal path; if the closure throws, the guard
  // destroys it during unwind (same as the old std::function engine) —
  // so re-entrant scheduling cannot overwrite a live closure and a
  // recycled slot never holds one.
  struct SlotGuard {
    Simulator* sim;
    EventRecord* rec;
    std::uint32_t slot;
    bool ran = false;
    ~SlotGuard() {
      if (!ran) rec->destroy(*rec);
      sim->free_slots_.push_back(slot);
    }
  } guard{this, &rec, top.slot()};
  rec.run(rec);
  guard.ran = true;
  ++executed_;
  return true;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t n = 0;
  while (!heap_.empty() && heap_.front().t <= deadline) {
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace mwreg
