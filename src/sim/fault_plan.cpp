#include "sim/fault_plan.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <utility>

namespace mwreg {

// ---- FaultPlan value semantics ----

std::string FaultPlan::validate() const {
  if (name.empty() && !steps.empty()) return "fault plan needs a name";
  for (const FaultStep& st : steps) {
    if (st.at < 0) return "fault plan '" + name + "': step time < 0";
    if (st.index < 0) return "fault plan '" + name + "': server index < 0";
    if (st.kind == FaultStep::Kind::kPartition &&
        st.scope == FaultStep::Scope::kExplicit && st.count < 1) {
      return "fault plan '" + name + "': explicit partition needs count >= 1";
    }
    if (st.kind == FaultStep::Kind::kDelaySpike && !(st.factor > 0)) {
      return "fault plan '" + name + "': delay factor must be > 0";
    }
  }
  return "";
}

std::uint64_t FaultPlan::digest() const {
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](std::uint64_t v) { h = (h ^ v) * 1099511628211ULL; };
  for (char c : name) mix(static_cast<unsigned char>(c));
  for (const FaultStep& st : steps) {
    mix(static_cast<std::uint64_t>(st.at));
    mix(static_cast<std::uint64_t>(st.kind));
    mix(static_cast<std::uint64_t>(st.index));
    mix(static_cast<std::uint64_t>(st.count));
    mix(static_cast<std::uint64_t>(st.scope));
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof st.factor, "factor must be 64-bit");
    std::memcpy(&bits, &st.factor, sizeof bits);
    mix(bits);
  }
  return h;
}

FaultPlan& FaultPlan::crash(int server_index, Time at) {
  FaultStep st;
  st.at = at;
  st.kind = FaultStep::Kind::kCrashServer;
  st.index = server_index;
  steps.push_back(st);
  return *this;
}

FaultPlan& FaultPlan::recover(int server_index, Time at) {
  FaultStep st;
  st.at = at;
  st.kind = FaultStep::Kind::kRecoverServer;
  st.index = server_index;
  steps.push_back(st);
  return *this;
}

FaultPlan& FaultPlan::partition(FaultStep::Scope scope, Time at, int index,
                                int count) {
  FaultStep st;
  st.at = at;
  st.kind = FaultStep::Kind::kPartition;
  st.scope = scope;
  st.index = index;
  st.count = count;
  steps.push_back(st);
  return *this;
}

FaultPlan& FaultPlan::heal(Time at) {
  FaultStep st;
  st.at = at;
  st.kind = FaultStep::Kind::kHeal;
  steps.push_back(st);
  return *this;
}

FaultPlan& FaultPlan::skip_schedule(Time at) {
  FaultStep st;
  st.at = at;
  st.kind = FaultStep::Kind::kSkipSchedule;
  steps.push_back(st);
  return *this;
}

FaultPlan& FaultPlan::delay_spike(double factor, Time at) {
  FaultStep st;
  st.at = at;
  st.kind = FaultStep::Kind::kDelaySpike;
  st.factor = factor;
  steps.push_back(st);
  return *this;
}

// ---- installation: steps become simulator events ----

namespace {

/// Shared by every scheduled step of one installed plan. Tracks the directed
/// links the plan blocked so kHeal releases exactly those.
struct PlanState {
  Network* net = nullptr;
  ClusterConfig cfg;
  SpikeDelay* spike = nullptr;
  std::vector<std::pair<NodeId, NodeId>> blocked;
  std::shared_ptr<FaultPlanLog> log;

  void block_tracked(NodeId a, NodeId b) {
    for (const auto& pair :
         {std::make_pair(a, b), std::make_pair(b, a)}) {
      blocked.push_back(pair);  // this plan owns one reference
      if (++log->block_refs[pair] == 1) {
        net->block_link(pair.first, pair.second);
      }
    }
  }

  void heal_all() {
    for (const auto& pair : blocked) {
      const auto it = log->block_refs.find(pair);
      if (it != log->block_refs.end() && --it->second == 0) {
        log->block_refs.erase(it);
        net->unblock_link(pair.first, pair.second);
      }
    }
    blocked.clear();
  }
};

int partition_width(const FaultStep& st, const ClusterConfig& cfg) {
  int n = 0;
  switch (st.scope) {
    case FaultStep::Scope::kExplicit:
      n = st.count;
      break;
    case FaultStep::Scope::kFaultBudget:
      n = cfg.t();  // exactly the budget; 0 on a t=0 cluster (no-op)
      break;
    case FaultStep::Scope::kMajority:
      n = cfg.s() / 2 + 1;
      break;
  }
  return std::max(0, std::min(n, cfg.s()));
}

/// How a step affects the disruption window: steps that turn out to do
/// nothing (empty partition, skip on a t=0 cluster, spike with no spike
/// model) must neither count as faults nor move the window.
enum class StepEffect { kDisruptive, kRestorative, kNoop };

void apply_step(PlanState& ps, const FaultStep& st) {
  const ClusterConfig& cfg = ps.cfg;
  const int S = cfg.s();
  FaultPlanLog& log = *ps.log;
  StepEffect effect = StepEffect::kNoop;
  switch (st.kind) {
    case FaultStep::Kind::kCrashServer: {
      const NodeId id = cfg.server_id(st.index % S);
      ps.net->crash(id);
      log.active_crashes.insert(id);
      effect = StepEffect::kDisruptive;
      break;
    }
    case FaultStep::Kind::kRecoverServer: {
      const NodeId id = cfg.server_id(st.index % S);
      ps.net->recover(id);
      log.active_crashes.erase(id);
      effect = StepEffect::kRestorative;
      break;
    }
    case FaultStep::Kind::kPartition: {
      const int n = partition_width(st, cfg);
      const std::size_t blocked_before = ps.blocked.size();
      std::set<NodeId> inside;
      for (int i = 0; i < n; ++i) {
        inside.insert(cfg.server_id((st.index + i) % S));
      }
      for (NodeId s : inside) {
        for (NodeId m = 0; m < cfg.total_nodes(); ++m) {
          if (inside.count(m) == 0) ps.block_tracked(s, m);
        }
      }
      if (ps.blocked.size() > blocked_before) {
        effect = StepEffect::kDisruptive;
      }
      break;
    }
    case FaultStep::Kind::kHeal:
      if (!ps.blocked.empty()) effect = StepEffect::kRestorative;
      ps.heal_all();
      break;
    case FaultStep::Kind::kSkipSchedule: {
      // Writer 0 loses servers [0, t); reader ri loses the next disjoint
      // t-set, wrapping mod S — the shape of the Fig. 9 skip argument.
      // A t=0 cluster has no budget to skip, so the step is a no-op.
      const int t = cfg.t();
      const std::size_t blocked_before = ps.blocked.size();
      if (cfg.w() > 0) {
        for (int j = 0; j < t; ++j) {
          ps.block_tracked(cfg.writer_id(0), cfg.server_id(j % S));
        }
      }
      for (int ri = 0; ri < cfg.r(); ++ri) {
        for (int j = 0; j < t; ++j) {
          ps.block_tracked(cfg.reader_id(ri),
                           cfg.server_id((t * (ri + 1) + j) % S));
        }
      }
      if (ps.blocked.size() > blocked_before) {
        effect = StepEffect::kDisruptive;
      }
      break;
    }
    case FaultStep::Kind::kDelaySpike:
      if (ps.spike != nullptr) {
        ps.spike->set_factor(st.factor);
        log.active_spike = st.factor != 1.0;
        effect = st.factor != 1.0 ? StepEffect::kDisruptive
                                  : StepEffect::kRestorative;
      }
      break;
  }
  const Time now = ps.net->sim().now();
  if (effect == StepEffect::kDisruptive) {
    ++log.faults_injected;
    log.disruption_start = std::min(log.disruption_start, now);
    log.heal_time = kTimeMax;  // a new disruption reopens the window
  } else if (effect == StepEffect::kRestorative &&
             !log.disruption_active()) {
    // Only a step that lifts the LAST active disruption closes the window
    // (events run in time order, so a later full heal overwrites this).
    log.heal_time = now;
  }
}

}  // namespace

std::shared_ptr<FaultPlanLog> install_fault_plan(
    Network& net, const ClusterConfig& cfg, const FaultPlan& plan,
    SpikeDelay* spike, std::shared_ptr<FaultPlanLog> log) {
  if (!log) log = std::make_shared<FaultPlanLog>();
  if (plan.steps.empty()) return log;
  auto ps = std::make_shared<PlanState>();
  ps->net = &net;
  ps->cfg = cfg;
  ps->spike = spike;
  ps->log = log;
  for (const FaultStep& st : plan.steps) {
    net.sim().schedule_at(st.at, [ps, st]() { apply_step(*ps, st); });
  }
  return log;
}

// ---- canned scenario library ----

namespace scenarios {

FaultPlan single_crash(Time at) {
  FaultPlan p;
  p.name = "single-crash";
  p.crash(0, at);
  return p;
}

FaultPlan crash_recover(Time at, Time recover_at) {
  FaultPlan p;
  p.name = "crash-recover";
  p.crash(0, at).recover(0, recover_at);
  return p;
}

FaultPlan rolling_crashes(int rounds, Time start, Duration gap) {
  FaultPlan p;
  p.name = "rolling-crashes";
  for (int i = 0; i < rounds; ++i) {
    const Time at = start + static_cast<Time>(i) * gap;
    p.crash(i, at).recover(i, at + gap / 2);  // at most one server down
  }
  return p;
}

FaultPlan minority_partition(Time at, Time heal_at) {
  FaultPlan p;
  p.name = "minority-partition";
  p.partition(FaultStep::Scope::kFaultBudget, at).heal(heal_at);
  return p;
}

FaultPlan majority_partition(Time at, Time heal_at) {
  FaultPlan p;
  p.name = "majority-partition";
  p.partition(FaultStep::Scope::kMajority, at).heal(heal_at);
  return p;
}

FaultPlan fig9_skip(Time at, Time heal_at) {
  FaultPlan p;
  p.name = "fig9-skip";
  p.skip_schedule(at).heal(heal_at);
  return p;
}

FaultPlan delay_spike(double factor, Time at, Time settle_at) {
  FaultPlan p;
  p.name = "delay-spike";
  p.delay_spike(factor, at).delay_spike(1.0, settle_at);
  return p;
}

std::vector<FaultPlan> all() {
  return {single_crash(),       crash_recover(), rolling_crashes(),
          minority_partition(), majority_partition(),
          fig9_skip(),          delay_spike()};
}

}  // namespace scenarios

}  // namespace mwreg
