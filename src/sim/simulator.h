// Single-threaded discrete-event simulator.
//
// Events are (time, sequence, closure) triples executed in nondecreasing time
// order; ties break by insertion sequence so runs are fully deterministic.
// All asynchrony in the system (message delays, timers, client think time)
// is expressed as scheduled events.
//
// Hot-path layout: the ready queue is a flat binary heap of 16-byte
// (time, seq·slot) entries; the closures themselves live in slab-allocated
// event records with inline storage for the common capture sizes (a Message
// delivery capture fits), so scheduling and executing an event allocates
// nothing once the slab and heap have warmed up. Closures larger than the
// inline buffer spill to the heap and are counted in alloc_stats() — the
// allocation-regression test keeps the steady state at zero.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.h"

namespace mwreg {

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (clamped to now if in the past).
  /// `fn` is any void() callable; its captures are stored inline in the
  /// event slab when they fit (kInlineEventBytes), else heap-spilled.
  template <typename Fn>
  void schedule_at(Time t, Fn&& fn) {
    if (t < now_) t = now_;
    const std::uint32_t slot = emplace_closure(std::forward<Fn>(fn));
    heap_.push_back(HeapEntry{t, (next_seq_++ << kSlotBits) | slot});
    sift_up(heap_.size() - 1);
  }

  /// Schedule `fn` after `d` simulated nanoseconds.
  template <typename Fn>
  void schedule_after(Duration d, Fn&& fn) {
    schedule_at(now_ + d, std::forward<Fn>(fn));
  }

  // ---- batched-delivery support ----
  //
  // The batching network coalesces many frames into one delivery event but
  // must reproduce the per-event (time, seq) execution order exactly. It
  // does so by consuming one sequence number per frame via reserve_seq()
  // (identical seq arithmetic to scheduling one event per frame), pushing a
  // single event at the first frame's sequence with schedule_at_seq(), and
  // yielding back to the heap mid-batch whenever has_event_before() says an
  // intermediate event is due (rescheduling the remainder at the next
  // frame's reserved sequence). DESIGN.md section 8 gives the argument.

  /// Consume and return the next tie-break sequence number without pushing
  /// an event. Pair with schedule_at_seq().
  [[nodiscard]] std::uint64_t reserve_seq() { return next_seq_++; }

  /// Schedule `fn` at absolute time `t` under a sequence number previously
  /// obtained from reserve_seq(). Each reserved sequence may be scheduled
  /// at most once (heap keys must stay unique).
  template <typename Fn>
  void schedule_at_seq(Time t, std::uint64_t seq, Fn&& fn) {
    if (t < now_) t = now_;
    const std::uint32_t slot = emplace_closure(std::forward<Fn>(fn));
    heap_.push_back(HeapEntry{t, (seq << kSlotBits) | slot});
    sift_up(heap_.size() - 1);
  }

  /// True when the earliest pending event orders strictly before (t, seq)
  /// under the (time, seq) tie-break. O(1): one peek at the heap top.
  [[nodiscard]] bool has_event_before(Time t, std::uint64_t seq) const {
    if (heap_.empty()) return false;
    const HeapEntry& top = heap_.front();
    return top.t != t ? top.t < t : (top.key >> kSlotBits) < seq;
  }

  /// Execute the next event. Returns false if the queue is empty.
  bool step();

  /// Run until no events remain. Returns the number of events executed.
  std::size_t run();

  /// Run until the queue is empty or virtual time would exceed `deadline`.
  /// Events at exactly `deadline` are executed; later events stay queued.
  std::size_t run_until(Time deadline);

  [[nodiscard]] bool idle() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Allocation counters for the engine itself. Steady-state operation —
  /// after the first events have warmed the slab — performs none: slots and
  /// heap capacity are recycled. tests/alloc_regression_test.cpp pins this.
  struct AllocStats {
    std::uint64_t slab_chunks = 0;  ///< event-record chunks ever allocated
    std::uint64_t heap_spills = 0;  ///< closures too large for inline storage
  };
  [[nodiscard]] const AllocStats& alloc_stats() const { return alloc_stats_; }
  /// Total engine allocations (chunks + spills), for regression asserts.
  [[nodiscard]] std::uint64_t allocations() const {
    return alloc_stats_.slab_chunks + alloc_stats_.heap_spills;
  }

  /// Inline capture budget: sized so a Network delivery closure
  /// (Message + send time + network pointer) stays inline.
  static constexpr std::size_t kInlineEventBytes = 88;

 private:
  /// Slot indices share a word with the tie-break sequence: seq lives in
  /// the high bits, so comparing keys orders by seq exactly (sequences are
  /// unique), and the entry stays 16 bytes for cache-friendly sifting.
  /// 2^24 slots bounds *concurrently pending* events at ~16M — enough for
  /// 10^6 table-driven clients each holding a think-timer plus an in-flight
  /// fan-out; 2^40 sequences bounds total events per simulator.
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;

  struct HeapEntry {
    Time t;
    std::uint64_t key;  ///< (seq << kSlotBits) | slot
    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(key) & kSlotMask;
    }
  };

  /// Type-erased closure in a fixed slab slot. Records never move (the slab
  /// grows by whole chunks), so closures are constructed in place and run
  /// from the same address; no move support is needed. `run` invokes and
  /// then destroys in one indirect call (the execute hot path); `destroy`
  /// alone is for events that die unexecuted (~Simulator).
  struct EventRecord {
    void (*run)(EventRecord&) = nullptr;
    void (*destroy)(EventRecord&) = nullptr;
    void* spill = nullptr;  ///< heap fallback for oversized closures
    alignas(std::max_align_t) unsigned char storage[kInlineEventBytes];
  };

  static constexpr std::size_t kChunkRecords = 256;
  struct Chunk {
    EventRecord records[kChunkRecords];
  };

  template <typename F>
  std::uint32_t emplace_closure(F&& fn) {
    using Fn = std::decay_t<F>;
    const std::uint32_t slot = acquire_slot();
    EventRecord& rec = record(slot);
    if constexpr (sizeof(Fn) <= kInlineEventBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(rec.storage)) Fn(std::forward<F>(fn));
      rec.run = [](EventRecord& r) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(r.storage));
        (*f)();
        f->~Fn();
      };
      rec.destroy = [](EventRecord& r) {
        std::launder(reinterpret_cast<Fn*>(r.storage))->~Fn();
      };
    } else {
      rec.spill = new Fn(std::forward<F>(fn));
      ++alloc_stats_.heap_spills;
      rec.run = [](EventRecord& r) {
        Fn* f = static_cast<Fn*>(r.spill);
        (*f)();
        delete f;
        r.spill = nullptr;
      };
      rec.destroy = [](EventRecord& r) {
        delete static_cast<Fn*>(r.spill);
        r.spill = nullptr;
      };
    }
    return slot;
  }

  [[nodiscard]] EventRecord& record(std::uint32_t slot) {
    return chunks_[slot / kChunkRecords]->records[slot % kChunkRecords];
  }

  std::uint32_t acquire_slot();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void pop_top();

  /// Min-heap order: earliest (time, seq) at heap_[0]. Key comparison is
  /// sequence comparison: seq occupies the high bits and is unique.
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.t != b.t ? a.t < b.t : a.key < b.key;
  }

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::uint32_t> free_slots_;
  AllocStats alloc_stats_;
};

}  // namespace mwreg
