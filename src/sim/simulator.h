// Single-threaded discrete-event simulator.
//
// Events are (time, sequence, closure) triples executed in nondecreasing time
// order; ties break by insertion sequence so runs are fully deterministic.
// All asynchrony in the system (message delays, timers, client think time)
// is expressed as scheduled events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace mwreg {

class Simulator {
 public:
  using EventFn = std::function<void()>;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (clamped to now if in the past).
  void schedule_at(Time t, EventFn fn);

  /// Schedule `fn` after `d` simulated nanoseconds.
  void schedule_after(Duration d, EventFn fn) { schedule_at(now_ + d, std::move(fn)); }

  /// Execute the next event. Returns false if the queue is empty.
  bool step();

  /// Run until no events remain. Returns the number of events executed.
  std::size_t run();

  /// Run until the queue is empty or virtual time would exceed `deadline`.
  /// Events at exactly `deadline` are executed.
  std::size_t run_until(Time deadline);

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace mwreg
