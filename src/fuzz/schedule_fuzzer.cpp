#include "fuzz/schedule_fuzzer.h"

#include <memory>
#include <vector>

#include "consistency/checkers.h"
#include "consistency/weak_checkers.h"
#include "core/harness.h"
#include "core/workload.h"
#include "protocols/protocols.h"

namespace mwreg::fuzz {
namespace {

/// Temporarily cut one random server off from one random client, honoring
/// the budget: per client at most t servers blocked at a time.
void schedule_link_flaps(SimHarness& h, int flaps, Rng& rng) {
  const ClusterConfig& cfg = h.cfg();
  const Duration horizon = 400 * kMillisecond;
  for (int i = 0; i < flaps; ++i) {
    const Time at = rng.next_in(0, horizon);
    const Duration len = rng.next_in(5 * kMillisecond, 60 * kMillisecond);
    const NodeId server = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(cfg.s())));
    const std::vector<NodeId> clients = cfg.client_ids();
    const NodeId client = clients[rng.next_below(clients.size())];
    h.sim().schedule_at(at, [&h, server, client, len]() {
      // Budget check: count servers currently cut from this client.
      int blocked = 0;
      for (NodeId sv : h.cfg().server_ids()) {
        blocked += h.net().link_blocked(sv, client);
      }
      if (blocked >= h.cfg().t()) return;  // would exceed the failure budget
      h.net().block_pair(server, client);
      h.sim().schedule_after(len, [&h, server, client]() {
        h.net().unblock_pair(server, client);
      });
    });
  }
}

CheckResult check_expected(const History& hist, const std::string& expect) {
  if (expect == "regular") return check_regular(hist);
  if (expect == "safe") return check_safe(hist);
  return check_tag_witness(hist);
}

/// FNV-1a over the rendered history plus the conservation buckets: any
/// reordering that moves an op's value or timestamps, or changes a single
/// message's fate, moves the digest.
std::uint64_t trial_digest(const History& hist, const NetworkStats& s) {
  std::uint64_t h = 14695981039346656037ULL;
  auto mix_byte = [&h](unsigned char b) { h = (h ^ b) * 1099511628211ULL; };
  for (const char c : hist.to_string()) {
    mix_byte(static_cast<unsigned char>(c));
  }
  for (const std::uint64_t v :
       {s.sent, s.delivered, s.held, s.to_crashed, s.from_crashed,
        s.dropped_unattached}) {
    for (int i = 0; i < 8; ++i) {
      mix_byte(static_cast<unsigned char>((v >> (8 * i)) & 0xFF));
    }
  }
  return h;
}

struct LaneResult {
  std::uint64_t digest = 0;
  bool atomic = false;
  bool stream_atomic = false;  ///< live streaming checker, same history
};

/// One fuzzed schedule under one engine configuration. Lanes sharing a
/// trial_seed see the same harness RNG, the same flap plan, and the same
/// workload draws — the engine is the only variable.
LaneResult run_parity_lane(const ParityOptions& opts, const Protocol& proto,
                           std::uint64_t trial_seed, bool crash, bool coalesce,
                           bool dest_major) {
  SimHarness::Options o;
  o.cfg = opts.cfg;
  o.seed = trial_seed;
  o.delay = std::make_unique<LogNormalDelay>(3 * kMillisecond, 1.2);
  o.coalesce = coalesce;
  o.dest_major = dest_major;
  o.tick = opts.tick;
  // Fourth verdict lane: the streaming checker rides along live (history
  // retirement stays OFF so trial digests still cover the full history).
  o.streaming_check = true;
  SimHarness h(proto, std::move(o));

  Rng flap_rng(trial_seed ^ 0x9e3779b97f4a7c15ULL);
  schedule_link_flaps(h, opts.link_flaps, flap_rng);

  WorkloadOptions w;
  w.ops_per_writer = opts.ops_per_client;
  w.ops_per_reader = opts.ops_per_client;
  w.think_hi = 15 * kMillisecond;
  if (crash) {
    w.crash_servers = opts.cfg.t();
    w.crash_after_ops = opts.ops_per_client;
  }
  run_random_workload(h, w);

  LaneResult r;
  r.digest = trial_digest(h.history(), h.net().stats());
  r.atomic = check_tag_witness(h.history()).atomic;
  r.stream_atomic = h.stream_checker(0)->finish().atomic;
  return r;
}

}  // namespace

FuzzReport run_schedule_fuzzer(const FuzzOptions& opts) {
  FuzzReport report;
  Rng master(opts.seed);
  const Protocol* proto = protocol_by_name(opts.protocol);
  if (proto == nullptr) {
    report.first_violation = "unknown protocol: " + opts.protocol;
    return report;
  }
  for (int trial = 0; trial < opts.trials; ++trial) {
    ++report.trials;
    Rng rng = master.fork();
    SimHarness::Options o;
    o.cfg = opts.cfg;
    o.seed = rng.next();
    // Heavy-tailed delays widen the schedule space.
    o.delay = std::make_unique<LogNormalDelay>(3 * kMillisecond, 1.2);
    SimHarness h(*proto, std::move(o));

    schedule_link_flaps(h, opts.link_flaps, rng);

    WorkloadOptions w;
    w.ops_per_writer = opts.ops_per_client;
    w.ops_per_reader = opts.ops_per_client;
    w.think_hi = 15 * kMillisecond;
    if (rng.next_bool(opts.crash_probability)) {
      w.crash_servers = opts.cfg.t();
      w.crash_after_ops = opts.ops_per_client;
    }
    run_random_workload(h, w);

    report.total_ops += h.history().size();
    report.pending_ops += h.history().size() - h.history().completed_count();
    const CheckResult res = check_expected(h.history(), opts.expect);
    if (res.atomic) {
      ++report.passed;
    } else {
      ++report.violations;
      if (report.first_violation.empty()) {
        report.first_violation = res.violation + "\n" + h.history().to_string();
      }
    }
  }
  return report;
}

ParityReport run_engine_parity_fuzzer(const ParityOptions& opts) {
  ParityReport report;
  Rng master(opts.seed);
  const Protocol* proto = protocol_by_name(opts.protocol);
  if (proto == nullptr) {
    report.first_mismatch = "unknown protocol: " + opts.protocol;
    return report;
  }
  for (int trial = 0; trial < opts.trials; ++trial) {
    ++report.trials;
    const std::uint64_t trial_seed = master.next();
    const bool crash = master.next_bool(opts.crash_probability);
    if (crash) ++report.crash_trials;

    const LaneResult per_message = run_parity_lane(
        opts, *proto, trial_seed, crash, /*coalesce=*/false, false);
    const LaneResult frame_order = run_parity_lane(
        opts, *proto, trial_seed, crash, /*coalesce=*/true, false);
    const LaneResult dest_major = run_parity_lane(
        opts, *proto, trial_seed, crash, /*coalesce=*/true, true);

    auto note = [&report, trial](const std::string& what) {
      ++report.mismatches;
      if (report.first_mismatch.empty()) {
        report.first_mismatch = what + " (trial " + std::to_string(trial) + ")";
      }
    };
    if (per_message.digest == frame_order.digest) {
      ++report.frame_order_exact;
    } else {
      note("per-message vs frame-order digest mismatch");
    }
    if (per_message.stream_atomic == per_message.atomic &&
        frame_order.stream_atomic == frame_order.atomic &&
        dest_major.stream_atomic == dest_major.atomic) {
      ++report.stream_verdict_parity;
    } else {
      note("live streaming verdict diverged from the batch tag witness");
    }
    if (!crash) {
      if (frame_order.digest == dest_major.digest) {
        ++report.dest_major_exact;
      } else {
        note("frame-order vs dest-major digest mismatch");
      }
    } else {
      if (per_message.atomic == frame_order.atomic &&
          frame_order.atomic == dest_major.atomic) {
        ++report.verdict_only;
      } else {
        note("checker verdicts diverged across engines on a crash trial");
      }
    }
  }
  return report;
}

}  // namespace mwreg::fuzz
