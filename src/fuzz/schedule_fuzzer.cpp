#include "fuzz/schedule_fuzzer.h"

#include <memory>
#include <vector>

#include "consistency/checkers.h"
#include "consistency/weak_checkers.h"
#include "core/harness.h"
#include "core/workload.h"
#include "protocols/protocols.h"

namespace mwreg::fuzz {
namespace {

/// Temporarily cut one random server off from one random client, honoring
/// the budget: per client at most t servers blocked at a time.
void schedule_link_flaps(SimHarness& h, int flaps, Rng& rng) {
  const ClusterConfig& cfg = h.cfg();
  const Duration horizon = 400 * kMillisecond;
  for (int i = 0; i < flaps; ++i) {
    const Time at = rng.next_in(0, horizon);
    const Duration len = rng.next_in(5 * kMillisecond, 60 * kMillisecond);
    const NodeId server = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(cfg.s())));
    const std::vector<NodeId> clients = cfg.client_ids();
    const NodeId client = clients[rng.next_below(clients.size())];
    h.sim().schedule_at(at, [&h, server, client, len]() {
      // Budget check: count servers currently cut from this client.
      int blocked = 0;
      for (NodeId sv : h.cfg().server_ids()) {
        blocked += h.net().link_blocked(sv, client);
      }
      if (blocked >= h.cfg().t()) return;  // would exceed the failure budget
      h.net().block_pair(server, client);
      h.sim().schedule_after(len, [&h, server, client]() {
        h.net().unblock_pair(server, client);
      });
    });
  }
}

CheckResult check_expected(const History& hist, const std::string& expect) {
  if (expect == "regular") return check_regular(hist);
  if (expect == "safe") return check_safe(hist);
  return check_tag_witness(hist);
}

}  // namespace

FuzzReport run_schedule_fuzzer(const FuzzOptions& opts) {
  FuzzReport report;
  Rng master(opts.seed);
  const Protocol* proto = protocol_by_name(opts.protocol);
  if (proto == nullptr) {
    report.first_violation = "unknown protocol: " + opts.protocol;
    return report;
  }
  for (int trial = 0; trial < opts.trials; ++trial) {
    ++report.trials;
    Rng rng = master.fork();
    SimHarness::Options o;
    o.cfg = opts.cfg;
    o.seed = rng.next();
    // Heavy-tailed delays widen the schedule space.
    o.delay = std::make_unique<LogNormalDelay>(3 * kMillisecond, 1.2);
    SimHarness h(*proto, std::move(o));

    schedule_link_flaps(h, opts.link_flaps, rng);

    WorkloadOptions w;
    w.ops_per_writer = opts.ops_per_client;
    w.ops_per_reader = opts.ops_per_client;
    w.think_hi = 15 * kMillisecond;
    if (rng.next_bool(opts.crash_probability)) {
      w.crash_servers = opts.cfg.t();
      w.crash_after_ops = opts.ops_per_client;
    }
    run_random_workload(h, w);

    report.total_ops += h.history().size();
    report.pending_ops += h.history().size() - h.history().completed_count();
    const CheckResult res = check_expected(h.history(), opts.expect);
    if (res.atomic) {
      ++report.passed;
    } else {
      ++report.violations;
      if (report.first_violation.empty()) {
        report.first_violation = res.violation + "\n" + h.history().to_string();
      }
    }
  }
  return report;
}

}  // namespace mwreg::fuzz
