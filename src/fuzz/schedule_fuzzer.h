// Schedule fuzzing: randomized exploration of message schedules and fault
// patterns, with every produced history machine-checked.
//
// Each trial runs a random closed-loop workload under a heavy-tailed delay
// model, while an adversary thread of events randomly blocks/unblocks
// client-server links (within the failure budget: at most t servers are cut
// from any client at a time) and optionally crashes up to t servers. This
// explores delivery-order interleavings far beyond what fixed-seed tests
// reach -- the cheap, honest cousin of a full schedule model checker.
#pragma once

#include <cstdint>
#include <string>

#include "common/cluster.h"

namespace mwreg::fuzz {

struct FuzzOptions {
  std::string protocol = "mw-abd(W2R2)";
  ClusterConfig cfg{5, 2, 2, 2};
  int trials = 50;
  int ops_per_client = 8;
  /// Probability that a trial crashes exactly t random servers mid-run.
  double crash_probability = 0.3;
  /// Number of random block/unblock adversary events per trial.
  int link_flaps = 20;
  std::uint64_t seed = 1;
  /// Expected guarantee: "atomic", "regular" or "safe".
  std::string expect = "atomic";
};

struct FuzzReport {
  int trials = 0;
  int passed = 0;
  int violations = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t pending_ops = 0;  ///< ops stalled by fault injection (allowed)
  std::string first_violation;    ///< history + verdict of the first failure
};

FuzzReport run_schedule_fuzzer(const FuzzOptions& opts);

}  // namespace mwreg::fuzz
