// Schedule fuzzing: randomized exploration of message schedules and fault
// patterns, with every produced history machine-checked.
//
// Each trial runs a random closed-loop workload under a heavy-tailed delay
// model, while an adversary thread of events randomly blocks/unblocks
// client-server links (within the failure budget: at most t servers are cut
// from any client at a time) and optionally crashes up to t servers. This
// explores delivery-order interleavings far beyond what fixed-seed tests
// reach -- the cheap, honest cousin of a full schedule model checker.
#pragma once

#include <cstdint>
#include <string>

#include "common/cluster.h"

namespace mwreg::fuzz {

struct FuzzOptions {
  std::string protocol = "mw-abd(W2R2)";
  ClusterConfig cfg{5, 2, 2, 2};
  int trials = 50;
  int ops_per_client = 8;
  /// Probability that a trial crashes exactly t random servers mid-run.
  double crash_probability = 0.3;
  /// Number of random block/unblock adversary events per trial.
  int link_flaps = 20;
  std::uint64_t seed = 1;
  /// Expected guarantee: "atomic", "regular" or "safe".
  std::string expect = "atomic";
};

struct FuzzReport {
  int trials = 0;
  int passed = 0;
  int violations = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t pending_ops = 0;  ///< ops stalled by fault injection (allowed)
  std::string first_violation;    ///< history + verdict of the first failure
};

FuzzReport run_schedule_fuzzer(const FuzzOptions& opts);

/// Engine-parity soak: replays every fuzzed schedule — same harness seed,
/// same link-flap plan, same workload, optionally an inline mid-run crash —
/// under three delivery engines and cross-checks them:
///   A. per-message (coalesce off): the registered ablation;
///   B. batched, frame-order drain (coalesce on, dest_major off);
///   C. batched, destination-major drain (coalesce on, dest_major on).
/// A vs B must be digest-identical on EVERY trial, crashes included (the
/// frame-order drain re-checks fault state per frame). B vs C must be
/// digest-identical on crash-free trials; trials whose workload crashes
/// servers from a completion callback mutate fault state mid-drain (outside
/// the batch contract), so C may legitimately split runs differently there
/// and only the checker verdicts are compared.
///
/// Every lane additionally runs the streaming tag-witness checker LIVE
/// (subscribed to the lane's history) — the fourth verdict lane: its
/// finish() verdict must equal the lane's batch check_tag_witness verdict
/// on every trial, crashed or not (stream_verdict_parity).
struct ParityOptions {
  std::string protocol = "mw-abd(W2R2)";
  ClusterConfig cfg{5, 2, 2, 2};
  int trials = 20;
  int ops_per_client = 6;
  double crash_probability = 0.3;
  int link_flaps = 20;
  std::uint64_t seed = 1;
  /// Delivery-time quantum shared by all three lanes (coarse enough that
  /// multi-frame batches actually form under the fuzzed delays).
  Duration tick = 10'000;  // 10us in ns
};

struct ParityReport {
  int trials = 0;
  int crash_trials = 0;
  /// Trials where the per-message and frame-order digests matched
  /// (must equal trials).
  int frame_order_exact = 0;
  /// Crash-free trials where the frame-order and dest-major digests
  /// matched (must equal trials - crash_trials).
  int dest_major_exact = 0;
  /// Crash trials where all three lanes agreed on the checker verdict.
  int verdict_only = 0;
  /// Trials where every lane's LIVE streaming verdict equaled that lane's
  /// batch tag-witness verdict (must equal trials).
  int stream_verdict_parity = 0;
  int mismatches = 0;
  std::string first_mismatch;
};

ParityReport run_engine_parity_fuzzer(const ParityOptions& opts);

}  // namespace mwreg::fuzz
