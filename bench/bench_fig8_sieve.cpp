// Fig. 8: eliminating servers affected by R2's first round. We sweep the
// number of affected servers |Sigma1| and show the shortened chain alpha-hat
// still yields a critical server inside Sigma2 whenever >= 3 servers remain.
#include "bench/bench_util.h"
#include "chains/sieve.h"
#include "fullinfo/rules.h"

namespace mwreg {
namespace {

void report() {
  using bench::header;
  using bench::row;
  const std::vector<int> w{6, 10, 10, 13, 9, 11};

  for (const auto& rule : fullinfo::standard_rules()) {
    header("Fig. 8 sieve sweep -- rule: " + rule->name() + " (S = 10)");
    row({"x", "|Sigma1|", "chain len", "sigma1 const", "pivot", "survives"}, w);
    const int S = 10;
    for (int x = 3; x <= S; ++x) {
      const chains::SieveResult r = chains::run_sieve(*rule, S, x);
      row({std::to_string(x), std::to_string(S - x),
           std::to_string(r.r1_values.size()),
           r.sigma1_constant_ok ? "yes" : "NO",
           "s_" + std::to_string(r.pivot),
           r.chain_argument_survives() ? "yes" : "NO"},
          w);
    }
  }
  std::printf(
      "\nExpected shape: the chain shortens from S+1 to x+1 executions, the\n"
      "affected servers behave identically everywhere (carrying no usable\n"
      "information), and the critical server always lands inside Sigma2 --\n"
      "so the Section 3 argument proceeds on the unaffected servers alone.\n");
}

void BM_SieveRun(benchmark::State& state) {
  const fullinfo::MajorityOrderRule rule;
  const int S = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chains::run_sieve(rule, S, S / 2 + 2).chain_argument_survives());
  }
}
BENCHMARK(BM_SieveRun)->Arg(6)->Arg(10)->Arg(20)->Arg(40);

}  // namespace
}  // namespace mwreg

MWREG_BENCH_MAIN(mwreg::report)
