// Fig. 2: the latency/consistency Hasse diagram. Fast operations take one
// round-trip, slow ones two; the diagram orders W1R1 < {W1R2, W2R1} < W2R2
// by latency. We measure actual operation latency for every protocol under
// a constant-delay network (where the factor of two is exact) and a
// geo-replicated delay matrix (where it shows up in the tail).
#include <memory>

#include "bench/bench_util.h"
#include "consistency/checkers.h"
#include "core/harness.h"
#include "core/workload.h"
#include "protocols/protocols.h"

namespace mwreg {
namespace {

struct Cell {
  const char* proto;
  ClusterConfig cfg;
};

const std::vector<Cell>& cells() {
  // Configurations under which each protocol is atomic.
  static const std::vector<Cell> kCells{
      {"fast-swmr(W1R1)", ClusterConfig{7, 1, 3, 1}},
      {"abd-swmr(W1R2)", ClusterConfig{7, 1, 3, 1}},
      {"fast-read-mw(W2R1)", ClusterConfig{7, 2, 3, 1}},
      {"mw-abd(W2R2)", ClusterConfig{7, 2, 3, 1}},
  };
  return kCells;
}

std::unique_ptr<DelayModel> make_geo(const ClusterConfig& cfg) {
  // Three sites ~ US-East / US-West / EU; servers round-robin across sites,
  // clients at site 0.
  std::vector<std::vector<double>> rtt{{2, 70, 90}, {70, 2, 140}, {90, 140, 2}};
  std::vector<int> site(static_cast<std::size_t>(cfg.total_nodes()), 0);
  for (int s = 0; s < cfg.s(); ++s) site[static_cast<std::size_t>(s)] = s % 3;
  return std::make_unique<GeoDelay>(std::move(rtt), std::move(site));
}

void run_cell(const Cell& c, bool geo, LatencyStats* w_out, LatencyStats* r_out,
              bool* atomic_out) {
  SimHarness::Options o;
  o.cfg = c.cfg;
  o.seed = 42;
  o.delay = geo ? make_geo(c.cfg)
                : std::unique_ptr<DelayModel>(
                      std::make_unique<ConstantDelay>(25 * kMillisecond));
  SimHarness h(*protocol_by_name(c.proto), std::move(o));
  WorkloadOptions w;
  w.ops_per_writer = 30;
  w.ops_per_reader = 30;
  run_random_workload(h, w);
  *w_out = latency_of(h.history(), OpKind::kWrite);
  *r_out = latency_of(h.history(), OpKind::kRead);
  *atomic_out = check_tag_witness(h.history()).atomic;
}

void report() {
  using bench::fmt;
  using bench::header;
  using bench::row;
  const std::vector<int> w{22, 12, 12, 12, 12, 9};

  for (const bool geo : {false, true}) {
    header(std::string("Fig. 2 latency hierarchy -- ") +
           (geo ? "geo-replicated (3 sites)" : "constant 25ms one-way"));
    row({"protocol", "write p50", "write p99", "read p50", "read p99",
         "atomic"},
        w);
    for (const Cell& c : cells()) {
      LatencyStats ws, rs;
      bool atomic = false;
      run_cell(c, geo, &ws, &rs, &atomic);
      row({c.proto, fmt(ws.p50_ms) + "ms", fmt(ws.p99_ms) + "ms",
           fmt(rs.p50_ms) + "ms", fmt(rs.p99_ms) + "ms",
           atomic ? "yes" : "NO!"},
          w);
    }
  }
  std::printf(
      "\nExpected shape: fast ops take ~1 RTT, slow ops ~2 RTT (exactly 2x\n"
      "under constant delay); the Hasse order W1R1 < {W1R2, W2R1} < W2R2\n"
      "holds per column, and every history is atomic in its own cell.\n");
}

void BM_OperationLatency(benchmark::State& state) {
  const Cell& c = cells()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    LatencyStats ws, rs;
    bool atomic = false;
    run_cell(c, false, &ws, &rs, &atomic);
    benchmark::DoNotOptimize(ws.mean_ms + rs.mean_ms);
  }
  state.SetLabel(c.proto);
}
BENCHMARK(BM_OperationLatency)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace mwreg

MWREG_BENCH_MAIN(mwreg::report)
