// Fig. 2: the latency/consistency Hasse diagram. Fast operations take one
// round-trip, slow ones two; the diagram orders W1R1 < {W1R2, W2R1} < W2R2
// by latency. We measure actual operation latency for every protocol under
// a constant-delay network (where the factor of two is exact) and a
// geo-replicated delay matrix (where it shows up in the tail).
//
// Each delay regime is one ExperimentSpec; the parallel exp::Runner drives
// all four protocol cells and the Aggregator produces the rows.
#include <memory>

#include "bench/bench_util.h"
#include "exp/aggregator.h"
#include "exp/runner.h"
#include "protocols/protocols.h"

namespace mwreg {
namespace {

exp::DelayFactory make_geo() {
  return [](const ClusterConfig& cfg) -> std::unique_ptr<DelayModel> {
    // Three sites ~ US-East / US-West / EU; servers round-robin across
    // sites, clients at site 0.
    std::vector<std::vector<double>> rtt{
        {2, 70, 90}, {70, 2, 140}, {90, 140, 2}};
    std::vector<int> site(static_cast<std::size_t>(cfg.total_nodes()), 0);
    for (int s = 0; s < cfg.s(); ++s) site[static_cast<std::size_t>(s)] = s % 3;
    return std::make_unique<GeoDelay>(std::move(rtt), std::move(site));
  };
}

exp::ExperimentSpec fig2_spec(bool geo) {
  exp::ExperimentSpec spec;
  spec.name = geo ? "fig2-geo" : "fig2-constant";
  // Hierarchy order; each protocol paired with a cluster where it is
  // atomic (single-writer protocols get W=1).
  spec.protocols = {"fast-swmr(W1R1)", "abd-swmr(W1R2)"};
  spec.clusters = {ClusterConfig{7, 1, 3, 1}};
  spec.seed_lo = 42;
  spec.seeds = 1;
  spec.delay = geo ? make_geo() : exp::constant_delay(25 * kMillisecond);
  spec.workload.ops_per_writer = 30;
  spec.workload.ops_per_reader = 30;
  return spec;
}

exp::ExperimentSpec fig2_mw_spec(bool geo) {
  exp::ExperimentSpec spec = fig2_spec(geo);
  spec.protocols = {"fast-read-mw(W2R1)", "mw-abd(W2R2)"};
  spec.clusters = {ClusterConfig{7, 2, 3, 1}};
  return spec;
}

void report() {
  using bench::fmt;
  using bench::header;
  using bench::row;
  const std::vector<int> w{22, 12, 12, 12, 12, 9};
  const exp::Runner runner;

  for (const bool geo : {false, true}) {
    header(std::string("Fig. 2 latency hierarchy -- ") +
           (geo ? "geo-replicated (3 sites)" : "constant 25ms one-way"));
    row({"protocol", "write p50", "write p99", "read p50", "read p99",
         "atomic"},
        w);
    const std::vector<exp::CellStats> cells =
        exp::aggregate(runner.run_all({fig2_spec(geo), fig2_mw_spec(geo)}));
    for (const exp::CellStats& c : cells) {
      row({c.protocol, fmt(c.write.p50_ms) + "ms", fmt(c.write.p99_ms) + "ms",
           fmt(c.read.p50_ms) + "ms", fmt(c.read.p99_ms) + "ms",
           c.all_atomic() ? "yes" : "NO!"},
          w);
    }
  }
  std::printf(
      "\nExpected shape: fast ops take ~1 RTT, slow ops ~2 RTT (exactly 2x\n"
      "under constant delay); the Hasse order W1R1 < {W1R2, W2R1} < W2R2\n"
      "holds per column, and every history is atomic in its own cell.\n");
}

void BM_OperationLatency(benchmark::State& state) {
  const bool mw = state.range(0) >= 2;
  const exp::ExperimentSpec spec = mw ? fig2_mw_spec(false) : fig2_spec(false);
  const std::string& proto = spec.protocols[state.range(0) % 2];
  for (auto _ : state) {
    const exp::TrialResult tr =
        exp::run_trial(spec, 0, 0, proto, spec.clusters[0], spec.seed_lo);
    benchmark::DoNotOptimize(tr.completed_ops);
  }
  state.SetLabel(proto);
}
BENCHMARK(BM_OperationLatency)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace mwreg

MWREG_BENCH_MAIN(mwreg::report)
