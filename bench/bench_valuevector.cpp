// Valuevector GC deep-dive: does bounding Algorithm 2's server state
// actually bound the wire?
//
// The plain-text report shows the windowed read-ack trajectory for the
// long-horizon W2R1 run — the ablation (gc_enabled=false) re-encodes every
// value ever written into every ack (O(ops^2) bytes end-to-end), the
// GC+delta protocol plateaus after warmup — plus the canonical row grid
// (W2R1/W4R4, GC on/off). The same rows are written to
// BENCH_valuevector.json; bench_simcore_throughput embeds them in
// BENCH_simcore.json (schema v2), which is what the CI perf-trend gate
// diffs (scripts/bench_trend.py).
//
// Micro timings: full-snapshot encode vs. delta encode of a large
// valuevector, isolating the codec cost the delta path removes.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/codec.h"
#include "protocols/messages.h"
#include "valuevector_rows.h"

namespace mwreg::bench {
namespace {

void report() {
  header("Valuevector garbage collection + bounded read acks");

  // The canonical grid, with ack series captured for the two W2R1 rows.
  // The runs are deterministic, so these are the exact rows the artifact
  // gets — no re-running.
  std::vector<std::size_t> off_series;
  std::vector<std::size_t> on_series;
  const ClusterConfig w2r1{5, 2, 1, 1};
  const ClusterConfig w4r4{7, 4, 4, 1};
  std::vector<VvRow> rows;
  rows.push_back(run_valuevector_row("fast-read-mw-nogc(W2R1)", w2r1,
                                     "W2R1-long", 400, &off_series));
  rows.push_back(run_valuevector_row("fast-read-mw(W2R1)", w2r1, "W2R1-long",
                                     400, &on_series));
  rows.push_back(
      run_valuevector_row("fast-read-mw-nogc(W2R1)", w4r4, "W4R4-long", 150));
  rows.push_back(
      run_valuevector_row("fast-read-mw(W2R1)", w4r4, "W4R4-long", 150));

  // Windowed trajectory: W2R1 long horizon, ablation vs. GC+delta.
  constexpr int kWindows = 8;
  header("Read-ack bytes per window (" + std::to_string(kWindows) +
         " windows over the run)");
  row({"window", "ablation B/ack", "GC+delta B/ack"}, {10, 18, 18});
  for (int k = 0; k < kWindows; ++k) {
    const double lo = static_cast<double>(k) / kWindows;
    const double hi = static_cast<double>(k + 1) / kWindows;
    row({std::to_string(k + 1), fmt(window_mean(off_series, lo, hi), 0),
         fmt(window_mean(on_series, lo, hi), 0)},
        {10, 18, 18});
  }

  print_valuevector_rows(rows);

  JsonWriter j;
  j.begin_object();
  j.key("bench").value("valuevector");
  j.key("schema_version").value(2);
  emit_valuevector_json(j, rows);
  j.end_object();
  write_json_artifact("BENCH_valuevector.json", j.str());
}

// ---- microbenchmarks: full-snapshot encode vs. delta encode ----

std::vector<FrEntry> synthetic_valuevector(int n) {
  std::vector<FrEntry> entries;
  entries.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    FrEntry e;
    e.value = TaggedValue{Tag{i, static_cast<NodeId>(5 + i % 2)}, i * 10};
    for (NodeId c = 5; c < 9; ++c) e.updated.push_back(c);
    entries.push_back(std::move(e));
  }
  return entries;
}

void BM_full_read_ack_encode(benchmark::State& state) {
  const auto entries = synthetic_valuevector(static_cast<int>(state.range(0)));
  BufferPool pool;
  for (auto _ : state) {
    auto bytes = encode_entries(pool, entries);
    benchmark::DoNotOptimize(bytes.data());
    pool.release(std::move(bytes));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_full_read_ack_encode)->Arg(64)->Arg(1024);

void BM_delta_read_ack_encode(benchmark::State& state) {
  // A steady-state delta: the handful of entries still in flight, cut from
  // the same synthetic vector the full encode serializes wholesale.
  const auto entries = synthetic_valuevector(static_cast<int>(state.range(0)));
  constexpr std::size_t kChanged = 4;
  BufferPool pool;
  FrDeltaHeader h;
  h.revision = 12345;
  h.gc_floor = entries.back().value.tag;
  h.count = kChanged;
  for (auto _ : state) {
    ByteWriter w(pool.acquire());
    put_delta_ack_header(w, h);
    for (std::size_t i = entries.size() - kChanged; i < entries.size(); ++i) {
      put_fr_entry(w, entries[i]);
    }
    auto bytes = w.take();
    benchmark::DoNotOptimize(bytes.data());
    pool.release(std::move(bytes));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kChanged));
}
BENCHMARK(BM_delta_read_ack_encode)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace mwreg::bench

MWREG_BENCH_MAIN(mwreg::bench::report)
