// Fig. 1: the system model substrate -- clients and servers connected by
// asynchronous reliable channels. This binary characterizes the simulator:
// event throughput, message delivery throughput, and determinism.
#include <memory>

#include "bench/bench_util.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace mwreg {
namespace {

class Sink final : public Process {
 public:
  Sink(NodeId id, Network& net) : Process(id, net) {}
  void on_message(const Frame& m) override {
    ++received;
    if (echo && m.type == 1) send(m.src, 2, m.rpc_id, {});
  }
  bool echo = false;
  std::uint64_t received = 0;
};

void report() {
  using bench::header;
  using bench::row;
  header("Fig. 1 substrate: clients/servers over asynchronous channels");

  // Determinism: two identically-seeded runs deliver identically.
  auto run_digest = [](std::uint64_t seed) {
    Simulator sim;
    Network net(sim, std::make_unique<UniformDelay>(1, 1000), Rng(seed));
    Sink a(0, net), b(1, net);
    b.echo = true;
    std::uint64_t digest = 0;
    net.set_delivery_hook([&](const Frame& m, Time, Time d) {
      digest = digest * 1315423911u + static_cast<std::uint64_t>(d) + m.type;
    });
    for (int i = 0; i < 200; ++i) {
      Message m;
      m.src = 0;
      m.dst = 1;
      m.type = 1;
      m.rpc_id = static_cast<std::uint64_t>(i);
      net.send(std::move(m));
    }
    sim.run();
    return digest;
  };
  const bool deterministic =
      run_digest(5) == run_digest(5) && run_digest(5) != run_digest(6);
  row({"determinism", deterministic ? "identical seeds -> identical schedules"
                                    : "BROKEN"},
      {18, 50});

  // Quick throughput snapshot (the BM_ entries below give precise numbers).
  Simulator sim;
  Network net(sim, std::make_unique<ConstantDelay>(10), Rng(1));
  Sink a(0, net), b(1, net);
  for (int i = 0; i < 100000; ++i) {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.type = 3;
    net.send(std::move(m));
  }
  sim.run();
  row({"delivered", std::to_string(b.received) + " messages in one burst"},
      {18, 50});
}

void BM_ScheduleAndRunEvents(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int acc = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(i, [&acc] { ++acc; });
    }
    sim.run();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ScheduleAndRunEvents);

void BM_MessageDelivery(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Network net(sim, std::make_unique<UniformDelay>(1, 100), Rng(1));
    Sink a(0, net), b(1, net);
    for (int i = 0; i < 1000; ++i) {
      Message m;
      m.src = 0;
      m.dst = 1;
      m.type = 1;
      net.send(std::move(m));
    }
    sim.run();
    benchmark::DoNotOptimize(b.received);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MessageDelivery);

void BM_RequestReplyRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Network net(sim, std::make_unique<ConstantDelay>(5), Rng(1));
    Sink client(0, net), server(1, net);
    server.echo = true;
    for (int i = 0; i < 500; ++i) {
      Message m;
      m.src = 0;
      m.dst = 1;
      m.type = 1;
      m.rpc_id = static_cast<std::uint64_t>(i);
      net.send(std::move(m));
    }
    sim.run();
    benchmark::DoNotOptimize(client.received);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_RequestReplyRoundTrip);

}  // namespace
}  // namespace mwreg

MWREG_BENCH_MAIN(mwreg::report)
