// Figs. 6-7: the diagonal link beta_{k+1} ~ gamma_k, built through temp'_k
// and gamma'_k, plus the payoff identity gamma'_k == gamma_k that the
// "seemingly unnecessary" R1b skip of the horizontal construction enables.
#include "bench/bench_util.h"
#include "chains/w1r2_engine.h"

namespace mwreg {
namespace {

void report() {
  using bench::header;
  using bench::row;
  header("Figs. 6-7: diagonal links (R2: beta_{k+1}==temp'_k, R1: temp'_k==gamma'_k)");
  const std::vector<int> w{6, 12, 12, 14, 8};
  row({"S", "diag links", "identities", "special k+1=i1", "failures"}, w);
  for (int S : {3, 4, 5, 6, 8, 10}) {
    int diag = 0, ident = 0, special = 0, failed = 0;
    for (const chains::LinkCheck& c : chains::verify_w1r2_construction(S)) {
      const bool is_diag = c.name.find("temp'_k") != std::string::npos;
      const bool is_ident = c.name.find("identical server logs") != std::string::npos;
      const bool is_special = c.name.find("k+1=i1") != std::string::npos;
      if (!is_diag && !is_ident && !is_special) continue;
      diag += is_diag;
      ident += is_ident;
      special += is_special;
      failed += !c.ok;
    }
    row({std::to_string(S), std::to_string(diag), std::to_string(ident),
         std::to_string(special), std::to_string(failed)},
        w);
  }
  std::printf("\nExpected: zero failures, and for every k the executions\n"
              "gamma_k and gamma'_k coincide log-for-log, closing the zigzag.\n");
}

void BM_DiagonalLinkBundle(benchmark::State& state) {
  const int S = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int k = 0; k < S; ++k) {
      const chains::LinkBundle b = chains::make_links(S, S / 2, k, 1 + S / 3);
      benchmark::DoNotOptimize(b.gamma_p.servers == b.gamma.servers);
    }
  }
  state.SetItemsProcessed(state.iterations() * S);
}
BENCHMARK(BM_DiagonalLinkBundle)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace mwreg

MWREG_BENCH_MAIN(mwreg::report)
