// Shared valuevector-GC measurement: long-horizon W2R1/W4R4 runs with the
// GC+delta protocol against the gc_enabled=false ablation, recording
// bytes-on-wire, read-ack sizes and events/sec. Used twice:
//  - bench_simcore_throughput folds the rows into BENCH_simcore.json
//    (schema v2, "valuevector" section) — the artifact CI's perf-trend
//    gate diffs against bench/baselines/;
//  - bench_valuevector is the standalone deep-dive (windowed read-ack
//    trajectories plus the same rows in BENCH_valuevector.json).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/harness.h"
#include "core/workload.h"
#include "protocols/messages.h"
#include "protocols/protocols.h"

namespace mwreg::bench {

struct VvRow {
  std::string protocol;
  std::string cluster;
  std::string workload;  ///< "W2R1-long" / "W4R4-long"
  bool gc_enabled = false;
  int ops_per_client = 0;
  std::uint64_t events = 0;
  std::uint64_t msgs = 0;
  std::uint64_t bytes_on_wire = 0;  ///< every payload byte sent
  std::uint64_t read_acks = 0;
  std::uint64_t read_ack_bytes = 0;
  double wall_ms = 0;
  /// Mean read-ack bytes over the [25%,50%) and [75%,100%] ack windows:
  /// bounded encodings plateau (growth ~= 1), the ablation ramps linearly
  /// (growth ~= 2.3 for these windows).
  double ack_bytes_warm = 0;
  double ack_bytes_late = 0;

  [[nodiscard]] double events_per_sec() const {
    return wall_ms > 0 ? static_cast<double>(events) / (wall_ms / 1e3) : 0;
  }
  [[nodiscard]] double ack_growth() const {
    return ack_bytes_warm > 0 ? ack_bytes_late / ack_bytes_warm : 0;
  }
};

/// Mean of `v` over the index window [size*lo, size*hi); 0 when empty.
/// Shared by the row runner and the windowed trajectory report.
inline double window_mean(const std::vector<std::size_t>& v, double lo,
                          double hi) {
  const std::size_t a = static_cast<std::size_t>(v.size() * lo);
  const std::size_t b = static_cast<std::size_t>(v.size() * hi);
  if (b <= a) return 0.0;
  double sum = 0;
  for (std::size_t i = a; i < b; ++i) sum += static_cast<double>(v[i]);
  return sum / static_cast<double>(b - a);
}

/// One long-horizon run; `ack_series` (optional) receives every read-ack
/// payload size in delivery order for windowed reporting.
inline VvRow run_valuevector_row_once(const std::string& protocol,
                                      const ClusterConfig& cfg,
                                      const std::string& workload,
                                      int ops_per_client,
                                      std::vector<std::size_t>* ack_series =
                                          nullptr) {
  const Protocol* p = protocol_by_name(protocol);
  SimHarness::Options o;
  o.cfg = cfg;
  o.seed = 42;
  o.delay = std::make_unique<UniformDelay>(kMillisecond, 10 * kMillisecond);
  SimHarness h(*p, std::move(o));
  std::vector<std::size_t> sizes;
  h.net().set_delivery_hook([&sizes](const Frame& m, Time, Time) {
    if (m.type == kFrReadAck || m.type == kFrReadAckDelta) {
      sizes.push_back(m.payload.size());
    }
  });
  WorkloadOptions w;
  w.ops_per_writer = ops_per_client;
  w.ops_per_reader = ops_per_client;

  VvRow row;
  row.protocol = protocol;
  row.cluster = cfg.to_string();
  row.workload = workload;
  // GC is the fast-read default since the PR 7 flip; only the explicit
  // "-nogc(" ablation still runs the full-ack path.
  row.gc_enabled = protocol.find("-nogc(") == std::string::npos;
  row.ops_per_client = ops_per_client;
  const auto t0 = std::chrono::steady_clock::now();
  run_random_workload(h, w);
  row.wall_ms =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count() *
      1e3;
  row.events = h.sim().executed();
  row.msgs = h.net().stats().sent;
  row.bytes_on_wire = h.net().stats().bytes_sent;
  row.read_acks = sizes.size();
  for (std::size_t s : sizes) row.read_ack_bytes += s;
  row.ack_bytes_warm = window_mean(sizes, 0.25, 0.5);
  row.ack_bytes_late = window_mean(sizes, 0.75, 1.0);
  if (ack_series != nullptr) *ack_series = std::move(sizes);
  return row;
}

/// Best-of-N wrapper: the simulation is deterministic (bytes, events and
/// ack series are identical across repetitions), only wall time jitters
/// on shared runners — take the fastest rep so the perf-trend gate diffs
/// a stable number.
inline VvRow run_valuevector_row(const std::string& protocol,
                                 const ClusterConfig& cfg,
                                 const std::string& workload,
                                 int ops_per_client,
                                 std::vector<std::size_t>* ack_series =
                                     nullptr) {
  constexpr int kReps = 3;
  VvRow best = run_valuevector_row_once(protocol, cfg, workload,
                                        ops_per_client, ack_series);
  for (int rep = 1; rep < kReps; ++rep) {
    VvRow r =
        run_valuevector_row_once(protocol, cfg, workload, ops_per_client);
    if (r.wall_ms < best.wall_ms) best = r;
  }
  return best;
}

/// The canonical long-horizon grid: W2R1 and W4R4, GC+delta vs. ablation.
inline std::vector<VvRow> run_valuevector_rows() {
  std::vector<VvRow> rows;
  const ClusterConfig w2r1{5, 2, 1, 1};
  const ClusterConfig w4r4{7, 4, 4, 1};
  rows.push_back(
      run_valuevector_row("fast-read-mw-nogc(W2R1)", w2r1, "W2R1-long", 400));
  rows.push_back(
      run_valuevector_row("fast-read-mw(W2R1)", w2r1, "W2R1-long", 400));
  rows.push_back(
      run_valuevector_row("fast-read-mw-nogc(W2R1)", w4r4, "W4R4-long", 150));
  rows.push_back(
      run_valuevector_row("fast-read-mw(W2R1)", w4r4, "W4R4-long", 150));
  return rows;
}

/// Emit the rows as the artifact's "valuevector" array (schema v2 rows).
inline void emit_valuevector_json(JsonWriter& j,
                                  const std::vector<VvRow>& rows) {
  j.key("valuevector").begin_array();
  for (const VvRow& r : rows) {
    j.begin_object();
    j.key("protocol").value(r.protocol);
    j.key("cluster").value(r.cluster);
    j.key("workload").value(r.workload);
    j.key("gc_enabled").value(r.gc_enabled);
    j.key("ops_per_client").value(r.ops_per_client);
    j.key("events").value(r.events);
    j.key("msgs").value(r.msgs);
    j.key("bytes_on_wire").value(r.bytes_on_wire);
    j.key("read_acks").value(r.read_acks);
    j.key("read_ack_bytes").value(r.read_ack_bytes);
    j.key("wall_ms").value(r.wall_ms);
    j.key("events_per_sec").value(r.events_per_sec());
    j.key("read_ack_bytes_warm").value(r.ack_bytes_warm);
    j.key("read_ack_bytes_late").value(r.ack_bytes_late);
    j.key("ack_growth").value(r.ack_growth());
    j.end_object();
  }
  j.end_array();
}

inline void print_valuevector_rows(const std::vector<VvRow>& rows) {
  header("Valuevector GC: long-horizon bytes-on-wire (GC+delta vs. ablation)");
  row({"protocol", "workload", "ops", "wire MB", "ack B warm", "ack B late",
       "growth", "events/s"},
      {24, 12, 6, 10, 12, 12, 8, 12});
  for (const VvRow& r : rows) {
    row({r.protocol, r.workload, std::to_string(r.ops_per_client),
         fmt(static_cast<double>(r.bytes_on_wire) / 1e6, 2),
         fmt(r.ack_bytes_warm, 0), fmt(r.ack_bytes_late, 0),
         fmt(r.ack_growth(), 2) + "x", fmt(r.events_per_sec(), 0)},
        {24, 12, 6, 10, 12, 12, 8, 12});
  }
}

}  // namespace mwreg::bench
