// Ablation: the one place this reproduction deviates from Algorithm 2 as
// printed (DESIGN.md section 5.1). The paper's server updates only the
// values in the reader's valQueue; the proofs of Lemma 5 (MWA2) and Lemma 8
// need the server to also confirm the reader on every value it reports.
//
// This binary runs the same heavy-reordering workloads against both server
// variants and counts machine-checked atomicity violations: the literal
// variant loses MWA2 (reads returning tags older than completed writes),
// the clarified variant never does.
#include <memory>

#include "bench/bench_util.h"
#include "consistency/checkers.h"
#include "core/harness.h"
#include "core/workload.h"
#include "protocols/protocols.h"

namespace mwreg {
namespace {

struct AblationStats {
  int runs = 0;
  int violations = 0;
  std::string example;
};

AblationStats sweep(const char* proto, int seeds) {
  AblationStats st;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds); ++seed) {
    SimHarness::Options o;
    o.cfg = ClusterConfig{7, 2, 4, 1};  // feasible: (4+2)*1 < 7
    o.seed = seed;
    // Heavy-tailed, strongly reordering delays.
    o.delay = std::make_unique<LogNormalDelay>(2 * kMillisecond, 1.5);
    SimHarness h(*protocol_by_name(proto), std::move(o));
    WorkloadOptions w;
    w.ops_per_writer = 15;
    w.ops_per_reader = 15;
    run_random_workload(h, w);
    ++st.runs;
    const CheckResult r = check_tag_witness(h.history());
    if (!r.atomic) {
      ++st.violations;
      if (st.example.empty()) st.example = r.violation;
    }
  }
  return st;
}

void report() {
  using bench::header;
  using bench::row;
  header("Ablation: Algorithm 2 server -- confirm reader on reported values?");
  const std::vector<int> w{30, 8, 12, 60};
  row({"server variant", "runs", "violations", "first violation"}, w);
  const AblationStats fixed = sweep("fast-read-mw(W2R1)", 30);
  row({"clarified (this repo)", std::to_string(fixed.runs),
       std::to_string(fixed.violations), fixed.example}, w);
  const AblationStats literal = sweep("fast-read-mw-literal(W2R1)", 30);
  row({"literal pseudocode", std::to_string(literal.runs),
       std::to_string(literal.violations), literal.example.substr(0, 58)}, w);
  std::printf(
      "\nExpected shape: zero violations for the clarified server; the\n"
      "literal variant loses MWA2 under heavy reordering because a freshly\n"
      "written value superseded at a server never collects the reader\n"
      "witness that Lemma 5's degree-2 admissibility argument requires.\n");
}

void BM_ClarifiedServerWorkload(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep("fast-read-mw(W2R1)", 2).runs);
  }
}
BENCHMARK(BM_ClarifiedServerWorkload);

}  // namespace
}  // namespace mwreg

MWREG_BENCH_MAIN(mwreg::report)
