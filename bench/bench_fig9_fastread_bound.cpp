// Fig. 9 + Section 5: the fast-read feasibility frontier. For a (S, t, R)
// grid we run the Fig. 9 adversarial schedule against the real Algorithm
// 1 & 2 and print whether a machine-checked atomicity violation appears.
// The frontier must fall exactly at R = S/t - 2.
#include "bench/bench_util.h"
#include "chains/fastread_adversary.h"

namespace mwreg {
namespace {

void report() {
  using bench::header;
  using bench::row;

  for (const int t : {1, 2}) {
    header("Fig. 9 frontier, t = " + std::to_string(t) +
           "  (cells: '.' atomic, 'X' checked violation, '!' mismatch)");
    std::vector<int> widths{8};
    std::vector<std::string> head{"S \\ R"};
    for (int R = 2; R <= 7; ++R) {
      head.push_back(std::to_string(R));
      widths.push_back(4);
    }
    head.push_back("paper bound R* = S/t - 2");
    widths.push_back(24);
    row(head, widths);
    for (int S = 3 * t + 1; S <= 10 * t && S <= 16; S += t) {
      std::vector<std::string> cells{std::to_string(S)};
      for (int R = 2; R <= 7; ++R) {
        const chains::FastReadAdversaryResult r =
            chains::run_fastread_adversary(S, t, R);
        const char* mark = r.violation_found == r.bound_violated
                               ? (r.violation_found ? "X" : ".")
                               : "!";
        cells.push_back(mark);
      }
      const double rstar = static_cast<double>(S) / t - 2;
      cells.push_back(bench::fmt(rstar, 1));
      row(cells, widths);
    }
  }
  std::printf(
      "\nExpected shape: every cell with R >= S/t - 2 is 'X' (the Fig. 9\n"
      "schedule extracts a new/old inversion from Algorithm 1 & 2), every\n"
      "cell below the bound is '.', and no '!' mismatches appear.\n");
}

void BM_AdversarySchedule(benchmark::State& state) {
  const int S = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chains::run_fastread_adversary(S, 1, S - 2).violation_found);
  }
}
BENCHMARK(BM_AdversarySchedule)->Arg(4)->Arg(6)->Arg(8)->Arg(12);

}  // namespace
}  // namespace mwreg

MWREG_BENCH_MAIN(mwreg::report)
