// Algorithm 1 & 2 (Appendix A): scaling of the paper's W2R1 implementation.
// Throughput/latency versus cluster size and reader count, with every
// history machine-checked, plus the cost drivers specific to the algorithm
// (valQueue growth, admissibility search).
//
// Both sweeps are declarative ExperimentSpecs executed by the parallel
// exp::Runner; rows are aggregated cells.
#include <memory>

#include "bench/bench_util.h"
#include "exp/aggregator.h"
#include "exp/runner.h"
#include "protocols/protocols.h"

namespace mwreg {
namespace {

exp::ExperimentSpec scaling_spec(const std::string& name,
                                 std::vector<ClusterConfig> clusters, int ops,
                                 std::uint64_t seed) {
  exp::ExperimentSpec spec;
  spec.name = name;
  spec.protocols = {"fast-read-mw(W2R1)"};
  spec.clusters = std::move(clusters);
  spec.seed_lo = seed;
  spec.seeds = 1;
  spec.delay = exp::uniform_delay(1 * kMillisecond, 5 * kMillisecond);
  spec.workload.ops_per_writer = ops;
  spec.workload.ops_per_reader = ops;
  return spec;
}

void print_cells(const std::vector<exp::CellStats>& cells,
                 const std::vector<int>& w) {
  using bench::fmt;
  using bench::row;
  row({"cluster", "write p50", "write p99", "read p50", "read p99",
       "msgs/op", "atomic"},
      w);
  for (const exp::CellStats& c : cells) {
    row({c.cfg.to_string(), fmt(c.write.p50_ms) + "ms",
         fmt(c.write.p99_ms) + "ms", fmt(c.read.p50_ms) + "ms",
         fmt(c.read.p99_ms) + "ms", fmt(c.msgs_per_op, 1),
         c.all_atomic() ? "yes" : "NO!"},
        w);
  }
}

void report() {
  using bench::header;
  const std::vector<int> w{22, 12, 12, 12, 12, 11, 8};
  const exp::Runner runner;

  header("Algorithm 1 & 2 scaling: S sweep (t=1, W=2, R=2, 25 ops/client)");
  std::vector<ClusterConfig> s_sweep;
  for (int S : {5, 7, 9, 12, 16}) s_sweep.push_back(ClusterConfig{S, 2, 2, 1});
  print_cells(exp::aggregate(runner.run(
                  scaling_spec("alg12-s-sweep", std::move(s_sweep), 25, 7))),
              w);

  header("Algorithm 1 & 2 scaling: R sweep (t=1, W=2, S = (R+3)t so R < S/t-2)");
  std::vector<ClusterConfig> r_sweep;
  for (int R : {2, 3, 4, 5, 6}) r_sweep.push_back(ClusterConfig{R + 3, 2, R, 1});
  print_cells(exp::aggregate(runner.run(
                  scaling_spec("alg12-r-sweep", std::move(r_sweep), 20, 9))),
              w);

  std::printf(
      "\nExpected shape: read latency stays ~1 RTT (half the write's 2 RTT)\n"
      "at every scale; messages/op grows linearly in S (client-server only,\n"
      "no server-to-server traffic); all histories atomic below the bound.\n");
}

void BM_W2R1Workload(benchmark::State& state) {
  const int S = static_cast<int>(state.range(0));
  const exp::ExperimentSpec spec =
      scaling_spec("bm", {ClusterConfig{S, 2, 2, 1}}, 10, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exp::run_trial(spec, 0, 0, spec.protocols[0], spec.clusters[0], 3)
            .tag_atomic);
  }
  state.SetItemsProcessed(state.iterations() * 40);
}
BENCHMARK(BM_W2R1Workload)->Arg(5)->Arg(9)->Arg(16);

void BM_W2R1ReadHeavy(benchmark::State& state) {
  exp::ExperimentSpec spec;
  spec.name = "bm-read-heavy";
  spec.protocols = {"fast-read-mw(W2R1)"};
  spec.clusters = {ClusterConfig{9, 1, 4, 1}};
  spec.seed_lo = 5;
  spec.workload.ops_per_writer = 5;
  spec.workload.ops_per_reader = 40;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exp::run_trial(spec, 0, 0, spec.protocols[0], spec.clusters[0], 5)
            .completed_ops);
  }
  state.SetItemsProcessed(state.iterations() * 165);
}
BENCHMARK(BM_W2R1ReadHeavy);

/// Thread scaling of the Runner itself over a fixed 24-trial pool.
void BM_RunnerThreads(benchmark::State& state) {
  std::vector<ClusterConfig> clusters;
  for (int S : {5, 7, 9}) clusters.push_back(ClusterConfig{S, 2, 2, 1});
  exp::ExperimentSpec spec =
      scaling_spec("bm-pool", std::move(clusters), 10, 1);
  spec.seeds = 8;
  exp::Runner::Options o;
  o.threads = static_cast<int>(state.range(0));
  const exp::Runner runner(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(spec).size());
  }
  state.SetItemsProcessed(state.iterations() * 24);
}
BENCHMARK(BM_RunnerThreads)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace mwreg

MWREG_BENCH_MAIN(mwreg::report)
