// Algorithm 1 & 2 (Appendix A): scaling of the paper's W2R1 implementation.
// Throughput/latency versus cluster size and reader count, with every
// history machine-checked, plus the cost drivers specific to the algorithm
// (valQueue growth, admissibility search).
#include <memory>

#include "bench/bench_util.h"
#include "consistency/checkers.h"
#include "core/harness.h"
#include "core/workload.h"
#include "protocols/protocols.h"

namespace mwreg {
namespace {

struct RunStats {
  LatencyStats write, read;
  bool atomic = false;
  double msgs_per_op = 0;
};

RunStats run_cell(ClusterConfig cfg, int ops, std::uint64_t seed) {
  SimHarness::Options o;
  o.cfg = cfg;
  o.seed = seed;
  o.delay = std::make_unique<UniformDelay>(1 * kMillisecond, 5 * kMillisecond);
  SimHarness h(*protocol_by_name("fast-read-mw(W2R1)"), std::move(o));
  WorkloadOptions w;
  w.ops_per_writer = ops;
  w.ops_per_reader = ops;
  run_random_workload(h, w);
  RunStats rs;
  rs.write = latency_of(h.history(), OpKind::kWrite);
  rs.read = latency_of(h.history(), OpKind::kRead);
  rs.atomic = check_tag_witness(h.history()).atomic;
  rs.msgs_per_op = static_cast<double>(h.net().stats().sent) /
                   static_cast<double>(h.history().completed_count());
  return rs;
}

void report() {
  using bench::fmt;
  using bench::header;
  using bench::row;
  const std::vector<int> w{22, 12, 12, 12, 12, 11, 8};

  header("Algorithm 1 & 2 scaling: S sweep (t=1, W=2, R=2, 25 ops/client)");
  row({"cluster", "write p50", "write p99", "read p50", "read p99",
       "msgs/op", "atomic"},
      w);
  for (int S : {5, 7, 9, 12, 16}) {
    const ClusterConfig cfg{S, 2, 2, 1};
    const RunStats rs = run_cell(cfg, 25, 7);
    row({cfg.to_string(), fmt(rs.write.p50_ms) + "ms", fmt(rs.write.p99_ms) + "ms",
         fmt(rs.read.p50_ms) + "ms", fmt(rs.read.p99_ms) + "ms",
         fmt(rs.msgs_per_op, 1), rs.atomic ? "yes" : "NO!"},
        w);
  }

  header("Algorithm 1 & 2 scaling: R sweep (t=1, W=2, S = (R+3)t so R < S/t-2)");
  row({"cluster", "write p50", "write p99", "read p50", "read p99",
       "msgs/op", "atomic"},
      w);
  for (int R : {2, 3, 4, 5, 6}) {
    const ClusterConfig cfg{R + 3, 2, R, 1};
    const RunStats rs = run_cell(cfg, 20, 9);
    row({cfg.to_string(), fmt(rs.write.p50_ms) + "ms", fmt(rs.write.p99_ms) + "ms",
         fmt(rs.read.p50_ms) + "ms", fmt(rs.read.p99_ms) + "ms",
         fmt(rs.msgs_per_op, 1), rs.atomic ? "yes" : "NO!"},
        w);
  }
  std::printf(
      "\nExpected shape: read latency stays ~1 RTT (half the write's 2 RTT)\n"
      "at every scale; messages/op grows linearly in S (client-server only,\n"
      "no server-to-server traffic); all histories atomic below the bound.\n");
}

void BM_W2R1Workload(benchmark::State& state) {
  const int S = static_cast<int>(state.range(0));
  const ClusterConfig cfg{S, 2, 2, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_cell(cfg, 10, 3).atomic);
  }
  state.SetItemsProcessed(state.iterations() * 40);
}
BENCHMARK(BM_W2R1Workload)->Arg(5)->Arg(9)->Arg(16);

void BM_W2R1ReadHeavy(benchmark::State& state) {
  const ClusterConfig cfg{9, 1, 4, 1};
  for (auto _ : state) {
    SimHarness::Options o;
    o.cfg = cfg;
    o.seed = 5;
    SimHarness h(*protocol_by_name("fast-read-mw(W2R1)"), std::move(o));
    WorkloadOptions w;
    w.ops_per_writer = 5;
    w.ops_per_reader = 40;
    run_random_workload(h, w);
    benchmark::DoNotOptimize(h.history().completed_count());
  }
  state.SetItemsProcessed(state.iterations() * 165);
}
BENCHMARK(BM_W2R1ReadHeavy);

}  // namespace
}  // namespace mwreg

MWREG_BENCH_MAIN(mwreg::report)
