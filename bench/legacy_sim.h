// Verbatim copy of the pre-refactor event engine (PR 2 tree): a
// std::priority_queue of std::function closures, one heap allocation per
// scheduled event and one more per copy out of top(). Kept alive here so
// bench_simcore_throughput can measure the pooled engine against the real
// baseline on every run instead of against a number in a README.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace mwreg::bench {

class LegacySimulator {
 public:
  using EventFn = std::function<void()>;

  [[nodiscard]] Time now() const { return now_; }

  void schedule_at(Time t, EventFn fn) {
    if (t < now_) t = now_;
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  void schedule_after(Duration d, EventFn fn) {
    schedule_at(now_ + d, std::move(fn));
  }

  bool step() {
    if (queue_.empty()) return false;
    // priority_queue::top() is const; the pre-refactor engine copied the
    // closure handle out (the cost this copy keeps is part of the baseline).
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    ev.fn();
    ++executed_;
    return true;
  }

  std::size_t run() {
    std::size_t n = 0;
    while (step()) ++n;
    return n;
  }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace mwreg::bench
