// Fault-plan availability: protocols under the canned scenario library.
//
// The paper's adversarial schedules (crashes, skipped servers) only argue
// about safety; this bench measures the availability side. For each
// (protocol, fault plan) cell it reports, over 50 seeds:
//   - whether every checked history stayed atomic (safety under faults);
//   - ops completed inside the disruption window (availability);
//   - time from heal to the first completion after it (recovery latency).
// Expected shape: within-budget scenarios (single crash, minority
// partition, Fig. 9 skip) keep protocols atomic AND available; the
// majority partition stalls completions until the heal — degraded
// availability with safety intact. The sweep runs through the parallel
// exp::Runner and replays single-threaded to assert verdict parity.
#include "bench/bench_util.h"
#include "exp/aggregator.h"
#include "exp/runner.h"
#include "protocols/protocols.h"
#include "sim/fault_plan.h"

namespace mwreg {
namespace {

exp::ExperimentSpec availability_spec() {
  exp::ExperimentSpec spec;
  spec.name = "faults-availability";
  spec.protocols = {"mw-abd(W2R2)", "fast-read-mw(W2R1)",
                    "regular-fast-read(W2R1)"};
  spec.clusters = {ClusterConfig{5, 2, 2, 1}};
  spec.fault_plans = {scenarios::single_crash(), scenarios::crash_recover(),
                      scenarios::minority_partition(),
                      scenarios::majority_partition(), scenarios::fig9_skip()};
  spec.seed_lo = 1;
  spec.seeds = 50;
  spec.workload.ops_per_writer = 8;
  spec.workload.ops_per_reader = 8;
  return spec;
}

void report() {
  using bench::fmt;
  using bench::header;
  using bench::row;

  const exp::ExperimentSpec spec = availability_spec();
  const std::vector<exp::CellStats> cells =
      exp::aggregate(exp::Runner().run(spec));
  exp::Runner::Options serial_opts;
  serial_opts.threads = 1;
  const std::vector<exp::CellStats> serial_cells =
      exp::aggregate(exp::Runner(serial_opts).run(spec));
  const bool parity = exp::to_csv(cells) == exp::to_csv(serial_cells);

  header("Availability under fault plans (" + std::to_string(spec.seeds) +
         " seeds per cell, cluster S=5 t=1)");
  const std::vector<int> w{26, 20, 9, 15, 13, 24};
  row({"protocol", "fault plan", "atomic", "ops in window", "recovery ms",
       "verdict"},
      w);
  bool safe_ok = true, degraded_ok = true;
  for (const exp::CellStats& c : cells) {
    const bool majority = c.fault_plan == "majority-partition";
    std::string verdict;
    if (!c.matches_expectation()) {
      verdict = "GUARANTEE BROKEN";
      safe_ok = false;
    } else if (majority) {
      // Degraded: at most in-flight stragglers complete inside the window.
      const bool degraded = c.ops_under_fault <= 2.0 && c.recovery_ms > 0;
      degraded_ok = degraded_ok && degraded;
      verdict = degraded ? "degraded, then recovers" : "NOT DEGRADED?";
    } else {
      const bool available = c.ops_under_fault > 0;
      safe_ok = safe_ok && available;
      verdict = available ? "atomic + available" : "UNAVAILABLE?";
    }
    row({c.protocol, c.fault_plan,
         std::to_string(c.atomic_trials) + "/" + std::to_string(c.trials),
         fmt(c.ops_under_fault, 1), fmt(c.recovery_ms, 2), verdict},
        w);
  }
  std::printf("\nsafe plans keep protocols atomic and available: %s\n",
              safe_ok ? "yes" : "NO!");
  std::printf(
      "majority partition degrades availability, recovers on heal: %s\n",
      degraded_ok ? "yes" : "NO!");
  std::printf("parallel runner == single-threaded reports: %s\n",
              parity ? "yes" : "NO! (runner nondeterminism)");
}

void BM_MajorityPartitionTrial(benchmark::State& state) {
  exp::ExperimentSpec spec = availability_spec();
  const FaultPlan plan = scenarios::majority_partition();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exp::run_trial(spec, 0, 0, spec.protocols[0], spec.clusters[0], 7,
                       &plan)
            .completed_ops);
  }
}
BENCHMARK(BM_MajorityPartitionTrial);

void BM_FaultFreeTrialWithSpikeWrapper(benchmark::State& state) {
  // The SpikeDelay wrapper sits on every harness delay path; this tracks
  // its (intended: negligible) overhead on a fault-free trial.
  exp::ExperimentSpec spec = availability_spec();
  spec.fault_plans.clear();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exp::run_trial(spec, 0, 0, spec.protocols[0], spec.clusters[0], 7)
            .completed_ops);
  }
}
BENCHMARK(BM_FaultFreeTrialWithSpikeWrapper);

void BM_InstallFaultPlan(benchmark::State& state) {
  const ClusterConfig cfg{9, 3, 4, 1};
  const FaultPlan plan = scenarios::majority_partition();
  for (auto _ : state) {
    Simulator sim;
    Network net(sim, std::make_unique<ConstantDelay>(1), Rng(1));
    benchmark::DoNotOptimize(install_fault_plan(net, cfg, plan));
    sim.run();
  }
}
BENCHMARK(BM_InstallFaultPlan);

}  // namespace
}  // namespace mwreg

MWREG_BENCH_MAIN(mwreg::report)
