// Figs. 4-5: the horizontal link beta_k ~ gamma_k, built through temp_k.
// We verify, for every k and every critical-server position, the two
// indistinguishability claims (reader's view, Fig. 4) by comparing the
// server-side constructions (Fig. 5) structurally.
#include "bench/bench_util.h"
#include "chains/w1r2_engine.h"

namespace mwreg {
namespace {

void report() {
  using bench::header;
  using bench::row;
  header("Figs. 4-5: horizontal links (R1: beta_k==temp_k, R2: temp_k==gamma_k)");
  const std::vector<int> w{6, 34, 8};
  row({"S", "links verified (all i1, stems, k)", "failures"}, w);
  for (int S : {3, 4, 5, 6, 8, 10}) {
    int checked = 0, failed = 0;
    for (const chains::LinkCheck& c : chains::verify_w1r2_construction(S)) {
      if (c.name.find("temp_k") == std::string::npos &&
          c.name.find("gamma_k (k+1=i1)") == std::string::npos) {
        continue;  // horizontal-link checks only
      }
      ++checked;
      failed += !c.ok;
    }
    row({std::to_string(S), std::to_string(checked), std::to_string(failed)}, w);
  }
  std::printf("\nExpected: zero failures -- R1 never notices R2b moving behind\n"
              "its back, and R2 never notices R1b leaving a server it skips.\n");
}

void BM_HorizontalLinkBundle(benchmark::State& state) {
  const int S = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int k = 0; k < S; ++k) {
      benchmark::DoNotOptimize(
          chains::make_links(S, S / 2, k, 1 + S / 3).gamma.servers.size());
    }
  }
  state.SetItemsProcessed(state.iterations() * S);
}
BENCHMARK(BM_HorizontalLinkBundle)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_VerifyAllLinks(benchmark::State& state) {
  const int S = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(chains::verify_w1r2_construction(S).size());
  }
}
BENCHMARK(BM_VerifyAllLinks)->Arg(3)->Arg(6)->Arg(10);

}  // namespace
}  // namespace mwreg

MWREG_BENCH_MAIN(mwreg::report)
