// Shared helpers for the per-table/figure benchmark binaries.
//
// Every binary prints the paper artifact it regenerates as a plain-text
// table (the "rows/series the paper reports"), then runs google-benchmark
// timings for the machinery involved.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "exp/aggregator.h"

namespace mwreg::bench {

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void row(const std::vector<std::string>& cells,
                const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 16;
    char buf[256];
    std::snprintf(buf, sizeof buf, "%-*s", w, cells[i].c_str());
    line += buf;
  }
  std::printf("%s\n", line.c_str());
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

// ---- machine-readable perf artifacts (BENCH_*.json) ----
//
// Benches that feed the perf trajectory write a JSON artifact next to their
// plain-text report so CI can archive numbers run over run. The writer is
// deliberately tiny: keys are emitted explicitly by the bench, which is what
// keeps each artifact's schema stable and reviewable in one place.

/// Streaming JSON builder: call the structural methods in document order.
/// Comma placement is handled automatically; values are escaped with the
/// repo-wide exp::json_escape (one escaper, no drift).
class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(const std::string& k) {
    comma();
    out_ += '"' + exp::json_escape(k) + "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& v) {
    comma();
    out_ += '"' + exp::json_escape(v) + '"';
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v) {
    comma();
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out_ += buf;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  JsonWriter& open(char c) {
    comma();
    out_ += c;
    fresh_ = true;
    return *this;
  }
  JsonWriter& close(char c) {
    out_ += c;
    fresh_ = false;
    return *this;
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;  // value right after key: no comma
      return;
    }
    if (!fresh_ && !out_.empty() && out_.back() != '{' && out_.back() != '[') {
      out_ += ',';
    }
    fresh_ = false;
  }

  std::string out_;
  bool fresh_ = true;
  bool pending_value_ = false;
};

/// Write a JSON artifact; logs the path so CI logs show what was produced.
inline bool write_json_artifact(const std::string& path,
                                const std::string& json) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  f << json << "\n";
  f.flush();  // surface buffered write errors before claiming success
  if (!f) {
    std::fprintf(stderr, "bench: short write to %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), json.size() + 1);
  return true;
}

/// Standard main: print the report, then run the registered benchmarks.
#define MWREG_BENCH_MAIN(report_fn)                      \
  int main(int argc, char** argv) {                      \
    report_fn();                                         \
    ::benchmark::Initialize(&argc, argv);                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();               \
    ::benchmark::Shutdown();                             \
    return 0;                                            \
  }

}  // namespace mwreg::bench
