// Shared helpers for the per-table/figure benchmark binaries.
//
// Every binary prints the paper artifact it regenerates as a plain-text
// table (the "rows/series the paper reports"), then runs google-benchmark
// timings for the machinery involved.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace mwreg::bench {

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void row(const std::vector<std::string>& cells,
                const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 16;
    char buf[256];
    std::snprintf(buf, sizeof buf, "%-*s", w, cells[i].c_str());
    line += buf;
  }
  std::printf("%s\n", line.c_str());
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

/// Standard main: print the report, then run the registered benchmarks.
#define MWREG_BENCH_MAIN(report_fn)                      \
  int main(int argc, char** argv) {                      \
    report_fn();                                         \
    ::benchmark::Initialize(&argc, argv);                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();               \
    ::benchmark::Shutdown();                             \
    return 0;                                            \
  }

}  // namespace mwreg::bench
