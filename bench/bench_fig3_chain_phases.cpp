// Fig. 3: the three-phase proof overview. For every candidate rule and
// cluster size we replay the phases and report where the critical server
// lands, which chain the engine chose, where the violation materializes, and
// how many executions the zigzag visits.
#include <map>

#include "bench/bench_util.h"
#include "chains/w1r2_engine.h"
#include "fullinfo/rules.h"

namespace mwreg {
namespace {

void report() {
  using bench::header;
  using bench::row;
  const std::vector<int> w{24, 4, 6, 9, 28, 10};

  header("Fig. 3 proof phases: chain alpha -> beta'/beta'' -> zigzag Z");
  row({"rule", "S", "i1", "checked", "violating execution", "phase"}, w);
  for (const auto& rule : fullinfo::standard_rules()) {
    for (int S : {3, 5, 8}) {
      const chains::Certificate c = chains::prove_w1r2_impossible(*rule, S);
      std::string phase = "1 (alpha)";
      if (c.execution_label.find("beta") != std::string::npos) phase = "2/3";
      if (c.execution_label.find("gamma") != std::string::npos ||
          c.execution_label.find("temp") != std::string::npos) {
        phase = "3 (Z)";
      }
      row({rule->name(), std::to_string(S), std::to_string(c.critical_server),
           std::to_string(c.executions_checked),
           c.found ? c.execution_label : "NONE (theorem broken!)", phase},
          w);
    }
  }

  // Critical-server distribution over randomized rules: the pivot i1 is an
  // artifact of the rule, and the construction must handle every position.
  header("critical server i1 distribution over 200 randomized rules (S=6)");
  std::map<int, int> dist;
  int found = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const chains::Certificate c =
        chains::prove_w1r2_impossible(fullinfo::RandomizedRule(seed), 6);
    ++dist[c.critical_server];
    found += c.found;
  }
  for (const auto& [i1, n] : dist) {
    row({"i1=" + std::to_string(i1), std::to_string(n)}, {8, 8});
  }
  std::printf("certificates found: %d/200 (must be 200)\n", found);
}

void BM_ChainConstruction(benchmark::State& state) {
  const int S = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i <= S; ++i) {
      benchmark::DoNotOptimize(chains::make_alpha(S, i).servers.size());
    }
    for (int k = 0; k <= S; ++k) {
      benchmark::DoNotOptimize(chains::make_beta(S, S / 2, k, 0).servers.size());
    }
  }
}
BENCHMARK(BM_ChainConstruction)->Arg(3)->Arg(8)->Arg(16)->Arg(32);

void BM_FullThreePhaseProof(benchmark::State& state) {
  const fullinfo::MajorityOrderRule rule;
  const int S = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(chains::prove_w1r2_impossible(rule, S).found);
  }
}
BENCHMARK(BM_FullThreePhaseProof)->Arg(3)->Arg(6)->Arg(10)->Arg(16);

}  // namespace
}  // namespace mwreg

MWREG_BENCH_MAIN(mwreg::report)
