// Table 1: the design space of fast MWMR atomic register implementations.
//
// For each cell the paper states either an impossibility or the condition
// under which an implementation exists. This binary regenerates the table
// with machine-checked evidence:
//   W2R2 : MW-ABD runs atomically whenever t < S/2 (checked histories);
//   W1R2 : impossible -- the chain engine produces a Wing-Gong-verified
//          violating execution for every candidate decision rule;
//   W2R1 : Algorithm 1 & 2 runs atomically iff R < S/t - 2; at and above the
//          bound the Fig. 9 schedule produces a checked violation;
//   W1R1 : impossible for W >= 2 (chain engine); the single-writer protocol
//          runs atomically below the fast-read bound.
//
// The protocol-execution evidence (W2R2/W2R1/W1R1 "implementation" columns)
// runs through the parallel exp::Runner as declarative specs; the report
// also replays the same specs single-threaded and asserts verdict parity.
// The chain-engine certificates are CPU-bound search, kept as direct calls.
#include "bench/bench_util.h"
#include "chains/fastread_adversary.h"
#include "chains/w1r1.h"
#include "chains/universal.h"
#include "chains/w1r2_engine.h"
#include "consistency/checkers.h"
#include "core/harness.h"
#include "core/workload.h"
#include "exp/aggregator.h"
#include "exp/runner.h"
#include "fullinfo/rules.h"
#include "protocols/protocols.h"

namespace mwreg {
namespace {

/// One spec per Table-1 implementation column; cells() order matches the
/// order the report consumes them in.
std::vector<exp::ExperimentSpec> table1_specs() {
  exp::ExperimentSpec w2r2;
  w2r2.name = "table1-w2r2";
  w2r2.protocols = {"mw-abd(W2R2)"};
  w2r2.clusters = {ClusterConfig{3, 3, 3, 1}, ClusterConfig{5, 3, 3, 2},
                   ClusterConfig{7, 3, 3, 3}};
  w2r2.seed_lo = 7;
  w2r2.workload.ops_per_writer = 10;
  w2r2.workload.ops_per_reader = 10;
  w2r2.check_graph = true;

  exp::ExperimentSpec w2r1;
  w2r1.name = "table1-w2r1";
  w2r1.protocols = {"fast-read-mw(W2R1)"};
  for (int S = 4; S <= 9; ++S) {
    for (int R = 2; R <= 5; ++R) {
      const ClusterConfig cfg{S, 2, R, 1};
      if (cfg.supports_fast_read()) w2r1.clusters.push_back(cfg);
    }
  }
  w2r1.seed_lo = 11;
  w2r1.workload = w2r2.workload;
  w2r1.check_graph = true;

  exp::ExperimentSpec w1r1;
  w1r1.name = "table1-w1r1";
  w1r1.protocols = {"fast-swmr(W1R1)"};
  w1r1.clusters = {ClusterConfig{5, 1, 2, 1}};
  w1r1.seed_lo = 5;
  w1r1.workload = w2r2.workload;
  w1r1.check_graph = true;

  return {w2r2, w2r1, w1r1};
}

/// Per-cell atomicity verdicts in expansion order — the Table-1 payload.
std::vector<bool> verdicts_of(const std::vector<exp::CellStats>& cells) {
  std::vector<bool> v;
  for (const exp::CellStats& c : cells) v.push_back(c.all_atomic());
  return v;
}

int count_w1r2_certificates(int S) {
  int found = 0;
  for (const auto& rule : fullinfo::standard_rules()) {
    found += chains::prove_w1r2_impossible(*rule, S).found;
  }
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    found += chains::prove_w1r2_impossible(fullinfo::RandomizedRule(seed), S).found;
  }
  return found;
}

/// The deterministic lost-update scenario: writer 0 bumps its local
/// timestamp past writer 1's, so writer 1's later write is ordered behind
/// and a subsequent read misses it.
bool naive_strawman_violates() {
  SimHarness::Options o;
  o.cfg = ClusterConfig{3, 2, 2, 1};
  o.seed = 1;
  SimHarness h(*protocol_by_name("naive-fast-write(W1R2)"), std::move(o));
  for (int i = 1; i <= 3; ++i) {
    h.async_write(0, i * 10);
    h.run();
  }
  h.async_write(1, 999);
  h.run();
  h.async_read(0);
  h.run();
  return !check_wing_gong(h.history()).atomic;
}

int count_w1r1_certificates(int S) {
  int found = 0;
  for (const auto& rule : fullinfo::standard_rules()) {
    found += chains::prove_w1r1_impossible(*rule, S).found;
  }
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    found += chains::prove_w1r1_impossible(fullinfo::RandomizedRule(seed), S).found;
  }
  return found;
}

void report() {
  using bench::fmt;
  using bench::header;
  using bench::row;
  const std::vector<int> w{10, 46, 52};

  // The acceptance bar for the runner refactor: the parallel sweep and a
  // single-threaded replay of the same specs reach identical verdicts.
  const std::vector<exp::ExperimentSpec> specs = table1_specs();
  exp::Runner::Options serial_opts;
  serial_opts.threads = 1;
  const std::vector<exp::CellStats> cells =
      exp::aggregate(exp::Runner().run_all(specs));
  const std::vector<exp::CellStats> serial_cells =
      exp::aggregate(exp::Runner(serial_opts).run_all(specs));
  const bool parity = verdicts_of(cells) == verdicts_of(serial_cells);

  // Slice the aggregate rows back into per-spec groups.
  std::vector<std::vector<exp::CellStats>> by_spec(specs.size());
  for (const exp::CellStats& c : cells) {
    for (std::size_t si = 0; si < specs.size(); ++si) {
      if (c.spec_name == specs[si].name) by_spec[si].push_back(c);
    }
  }
  const std::vector<exp::CellStats>& w2r2_cells = by_spec[0];
  const std::vector<exp::CellStats>& w2r1_cells = by_spec[1];
  const std::vector<exp::CellStats>& w1r1_cells = by_spec[2];

  header("Table 1: design space, impossibility vs implementation");
  row({"cell", "impossibility evidence", "implementation evidence"}, w);

  // ---- W2R2 ----
  {
    std::string impl = "atomic runs at ";
    for (const exp::CellStats& c : w2r2_cells) {
      impl += "S=" + std::to_string(c.cfg.s()) + ",t=" +
              std::to_string(c.cfg.t()) +
              (c.all_atomic() ? "(ok) " : "(VIOLATION!) ");
    }
    row({"W2R2", "t >= S/2 loses liveness [LS97]", impl}, w);
  }

  // ---- W1R2 ----
  {
    int certs = 0, total = 0;
    for (int S : {3, 4, 5}) {
      certs += count_w1r2_certificates(S);
      total += 36;
    }
    const bool naive_violates = naive_strawman_violates();
    row({"W1R2",
         "certificates " + std::to_string(certs) + "/" + std::to_string(total) +
             " rules x S in {3,4,5}",
         std::string("none (Theorem 1, UNSAT all rules: ") +
             (chains::prove_w1r2_universal(5).unsat ? "yes" : "NO?") +
             "); strawman violates: " + (naive_violates ? "yes" : "NO?")},
        w);
  }

  // ---- W2R1 ----
  {
    int viol = 0, viol_total = 0;
    for (int S = 4; S <= 9; ++S) {
      for (int R = 2; R <= 5; ++R) {
        if (ClusterConfig{S, 2, R, 1}.supports_fast_read()) continue;
        ++viol_total;
        viol += chains::run_fastread_adversary(S, 1, R).violation_found;
      }
    }
    // A safe cell needs BOTH a clean protocol run and the Fig. 9 adversary
    // failing to produce a violation below the bound (negative control).
    int safe = 0;
    for (const exp::CellStats& c : w2r1_cells) {
      safe += c.all_atomic() &&
              !chains::run_fastread_adversary(c.cfg.s(), c.cfg.t(), c.cfg.r())
                   .violation_found;
    }
    row({"W2R1",
         "R >= S/t-2: violation in " + std::to_string(viol) + "/" +
             std::to_string(viol_total) + " grid cells",
         "R < S/t-2: atomic in " + std::to_string(safe) + "/" +
             std::to_string(w2r1_cells.size()) + " grid cells (Alg. 1 & 2)"},
        w);
  }

  // ---- W1R1 ----
  {
    int certs = 0;
    for (int S : {3, 5}) certs += count_w1r1_certificates(S);
    const bool swmr_ok = w1r1_cells.at(0).all_atomic();
    row({"W1R1",
         "certificates " + std::to_string(certs) + "/72 rules x S in {3,5}",
         std::string("W=1, R<S/t-2: atomic (") + (swmr_ok ? "ok" : "VIOLATION!") +
             "); W>=2 UNSAT all rules: " +
             (chains::prove_w1r1_universal(5).unsat ? "yes" : "NO?")},
        w);
  }
  std::printf("\nParallel runner == single-threaded verdicts: %s\n",
              parity ? "yes" : "NO! (runner nondeterminism)");
  std::printf("Expected shape: both fast-write cells are impossible for W>=2;\n"
              "fast read is feasible exactly below R = S/t - 2.\n");
}

void BM_W1R2Certificate(benchmark::State& state) {
  const fullinfo::MajorityOrderRule rule;
  const int S = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(chains::prove_w1r2_impossible(rule, S).found);
  }
}
BENCHMARK(BM_W1R2Certificate)->Arg(3)->Arg(5)->Arg(8);

void BM_W2R2WorkloadOp(benchmark::State& state) {
  exp::ExperimentSpec spec;
  spec.name = "bm";
  spec.protocols = {"mw-abd(W2R2)"};
  spec.clusters = {ClusterConfig{5, 3, 3, 2}};
  spec.workload.ops_per_writer = 10;
  spec.workload.ops_per_reader = 10;
  spec.check_graph = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exp::run_trial(spec, 0, 0, spec.protocols[0], spec.clusters[0], 7)
            .atomic());
  }
  state.SetItemsProcessed(state.iterations() * 60);
}
BENCHMARK(BM_W2R2WorkloadOp);

}  // namespace
}  // namespace mwreg

MWREG_BENCH_MAIN(mwreg::report)
