// Table 1: the design space of fast MWMR atomic register implementations.
//
// For each cell the paper states either an impossibility or the condition
// under which an implementation exists. This binary regenerates the table
// with machine-checked evidence:
//   W2R2 : MW-ABD runs atomically whenever t < S/2 (checked histories);
//   W1R2 : impossible -- the chain engine produces a Wing-Gong-verified
//          violating execution for every candidate decision rule;
//   W2R1 : Algorithm 1 & 2 runs atomically iff R < S/t - 2; at and above the
//          bound the Fig. 9 schedule produces a checked violation;
//   W1R1 : impossible for W >= 2 (chain engine); the single-writer protocol
//          runs atomically below the fast-read bound.
#include "bench/bench_util.h"
#include "chains/fastread_adversary.h"
#include "chains/w1r1.h"
#include "chains/universal.h"
#include "chains/w1r2_engine.h"
#include "consistency/checkers.h"
#include "core/harness.h"
#include "core/workload.h"
#include "fullinfo/rules.h"
#include "protocols/protocols.h"

namespace mwreg {
namespace {

bool run_protocol_atomic(const std::string& name, ClusterConfig cfg,
                         std::uint64_t seed) {
  SimHarness::Options o;
  o.cfg = cfg;
  o.seed = seed;
  SimHarness h(*protocol_by_name(name), std::move(o));
  WorkloadOptions w;
  w.ops_per_writer = 10;
  w.ops_per_reader = 10;
  run_random_workload(h, w);
  return check_tag_witness(h.history()).atomic &&
         check_unique_value_graph(h.history()).atomic;
}

int count_w1r2_certificates(int S) {
  int found = 0;
  for (const auto& rule : fullinfo::standard_rules()) {
    found += chains::prove_w1r2_impossible(*rule, S).found;
  }
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    found += chains::prove_w1r2_impossible(fullinfo::RandomizedRule(seed), S).found;
  }
  return found;
}

/// The deterministic lost-update scenario: writer 0 bumps its local
/// timestamp past writer 1's, so writer 1's later write is ordered behind
/// and a subsequent read misses it.
bool naive_strawman_violates() {
  SimHarness::Options o;
  o.cfg = ClusterConfig{3, 2, 2, 1};
  o.seed = 1;
  SimHarness h(*protocol_by_name("naive-fast-write(W1R2)"), std::move(o));
  for (int i = 1; i <= 3; ++i) {
    h.async_write(0, i * 10);
    h.run();
  }
  h.async_write(1, 999);
  h.run();
  h.async_read(0);
  h.run();
  return !check_wing_gong(h.history()).atomic;
}

int count_w1r1_certificates(int S) {
  int found = 0;
  for (const auto& rule : fullinfo::standard_rules()) {
    found += chains::prove_w1r1_impossible(*rule, S).found;
  }
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    found += chains::prove_w1r1_impossible(fullinfo::RandomizedRule(seed), S).found;
  }
  return found;
}

void report() {
  using bench::fmt;
  using bench::header;
  using bench::row;
  const std::vector<int> w{10, 46, 52};

  header("Table 1: design space, impossibility vs implementation");
  row({"cell", "impossibility evidence", "implementation evidence"}, w);

  // ---- W2R2 ----
  {
    std::string impl = "atomic runs at ";
    for (const auto& [s, t] : std::vector<std::pair<int, int>>{{3, 1}, {5, 2}, {7, 3}}) {
      const bool ok = run_protocol_atomic("mw-abd(W2R2)",
                                          ClusterConfig{s, 3, 3, t}, 7);
      impl += "S=" + std::to_string(s) + ",t=" + std::to_string(t) +
              (ok ? "(ok) " : "(VIOLATION!) ");
    }
    row({"W2R2", "t >= S/2 loses liveness [LS97]", impl}, w);
  }

  // ---- W1R2 ----
  {
    int certs = 0, total = 0;
    for (int S : {3, 4, 5}) {
      certs += count_w1r2_certificates(S);
      total += 36;
    }
    const bool naive_violates = naive_strawman_violates();
    row({"W1R2",
         "certificates " + std::to_string(certs) + "/" + std::to_string(total) +
             " rules x S in {3,4,5}",
         std::string("none (Theorem 1, UNSAT all rules: ") +
             (chains::prove_w1r2_universal(5).unsat ? "yes" : "NO?") +
             "); strawman violates: " + (naive_violates ? "yes" : "NO?")},
        w);
  }

  // ---- W2R1 ----
  {
    int viol = 0, safe = 0, viol_total = 0, safe_total = 0;
    for (int S = 4; S <= 9; ++S) {
      for (int R = 2; R <= 5; ++R) {
        const chains::FastReadAdversaryResult r =
            chains::run_fastread_adversary(S, 1, R);
        if (r.bound_violated) {
          ++viol_total;
          viol += r.violation_found;
        } else {
          ++safe_total;
          safe += !r.violation_found &&
                  run_protocol_atomic("fast-read-mw(W2R1)",
                                      ClusterConfig{S, 2, R, 1}, 11);
        }
      }
    }
    row({"W2R1",
         "R >= S/t-2: violation in " + std::to_string(viol) + "/" +
             std::to_string(viol_total) + " grid cells",
         "R < S/t-2: atomic in " + std::to_string(safe) + "/" +
             std::to_string(safe_total) + " grid cells (Alg. 1 & 2)"},
        w);
  }

  // ---- W1R1 ----
  {
    int certs = 0;
    for (int S : {3, 5}) certs += count_w1r1_certificates(S);
    const bool swmr_ok =
        run_protocol_atomic("fast-swmr(W1R1)", ClusterConfig{5, 1, 2, 1}, 5);
    row({"W1R1",
         "certificates " + std::to_string(certs) + "/72 rules x S in {3,5}",
         std::string("W=1, R<S/t-2: atomic (") + (swmr_ok ? "ok" : "VIOLATION!") +
             "); W>=2 UNSAT all rules: " +
             (chains::prove_w1r1_universal(5).unsat ? "yes" : "NO?")},
        w);
  }
  std::printf("\nExpected shape: both fast-write cells are impossible for W>=2;\n"
              "fast read is feasible exactly below R = S/t - 2.\n");
}

void BM_W1R2Certificate(benchmark::State& state) {
  const fullinfo::MajorityOrderRule rule;
  const int S = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(chains::prove_w1r2_impossible(rule, S).found);
  }
}
BENCHMARK(BM_W1R2Certificate)->Arg(3)->Arg(5)->Arg(8);

void BM_W2R2WorkloadOp(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_protocol_atomic("mw-abd(W2R2)", ClusterConfig{5, 3, 3, 2}, 7));
  }
  state.SetItemsProcessed(state.iterations() * 60);
}
BENCHMARK(BM_W2R2WorkloadOp);

}  // namespace
}  // namespace mwreg

MWREG_BENCH_MAIN(mwreg::report)
