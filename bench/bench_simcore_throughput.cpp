// Simulation-core throughput: events/sec and messages/sec across protocols
// and cluster sizes, plus a live comparison of the pooled event engine
// against the verbatim pre-refactor engine (legacy_sim.h).
//
// Next to the plain-text report this bench writes BENCH_simcore.json, the
// artifact of the perf trajectory that scripts/bench_trend.py gates CI on.
// Schema (schema_version 6):
//
//   {
//     "bench": "simcore_throughput",
//     "schema_version": 4,
//     "engine_comparison": {            // same W2R1-shaped hop stream
//       "workload": "w2r1_replay_uniform_delay",
//       "hops": <uint>,                 //   through all three engines
//       "legacy_events_per_sec": <f>,   // priority_queue + std::function +
//                                       //   fresh vectors + std::set checks
//       "pooled_events_per_sec": <f>,   // slab heap + inline closures +
//                                       //   BufferPool + dense checks
//       "batched_events_per_sec": <f>,  // per-tick slab batches, one heap
//                                       //   event per tick (this PR)
//       "speedup": <f>,                 // pooled / legacy
//       "batched_speedup": <f>          // batched / pooled
//     },
//     "coalescing": {                   // same hop stream through the REAL
//       "workload": "w2r1_replay_real_network",
//       "frames": <uint>,               //   Network, both delivery engines
//       "per_message_events_per_sec": <f>,  // one heap event per message
//       "coalesced_events_per_sec": <f>,    // one per delivery tick
//       "coalesce_speedup": <f>,        // coalesced / per_message
//       "batches": <uint>,
//       "frames_per_batch": <f>,
//       "batch_size_hist": [{"ge": <uint>, "count": <uint>}, ...],
//       "steady_engine_allocs": <uint>, // post-warmup replay deltas;
//       "steady_pool_misses": <uint>    //   0 = allocation-free
//     },
//     "workloads": [                    // end-to-end harness runs
//       {"protocol": <s>, "cluster": <s>, "ops_per_client": <int>,
//        "events": <uint>, "msgs": <uint>, "bytes_on_wire": <uint>,
//        "wall_ms": <f>,
//        "events_per_sec": <f>, "msgs_per_sec": <f>,
//        "engine_allocs": <uint>,        // slab chunks + closure spills
//        "pool_misses": <uint>,          // payload buffers allocated fresh
//        "steady_engine_allocs": <uint>, // both deltas over a post-warmup
//        "steady_pool_misses": <uint>}   //   burst; 0 = allocation-free
//     ],
//     "fanout_replay": {                // schema v5: the dest-major
//       "workload": "w2r2_table_fanout",//   headline — one single-register
//       "protocol": "mw-abd(W2R2)",     //   W2R2 deployment, table-driven
//       "clients": <int>,               //   closed loop at a 10us tick,
//       "ops_per_client": <int>,        //   run twice (frame-order vs
//       "frames": <uint>,               //   destination-major drain)
//       "frame_order_events_per_sec": <f>,
//       "frame_order_mean_run_len": <f>,
//       "dest_major_events_per_sec": <f>,
//       "dest_major_speedup": <f>,      // dest_major / frame_order
//       "mean_run_len": <f>,            // dest-major lane; hard-gated >= 8
//       "dest_major_ticks": <uint>,     // ticks the dm drain handled
//       "staged_replies": <uint>,       // sends through the staging buffer
//       "wall_ms": <f>
//     },
//     "million_client": [               // table-driven keyspace runs
//       {"protocol": <s>, "keyspace": <s>,
//        "clients": <int>, "ops_per_client": <int>,
//        "coalesce": <bool>,             // batched delivery, 10us tick
//        "dest_major": <bool>,           // v5: dest-major drain (the
//        "mean_run_len": <f>,            //   default) vs frame-order twin
//        "events": <uint>, "msgs": <uint>, "wall_ms": <f>,
//        "events_per_sec": <f>,
//        "write_p99_ms": <f>, "read_p99_ms": <f>,    // pooled across keys
//        "per_key_read_p99_max_ms": <f>,             // worst single key
//        "steady_engine_allocs": <uint>,             // post-warmup deltas;
//        "steady_pool_misses": <uint>}               //   0 = allocation-free
//     ],
//     "checked_soak": {                 // schema v6: the 10^6-op dest-major
//       "workload": "million_client_checked",  // grid point re-run with a
//       "protocol": "mw-abd(W2R2)",     //   StreamingTagWitness live on
//       "keyspace": <s>,                //   every key history and prefix
//       "clients": <int>,               //   retirement on
//       "ops_per_client": <int>,
//       "ops_checked": <uint>,          // completions the checkers judged
//       "verdict_atomic": <bool>,       // must be true (trend-gated)
//       "peak_window": <uint>,          // max per-key window occupancy —
//                                       //   concurrency-bounded, trend-gated
//       "peak_pending": <uint>,         // max in-flight ops tracked
//       "retired_tags": <uint>,         // window entries GC'd by watermark
//       "history_live": <uint>,         // recorder entries left after
//                                       //   prefix retirement
//       "events": <uint>, "wall_ms": <f>,
//       "events_per_sec": <f>,          // trend-gated ratio vs baseline
//       "checker_ns_per_op": <f>,       // (checked - unchecked twin) wall
//       "steady_engine_allocs": <uint>, // post-warmup deltas;
//       "steady_pool_misses": <uint>    //   0 = allocation-free, gated
//     },
//     "valuevector": [                  // long-horizon GC rows (schema in
//       ...                            //   bench/valuevector_rows.h):
//     ]                                //   bytes-on-wire + windowed
//   }                                  //   read-ack sizes, GC vs. ablation
//
// Schema v2 added bytes_on_wire to workload rows and the "valuevector"
// section (the GC+delta protocol vs. its gc_enabled=false ablation on
// long-horizon W2R1/W4R4 runs). Schema v3 added the "million_client"
// section: 10^5- and 10^6-op closed loops through ONE harness hosting
// 10^4/10^5 table-driven clients over a 64-key Zipfian keyspace. Schema v4
// adds a batched engine row to engine_comparison (per-tick slab batches,
// the cost model of this PR's coalesced fast path), the "coalescing"
// section (per-message vs. batched per-tick delivery through the real
// Network on the same hop stream, with the batch-size histogram) and a
// "coalesce" flag + rows to million_client;
// million_client "events" became the logical frame count so events_per_sec
// compares across engines. Schema v5 adds the "fanout_replay" section (the
// destination-major drain's headline: dispatched-run length and throughput
// on a W2R2 table fan-out, frame-order vs dest-major twins), a
// "dest_major" flag + frame-order twin rows to million_client, and
// "mean_run_len" to coalesced rows. Schema v6 adds the "checked_soak"
// section: the 10^6-op dest-major grid point with the streaming tag-witness
// checker subscribed to every key history and settled-prefix retirement on,
// reporting the checker's overhead (checker_ns_per_op vs the unchecked
// twin) and its memory high-water marks (peak_window stays bounded by the
// concurrency window, not the horizon). Latency columns are deliberately
// absent there — retired records are gone, so the live suffix would bias
// percentiles. Compare runs by diffing events_per_sec
// per row and the speedup columns; steady_* columns must stay 0 — or let
// scripts/bench_trend.py do it against bench/baselines/.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "valuevector_rows.h"
#include "core/harness.h"
#include "core/workload.h"
#include "legacy_sim.h"
#include "protocols/protocols.h"
#include "sim/buffer_pool.h"
#include "sim/simulator.h"

namespace mwreg::bench {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---- engine comparison: identical hop stream through both engines ----
//
// The replay reproduces the per-hop costs of a Network delivery in each
// era: sample a delay, materialize a payload buffer, schedule a closure
// carrying it, and at delivery run the crash/block checks and dispose of
// the buffer. The legacy side pays what the pre-refactor Network paid
// (std::function heap captures, a fresh std::vector per hop, std::set
// lookups); the pooled side pays what the refactored Network pays (inline
// slab closures, recycled buffers, dense-array checks).

// Payload model: each hop materializes a buffer of the recorded size and
// disposes of it at delivery. The bytes a hop carries matter: the legacy
// engine's priority_queue step copied the scheduled std::function out of
// top(), which deep-copied the captured Message — payload included — so a
// size-n payload is part of the baseline's per-hop cost exactly as it was
// in the PR 2 tree.

/// Pre-refactor cost model.
struct LegacyEnv {
  LegacySimulator sim;
  std::set<NodeId> crashed;
  std::set<std::pair<NodeId, NodeId>> blocked;

  std::vector<std::uint8_t> make_payload(std::uint32_t n) {
    return std::vector<std::uint8_t>(n);  // fresh allocation, like ByteWriter
  }
  void recycle(std::vector<std::uint8_t>&&) {}  // freed, like ~Message
  bool deliverable(NodeId src, NodeId dst) {
    return crashed.count(src) == 0 && crashed.count(dst) == 0 &&
           blocked.count({src, dst}) == 0;
  }
};

/// Pooled cost model (the refactored Network's fast path).
struct PooledEnv {
  Simulator sim;
  BufferPool pool;
  std::vector<std::uint8_t> crashed_flags;
  int num_crashed = 0;
  int num_blocked = 0;

  std::vector<std::uint8_t> make_payload(std::uint32_t n) {
    auto b = pool.acquire();  // recycled capacity, like pooled ByteWriter
    b.resize(n);
    return b;
  }
  void recycle(std::vector<std::uint8_t>&& b) { pool.release(std::move(b)); }
  bool deliverable(NodeId src, NodeId dst) {
    if (num_crashed > 0 &&
        (crashed_flags[static_cast<std::size_t>(src)] != 0 ||
         crashed_flags[static_cast<std::size_t>(dst)] != 0)) {
      return false;
    }
    return num_blocked == 0;  // dense row walk elided: no active blocks
  }
};

/// One message hop of the replay trace: payload size, endpoints, delay.
/// Precomputed outside the timed region so both engines execute the exact
/// same hop stream and the measurement isolates the engine + buffer +
/// fault-check layers (the three layers the refactor touched).
struct Hop {
  std::uint32_t size;
  NodeId src;
  NodeId dst;
  Duration delay;
};

template <typename Env>
struct Replayer {
  /// Cycles through the trace `rounds` times so one timed run is long
  /// enough (tens of ms) for stable wall-clock numbers.
  Replayer(const std::vector<Hop>& trace, int rounds)
      : hops(trace),
        remaining(trace.size() * static_cast<std::size_t>(rounds)) {}

  void schedule_hop() {
    if (remaining == 0) return;
    --remaining;
    const Hop hop = hops[next];
    if (++next == hops.size()) next = 0;
    auto payload = env.make_payload(hop.size);
    env.sim.schedule_after(
        hop.delay,
        [this, payload = std::move(payload), src = hop.src,
         dst = hop.dst]() mutable {
          benchmark::DoNotOptimize(payload.data());
          if (env.deliverable(src, dst)) env.recycle(std::move(payload));
          schedule_hop();
        });
  }

  double events_per_sec(int fanout) {
    const std::size_t total = remaining;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < fanout; ++i) schedule_hop();
    while (env.sim.step()) {
    }
    return static_cast<double>(total) / seconds_since(t0);
  }

  Env env;
  const std::vector<Hop>& hops;
  std::size_t next = 0;
  std::size_t remaining = 0;
};

/// Batched cost model (the coalesced Network's fast path): no per-hop
/// buffer and no per-hop heap event. A hop reserves a sequence number,
/// memcpys its payload into the open slab of its quantized arrival tick,
/// and rides the single event scheduled when that tick opened; the drain
/// pays one fault check per run and one heap-top compare per frame — the
/// exact per-frame work Network::fire_batch does with no fault active.
struct BatchedReplayer {
  static constexpr Duration kTick = kMillisecond;
  /// Direct-mapped per-tick batch. 32 slots cover the 10ms delay horizon
  /// three times over, so a slot is never reclaimed while still open.
  struct Tick {
    Time at = -1;
    std::vector<std::uint8_t> slab;
    std::vector<std::uint32_t> sizes;
    std::vector<std::uint64_t> seqs;
  };

  BatchedReplayer(const std::vector<Hop>& trace, int rounds)
      : hops(trace),
        remaining(trace.size() * static_cast<std::size_t>(rounds)) {
    ticks.resize(32);
    std::uint32_t max_sz = 0;
    for (const Hop& h : trace) max_sz = std::max(max_sz, h.size);
    scratch.assign(max_sz, 0xA5);
  }

  void schedule_hop() {
    if (remaining == 0) return;
    --remaining;
    const Hop hop = hops[next];
    if (++next == hops.size()) next = 0;
    const std::uint64_t seq = sim.reserve_seq();
    const Time at =
        ((sim.now() + hop.delay + kTick - 1) / kTick) * kTick;
    const std::size_t idx =
        static_cast<std::size_t>(at / kTick) & (ticks.size() - 1);
    Tick& t = ticks[idx];
    if (t.at != at) {
      t.at = at;
      t.slab.clear();
      t.sizes.clear();
      t.seqs.clear();
      sim.schedule_at_seq(at, seq, [this, idx] { fire(idx); });
    }
    t.slab.insert(t.slab.end(), scratch.data(), scratch.data() + hop.size);
    t.sizes.push_back(hop.size);
    t.seqs.push_back(seq);
  }

  void fire(std::size_t idx) {
    Tick& t = ticks[idx];
    const Time at = t.at;
    t.at = -1;  // close: follow-on hops land on strictly later ticks
    const std::size_t n = t.sizes.size();
    const std::uint8_t* base = t.slab.data();
    std::size_t off = 0;
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i + 1;
      while (j < n && !sim.has_event_before(at, t.seqs[j])) ++j;
      if (num_crashed == 0) {  // one fault check per dispatched run
        benchmark::DoNotOptimize(base);
      }
      for (; i < j; ++i) {
        benchmark::DoNotOptimize(base + off);
        off += t.sizes[i];
        schedule_hop();
      }
    }
  }

  double events_per_sec(int fanout) {
    const std::size_t total = remaining;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < fanout; ++i) schedule_hop();
    while (sim.step()) {
    }
    return static_cast<double>(total) / seconds_since(t0);
  }

  Simulator sim;
  int num_crashed = 0;
  std::vector<Tick> ticks;
  const std::vector<Hop>& hops;
  std::vector<std::uint8_t> scratch;
  std::size_t next = 0;
  std::size_t remaining = 0;
};

/// Payload sizes of every hop of a real W2R1 uniform-delay workload run,
/// so the replay stresses the engines with the true size distribution.
std::vector<std::uint32_t> capture_w2r1_hop_sizes(int ops_per_client) {
  const Protocol* p = protocol_by_name("fast-read-mw(W2R1)");
  SimHarness::Options o;
  o.cfg = ClusterConfig{5, 2, 1, 1};
  o.seed = 42;
  o.delay = std::make_unique<UniformDelay>(kMillisecond, 10 * kMillisecond);
  SimHarness h(*p, std::move(o));
  std::vector<std::uint32_t> sizes;
  h.net().set_delivery_hook([&sizes](const Frame& m, Time, Time) {
    sizes.push_back(static_cast<std::uint32_t>(m.payload.size()));
  });
  WorkloadOptions w;
  w.ops_per_writer = ops_per_client;
  w.ops_per_reader = ops_per_client;
  run_random_workload(h, w);
  return sizes;
}

struct EngineComparison {
  std::uint64_t hops = 0;
  double legacy_eps = 0;
  double pooled_eps = 0;
  double batched_eps = 0;
  [[nodiscard]] double speedup() const {
    return legacy_eps > 0 ? pooled_eps / legacy_eps : 0;
  }
  [[nodiscard]] double batched_speedup() const {
    return pooled_eps > 0 ? batched_eps / pooled_eps : 0;
  }
};

EngineComparison compare_engines(const std::vector<std::uint32_t>& sizes) {
  std::vector<Hop> trace;
  trace.reserve(sizes.size());
  Rng rng(7);
  for (std::uint32_t sz : sizes) {
    Hop h;
    h.size = sz;
    h.src = static_cast<NodeId>(rng.next_below(8));
    h.dst = static_cast<NodeId>(rng.next_below(8));
    h.delay =
        kMillisecond + static_cast<Duration>(rng.next_below(9 * kMillisecond));
    trace.push_back(h);
  }
  EngineComparison cmp;
  constexpr int kFanout = 15;  // 3 clients x 5 servers in flight
  constexpr int kRounds = 20;  // cycle the trace: ~300k hops per timed run
  constexpr int kReps = 5;     // best-of, to shed scheduler noise
  // The batched engine's win is amortization over fan-out, so it replays
  // at the in-flight count of the regime coalescing targets (the same 512
  // the real-Network replay below uses); the per-hop cost of the other two
  // engines is fan-out-independent, so their rows stay comparable.
  constexpr int kBatchedFanout = 512;
  cmp.hops = trace.size() * kRounds;
  for (int rep = 0; rep < kReps; ++rep) {
    Replayer<LegacyEnv> legacy(trace, kRounds);
    cmp.legacy_eps = std::max(cmp.legacy_eps, legacy.events_per_sec(kFanout));
    Replayer<PooledEnv> pooled(trace, kRounds);
    cmp.pooled_eps = std::max(cmp.pooled_eps, pooled.events_per_sec(kFanout));
    BatchedReplayer batched(trace, kRounds);
    cmp.batched_eps =
        std::max(cmp.batched_eps, batched.events_per_sec(kBatchedFanout));
  }
  return cmp;
}

// ---- coalesced delivery replay: the real Network, both engines ----
//
// Unlike the engine comparison above (raw simulator cost models), this
// replays a closed-loop hop stream through the REAL Network stack twice —
// per-message scheduling vs. batched per-tick delivery — at the same
// tick, so the measured difference is coalescing itself: one heap event
// and one dispatch per batch instead of per message, frames appended to
// pre-sized per-destination slabs instead of pooled per-message buffers.

struct NetReplayDriver {
  explicit NetReplayDriver(const std::vector<std::uint32_t>& s) : sizes(s) {}

  const std::vector<std::uint32_t>& sizes;  ///< recorded payload sizes
  std::vector<std::uint8_t> scratch;        ///< payload byte source
  Network* net = nullptr;
  std::size_t next = 0;
  std::uint64_t remaining = 0;
  int ndst = 0;

  void send_next(NodeId src) {
    if (remaining == 0) return;
    --remaining;
    const std::uint32_t sz = sizes[next];
    if (++next == sizes.size()) next = 0;
    const NodeId dst = static_cast<NodeId>(
        (static_cast<std::uint32_t>(src) + 1 + sz) %
        static_cast<std::uint32_t>(ndst));
    net->send_bytes(src, dst, /*type=*/1, /*key=*/0, /*rpc_id=*/0,
                    ByteSpan(scratch.data(), sz));
  }
};

/// Closed-loop sink: every delivered frame triggers the next hop, keeping
/// the configured fan-out in flight. Runs unmodified on both engines —
/// Process::on_deliver_batch's default replays the batch per frame.
class ReplaySink final : public Process {
 public:
  ReplaySink(NodeId id, Network& net, NetReplayDriver& d)
      : Process(id, net), d_(d) {}
  void on_message(const Frame& m) override {
    benchmark::DoNotOptimize(m.payload.data());
    d_.send_next(id());
  }

 private:
  NetReplayDriver& d_;
};

struct CoalescedReplay {
  std::uint64_t frames = 0;  ///< hops delivered in one timed run
  double per_message_eps = 0;
  double coalesced_eps = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced_frames = 0;  ///< frames through batch delivery
  std::uint64_t hist[CoalesceStats::kHistBuckets] = {};
  std::uint64_t steady_engine_allocs = 0;
  std::uint64_t steady_pool_misses = 0;

  [[nodiscard]] double speedup() const {
    return per_message_eps > 0 ? coalesced_eps / per_message_eps : 0;
  }
  [[nodiscard]] double frames_per_batch() const {
    return batches > 0
               ? static_cast<double>(coalesced_frames) /
                     static_cast<double>(batches)
               : 0;
  }
};

CoalescedReplay measure_coalesced_delivery(
    const std::vector<std::uint32_t>& sizes) {
  constexpr int kDsts = 8;     // replica-group-sized destination set
  constexpr int kFanout = 512; // closed-loop hops in flight
  constexpr int kRounds = 20;  // ~300k hops per timed run
  constexpr int kReps = 5;     // best-of, to shed scheduler noise
  const std::uint64_t hops = sizes.size() * kRounds;
  std::uint32_t max_sz = 0;
  for (std::uint32_t s : sizes) max_sz = std::max(max_sz, s);

  auto run_once = [&](bool coalesce, CoalescedReplay* out) {
    Simulator sim;
    Network::Options nopts;
    nopts.coalesce = coalesce;
    // Same tick on both sides: quantization is not what is being measured.
    nopts.tick = kMillisecond;
    Network net(sim,
                std::make_unique<UniformDelay>(kMillisecond, 10 * kMillisecond),
                Rng(7), nopts);
    if (coalesce) {
      net.reserve_coalescing(kDsts * 16, kFanout / kDsts, max_sz);
    }
    NetReplayDriver d{sizes};
    d.scratch.assign(max_sz, 0xA5);
    d.net = &net;
    d.remaining = hops;
    d.ndst = kDsts;
    std::vector<std::unique_ptr<ReplaySink>> sinks;
    sinks.reserve(kDsts);
    for (int i = 0; i < kDsts; ++i) {
      sinks.push_back(
          std::make_unique<ReplaySink>(static_cast<NodeId>(i), net, d));
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kFanout; ++i) {
      d.send_next(static_cast<NodeId>(i % kDsts));
    }
    sim.run();
    const double secs = seconds_since(t0);
    const std::uint64_t delivered = net.stats().delivered;
    if (out != nullptr) {
      out->frames = delivered;
      if (coalesce) {
        const CoalesceStats& cs = net.coalesce_stats();
        out->batches = cs.batches;
        out->coalesced_frames = cs.frames;
        for (int b = 0; b < CoalesceStats::kHistBuckets; ++b) {
          out->hist[b] = cs.hist[b];
        }
        // Steady-state probe: one more trace round on the warm network —
        // batch rings, slabs, and the event slab must all be ratcheted.
        const std::uint64_t a0 = sim.allocations();
        const std::uint64_t m0 = net.pool().stats().misses;
        d.remaining = sizes.size();
        for (int i = 0; i < kFanout; ++i) {
          d.send_next(static_cast<NodeId>(i % kDsts));
        }
        sim.run();
        out->steady_engine_allocs = sim.allocations() - a0;
        out->steady_pool_misses = net.pool().stats().misses - m0;
      }
    }
    return static_cast<double>(delivered) / secs;
  };

  CoalescedReplay r;
  for (int rep = 0; rep < kReps; ++rep) {
    r.per_message_eps = std::max(r.per_message_eps, run_once(false, nullptr));
    // Counters are deterministic across reps; capture them on the first.
    r.coalesced_eps =
        std::max(r.coalesced_eps, run_once(true, rep == 0 ? &r : nullptr));
  }
  return r;
}

// ---- end-to-end harness throughput across the design space ----

struct WorkloadRow {
  std::string protocol;
  std::string cluster;
  int ops_per_client = 0;
  std::uint64_t events = 0;
  std::uint64_t msgs = 0;
  std::uint64_t bytes_on_wire = 0;
  double wall_ms = 0;
  std::uint64_t engine_allocs = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t steady_engine_allocs = 0;
  std::uint64_t steady_pool_misses = 0;

  [[nodiscard]] double events_per_sec() const {
    return wall_ms > 0 ? static_cast<double>(events) / (wall_ms / 1e3) : 0;
  }
  [[nodiscard]] double msgs_per_sec() const {
    return wall_ms > 0 ? static_cast<double>(msgs) / (wall_ms / 1e3) : 0;
  }
};

WorkloadRow run_workload(const std::string& protocol, const ClusterConfig& cfg,
                         int ops_per_client) {
  const Protocol* p = protocol_by_name(protocol);
  SimHarness::Options o;
  o.cfg = cfg;
  o.seed = 42;
  o.delay = std::make_unique<UniformDelay>(kMillisecond, 10 * kMillisecond);
  SimHarness h(*p, std::move(o));
  WorkloadOptions w;
  w.ops_per_writer = ops_per_client;
  w.ops_per_reader = ops_per_client;

  WorkloadRow row;
  row.protocol = protocol;
  row.cluster = cfg.to_string();
  row.ops_per_client = ops_per_client;
  const auto t0 = std::chrono::steady_clock::now();
  run_random_workload(h, w);
  row.wall_ms = seconds_since(t0) * 1e3;
  row.events = h.sim().executed();
  row.msgs = h.net().stats().sent;
  row.bytes_on_wire = h.net().stats().bytes_sent;
  row.engine_allocs = h.sim().allocations();
  row.pool_misses = h.net().pool().stats().misses;

  // Steady-state probe: more closed-loop traffic on the same harness must
  // not move either allocation counter — the pool and slab are warm, and a
  // closed loop never needs a larger working set than the run that warmed
  // them (the regression test pins the same property; here it is recorded
  // in the artifact every run).
  int remaining = 40;
  std::function<void()> step;
  step = [&h, &remaining, &step]() {
    if (--remaining < 0) return;
    if (remaining % 2 == 0) {
      h.async_write(0, 1'000'000 + remaining, [&step]() { step(); });
    } else {
      h.async_read(0, [&step](TaggedValue) { step(); });
    }
  };
  step();
  h.run();
  row.steady_engine_allocs = h.sim().allocations() - row.engine_allocs;
  row.steady_pool_misses = h.net().pool().stats().misses - row.pool_misses;
  return row;
}

// ---- million-client keyspace rows ----

/// One table-driven keyspace run: `clients` closed-loop clients (half
/// writers, half readers) over a 64-key, 8-shard Zipfian keyspace in a
/// single harness. ops_per_client * clients is the op count: 10^5 and 10^6
/// at the two grid points.
struct MillionRow {
  int clients = 0;
  int ops_per_client = 0;
  bool coalesce = false;    ///< batched delivery at a 10us tick
  bool dest_major = false;  ///< destination-major drain (coalesce only)
  double mean_run_len = 0;  ///< frames per dispatched run (coalesce only)
  std::string protocol;
  std::string keyspace;
  std::uint64_t events = 0;
  std::uint64_t msgs = 0;
  double wall_ms = 0;
  double write_p99_ms = 0;          ///< pooled across keys
  double read_p99_ms = 0;           ///< pooled across keys
  double per_key_read_p99_max_ms = 0;  ///< worst single key
  std::uint64_t steady_engine_allocs = 0;
  std::uint64_t steady_pool_misses = 0;

  [[nodiscard]] double events_per_sec() const {
    return wall_ms > 0 ? static_cast<double>(events) / (wall_ms / 1e3) : 0;
  }
};

MillionRow run_million_client(int clients, int ops_per_client,
                              bool coalesce = false, bool dest_major = true) {
  const Protocol* p = protocol_by_name("mw-abd(W2R2)");
  SimHarness::Options o;
  o.cfg = ClusterConfig{5, clients / 2, clients - clients / 2, 1};
  o.keyspace = KeyspaceConfig{64, 8, 0.99};
  o.seed = 42;
  o.delay = std::make_unique<UniformDelay>(kMillisecond, 10 * kMillisecond);
  o.coalesce = coalesce;
  if (coalesce) {
    o.tick = 10 * kMicrosecond;  // quantize so same-tick traffic batches
    o.dest_major = dest_major;
  }
  SimHarness h(*p, std::move(o));

  MillionRow row;
  row.clients = clients;
  row.ops_per_client = ops_per_client;
  row.coalesce = coalesce;
  row.dest_major = coalesce && dest_major;
  row.protocol = "mw-abd(W2R2)";
  row.keyspace = h.keyspace().to_string();

  WorkloadOptions w;
  w.ops_per_writer = ops_per_client;
  w.ops_per_reader = ops_per_client;
  const auto t0 = std::chrono::steady_clock::now();
  run_keyspace_workload(h, w);
  row.wall_ms = seconds_since(t0) * 1e3;
  // Logical event count (one per enqueued frame, as in exp::Runner): the
  // coalesced engine executes fewer heap events for the same traffic, so
  // events_per_sec stays comparable across the two modes.
  const CoalesceStats& cs = h.net().coalesce_stats();
  row.events = h.sim().executed() - cs.batches - cs.continuations + cs.enqueued;
  row.msgs = h.net().stats().sent;
  row.mean_run_len = coalesce ? cs.mean_run_len() : 0;

  std::vector<double> writes, reads;
  for (int k = 0; k < h.num_keys(); ++k) {
    std::vector<double> kw = latency_samples_ms(h.key_history(k), OpKind::kWrite);
    std::vector<double> kr = latency_samples_ms(h.key_history(k), OpKind::kRead);
    row.per_key_read_p99_max_ms = std::max(
        row.per_key_read_p99_max_ms, summarize_latency(kr).p99_ms);
    writes.insert(writes.end(), kw.begin(), kw.end());
    reads.insert(reads.end(), kr.begin(), kr.end());
  }
  row.write_p99_ms = summarize_latency(std::move(writes)).p99_ms;
  row.read_p99_ms = summarize_latency(std::move(reads)).p99_ms;

  // Steady-state probe: one more closed-loop op per client on the warm
  // table must leave both allocation counters untouched.
  const std::uint64_t engine_allocs = h.sim().allocations();
  const std::uint64_t pool_misses = h.net().pool().stats().misses;
  WorkloadOptions probe;
  probe.ops_per_writer = 1;
  probe.ops_per_reader = 1;
  run_keyspace_workload(h, probe);
  row.steady_engine_allocs = h.sim().allocations() - engine_allocs;
  row.steady_pool_misses = h.net().pool().stats().misses - pool_misses;
  return row;
}

// ---- checked soak: the 10^6-op grid point with the checker live ----

/// The dest-major million-client run re-executed with a StreamingTagWitness
/// subscribed to every key history and settled-prefix retirement on: one
/// harness, 64 keys, 10^6 ops, every completion judged as it lands. Proves
/// the run can be checked live in window-bounded memory and measures what
/// that costs next to the unchecked twin (the matching million_client row).
/// No latency columns: retired records are gone, so the live suffix would
/// bias percentiles.
struct CheckedSoakRow {
  int clients = 0;
  int ops_per_client = 0;
  std::string protocol;
  std::string keyspace;
  std::uint64_t ops_checked = 0;  ///< completions judged, summed over keys
  bool verdict_atomic = false;
  std::uint64_t peak_window = 0;   ///< worst per-key window occupancy
  std::uint64_t peak_pending = 0;  ///< worst per-key in-flight count
  std::uint64_t retired_tags = 0;  ///< window entries GC'd by the watermark
  std::uint64_t history_live = 0;  ///< recorder entries left after retirement
  std::uint64_t events = 0;
  double wall_ms = 0;
  double unchecked_wall_ms = 0;  ///< the twin row's wall, for the overhead
  std::uint64_t steady_engine_allocs = 0;
  std::uint64_t steady_pool_misses = 0;

  [[nodiscard]] double events_per_sec() const {
    return wall_ms > 0 ? static_cast<double>(events) / (wall_ms / 1e3) : 0;
  }
  [[nodiscard]] double checker_ns_per_op() const {
    if (ops_checked == 0) return 0;
    // Wall jitter can make the checked run marginally faster; clamp so the
    // reported overhead is never negative.
    const double delta_ms = std::max(0.0, wall_ms - unchecked_wall_ms);
    return delta_ms * 1e6 / static_cast<double>(ops_checked);
  }
};

CheckedSoakRow run_checked_soak(int clients, int ops_per_client,
                                double unchecked_wall_ms) {
  const Protocol* p = protocol_by_name("mw-abd(W2R2)");
  SimHarness::Options o;
  o.cfg = ClusterConfig{5, clients / 2, clients - clients / 2, 1};
  o.keyspace = KeyspaceConfig{64, 8, 0.99};
  o.seed = 42;
  o.delay = std::make_unique<UniformDelay>(kMillisecond, 10 * kMillisecond);
  o.coalesce = true;
  o.tick = 10 * kMicrosecond;
  o.dest_major = true;
  o.streaming_check = true;
  o.retire_history = true;
  SimHarness h(*p, std::move(o));

  CheckedSoakRow row;
  row.clients = clients;
  row.ops_per_client = ops_per_client;
  row.protocol = "mw-abd(W2R2)";
  row.keyspace = h.keyspace().to_string();
  row.unchecked_wall_ms = unchecked_wall_ms;

  WorkloadOptions w;
  w.ops_per_writer = ops_per_client;
  w.ops_per_reader = ops_per_client;
  const auto t0 = std::chrono::steady_clock::now();
  run_keyspace_workload(h, w);
  row.wall_ms = seconds_since(t0) * 1e3;
  const CoalesceStats& cs = h.net().coalesce_stats();
  row.events = h.sim().executed() - cs.batches - cs.continuations + cs.enqueued;

  // Steady-state probe (same contract as the unchecked rows): the checker
  // and the retirement path must not disturb the engine's allocation-free
  // steady state.
  const std::uint64_t engine_allocs = h.sim().allocations();
  const std::uint64_t pool_misses = h.net().pool().stats().misses;
  WorkloadOptions probe;
  probe.ops_per_writer = 1;
  probe.ops_per_reader = 1;
  run_keyspace_workload(h, probe);
  row.steady_engine_allocs = h.sim().allocations() - engine_allocs;
  row.steady_pool_misses = h.net().pool().stats().misses - pool_misses;

  row.verdict_atomic = true;
  for (int k = 0; k < h.num_keys(); ++k) {
    StreamingTagWitness* sc = h.stream_checker(k);
    if (!sc->finish().atomic) row.verdict_atomic = false;
    const StreamingStats& st = sc->stats();
    row.ops_checked += st.completions;
    row.peak_window = std::max<std::uint64_t>(row.peak_window, st.peak_window);
    row.peak_pending =
        std::max<std::uint64_t>(row.peak_pending, st.peak_pending);
    row.retired_tags += st.retired_tags;
    row.history_live +=
        h.key_history(k).size() - h.key_history(k).retired_count();
  }
  return row;
}

// ---- W2R2 fan-out replay: dispatched-run length under dest-major ----

/// The destination-major drain's headline measurement: one single-register
/// mw-abd(W2R2) deployment, 10^4 table-driven closed-loop clients at a
/// 10us tick. Every server ack fans out to table clients and the whole
/// ClientTable is ONE process, so a tick's ack traffic regroups into a
/// single long run — this is the workload the run-length gate
/// (scripts/bench_trend.py: mean_run_len >= 8) pins.
struct FanoutReplay {
  int clients = 0;
  int ops_per_client = 0;
  std::uint64_t frames = 0;  ///< frames through batch delivery (dm lane)
  double frame_order_eps = 0;
  double frame_order_mean_run_len = 0;
  double dest_major_eps = 0;
  double mean_run_len = 0;  ///< dest-major lane; trend-gated >= 8
  std::uint64_t dest_major_ticks = 0;
  std::uint64_t staged_replies = 0;
  double wall_ms = 0;  ///< dest-major lane, best rep

  [[nodiscard]] double speedup() const {
    return frame_order_eps > 0 ? dest_major_eps / frame_order_eps : 0;
  }
};

FanoutReplay run_fanout_replay() {
  constexpr int kClients = 10'000;
  constexpr int kOps = 4;
  auto lane = [](bool dest_major, double* wall_out, CoalesceStats* stats_out) {
    const Protocol* p = protocol_by_name("mw-abd(W2R2)");
    SimHarness::Options o;
    o.cfg = ClusterConfig{5, kClients / 2, kClients / 2, 1};
    o.table_clients = true;
    o.seed = 42;
    o.delay = std::make_unique<UniformDelay>(kMillisecond, 10 * kMillisecond);
    o.coalesce = true;
    o.tick = 10 * kMicrosecond;
    o.dest_major = dest_major;
    SimHarness h(*p, std::move(o));
    WorkloadOptions w;
    w.ops_per_writer = kOps;
    w.ops_per_reader = kOps;
    const auto t0 = std::chrono::steady_clock::now();
    run_random_workload(h, w);
    const double secs = seconds_since(t0);
    if (wall_out != nullptr) *wall_out = secs * 1e3;
    const CoalesceStats& cs = h.net().coalesce_stats();
    if (stats_out != nullptr) *stats_out = cs;
    // Logical event count, as in the million-client rows: comparable
    // across drain modes.
    const std::uint64_t logical =
        h.sim().executed() - cs.batches - cs.continuations + cs.enqueued;
    return static_cast<double>(logical) / secs;
  };

  FanoutReplay r;
  r.clients = kClients;
  r.ops_per_client = kOps;
  CoalesceStats frame_order{};
  CoalesceStats dest_major{};
  constexpr int kReps = 2;  // best-of: counters are deterministic across reps
  for (int rep = 0; rep < kReps; ++rep) {
    r.frame_order_eps = std::max(
        r.frame_order_eps, lane(false, nullptr, rep == 0 ? &frame_order : nullptr));
    double wall = 0;
    const double eps = lane(true, &wall, rep == 0 ? &dest_major : nullptr);
    if (eps > r.dest_major_eps) {
      r.dest_major_eps = eps;
      r.wall_ms = wall;
    }
  }
  r.frames = dest_major.frames;
  r.frame_order_mean_run_len = frame_order.mean_run_len();
  r.mean_run_len = dest_major.mean_run_len();
  r.dest_major_ticks = dest_major.dest_major;
  r.staged_replies = dest_major.staged;
  return r;
}

// ---- report + artifact ----

void report() {
  header("Simulation-core throughput (pooled engine)");

  const std::vector<std::uint32_t> hop_sizes = capture_w2r1_hop_sizes(300);
  const EngineComparison cmp = compare_engines(hop_sizes);
  header("Engine comparison: W2R1-shaped hop replay, uniform 1..10ms delays");
  row({"engine", "events/sec", "hops"}, {24, 16, 10});
  row({"legacy (PR 2)", fmt(cmp.legacy_eps, 0), std::to_string(cmp.hops)},
      {24, 16, 10});
  row({"pooled (PR 3)", fmt(cmp.pooled_eps, 0), std::to_string(cmp.hops)},
      {24, 16, 10});
  row({"batched (this PR)", fmt(cmp.batched_eps, 0), std::to_string(cmp.hops)},
      {24, 16, 10});
  row({"speedup", fmt(cmp.speedup(), 2) + "x (pooled/legacy)", ""},
      {24, 28, 10});
  row({"", fmt(cmp.batched_speedup(), 2) + "x (batched/pooled)", ""},
      {24, 28, 10});

  const CoalescedReplay co = measure_coalesced_delivery(hop_sizes);
  header("Batched delivery: same hop stream through the real Network stack");
  row({"engine", "frames/sec", "frames"}, {24, 16, 10});
  row({"per-message", fmt(co.per_message_eps, 0), std::to_string(co.frames)},
      {24, 16, 10});
  row({"coalesced (this PR)", fmt(co.coalesced_eps, 0),
       std::to_string(co.frames)},
      {24, 16, 10});
  row({"speedup", fmt(co.speedup(), 2) + "x",
       fmt(co.frames_per_batch(), 1) + "/batch"},
      {24, 16, 10});

  const std::vector<std::pair<std::string, ClusterConfig>> grid = {
      {"fast-read-mw(W2R1)", ClusterConfig{5, 2, 1, 1}},
      {"fast-read-mw(W2R1)", ClusterConfig{9, 2, 1, 2}},
      {"fast-read-mw-nogc(W2R1)", ClusterConfig{5, 2, 1, 1}},
      {"mw-abd(W2R2)", ClusterConfig{3, 2, 2, 1}},
      {"mw-abd(W2R2)", ClusterConfig{5, 2, 2, 2}},
      {"fast-swmr(W1R1)", ClusterConfig{5, 1, 1, 1}},
  };
  std::vector<WorkloadRow> rows;
  rows.reserve(grid.size());
  for (const auto& [proto, cfg] : grid) {
    // Best-of-3: the run is deterministic (events, bytes, counters are
    // identical across reps), only wall time jitters on shared runners —
    // keep the fastest rep so the perf-trend gate diffs a stable number.
    WorkloadRow best = run_workload(proto, cfg, 300);
    for (int rep = 1; rep < 3; ++rep) {
      WorkloadRow r = run_workload(proto, cfg, 300);
      if (r.wall_ms < best.wall_ms) best = r;
    }
    rows.push_back(std::move(best));
  }

  header("End-to-end workload throughput (300 ops/client, uniform 1..10ms)");
  row({"protocol", "cluster", "events/s", "msgs/s", "allocs", "steady"},
      {24, 18, 12, 12, 8, 8});
  for (const WorkloadRow& r : rows) {
    row({r.protocol, r.cluster, fmt(r.events_per_sec(), 0),
         fmt(r.msgs_per_sec(), 0),
         std::to_string(r.engine_allocs + r.pool_misses),
         std::to_string(r.steady_engine_allocs + r.steady_pool_misses)},
        {24, 18, 12, 12, 8, 8});
  }

  const FanoutReplay fanout = run_fanout_replay();
  header("W2R2 table fan-out: dispatched-run length (10us tick)");
  row({"drain", "events/s", "mean run", "dm ticks", "staged"},
      {24, 14, 10, 10, 10});
  row({"frame-order", fmt(fanout.frame_order_eps, 0),
       fmt(fanout.frame_order_mean_run_len, 2), "-", "-"},
      {24, 14, 10, 10, 10});
  row({"dest-major (this PR)", fmt(fanout.dest_major_eps, 0),
       fmt(fanout.mean_run_len, 2), std::to_string(fanout.dest_major_ticks),
       std::to_string(fanout.staged_replies)},
      {24, 14, 10, 10, 10});
  row({"speedup", fmt(fanout.speedup(), 2) + "x", "", "", ""},
      {24, 14, 10, 10, 10});

  // Million-client grid: 10^5 and 10^6 total ops through one table-driven
  // harness, per-message vs batched, and (v5) the batched rows twinned
  // frame-order vs destination-major. Long runs — a single rep per row is
  // already stable, and the trend gate normalizes by the engine
  // calibration anyway.
  const std::vector<MillionRow> million = {
      run_million_client(10'000, 10),                            // 10^5 ops
      run_million_client(10'000, 10, /*coalesce=*/true, false),  // frame-order
      run_million_client(10'000, 10, /*coalesce=*/true, true),   // dest-major
      run_million_client(100'000, 10),                           // 10^6 ops
      run_million_client(100'000, 10, /*coalesce=*/true, false),
      run_million_client(100'000, 10, /*coalesce=*/true, true),
  };
  header("Million-client keyspace (table clients, 64 keys / 8 shards, zipf)");
  row({"clients", "ops", "mode", "events/s", "wr p99", "rd p99", "run", "steady"},
      {10, 10, 12, 12, 10, 10, 6, 8});
  for (const MillionRow& r : million) {
    row({std::to_string(r.clients),
         std::to_string(static_cast<long long>(r.clients) * r.ops_per_client),
         !r.coalesce ? "per-msg" : (r.dest_major ? "dest-major" : "frame-ord"),
         fmt(r.events_per_sec(), 0), fmt(r.write_p99_ms, 2),
         fmt(r.read_p99_ms, 2), r.coalesce ? fmt(r.mean_run_len, 1) : "-",
         std::to_string(r.steady_engine_allocs + r.steady_pool_misses)},
        {10, 10, 12, 12, 10, 10, 6, 8});
  }

  // Checked soak: the 10^6-op dest-major row with the streaming checker
  // live; the unchecked twin is the last million-client row above.
  const CheckedSoakRow soak =
      run_checked_soak(100'000, 10, million.back().wall_ms);
  header("Checked soak (streaming tag-witness live, prefix retirement on)");
  row({"ops", "events/s", "ns/op", "window", "pending", "retired", "live",
       "verdict"},
      {10, 12, 8, 8, 8, 10, 8, 10});
  row({std::to_string(static_cast<long long>(soak.clients) *
                      soak.ops_per_client),
       fmt(soak.events_per_sec(), 0), fmt(soak.checker_ns_per_op(), 1),
       std::to_string(soak.peak_window), std::to_string(soak.peak_pending),
       std::to_string(soak.retired_tags), std::to_string(soak.history_live),
       soak.verdict_atomic ? "atomic" : "VIOLATION"},
      {10, 12, 8, 8, 8, 10, 8, 10});

  const std::vector<VvRow> vv_rows = run_valuevector_rows();
  print_valuevector_rows(vv_rows);

  JsonWriter j;
  j.begin_object();
  j.key("bench").value("simcore_throughput");
  j.key("schema_version").value(6);
  j.key("engine_comparison").begin_object();
  j.key("workload").value("w2r1_replay_uniform_delay");
  j.key("hops").value(cmp.hops);
  j.key("legacy_events_per_sec").value(cmp.legacy_eps);
  j.key("pooled_events_per_sec").value(cmp.pooled_eps);
  j.key("batched_events_per_sec").value(cmp.batched_eps);
  j.key("speedup").value(cmp.speedup());
  j.key("batched_speedup").value(cmp.batched_speedup());
  j.end_object();
  j.key("coalescing").begin_object();
  j.key("workload").value("w2r1_replay_real_network");
  j.key("frames").value(co.frames);
  j.key("per_message_events_per_sec").value(co.per_message_eps);
  j.key("coalesced_events_per_sec").value(co.coalesced_eps);
  j.key("coalesce_speedup").value(co.speedup());
  j.key("batches").value(co.batches);
  j.key("frames_per_batch").value(co.frames_per_batch());
  j.key("batch_size_hist").begin_array();
  for (int b = 0; b < CoalesceStats::kHistBuckets; ++b) {
    j.begin_object();
    // Bucket b holds spans of size in [2^b, 2^(b+1)).
    j.key("ge").value(std::uint64_t{1} << b);
    j.key("count").value(co.hist[b]);
    j.end_object();
  }
  j.end_array();
  j.key("steady_engine_allocs").value(co.steady_engine_allocs);
  j.key("steady_pool_misses").value(co.steady_pool_misses);
  j.end_object();
  j.key("fanout_replay").begin_object();
  j.key("workload").value("w2r2_table_fanout");
  j.key("protocol").value("mw-abd(W2R2)");
  j.key("clients").value(fanout.clients);
  j.key("ops_per_client").value(fanout.ops_per_client);
  j.key("frames").value(fanout.frames);
  j.key("frame_order_events_per_sec").value(fanout.frame_order_eps);
  j.key("frame_order_mean_run_len").value(fanout.frame_order_mean_run_len);
  j.key("dest_major_events_per_sec").value(fanout.dest_major_eps);
  j.key("dest_major_speedup").value(fanout.speedup());
  j.key("mean_run_len").value(fanout.mean_run_len);
  j.key("dest_major_ticks").value(fanout.dest_major_ticks);
  j.key("staged_replies").value(fanout.staged_replies);
  j.key("wall_ms").value(fanout.wall_ms);
  j.end_object();
  j.key("workloads").begin_array();
  for (const WorkloadRow& r : rows) {
    j.begin_object();
    j.key("protocol").value(r.protocol);
    j.key("cluster").value(r.cluster);
    j.key("ops_per_client").value(r.ops_per_client);
    j.key("events").value(r.events);
    j.key("msgs").value(r.msgs);
    j.key("bytes_on_wire").value(r.bytes_on_wire);
    j.key("wall_ms").value(r.wall_ms);
    j.key("events_per_sec").value(r.events_per_sec());
    j.key("msgs_per_sec").value(r.msgs_per_sec());
    j.key("engine_allocs").value(r.engine_allocs);
    j.key("pool_misses").value(r.pool_misses);
    j.key("steady_engine_allocs").value(r.steady_engine_allocs);
    j.key("steady_pool_misses").value(r.steady_pool_misses);
    j.end_object();
  }
  j.end_array();
  j.key("million_client").begin_array();
  for (const MillionRow& r : million) {
    j.begin_object();
    j.key("protocol").value(r.protocol);
    j.key("keyspace").value(r.keyspace);
    j.key("clients").value(r.clients);
    j.key("ops_per_client").value(r.ops_per_client);
    j.key("coalesce").value(r.coalesce);
    j.key("dest_major").value(r.dest_major);
    j.key("mean_run_len").value(r.mean_run_len);
    j.key("events").value(r.events);
    j.key("msgs").value(r.msgs);
    j.key("wall_ms").value(r.wall_ms);
    j.key("events_per_sec").value(r.events_per_sec());
    j.key("write_p99_ms").value(r.write_p99_ms);
    j.key("read_p99_ms").value(r.read_p99_ms);
    j.key("per_key_read_p99_max_ms").value(r.per_key_read_p99_max_ms);
    j.key("steady_engine_allocs").value(r.steady_engine_allocs);
    j.key("steady_pool_misses").value(r.steady_pool_misses);
    j.end_object();
  }
  j.end_array();
  j.key("checked_soak").begin_object();
  j.key("workload").value("million_client_checked");
  j.key("protocol").value(soak.protocol);
  j.key("keyspace").value(soak.keyspace);
  j.key("clients").value(soak.clients);
  j.key("ops_per_client").value(soak.ops_per_client);
  j.key("ops_checked").value(soak.ops_checked);
  j.key("verdict_atomic").value(soak.verdict_atomic);
  j.key("peak_window").value(soak.peak_window);
  j.key("peak_pending").value(soak.peak_pending);
  j.key("retired_tags").value(soak.retired_tags);
  j.key("history_live").value(soak.history_live);
  j.key("events").value(soak.events);
  j.key("wall_ms").value(soak.wall_ms);
  j.key("events_per_sec").value(soak.events_per_sec());
  j.key("checker_ns_per_op").value(soak.checker_ns_per_op());
  j.key("steady_engine_allocs").value(soak.steady_engine_allocs);
  j.key("steady_pool_misses").value(soak.steady_pool_misses);
  j.end_object();
  emit_valuevector_json(j, vv_rows);
  j.end_object();
  write_json_artifact("BENCH_simcore.json", j.str());
}

// ---- microbenchmarks: the event engines in isolation ----

constexpr int kBatch = 512;

/// A capture the size of a Network delivery closure (Message + send time).
struct FatCapture {
  std::uint64_t pad[7] = {};
  std::uint64_t* sink;
};

void BM_pooled_engine_schedule_step(benchmark::State& state) {
  Simulator sim;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      FatCapture c;
      c.sink = &acc;
      sim.schedule_after(i, [c]() { ++*c.sink; });
    }
    while (sim.step()) {
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_pooled_engine_schedule_step);

void BM_legacy_engine_schedule_step(benchmark::State& state) {
  LegacySimulator sim;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      FatCapture c;
      c.sink = &acc;
      sim.schedule_after(i, [c]() { ++*c.sink; });
    }
    while (sim.step()) {
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_legacy_engine_schedule_step);

}  // namespace
}  // namespace mwreg::bench

MWREG_BENCH_MAIN(mwreg::bench::report)
