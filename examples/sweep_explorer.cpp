// sweep_explorer: the experiment-runner subsystem end to end.
//
// One declarative spec sweeps 5 protocols x 4 clusters x 100 seeds (2000
// simulated histories, every one checked for atomicity), fans the trials
// out across all cores, and writes sweep.csv / sweep.json next to the
// binary. The console summary groups cells by whether the protocol's
// atomicity claim held over all 100 seeds — Table 1 at statistical scale.
//
//   ./sweep_explorer [threads]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/aggregator.h"
#include "exp/runner.h"
#include "protocols/protocols.h"

int main(int argc, char** argv) {
  using namespace mwreg;

  exp::ExperimentSpec spec;
  spec.name = "design-space-sweep";
  spec.protocols = {"mw-abd(W2R2)", "abd-swmr(W1R2)", "fast-read-mw(W2R1)",
                    "fast-swmr(W1R1)", "regular-fast-read(W2R1)"};
  spec.clusters = {
      ClusterConfig{5, 2, 2, 1},  // smallest fast-read-feasible MW cluster
      ClusterConfig{7, 2, 3, 1},  // the Fig. 2 cluster
      ClusterConfig{7, 1, 3, 1},  // single-writer variant
      ClusterConfig{9, 3, 4, 1},  // wide: more writers and readers
  };
  spec.seed_lo = 1;
  spec.seeds = 100;
  spec.workload.ops_per_writer = 8;
  spec.workload.ops_per_reader = 8;

  exp::Runner::Options opts;
  if (argc > 1) opts.threads = std::atoi(argv[1]);
  const exp::Runner runner(opts);

  std::printf("running %d trials (%d cells x %d seeds)...\n", spec.trials(),
              spec.cells(), spec.seeds);
  const std::vector<exp::TrialResult> results = runner.run(spec);
  const std::vector<exp::CellStats> cells = exp::aggregate(results);

  std::printf("\n%-26s %-14s %-9s %-10s %-10s %s\n", "protocol", "cluster",
              "atomic", "write p99", "read p99", "verdict");
  for (const exp::CellStats& c : cells) {
    std::printf("%-26s %-14s %3d/%-5d %7.2fms %7.2fms  %s\n",
                c.protocol.c_str(), c.cfg.to_string().c_str(), c.atomic_trials,
                c.trials, c.write.p99_ms, c.read.p99_ms,
                c.matches_expectation()
                    ? (c.expected_atomic ? "atomic, as guaranteed"
                                         : "no guarantee claimed")
                    : "GUARANTEE BROKEN");
  }

  bool ok = true;
  for (const exp::CellStats& c : cells) ok = ok && c.matches_expectation();
  std::printf("\nall atomicity guarantees held: %s\n", ok ? "yes" : "NO!");

  exp::write_report("sweep.csv", exp::to_csv(cells));
  exp::write_report("sweep.json", exp::to_json(cells));
  std::printf("wrote sweep.csv and sweep.json (%zu cells)\n", cells.size());
  return ok ? 0 : 1;
}
