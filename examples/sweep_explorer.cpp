// sweep_explorer: the experiment-runner subsystem end to end.
//
// Two declarative specs, fanned out across all cores:
//   1. the design-space sweep: 5 protocols x 4 clusters x 100 seeds (2000
//      simulated histories, every one checked for atomicity) — Table 1 at
//      statistical scale, written to sweep.csv / sweep.json;
//   2. the fault sweep: 3 protocols x the whole canned fault-scenario
//      library x 50 seeds, replayed single-threaded to prove the reports
//      are thread-count-invariant, written to fault_sweep.csv / .json with
//      the availability columns (faults injected, ops completed under the
//      disruption, post-heal recovery latency).
//
//   ./sweep_explorer [threads]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/aggregator.h"
#include "exp/runner.h"
#include "protocols/protocols.h"
#include "sim/fault_plan.h"

int main(int argc, char** argv) {
  using namespace mwreg;

  exp::ExperimentSpec spec;
  spec.name = "design-space-sweep";
  // fast-read-mw appears twice — GC'd default and full-ack ablation —
  // making the GC toggle one more sweep axis: cell_digest keys on the
  // protocol name, so each variant gets its own reproducible RNG streams.
  spec.protocols = {"mw-abd(W2R2)",          "abd-swmr(W1R2)",
                    "fast-read-mw(W2R1)",    "fast-read-mw-nogc(W2R1)",
                    "fast-swmr(W1R1)",       "regular-fast-read(W2R1)"};
  spec.clusters = {
      ClusterConfig{5, 2, 2, 1},  // smallest fast-read-feasible MW cluster
      ClusterConfig{7, 2, 3, 1},  // the Fig. 2 cluster
      ClusterConfig{7, 1, 3, 1},  // single-writer variant
      ClusterConfig{9, 3, 4, 1},  // wide: more writers and readers
  };
  spec.seed_lo = 1;
  spec.seeds = 100;
  spec.workload.ops_per_writer = 8;
  spec.workload.ops_per_reader = 8;

  exp::Runner::Options opts;
  if (argc > 1) opts.threads = std::atoi(argv[1]);
  const exp::Runner runner(opts);

  std::printf("running %d trials (%d cells x %d seeds)...\n", spec.trials(),
              spec.cells(), spec.seeds);
  const std::vector<exp::TrialResult> results = runner.run(spec);
  const std::vector<exp::CellStats> cells = exp::aggregate(results);

  std::printf("\n%-26s %-14s %-9s %-10s %-10s %s\n", "protocol", "cluster",
              "atomic", "write p99", "read p99", "verdict");
  for (const exp::CellStats& c : cells) {
    std::printf("%-26s %-14s %3d/%-5d %7.2fms %7.2fms  %s\n",
                c.protocol.c_str(), c.cfg.to_string().c_str(), c.atomic_trials,
                c.trials, c.write.p99_ms, c.read.p99_ms,
                c.matches_expectation()
                    ? (c.expected_atomic ? "atomic, as guaranteed"
                                         : "no guarantee claimed")
                    : "GUARANTEE BROKEN");
  }

  bool ok = true;
  for (const exp::CellStats& c : cells) ok = ok && c.matches_expectation();
  std::printf("\nall atomicity guarantees held: %s\n", ok ? "yes" : "NO!");

  exp::write_report("sweep.csv", exp::to_csv(cells));
  exp::write_report("sweep.json", exp::to_json(cells));
  std::printf("wrote sweep.csv and sweep.json (%zu cells)\n", cells.size());

  // ---- fault sweep: protocols x canned scenarios x 50 seeds ----

  exp::ExperimentSpec faults;
  faults.name = "fault-sweep";
  faults.protocols = {"mw-abd(W2R2)", "fast-read-mw(W2R1)",
                      "fast-read-mw-nogc(W2R1)", "regular-fast-read(W2R1)"};
  faults.clusters = {ClusterConfig{5, 2, 2, 1}};
  faults.fault_plans = scenarios::all();
  faults.seed_lo = 1;
  faults.seeds = 50;
  faults.workload.ops_per_writer = 8;
  faults.workload.ops_per_reader = 8;

  std::printf("\nrunning fault sweep: %d trials (%d cells x %d seeds)...\n",
              faults.trials(), faults.cells(), faults.seeds);
  const std::vector<exp::CellStats> fault_cells =
      exp::aggregate(runner.run(faults));
  // The acceptance bar for the fault axis: a single-threaded replay renders
  // byte-identical reports.
  exp::Runner::Options serial;
  serial.threads = 1;
  const std::vector<exp::CellStats> serial_cells =
      exp::aggregate(exp::Runner(serial).run(faults));
  const bool parity = exp::to_csv(fault_cells) == exp::to_csv(serial_cells) &&
                      exp::to_json(fault_cells) == exp::to_json(serial_cells);

  std::printf("\n%-26s %-20s %-9s %-14s %s\n", "protocol", "fault plan",
              "atomic", "ops in window", "recovery");
  for (const exp::CellStats& c : fault_cells) {
    std::printf("%-26s %-20s %3d/%-5d %10.1f %10.2fms\n", c.protocol.c_str(),
                c.fault_plan.c_str(), c.atomic_trials, c.trials,
                c.ops_under_fault, c.recovery_ms);
    ok = ok && c.matches_expectation();
  }
  std::printf("\nfault-sweep reports identical at 1 and N threads: %s\n",
              parity ? "yes" : "NO!");
  ok = ok && parity;

  exp::write_report("fault_sweep.csv", exp::to_csv(fault_cells));
  exp::write_report("fault_sweep.json", exp::to_json(fault_cells));
  std::printf("wrote fault_sweep.csv and fault_sweep.json (%zu cells)\n",
              fault_cells.size());
  return ok ? 0 : 1;
}
