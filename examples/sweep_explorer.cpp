// sweep_explorer: the experiment-runner subsystem end to end, now
// process-shardable.
//
// Three declarative sweeps:
//   1. design: 6 protocols x 4 clusters x 100 seeds (2400 simulated
//      histories, every one checked for atomicity) — Table 1 at
//      statistical scale, written to sweep.csv / sweep.json;
//   2. faults: 4 protocols x the whole canned fault-scenario library x 50
//      seeds, replayed single-threaded to prove the reports are
//      thread-count-invariant, written to fault_sweep.csv / .json with the
//      availability columns;
//   3. ref: the shard-merge reference sweep — one run_all batch spanning
//      fault-plan cells AND a multi-key Zipfian keyspace, with the
//      streaming checker live on every trial (check_streaming), written to
//      ref_sweep.csv / .json. This is the sweep the CI parity job runs as
//      1 process and as N shard processes and byte-diffs.
//
// Usage:
//   sweep_explorer [--threads N] [--shard i/N] [--out DIR]
//                  [--sweep design|faults|ref|all]
//
// With --shard i/N (N > 1) the process runs only its deterministic trial
// slice and writes a partial-aggregate artifact
// (<out>/<stem>.shard<i>of<N>.partial) instead of reports; sweep_merge
// folds the N partials into reports bit-identical to the unsharded run.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/aggregator.h"
#include "exp/cli.h"
#include "exp/partial.h"
#include "exp/runner.h"
#include "protocols/protocols.h"
#include "sim/fault_plan.h"

namespace {

using namespace mwreg;

void print_usage(const char* prog) {
  std::printf("usage: %s %s [--sweep design|faults|ref|all]\n", prog,
              exp::sweep_cli_usage().c_str());
}

std::vector<exp::ExperimentSpec> design_specs() {
  exp::ExperimentSpec spec;
  spec.name = "design-space-sweep";
  // fast-read-mw appears twice — GC'd default and full-ack ablation —
  // making the GC toggle one more sweep axis: cell_digest keys on the
  // protocol name, so each variant gets its own reproducible RNG streams.
  spec.protocols = {"mw-abd(W2R2)",          "abd-swmr(W1R2)",
                    "fast-read-mw(W2R1)",    "fast-read-mw-nogc(W2R1)",
                    "fast-swmr(W1R1)",       "regular-fast-read(W2R1)"};
  spec.clusters = {
      ClusterConfig{5, 2, 2, 1},  // smallest fast-read-feasible MW cluster
      ClusterConfig{7, 2, 3, 1},  // the Fig. 2 cluster
      ClusterConfig{7, 1, 3, 1},  // single-writer variant
      ClusterConfig{9, 3, 4, 1},  // wide: more writers and readers
  };
  spec.seed_lo = 1;
  spec.seeds = 100;
  spec.workload.ops_per_writer = 8;
  spec.workload.ops_per_reader = 8;
  return {spec};
}

std::vector<exp::ExperimentSpec> fault_specs() {
  exp::ExperimentSpec faults;
  faults.name = "fault-sweep";
  faults.protocols = {"mw-abd(W2R2)", "fast-read-mw(W2R1)",
                      "fast-read-mw-nogc(W2R1)", "regular-fast-read(W2R1)"};
  faults.clusters = {ClusterConfig{5, 2, 2, 1}};
  faults.fault_plans = scenarios::all();
  faults.seed_lo = 1;
  faults.seeds = 50;
  faults.workload.ops_per_writer = 8;
  faults.workload.ops_per_reader = 8;
  return {faults};
}

// The shard-merge reference batch: fault plans and a multi-key keyspace
// cannot share one spec (validation refuses the cross), so the batch holds
// one spec per axis — the Runner expands a run_all batch as ONE trial
// sequence, which is exactly what the shard slicing and the merge operate
// on. Both specs run the streaming checker live.
std::vector<exp::ExperimentSpec> ref_specs() {
  exp::ExperimentSpec faults;
  faults.name = "ref-faults";
  faults.protocols = {"mw-abd(W2R2)", "fast-read-mw(W2R1)"};
  faults.clusters = {ClusterConfig{5, 2, 2, 1}};
  faults.fault_plans = {scenarios::single_crash(), scenarios::crash_recover(),
                        scenarios::minority_partition()};
  faults.seed_lo = 1;
  faults.seeds = 12;
  faults.workload.ops_per_writer = 6;
  faults.workload.ops_per_reader = 6;
  faults.check_streaming = true;

  exp::ExperimentSpec keyed;
  keyed.name = "ref-keyspace";
  keyed.protocols = {"mw-abd(W2R2)"};
  keyed.clusters = {ClusterConfig{5, 4, 4, 1}};
  keyed.keyspaces = {KeyspaceConfig{8, 2, 0.99}};
  keyed.seed_lo = 1;
  keyed.seeds = 12;
  keyed.workload.ops_per_writer = 6;
  keyed.workload.ops_per_reader = 6;
  keyed.check_streaming = true;

  return {faults, keyed};
}

int total_trials(const std::vector<exp::ExperimentSpec>& specs) {
  int n = 0;
  for (const exp::ExperimentSpec& s : specs) n += s.trials();
  return n;
}

/// Run one sweep batch in sharded mode: execute this process's slice and
/// write the partial artifact. Returns false on any failure.
bool run_shard(const exp::Runner& runner, const std::string& stem,
               const std::vector<exp::ExperimentSpec>& specs,
               const exp::ShardSpec& shard, const std::string& out_dir) {
  const std::vector<exp::TrialResult> slice = runner.run_all(specs);
  const exp::PartialMeta meta = exp::make_partial_meta(stem, specs, shard);
  const std::string path =
      exp::join_path(out_dir, exp::partial_filename(stem, shard));
  std::string err;
  if (!exp::save_partial(path, meta, slice, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return false;
  }
  std::printf("%s: shard %s ran %zu of %llu trials -> %s\n", stem.c_str(),
              shard.to_string().c_str(), slice.size(),
              static_cast<unsigned long long>(meta.total_trials),
              path.c_str());
  return true;
}

/// Write both report formats; a failed write is a failed sweep (a sharded
/// CI job must not pass on a missing report).
bool write_reports(const std::string& stem, const std::string& out_dir,
                   const std::vector<exp::CellStats>& cells) {
  const bool csv_ok =
      exp::write_report(exp::join_path(out_dir, stem + ".csv"),
                        exp::to_csv(cells));
  const bool json_ok =
      exp::write_report(exp::join_path(out_dir, stem + ".json"),
                        exp::to_json(cells));
  if (csv_ok && json_ok) {
    std::printf("wrote %s.csv and %s.json (%zu cells)\n", stem.c_str(),
                stem.c_str(), cells.size());
  }
  return csv_ok && json_ok;
}

bool run_design(const exp::Runner& runner, const exp::SweepCli& cli) {
  const std::vector<exp::ExperimentSpec> specs = design_specs();
  if (cli.shard.sharded()) {
    return run_shard(runner, "sweep", specs, cli.shard, cli.out_dir);
  }
  const exp::ExperimentSpec& spec = specs[0];
  std::printf("running %d trials (%d cells x %d seeds)...\n", spec.trials(),
              spec.cells(), spec.seeds);
  const std::vector<exp::CellStats> cells =
      exp::aggregate(runner.run_all(specs));

  std::printf("\n%-26s %-14s %-9s %-10s %-10s %s\n", "protocol", "cluster",
              "atomic", "write p99", "read p99", "verdict");
  bool ok = true;
  for (const exp::CellStats& c : cells) {
    std::printf("%-26s %-14s %3d/%-5d %7.2fms %7.2fms  %s\n",
                c.protocol.c_str(), c.cfg.to_string().c_str(), c.atomic_trials,
                c.trials, c.write.p99_ms, c.read.p99_ms,
                c.matches_expectation()
                    ? (c.expected_atomic ? "atomic, as guaranteed"
                                         : "no guarantee claimed")
                    : "GUARANTEE BROKEN");
    ok = ok && c.matches_expectation();
  }
  std::printf("\nall atomicity guarantees held: %s\n", ok ? "yes" : "NO!");
  return write_reports("sweep", cli.out_dir, cells) && ok;
}

bool run_faults(const exp::Runner& runner, const exp::SweepCli& cli) {
  const std::vector<exp::ExperimentSpec> specs = fault_specs();
  if (cli.shard.sharded()) {
    return run_shard(runner, "fault_sweep", specs, cli.shard, cli.out_dir);
  }
  const exp::ExperimentSpec& faults = specs[0];
  std::printf("\nrunning fault sweep: %d trials (%d cells x %d seeds)...\n",
              faults.trials(), faults.cells(), faults.seeds);
  const std::vector<exp::CellStats> fault_cells =
      exp::aggregate(runner.run_all(specs));
  // The acceptance bar for the fault axis: a single-threaded replay renders
  // byte-identical reports.
  exp::Runner::Options serial;
  serial.threads = 1;
  const std::vector<exp::CellStats> serial_cells =
      exp::aggregate(exp::Runner(serial).run(faults));
  const bool parity = exp::to_csv(fault_cells) == exp::to_csv(serial_cells) &&
                      exp::to_json(fault_cells) == exp::to_json(serial_cells);

  std::printf("\n%-26s %-20s %-9s %-14s %s\n", "protocol", "fault plan",
              "atomic", "ops in window", "recovery");
  bool ok = true;
  for (const exp::CellStats& c : fault_cells) {
    std::printf("%-26s %-20s %3d/%-5d %10.1f %10.2fms\n", c.protocol.c_str(),
                c.fault_plan.c_str(), c.atomic_trials, c.trials,
                c.ops_under_fault, c.recovery_ms);
    ok = ok && c.matches_expectation();
  }
  std::printf("\nfault-sweep reports identical at 1 and N threads: %s\n",
              parity ? "yes" : "NO!");
  return write_reports("fault_sweep", cli.out_dir, fault_cells) && ok && parity;
}

bool run_ref(const exp::Runner& runner, const exp::SweepCli& cli) {
  const std::vector<exp::ExperimentSpec> specs = ref_specs();
  if (cli.shard.sharded()) {
    return run_shard(runner, "ref_sweep", specs, cli.shard, cli.out_dir);
  }
  std::printf("\nrunning reference sweep: %d trials "
              "(faults + keyspace, streaming checker live)...\n",
              total_trials(specs));
  const std::vector<exp::CellStats> cells =
      exp::aggregate(runner.run_all(specs));
  bool ok = true;
  std::printf("\n%-14s %-26s %-20s %-11s %-9s %s\n", "spec", "protocol",
              "fault plan / keys", "atomic", "streamed", "peak win");
  for (const exp::CellStats& c : cells) {
    const std::string axis = c.keyspace.multi()
                                 ? c.keyspace.to_string()
                                 : (c.fault_plan.empty() ? "-" : c.fault_plan);
    std::printf("%-14s %-26s %-20s %3d/%-7d %3d/%-5d %zu\n",
                c.spec_name.c_str(), c.protocol.c_str(), axis.c_str(),
                c.atomic_trials, c.trials, c.stream_atomic_trials, c.trials,
                c.stream_peak_window);
    ok = ok && c.matches_expectation() && c.stream_atomic_trials == c.trials;
  }
  std::printf("\nreference sweep atomic under the live checker: %s\n",
              ok ? "yes" : "NO!");
  return write_reports("ref_sweep", cli.out_dir, cells) && ok;
}

}  // namespace

int main(int argc, char** argv) {
  exp::SweepCli cli;
  std::string err;
  if (!exp::parse_sweep_cli(argc, argv, &cli, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    print_usage(argv[0]);
    return 2;
  }
  std::string which = "all";
  for (std::size_t i = 0; i < cli.extra.size(); ++i) {
    if (cli.extra[i] == "--sweep" && i + 1 < cli.extra.size()) {
      which = cli.extra[++i];
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n",
                   cli.extra[i].c_str());
      print_usage(argv[0]);
      return 2;
    }
  }
  if (cli.help) {
    print_usage(argv[0]);
    return 0;
  }
  if (which != "design" && which != "faults" && which != "ref" &&
      which != "all") {
    std::fprintf(stderr, "error: unknown sweep '%s'\n", which.c_str());
    print_usage(argv[0]);
    return 2;
  }

  exp::Runner::Options opts;
  opts.threads = cli.threads;
  opts.shard = cli.shard;
  const exp::Runner runner(opts);

  bool ok = true;
  if (which == "design" || which == "all") ok = run_design(runner, cli) && ok;
  if (which == "faults" || which == "all") ok = run_faults(runner, cli) && ok;
  if (which == "ref" || which == "all") ok = run_ref(runner, cli) && ok;
  return ok ? 0 : 1;
}
