// Quickstart: emulate a multi-writer atomic register on a simulated cluster,
// write from two writers, read it back, and machine-check the history.
//
//   $ ./examples/quickstart
//
// The register is the paper's W2R1 implementation (Algorithm 1 & 2): writes
// take two round-trips, reads take ONE -- the fastest multi-writer reads
// that atomicity permits (Table 1).
#include <cstdio>

#include "consistency/checkers.h"
#include "core/harness.h"
#include "protocols/protocols.h"

int main() {
  using namespace mwreg;

  // A cluster of 5 servers tolerating 1 crash, with 2 writers and 2 readers.
  // Fast reads require R < S/t - 2, i.e. 2 < 3: satisfied.
  ClusterConfig cfg;
  cfg.num_servers = 5;
  cfg.num_writers = 2;
  cfg.num_readers = 2;
  cfg.max_faulty = 1;
  std::printf("cluster: %s  (fast read feasible: %s)\n",
              cfg.to_string().c_str(),
              cfg.supports_fast_read() ? "yes" : "no");

  const Protocol* proto = protocol_by_name("fast-read-mw(W2R1)");
  SimHarness::Options opts;
  opts.cfg = cfg;
  opts.seed = 2026;
  SimHarness h(*proto, std::move(opts));

  // Two writers race, then both readers read.
  h.async_write(0, 100);
  h.async_write(1, 200);
  h.run();
  h.async_read(0, [](TaggedValue v) {
    std::printf("reader 0 got payload %lld with tag %s\n",
                static_cast<long long>(v.payload), v.tag.to_string().c_str());
  });
  h.run();
  h.async_read(1, [](TaggedValue v) {
    std::printf("reader 1 got payload %lld with tag %s\n",
                static_cast<long long>(v.payload), v.tag.to_string().c_str());
  });
  h.run();

  // One more sequential round: write then read must observe it.
  h.async_write(0, 300);
  h.run();
  h.async_read(1, [](TaggedValue v) {
    std::printf("reader 1 now sees %lld\n", static_cast<long long>(v.payload));
  });
  h.run();

  // Atomicity is not an aspiration, it is checked.
  const CheckResult res = check_tag_witness(h.history());
  std::printf("history (%zu ops) atomic: %s\n", h.history().size(),
              res.atomic ? "yes" : res.violation.c_str());
  return res.atomic ? 0 : 1;
}
