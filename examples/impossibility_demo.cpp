// A narrated replay of the paper's impossibility results.
//
//   $ ./examples/impossibility_demo
//
// Part 1 runs Theorem 1's three-phase chain argument against a natural
// fast-write candidate (majority-of-write-orders) and prints the concrete
// execution where it is forced to violate atomicity, verified by the
// exhaustive Wing-Gong checker.
// Part 2 shows the sieve (Section 4.2) surviving adversarial servers.
// Part 3 runs the Fig. 9 schedule against the real Algorithm 1 & 2 just
// above the fast-read bound.
#include <cstdio>

#include "chains/fastread_adversary.h"
#include "chains/sieve.h"
#include "chains/universal.h"
#include "chains/w1r2_engine.h"
#include "fullinfo/rules.h"

int main() {
  using namespace mwreg;

  std::printf("=== Part 1: Theorem 1 -- no fast-write (W1R2) implementation ===\n\n");
  const fullinfo::MajorityOrderRule rule;
  const int S = 4;
  std::printf("Candidate reader rule: '%s' on a cluster of %d servers.\n",
              rule.name().c_str(), S);
  std::printf("The engine replays the chain argument (Fig. 3):\n\n");

  const chains::Certificate cert = chains::prove_w1r2_impossible(rule, S);
  for (const std::string& line : cert.narrative) {
    std::printf("  %s\n", line.c_str());
  }
  if (!cert.found) {
    std::printf("\nUNEXPECTED: no violation found -- Theorem 1 disproved?!\n");
    return 1;
  }
  std::printf("\nThe violating execution (per-server receive orders):\n%s",
              cert.execution_dump.c_str());
  std::printf("\nIts operation history:\n%s", cert.history_dump.c_str());
  std::printf("\nWing-Gong verdict: %s\n", cert.wg_violation.c_str());
  std::printf("(checked %d executions; every structural indistinguishability\n"
              " link of Figs. 4-7 is verified by tests/chains_test)\n",
              cert.executions_checked);

  std::printf("\n=== Part 1b: the same theorem for ALL rules at once ===\n\n");
  const chains::UniversalResult uni = chains::prove_w1r2_universal(S);
  for (const std::string& line : uni.narrative) {
    std::printf("  %s\n", line.c_str());
  }

  std::printf("\n=== Part 2: the sieve (Section 4.2, Fig. 8) ===\n\n");
  std::printf("Now 4 of 8 servers blindly flip their write order when R2's\n"
              "first round arrives. The chain shortens but survives:\n\n");
  const chains::SieveResult sieve = chains::run_sieve(rule, 8, 4);
  for (const std::string& line : sieve.narrative) {
    std::printf("  %s\n", line.c_str());
  }

  std::printf("\n=== Part 3: the fast-read bound (Fig. 9, Section 5) ===\n\n");
  const chains::FastReadAdversaryResult above =
      chains::run_fastread_adversary(5, 1, 3);
  std::printf("S=5, t=1, R=3 (R >= S/t-2): the Fig. 9 schedule against the\n"
              "paper's own Algorithm 1 & 2 yields:\n%s\n",
              above.history_dump.c_str());
  std::printf("flip read returned %lld, stale read returned %lld -> %s\n",
              static_cast<long long>(above.flip_read_payload),
              static_cast<long long>(above.stale_read_payload),
              above.violation_found ? "new/old INVERSION (checked)"
                                    : "no violation?!");
  const chains::FastReadAdversaryResult below =
      chains::run_fastread_adversary(6, 1, 3);
  std::printf("\nS=6, t=1, R=3 (R < S/t-2): same schedule, %s.\n",
              below.violation_found ? "violation?!" : "history stays atomic");
  return (cert.found && uni.unsat && above.violation_found &&
          !below.violation_found) ? 0 : 1;
}
