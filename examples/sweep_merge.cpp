// sweep_merge: fold shard partial-aggregate artifacts into full sweep
// reports.
//
// Usage:
//   sweep_merge [--out DIR] partial...            merge and write reports
//   sweep_merge --describe partial...             print headers, verify decode
//
// Partials may be given in any order and may span several sweeps (they are
// grouped by the report stem stamped in their headers); each complete
// group renders <out>/<stem>.csv and <stem>.json byte-identical to the
// corresponding single-process run. Any malformed, truncated,
// version-mismatched, duplicated, or missing partial is a hard error with
// a nonzero exit — CI byte-diffs these reports, so a silent partial merge
// would defeat the gate.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "exp/aggregator.h"
#include "exp/cli.h"
#include "exp/partial.h"

namespace {

using namespace mwreg;

void print_usage(const char* prog) {
  std::printf("usage: %s [--out DIR] [--describe] partial...\n", prog);
}

}  // namespace

int main(int argc, char** argv) {
  exp::SweepCli cli;
  std::string err;
  if (!exp::parse_sweep_cli(argc, argv, &cli, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    print_usage(argv[0]);
    return 2;
  }
  if (cli.help) {
    print_usage(argv[0]);
    return 0;
  }
  bool describe = false;
  std::vector<std::string> paths;
  for (const std::string& arg : cli.extra) {
    if (arg == "--describe") {
      describe = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      print_usage(argv[0]);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "error: no partial files given\n");
    print_usage(argv[0]);
    return 2;
  }

  // Load every partial; group by the report stem in the header.
  std::map<std::string, std::vector<exp::Partial>> groups;
  for (const std::string& path : paths) {
    exp::Partial p;
    if (!exp::load_partial(path, &p, &err)) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 1;
    }
    if (describe) {
      std::printf(
          "{\"file\":\"%s\",\"version\":%u,\"name\":\"%s\",\"shard\":%d,"
          "\"of\":%d,\"trials\":%zu,\"total_trials\":%llu,"
          "\"expansion_digest\":\"%016llx\"}\n",
          exp::json_escape(path).c_str(), exp::kPartialVersion,
          exp::json_escape(p.meta.name).c_str(), p.meta.shard.index,
          p.meta.shard.count, p.results.size(),
          static_cast<unsigned long long>(p.meta.total_trials),
          static_cast<unsigned long long>(p.meta.expansion_digest));
    }
    groups[p.meta.name].push_back(std::move(p));
  }
  if (describe) return 0;

  bool ok = true;
  for (const auto& entry : groups) {
    const std::string& stem = entry.first;
    std::vector<exp::TrialResult> merged;
    if (!exp::merge_partials(entry.second, &merged, &err)) {
      std::fprintf(stderr, "error: %s: %s\n", stem.c_str(), err.c_str());
      ok = false;
      continue;
    }
    const std::vector<exp::CellStats> cells = exp::aggregate(merged);
    const bool csv_ok = exp::write_report(
        exp::join_path(cli.out_dir, stem + ".csv"), exp::to_csv(cells));
    const bool json_ok = exp::write_report(
        exp::join_path(cli.out_dir, stem + ".json"), exp::to_json(cells));
    ok = ok && csv_ok && json_ok;
    if (csv_ok && json_ok) {
      std::printf("%s: merged %zu partials (%zu trials) -> %s.csv / .json "
                  "(%zu cells)\n",
                  stem.c_str(), entry.second.size(), merged.size(),
                  stem.c_str(), cells.size());
    }
  }
  return ok ? 0 : 1;
}
