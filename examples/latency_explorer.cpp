// Latency explorer: what does each cell of the design space cost on a
// geo-replicated deployment (the Cassandra-style setting that motivates the
// paper's Section 1)?
//
//   $ ./examples/latency_explorer
//
// Servers are spread across three sites; clients sit at site 0. The fast
// dimension of each protocol shows up directly as halved p50 latency.
#include <cstdio>
#include <memory>

#include "consistency/checkers.h"
#include "core/harness.h"
#include "core/workload.h"
#include "protocols/protocols.h"

int main() {
  using namespace mwreg;

  struct Cell {
    const char* proto;
    ClusterConfig cfg;
    const char* when;
  };
  const Cell cells[] = {
      {"mw-abd(W2R2)", ClusterConfig{6, 2, 3, 2}, "always (t < S/2)"},
      {"fast-read-mw(W2R1)", ClusterConfig{6, 2, 3, 1}, "R < S/t - 2"},
      {"abd-swmr(W1R2)", ClusterConfig{6, 1, 3, 2}, "single writer"},
      {"fast-swmr(W1R1)", ClusterConfig{6, 1, 3, 1}, "single writer, R < S/t - 2"},
  };

  std::printf("%-22s %-28s %-11s %-11s %-11s %-11s %s\n", "protocol",
              "feasible when", "write p50", "read p50", "write p99",
              "read p99", "atomic");
  for (const Cell& c : cells) {
    // Sites: 0 = us-east, 1 = us-west, 2 = eu. RTTs in milliseconds.
    std::vector<std::vector<double>> rtt{{2, 65, 85}, {65, 2, 145},
                                         {85, 145, 2}};
    std::vector<int> site(static_cast<std::size_t>(c.cfg.total_nodes()), 0);
    for (int s = 0; s < c.cfg.s(); ++s) site[static_cast<std::size_t>(s)] = s % 3;

    SimHarness::Options o;
    o.cfg = c.cfg;
    o.seed = 11;
    o.delay = std::make_unique<GeoDelay>(std::move(rtt), std::move(site));
    SimHarness h(*protocol_by_name(c.proto), std::move(o));

    WorkloadOptions w;
    w.ops_per_writer = 40;
    w.ops_per_reader = 40;
    w.think_hi = 20 * kMillisecond;
    run_random_workload(h, w);

    const LatencyStats ws = latency_of(h.history(), OpKind::kWrite);
    const LatencyStats rs = latency_of(h.history(), OpKind::kRead);
    const bool atomic = check_tag_witness(h.history()).atomic;
    std::printf("%-22s %-28s %8.1fms %8.1fms %8.1fms %8.1fms   %s\n", c.proto,
                c.when, ws.p50_ms, rs.p50_ms, ws.p99_ms, rs.p99_ms,
                atomic ? "yes" : "NO");
  }
  std::printf(
      "\nReading the table: a fast dimension costs one wide-area round-trip\n"
      "instead of two. The paper's W2R1 implementation buys fast reads for\n"
      "multi-writer registers whenever R < S/t - 2; Theorem 1 says the\n"
      "symmetric trade (fast multi-writer writes) cannot be bought at all.\n");
  return 0;
}
