// A replicated key-value store built on multi-writer atomic registers.
//
// Each key is an independent atomic register (atomicity is local, Section
// 2.1, so per-key registers compose into a linearizable map). The store is
// ONE SimHarness with a multi-key keyspace: every key is its own quorum
// group sharded over physical replicas, clients are table-driven slots of
// that harness, and every per-key history is machine-checked. (Earlier
// revisions emulated this with one harness per key and hand-stitched
// virtual time; the keyspace API makes the composition first-class.)
//
//   $ ./examples/replicated_kv
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "consistency/checkers.h"
#include "core/harness.h"
#include "core/workload.h"
#include "protocols/protocols.h"

namespace {

using namespace mwreg;

/// Name -> key index map over a keyspace harness, with one-op-per-client
/// well-formedness (Section 2.1) enforced by settling when a client is
/// still busy.
class KvStore {
 public:
  KvStore(SimHarness& h, std::vector<std::string> keys)
      : h_(h),
        keys_(std::move(keys)),
        writer_busy_(static_cast<std::size_t>(h.cfg().w())),
        reader_busy_(static_cast<std::size_t>(h.cfg().r())) {}

  void put(const std::string& key, int writer, std::int64_t value) {
    if (writer_busy_[static_cast<std::size_t>(writer)]) settle();
    writer_busy_[static_cast<std::size_t>(writer)] = true;
    h_.async_write_key(writer, key_of(key), value, [this, writer]() {
      writer_busy_[static_cast<std::size_t>(writer)] = false;
    });
  }

  void get(const std::string& key, int reader,
           std::function<void(TaggedValue)> done = nullptr) {
    if (reader_busy_[static_cast<std::size_t>(reader)]) settle();
    reader_busy_[static_cast<std::size_t>(reader)] = true;
    h_.async_read_key(reader, key_of(key),
                      [this, reader, done = std::move(done)](TaggedValue v) {
                        reader_busy_[static_cast<std::size_t>(reader)] = false;
                        if (done) done(v);
                      });
  }

  /// Run every pending operation to completion.
  void settle() { h_.run(); }

  bool check_all(std::string* why) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      const int k = static_cast<int>(i);
      const CheckResult tag = check_tag_witness(h_.key_history(k));
      if (!tag.atomic) {
        *why = "key '" + keys_[i] + "': " + tag.violation;
        return false;
      }
      const CheckResult graph = check_unique_value_graph(h_.key_history(k));
      if (!graph.atomic) {
        *why = "key '" + keys_[i] + "': " + graph.violation;
        return false;
      }
    }
    return true;
  }

  std::size_t total_ops() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      n += h_.key_history(static_cast<int>(i)).completed_count();
    }
    return n;
  }

 private:
  std::uint32_t key_of(const std::string& key) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == key) return static_cast<std::uint32_t>(i);
    }
    std::abort();
  }

  SimHarness& h_;
  std::vector<std::string> keys_;
  std::vector<bool> writer_busy_;
  std::vector<bool> reader_busy_;
};

}  // namespace

int main() {
  const std::vector<std::string> keys{"users", "orders", "carts", "stock"};
  const Protocol* proto = protocol_by_name("mw-abd(W2R2)");

  SimHarness::Options o;
  o.cfg = ClusterConfig{5, 3, 3, 2};  // 5 replicas per key, survives 2
  o.keyspace =
      KeyspaceConfig{static_cast<int>(keys.size()), /*shards=*/2, /*zipf=*/0};
  o.seed = 77;
  SimHarness h(*proto, std::move(o));
  KvStore store(h, keys);

  // A mixed workload: 3 writers and 3 readers hammer random keys.
  Rng rng(1234);
  int puts = 0, gets = 0;
  for (int round = 0; round < 40; ++round) {
    const std::string& key = keys[rng.next_below(keys.size())];
    if (rng.next_bool(0.4)) {
      store.put(key, static_cast<int>(rng.next_below(3)),
                round * 100 + static_cast<std::int64_t>(rng.next_below(100)));
      ++puts;
    } else {
      store.get(key, static_cast<int>(rng.next_below(3)));
      ++gets;
    }
    if (round % 5 == 4) store.settle();  // batch a few concurrent ops
  }
  store.settle();

  std::printf("replicated KV store: %d puts, %d gets across %zu keys\n", puts,
              gets, keys.size());

  // Pile on a Zipfian closed-loop batch through the same harness — the
  // keyspace API's bulk driver, reusing the warm table.
  WorkloadOptions w;
  w.ops_per_writer = 30;
  w.ops_per_reader = 30;
  run_keyspace_workload(h, w);
  std::printf("completed operations: %zu\n", store.total_ops());

  std::string why;
  const bool ok = store.check_all(&why);
  std::printf("all per-key histories atomic: %s\n", ok ? "yes" : why.c_str());

  // Read-your-writes smoke check on one key.
  store.put("users", 0, 424242);
  store.settle();
  std::int64_t got = -1;
  store.get("users", 2, [&](mwreg::TaggedValue v) { got = v.payload; });
  store.settle();
  std::printf("read-your-writes on 'users': wrote 424242, read %lld\n",
              static_cast<long long>(got));
  return ok && got == 424242 ? 0 : 1;
}
