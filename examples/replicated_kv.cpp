// A replicated key-value store built on multi-writer atomic registers.
//
// Each key is an independent atomic register (atomicity is local, Section
// 2.1, so per-key registers compose into a linearizable map). Keys are
// sharded across register instances; a mixed workload of puts and gets runs
// against them, and every per-key history is machine-checked.
//
//   $ ./examples/replicated_kv
#include <cstdio>
#include <map>
#include <set>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "consistency/checkers.h"
#include "core/harness.h"
#include "core/workload.h"
#include "protocols/protocols.h"

namespace {

using namespace mwreg;

/// One key = one emulated register on its own (simulated) replica group.
class KvStore {
 public:
  KvStore(std::vector<std::string> keys, ClusterConfig cfg, std::uint64_t seed)
      : keys_(std::move(keys)) {
    const Protocol* proto = protocol_by_name("mw-abd(W2R2)");
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      SimHarness::Options o;
      o.cfg = cfg;
      o.seed = seed + i;
      shards_.push_back(std::make_unique<SimHarness>(*proto, std::move(o)));
    }
  }

  // A client runs one operation at a time (well-formedness, Section 2.1):
  // when the chosen client is still busy in this batch, the batch settles
  // first. `busy_` tracks (shard, client) pairs with an outstanding op.

  void put(const std::string& key, int writer, std::int64_t value) {
    claim(key, /*is_writer=*/true, writer);
    shard(key).async_write(writer, value);
  }

  void get(const std::string& key, int reader,
           std::function<void(TaggedValue)> done = nullptr) {
    claim(key, /*is_writer=*/false, reader);
    shard(key).async_read(reader, std::move(done));
  }

  /// Run all shards' pending operations to completion.
  void settle() {
    for (auto& s : shards_) s->run();
    busy_.clear();
  }

  bool check_all(std::string* why) const {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const CheckResult r = check_tag_witness(shards_[i]->history());
      if (!r.atomic) {
        *why = "key '" + keys_[i] + "': " + r.violation;
        return false;
      }
    }
    return true;
  }

  std::size_t total_ops() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s->history().completed_count();
    return n;
  }

 private:
  SimHarness& shard(const std::string& key) {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == key) return *shards_[i];
    }
    std::abort();
  }

  void claim(const std::string& key, bool is_writer, int client) {
    const auto slot = std::make_tuple(key, is_writer, client);
    if (!busy_.insert(slot).second) {
      settle();
      busy_.insert(slot);
    }
  }

  std::vector<std::string> keys_;
  std::vector<std::unique_ptr<SimHarness>> shards_;
  std::set<std::tuple<std::string, bool, int>> busy_;
};

}  // namespace

int main() {
  const std::vector<std::string> keys{"users", "orders", "carts", "stock"};
  const ClusterConfig cfg{5, 3, 3, 2};  // 5 replicas per key, survives 2
  KvStore store(keys, cfg, 77);

  // A mixed workload: 3 writers and 3 readers hammer random keys.
  Rng rng(1234);
  int puts = 0, gets = 0;
  for (int round = 0; round < 40; ++round) {
    const std::string& key = keys[rng.next_below(keys.size())];
    if (rng.next_bool(0.4)) {
      store.put(key, static_cast<int>(rng.next_below(3)),
                round * 100 + static_cast<std::int64_t>(rng.next_below(100)));
      ++puts;
    } else {
      store.get(key, static_cast<int>(rng.next_below(3)));
      ++gets;
    }
    if (round % 5 == 4) store.settle();  // batch a few concurrent ops
  }
  store.settle();

  std::printf("replicated KV store: %d puts, %d gets across %zu keys\n", puts,
              gets, keys.size());
  std::printf("completed operations: %zu\n", store.total_ops());

  std::string why;
  const bool ok = store.check_all(&why);
  std::printf("all per-key histories atomic: %s\n", ok ? "yes" : why.c_str());

  // Read-your-writes smoke check on one key.
  store.put("users", 0, 424242);
  store.settle();
  std::int64_t got = -1;
  store.get("users", 2, [&](mwreg::TaggedValue v) { got = v.payload; });
  store.settle();
  std::printf("read-your-writes on 'users': wrote 424242, read %lld\n",
              static_cast<long long>(got));
  return ok && got == 424242 ? 0 : 1;
}
