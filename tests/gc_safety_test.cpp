// Safety of valuevector garbage collection + delta read acks (DESIGN.md
// section 6): the GC'd protocol must be observationally identical to the
// full-valuevector protocol — same histories, same verdicts — while server
// state and read-ack bytes stay O(active values). The parity tests exploit
// that gc on/off exchanges the same NUMBER of messages in the same order
// (only payload contents shrink), so with equal seeds the two protocols
// produce bit-identical histories.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "consistency/checkers.h"
#include "core/harness.h"
#include "core/workload.h"
#include "exp/runner.h"
#include "fuzz/schedule_fuzzer.h"
#include "protocols/fastread_clients.h"
#include "protocols/fastread_server.h"
#include "protocols/protocols.h"
#include "sim/fault_plan.h"

namespace mwreg {
namespace {

// GC is the default since the PR 7 flip; the no-GC ablation stays
// registered precisely so this parity pin keeps a reference side.
constexpr const char* kGcOff = "fast-read-mw-nogc(W2R1)";
constexpr const char* kGcOn = "fast-read-mw(W2R1)";

SimHarness make_harness(const char* proto, const ClusterConfig& cfg,
                        std::uint64_t seed) {
  SimHarness::Options o;
  o.cfg = cfg;
  o.seed = seed;
  return SimHarness(*protocol_by_name(proto), std::move(o));
}

// ---------- observational parity: GC on/off, faults and all ----------

TEST(GcParity, HistoriesIdenticalAcrossCannedFaultScenarios) {
  const ClusterConfig cfg{7, 2, 3, 1};
  ASSERT_TRUE(cfg.supports_fast_read());
  std::vector<FaultPlan> plans = scenarios::all();
  plans.push_back(FaultPlan{});  // fault-free
  for (const FaultPlan& plan : plans) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      SimHarness off = make_harness(kGcOff, cfg, seed);
      SimHarness on = make_harness(kGcOn, cfg, seed);
      if (!plan.empty()) {
        off.install_fault_plan(plan);
        on.install_fault_plan(plan);
      }
      WorkloadOptions w;
      w.ops_per_writer = 10;
      w.ops_per_reader = 10;
      run_random_workload(off, w);
      run_random_workload(on, w);

      const std::string label =
          (plan.empty() ? std::string("fault-free") : plan.name) + " seed " +
          std::to_string(seed);
      // Bit-identical histories: same ops, same returned values, same
      // virtual-time stamps. This subsumes MWA2/atomicity verdict parity.
      EXPECT_EQ(off.history().to_string(), on.history().to_string()) << label;
      EXPECT_EQ(off.net().stats().sent, on.net().stats().sent) << label;
      EXPECT_EQ(off.sim().executed(), on.sim().executed()) << label;
      EXPECT_EQ(check_tag_witness(off.history()).atomic,
                check_tag_witness(on.history()).atomic)
          << label;
      // The point of the exercise: same behavior, never more bytes (the
      // margin is slim at 10 ops/client; GcBytes below pins the asymptotic
      // gap on a long run).
      EXPECT_LE(on.net().stats().bytes_sent, off.net().stats().bytes_sent)
          << label;
    }
  }
}

TEST(GcParity, ScheduleFuzzerVerdictsIdenticalGcOnOff) {
  fuzz::FuzzOptions opts;
  opts.cfg = ClusterConfig{7, 2, 3, 1};
  opts.trials = 25;
  opts.ops_per_client = 6;
  opts.seed = 11;
  opts.expect = "atomic";

  opts.protocol = kGcOff;
  const fuzz::FuzzReport off = fuzz::run_schedule_fuzzer(opts);
  opts.protocol = kGcOn;
  const fuzz::FuzzReport on = fuzz::run_schedule_fuzzer(opts);

  EXPECT_EQ(off.trials, on.trials);
  EXPECT_EQ(off.passed, on.passed);
  EXPECT_EQ(off.violations, on.violations);
  EXPECT_EQ(off.total_ops, on.total_ops);
  EXPECT_EQ(off.pending_ops, on.pending_ops);
  EXPECT_EQ(on.violations, 0) << on.first_violation;
}

TEST(GcParity, RunnerVerdictsMatchAcrossScenarioSweep) {
  exp::ExperimentSpec spec;
  spec.name = "gc-parity";
  spec.protocols = {kGcOn};
  spec.clusters = {ClusterConfig{7, 2, 3, 1}, ClusterConfig{9, 2, 2, 2}};
  spec.fault_plans = scenarios::all();
  spec.seeds = 2;
  spec.workload.ops_per_writer = 8;
  spec.workload.ops_per_reader = 8;
  const exp::Runner runner(exp::Runner::Options{4});
  for (const exp::TrialResult& tr : runner.run(spec)) {
    EXPECT_TRUE(tr.tag_atomic)
        << tr.protocol << " " << tr.cfg.to_string() << " " << tr.fault_plan
        << " seed " << tr.user_seed << ": " << tr.violation;
  }
}

// ---------- a hand-wired cluster exposing the concrete server/reader ----

/// Mini W2R2 fast-read cluster with direct access to FastReadServer /
/// FastReader internals (SimHarness only exposes the Process interface).
struct ManualCluster {
  ClusterConfig cfg{5, 2, 2, 1};
  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<FastReadServer>> servers;
  std::vector<std::unique_ptr<QueryThenWriter>> writers;
  std::vector<std::unique_ptr<FastReader>> readers;

  explicit ManualCluster(bool gc)
      : net(sim, std::make_unique<ConstantDelay>(kMillisecond), Rng(7)) {
    FastReadServer::Options so;
    so.gc_enabled = gc;
    for (NodeId s : cfg.server_ids()) {
      servers.push_back(std::make_unique<FastReadServer>(s, net, cfg, so));
    }
    for (NodeId w : cfg.writer_ids()) {
      writers.push_back(std::make_unique<QueryThenWriter>(w, net, cfg));
    }
    for (NodeId r : cfg.reader_ids()) {
      readers.push_back(std::make_unique<FastReader>(r, net, cfg, gc));
    }
  }

  Tag write(int wi, std::int64_t payload) {
    Tag tag{};
    writers[static_cast<std::size_t>(wi)]->write(payload,
                                                 [&tag](Tag t) { tag = t; });
    sim.run();
    return tag;
  }

  TaggedValue read(int ri) {
    TaggedValue got{Tag{-1, -1}, 0};
    readers[static_cast<std::size_t>(ri)]->read(
        [&got](TaggedValue v) { got = v; });
    sim.run();
    return got;
  }
};

TEST(GcCollection, ValuevectorStaysBoundedWhileAblationGrows) {
  ManualCluster gc(true);
  ManualCluster off(false);
  const int kOps = 120;
  for (int i = 1; i <= kOps; ++i) {
    EXPECT_EQ(gc.write(i % 2, 100 + i).ts, off.write(i % 2, 100 + i).ts);
    EXPECT_EQ(gc.read(i % 2), off.read(i % 2));  // parity ride-along
  }
  for (int s = 0; s < gc.cfg.s(); ++s) {
    // With both readers reading continuously, the floor tracks the write
    // frontier and the valuevector holds only the handful of values still
    // in flight — two orders of magnitude below the ablation's history.
    EXPECT_LE(gc.servers[static_cast<std::size_t>(s)]->valuevector_size(), 8u)
        << "server " << s;
    EXPECT_GT(gc.servers[static_cast<std::size_t>(s)]->entries_pruned(), 100u);
    EXPECT_GT(gc.servers[static_cast<std::size_t>(s)]->gc_floor().ts, 0);
    // The ablation server keeps every value ever written (plus bottom).
    EXPECT_EQ(off.servers[static_cast<std::size_t>(s)]->valuevector_size(),
              static_cast<std::size_t>(kOps) + 1);
  }
  // Reader-side caches mirror the bounded server state.
  for (int r = 0; r < gc.cfg.r(); ++r) {
    for (int s = 0; s < gc.cfg.s(); ++s) {
      EXPECT_LE(gc.readers[static_cast<std::size_t>(r)]->cache_size(s), 8u);
    }
  }
  EXPECT_LT(gc.net.stats().bytes_sent, off.net.stats().bytes_sent / 4)
      << "delta acks should cut bytes-on-wire by far more than 4x here";
}

TEST(GcCollection, FloorNeverPassesTheMinimumReaderWatermark) {
  ManualCluster gc(true);
  for (int i = 1; i <= 40; ++i) {
    gc.write(i % 2, i);
    gc.read(0);
    // Reader 1 lags, then stops reading entirely: its watermark is older.
    if (i % 4 == 0 && i <= 30) gc.read(1);
  }
  const Tag w0 = gc.readers[0]->watermark().tag;
  const Tag w1 = gc.readers[1]->watermark().tag;
  const Tag min_wm = std::min(w0, w1);
  EXPECT_LT(w1, w0) << "reader 1 should genuinely lag in this schedule";
  for (const auto& s : gc.servers) {
    EXPECT_LE(s->gc_floor(), min_wm)
        << "a server pruned above the minimum confirmed watermark";
  }
}

TEST(GcCollection, CrashedThenRecoveredReaderKeepsItsReturnableValues) {
  ManualCluster gc(true);
  // Warm up: both readers read, watermarks and the floor advance.
  for (int i = 1; i <= 10; ++i) {
    gc.write(i % 2, i);
    gc.read(0);
    gc.read(1);
  }
  const TaggedValue pre_crash = gc.read(0);
  const Tag frozen_wm = gc.readers[0]->watermark().tag;

  // Reader 0 drops off the network. Its confirmed watermark is frozen; the
  // GC floor must freeze with it even though reader 1 keeps advancing.
  const NodeId r0 = gc.cfg.reader_id(0);
  gc.net.crash(r0);
  for (int i = 11; i <= 60; ++i) {
    gc.write(i % 2, i);
    gc.read(1);
  }
  for (const auto& s : gc.servers) {
    EXPECT_LE(s->gc_floor(), frozen_wm)
        << "GC advanced past a crashed reader's watermark";
    EXPECT_GT(s->entries_pruned(), 0u);
  }

  // The reader rejoins (state intact, network-isolation model) and reads:
  // it must never observe a state that makes it return below its own
  // watermark — the value it could still legally return was never pruned.
  gc.net.recover(r0);
  const TaggedValue post_recover = gc.read(0);
  EXPECT_GE(post_recover.tag, pre_crash.tag)
      << "recovered reader went back in time: read " << post_recover.to_string()
      << " after " << pre_crash.to_string();
  EXPECT_GE(post_recover.tag, frozen_wm);
}

// ---------- bytes-on-wire: bounded vs. linearly growing read acks ----------

TEST(GcBytes, ReadAckBytesPlateauWithGcAndGrowWithoutIt) {
  // Record every read-ack payload size; compare an early window against a
  // late one. The simulation is deterministic, so these are exact counts.
  auto ack_sizes = [](const char* proto, std::uint64_t seed) {
    SimHarness h = make_harness(proto, ClusterConfig{5, 2, 2, 1}, seed);
    std::vector<std::size_t> sizes;
    h.net().set_delivery_hook([&sizes](const Frame& m, Time, Time) {
      if (m.type == kFrReadAck || m.type == kFrReadAckDelta) {
        sizes.push_back(m.payload.size());
      }
    });
    WorkloadOptions w;
    w.ops_per_writer = 120;
    w.ops_per_reader = 120;
    run_random_workload(h, w);
    return sizes;
  };
  auto window_mean = [](const std::vector<std::size_t>& v, double lo,
                        double hi) {
    const std::size_t a = static_cast<std::size_t>(v.size() * lo);
    const std::size_t b = static_cast<std::size_t>(v.size() * hi);
    if (b <= a) return 0.0;
    double sum = 0;
    for (std::size_t i = a; i < b; ++i) sum += static_cast<double>(v[i]);
    return sum / static_cast<double>(b - a);
  };

  const std::vector<std::size_t> off = ack_sizes(kGcOff, 5);
  const std::vector<std::size_t> on = ack_sizes(kGcOn, 5);
  ASSERT_GT(off.size(), 100u);
  ASSERT_GT(on.size(), 100u);

  const double off_growth = window_mean(off, 0.75, 1.0) /
                            window_mean(off, 0.25, 0.5);
  const double on_growth = window_mean(on, 0.75, 1.0) /
                           window_mean(on, 0.25, 0.5);
  // Full acks re-encode every value ever written: the late window must be
  // close to 3x the early one ((0.75+1)/2 over (0.25+0.5)/2 of a linear
  // ramp). Delta acks carry only in-flight values: flat after warmup.
  EXPECT_GT(off_growth, 2.0) << "ablation read acks stopped growing?";
  EXPECT_LT(on_growth, 1.3) << "GC+delta read acks kept growing";
}

}  // namespace
}  // namespace mwreg
