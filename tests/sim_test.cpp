// Unit tests for the discrete-event simulator and network substrate.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/delay_model.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace mwreg {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedSchedulingRuns) {
  Simulator sim;
  int hits = 0;
  sim.schedule_at(1, [&] {
    ++hits;
    sim.schedule_after(5, [&] {
      ++hits;
      sim.schedule_after(5, [&] { ++hits; });
    });
  });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(hits, 3);
  EXPECT_EQ(sim.now(), 11);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  Time seen = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_at(5, [&] { seen = sim.now(); });  // "5" is in the past
  });
  sim.run();
  EXPECT_EQ(seen, 100);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int hits = 0;
  sim.schedule_at(10, [&] { ++hits; });
  sim.schedule_at(20, [&] { ++hits; });
  sim.schedule_at(30, [&] { ++hits; });
  EXPECT_EQ(sim.run_until(20), 2u);
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(sim.now(), 20);
  sim.run();
  EXPECT_EQ(hits, 3);
}

TEST(Simulator, RunUntilExecutesEventsExactlyAtDeadline) {
  Simulator sim;
  std::vector<int> hits;
  sim.schedule_at(10, [&] { hits.push_back(10); });
  sim.schedule_at(20, [&] { hits.push_back(20); });  // exactly at deadline
  sim.schedule_at(21, [&] { hits.push_back(21); });  // past it
  EXPECT_EQ(sim.run_until(20), 2u);
  EXPECT_EQ(hits, (std::vector<int>{10, 20}));
  EXPECT_EQ(sim.now(), 20);
  // The past-deadline event survives in the queue, untouched.
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.idle());
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(hits.back(), 21);
}

TEST(Simulator, RunUntilAdvancesTimeWithEmptyQueueAndNeverRewinds) {
  Simulator sim;
  EXPECT_EQ(sim.run_until(50), 0u);
  EXPECT_EQ(sim.now(), 50);  // idle time still advances to the deadline
  // A deadline in the past must not rewind the clock.
  EXPECT_EQ(sim.run_until(10), 0u);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, RunUntilExecutesEventsSpawnedAtTheDeadline) {
  Simulator sim;
  int hits = 0;
  sim.schedule_at(20, [&] {
    ++hits;
    sim.schedule_at(20, [&] { ++hits; });  // same-time follow-up
    sim.schedule_at(21, [&] { ++hits; });  // past the deadline
  });
  EXPECT_EQ(sim.run_until(20), 2u);
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, ScheduleAtClampsPastTimesToNowInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(100, [&] {
    // All three are in the past; they clamp to now()=100 and must run
    // after this event in insertion order (the (time, seq) tie-break).
    sim.schedule_at(5, [&] { order.push_back(1); });
    sim.schedule_at(3, [&] { order.push_back(2); });
    sim.schedule_at(0, [&] { order.push_back(3); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, SlabRecyclesSlotsSteadyState) {
  Simulator sim;
  // A long self-rescheduling chain keeps exactly one event pending; after
  // the first chunk is allocated the engine must not allocate again.
  int remaining = 10'000;
  std::function<void()> tick = [&] {
    if (--remaining > 0) sim.schedule_after(1, tick);
  };
  sim.schedule_at(0, tick);
  const std::uint64_t warm = sim.allocations();
  EXPECT_EQ(sim.run(), 10'000u);
  EXPECT_EQ(sim.allocations(), warm);
  EXPECT_EQ(sim.alloc_stats().slab_chunks, 1u);
}

TEST(Simulator, OversizedClosuresSpillButStillRun) {
  Simulator sim;
  // A capture bigger than the inline budget takes the heap-spill path.
  struct Huge {
    char bytes[Simulator::kInlineEventBytes + 64] = {};
  };
  Huge big;
  big.bytes[0] = 42;
  int seen = 0;
  sim.schedule_at(1, [big, &seen] { seen = big.bytes[0]; });
  EXPECT_EQ(sim.alloc_stats().heap_spills, 1u);
  sim.run();
  EXPECT_EQ(seen, 42);
}

TEST(Simulator, ThrowingClosureIsDestroyedAndEngineStaysUsable) {
  Simulator sim;
  auto token = std::make_shared<int>(1);
  sim.schedule_at(1, [token] { throw std::runtime_error("boom"); });
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_THROW(sim.step(), std::runtime_error);
  // The closure was destroyed during unwind and its slot recycled cleanly.
  EXPECT_EQ(token.use_count(), 1);
  int hits = 0;
  sim.schedule_at(2, [&] { ++hits; });
  sim.run();
  EXPECT_EQ(hits, 1);
}

TEST(Simulator, DestroysUnexecutedEventsCleanly) {
  // Events left in the queue when the simulator dies (run_until stopping
  // short) must have their closures destroyed, not leaked: the shared_ptr
  // use count observes the destruction.
  auto token = std::make_shared<int>(7);
  {
    Simulator sim;
    sim.schedule_at(100, [token] { (void)*token; });
    sim.schedule_at(200, [token] { (void)*token; });
    EXPECT_EQ(sim.run_until(50), 0u);
    EXPECT_EQ(token.use_count(), 3);
  }
  EXPECT_EQ(token.use_count(), 1);
}

// ---------- Network ----------

class Recorder final : public Process {
 public:
  Recorder(NodeId id, Network& net) : Process(id, net) {}
  void on_message(const Frame& m) override {
    Message copy;
    copy.src = m.src;
    copy.dst = m.dst;
    copy.type = m.type;
    copy.key = m.key;
    copy.rpc_id = m.rpc_id;
    copy.payload.assign(m.payload.begin(), m.payload.end());
    received.push_back(std::move(copy));
    times.push_back(sim().now());
  }
  std::vector<Message> received;
  std::vector<Time> times;

  void post(NodeId dst, MsgType type) { send(dst, type, 0, {}); }
};

struct Rig {
  explicit Rig(std::unique_ptr<DelayModel> delay, bool fifo = false,
               std::uint64_t seed = 1)
      : net(sim, std::move(delay), Rng(seed), fifo), a(0, net), b(1, net) {}
  Simulator sim;
  Network net;
  Recorder a, b;
};

TEST(Network, DeliversWithConstantDelay) {
  Rig rig(std::make_unique<ConstantDelay>(100));
  rig.a.post(1, 7);
  rig.sim.run();
  ASSERT_EQ(rig.b.received.size(), 1u);
  EXPECT_EQ(rig.b.received[0].type, 7u);
  EXPECT_EQ(rig.b.times[0], 100);
  EXPECT_EQ(rig.net.stats().delivered, 1u);
}

TEST(Network, CrashedDestinationDropsMessages) {
  Rig rig(std::make_unique<ConstantDelay>(10));
  rig.net.crash(1);
  rig.a.post(1, 1);
  rig.sim.run();
  EXPECT_TRUE(rig.b.received.empty());
  EXPECT_EQ(rig.net.stats().to_crashed, 1u);
}

TEST(Network, CrashedSourceSendsNothing) {
  Rig rig(std::make_unique<ConstantDelay>(10));
  rig.net.crash(0);
  rig.a.post(1, 1);
  rig.sim.run();
  EXPECT_TRUE(rig.b.received.empty());
  EXPECT_EQ(rig.net.stats().sent, 1u);
  EXPECT_EQ(rig.net.stats().from_crashed, 1u);
}

TEST(Network, RecoverRestoresDeliveryBothDirections) {
  Rig rig(std::make_unique<ConstantDelay>(10));
  rig.net.crash(1);
  rig.a.post(1, 1);  // dropped: dst crashed
  rig.sim.run();
  rig.net.recover(1);
  rig.a.post(1, 2);  // delivered after recovery
  rig.sim.run();
  ASSERT_EQ(rig.b.received.size(), 1u);
  EXPECT_EQ(rig.b.received[0].type, 2u);

  rig.net.crash(0);
  rig.a.post(1, 3);  // dropped: src crashed
  rig.sim.run();
  rig.net.recover(0);
  rig.a.post(1, 4);
  rig.sim.run();
  ASSERT_EQ(rig.b.received.size(), 2u);
  EXPECT_EQ(rig.b.received[1].type, 4u);
  EXPECT_EQ(rig.net.stats().to_crashed, 1u);
  EXPECT_EQ(rig.net.stats().from_crashed, 1u);
}

/// The NetworkStats invariant documented in network.h: at quiescence every
/// sent message is delivered, parked, dropped at exactly one crash check,
/// or discarded for want of an attached destination process.
void expect_stats_invariant(const NetworkStats& s) {
  EXPECT_EQ(s.sent, s.delivered + s.held + s.to_crashed + s.from_crashed +
                        s.dropped_unattached);
}

TEST(Network, UnattachedDestinationCountsAsDroppedNotDelivered) {
  // Node 2 has no attached process: the message is discarded at delivery
  // time, counted in dropped_unattached, and the conservation invariant
  // still balances.
  Rig rig(std::make_unique<ConstantDelay>(10));
  rig.a.post(2, 1);
  rig.a.post(1, 2);
  rig.sim.run();
  EXPECT_EQ(rig.b.received.size(), 1u);
  EXPECT_EQ(rig.net.stats().delivered, 1u);
  EXPECT_EQ(rig.net.stats().dropped_unattached, 1u);
  expect_stats_invariant(rig.net.stats());
}

TEST(Network, StatsInvariantAcrossFaultScenarios) {
  Rig rig(std::make_unique<ConstantDelay>(10));
  rig.a.post(1, 1);  // delivered
  rig.sim.run();
  expect_stats_invariant(rig.net.stats());

  rig.net.block_link(0, 1);
  rig.a.post(1, 2);  // held
  rig.sim.run();
  expect_stats_invariant(rig.net.stats());

  rig.net.crash(0);
  rig.a.post(1, 3);  // dropped at the source check
  rig.b.post(0, 4);  // dropped at the destination check
  rig.sim.run();
  const NetworkStats& s = rig.net.stats();
  EXPECT_EQ(s.sent, 4u);
  EXPECT_EQ(s.delivered, 1u);
  EXPECT_EQ(s.held, 1u);
  EXPECT_EQ(s.from_crashed, 1u);
  EXPECT_EQ(s.to_crashed, 1u);
  expect_stats_invariant(s);

  rig.net.recover(0);
  rig.net.unblock_link(0, 1);  // the held message is redelivered
  rig.sim.run();
  EXPECT_EQ(rig.net.stats().held, 0u);
  EXPECT_EQ(rig.net.stats().delivered, 2u);
  expect_stats_invariant(rig.net.stats());
}

TEST(Network, CrashDropsInFlight) {
  // A message already in flight must not be delivered to a node that
  // crashes before the delivery time.
  Rig rig(std::make_unique<ConstantDelay>(100));
  rig.a.post(1, 1);
  rig.sim.schedule_at(50, [&] { rig.net.crash(1); });
  rig.sim.run();
  EXPECT_TRUE(rig.b.received.empty());
}

TEST(Network, BlockedLinkHoldsThenReleases) {
  Rig rig(std::make_unique<ConstantDelay>(10));
  rig.net.block_link(0, 1);
  rig.a.post(1, 1);
  rig.sim.run();
  EXPECT_TRUE(rig.b.received.empty());
  EXPECT_EQ(rig.net.stats().held, 1u);

  rig.net.unblock_link(0, 1);
  rig.sim.run();
  ASSERT_EQ(rig.b.received.size(), 1u);
  EXPECT_EQ(rig.net.stats().held, 0u);
}

TEST(Network, BlockAppliedAtDeliveryTime) {
  // Message sent before the block but delivered after: must be held.
  Rig rig(std::make_unique<ConstantDelay>(100));
  rig.a.post(1, 1);
  rig.sim.schedule_at(10, [&] { rig.net.block_link(0, 1); });
  rig.sim.run();
  EXPECT_TRUE(rig.b.received.empty());
  rig.net.unblock_link(0, 1);
  rig.sim.run();
  EXPECT_EQ(rig.b.received.size(), 1u);
}

TEST(Network, BlockPairBlocksBothDirections) {
  Rig rig(std::make_unique<ConstantDelay>(10));
  rig.net.block_pair(0, 1);
  rig.a.post(1, 1);
  rig.b.post(0, 2);
  rig.sim.run();
  EXPECT_TRUE(rig.a.received.empty());
  EXPECT_TRUE(rig.b.received.empty());
  rig.net.unblock_pair(0, 1);
  rig.sim.run();
  EXPECT_EQ(rig.a.received.size(), 1u);
  EXPECT_EQ(rig.b.received.size(), 1u);
}

TEST(Network, NonFifoCanReorder) {
  // With uniform delays some pair of back-to-back messages reorders.
  Rig rig(std::make_unique<UniformDelay>(1, 1000), /*fifo=*/false, /*seed=*/3);
  for (MsgType i = 0; i < 20; ++i) rig.a.post(1, i);
  rig.sim.run();
  ASSERT_EQ(rig.b.received.size(), 20u);
  bool reordered = false;
  for (std::size_t i = 1; i < 20; ++i) {
    if (rig.b.received[i].type < rig.b.received[i - 1].type) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(Network, FifoRedeliveryAfterUnblockPreservesSendOrder) {
  // Messages scheduled before block_link are parked at delivery time (the
  // deliver_now re-hold path) and, in FIFO mode, redelivered in send order
  // after unblock_link.
  Rig rig(std::make_unique<UniformDelay>(1, 1000), /*fifo=*/true, /*seed=*/3);
  for (MsgType i = 0; i < 10; ++i) rig.a.post(1, i);
  // The block runs at t=0, before any delivery (deliveries are at t >= 1),
  // so every message hits the re-hold path.
  rig.sim.schedule_at(0, [&] { rig.net.block_link(0, 1); });
  rig.sim.run();
  EXPECT_TRUE(rig.b.received.empty());
  EXPECT_EQ(rig.net.stats().held, 10u);

  rig.net.unblock_link(0, 1);
  rig.sim.run();
  ASSERT_EQ(rig.b.received.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(rig.b.received[i].type, static_cast<MsgType>(i));
  }
  EXPECT_EQ(rig.net.stats().held, 0u);
  EXPECT_EQ(rig.net.stats().sent, rig.net.stats().delivered);
}

TEST(Network, FifoPreservesPerLinkOrder) {
  Rig rig(std::make_unique<UniformDelay>(1, 1000), /*fifo=*/true, /*seed=*/3);
  for (MsgType i = 0; i < 20; ++i) rig.a.post(1, i);
  rig.sim.run();
  ASSERT_EQ(rig.b.received.size(), 20u);
  for (std::size_t i = 1; i < 20; ++i) {
    EXPECT_LE(rig.b.received[i - 1].type, rig.b.received[i].type);
  }
}

TEST(Network, DeliveryHookObservesTimes) {
  Rig rig(std::make_unique<ConstantDelay>(42));
  Time sent = -1, delivered = -1;
  rig.net.set_delivery_hook([&](const Frame&, Time s, Time d) {
    sent = s;
    delivered = d;
  });
  rig.a.post(1, 1);
  rig.sim.run();
  EXPECT_EQ(sent, 0);
  EXPECT_EQ(delivered, 42);
}

// Determinism: identical seeds give identical delivery schedules.
TEST(Network, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    Rig rig(std::make_unique<UniformDelay>(1, 500), false, seed);
    for (MsgType i = 0; i < 32; ++i) {
      rig.a.post(1, i);
      rig.b.post(0, 100 + i);
    }
    rig.sim.run();
    std::vector<std::pair<MsgType, Time>> log;
    for (std::size_t i = 0; i < rig.b.received.size(); ++i) {
      log.emplace_back(rig.b.received[i].type, rig.b.times[i]);
    }
    return log;
  };
  EXPECT_EQ(run_once(9), run_once(9));
  EXPECT_NE(run_once(9), run_once(10));
}

// ---------- Batched delivery (Network::Options::coalesce) ----------

struct CoalescedRig {
  explicit CoalescedRig(std::unique_ptr<DelayModel> delay,
                        Network::Options opts, std::uint64_t seed = 1)
      : net(sim, std::move(delay), Rng(seed), opts),
        a(0, net),
        b(1, net) {}
  Simulator sim;
  Network net;
  Recorder a, b;
};

TEST(NetworkCoalesce, TieBreakOrderInsideABatchIsSendOrder) {
  // Four same-tick messages coalesce into one batch; their reserved
  // sequences are the insertion order, so the batch replays exactly the
  // per-message tie-break: send order.
  CoalescedRig rig(std::make_unique<ConstantDelay>(100),
                   Network::Options{false, true, 1});
  for (MsgType i = 0; i < 4; ++i) rig.a.post(1, i);
  rig.sim.run();
  ASSERT_EQ(rig.b.received.size(), 4u);
  for (MsgType i = 0; i < 4; ++i) {
    EXPECT_EQ(rig.b.received[i].type, i);
    EXPECT_EQ(rig.b.times[i], 100);
  }
  EXPECT_EQ(rig.net.coalesce_stats().batches, 1u);
  EXPECT_EQ(rig.net.coalesce_stats().frames, 4u);
  expect_stats_invariant(rig.net.stats());
}

TEST(NetworkCoalesce, InterleavedEventOrderMatchesPerMessageEngine) {
  // A run with echoes and mixed delays, same seed under both engines: the
  // delivery logs (type, time) must be bit-identical.
  auto run_once = [](bool coalesce) {
    CoalescedRig rig(std::make_unique<UniformDelay>(1, 500),
                     Network::Options{false, coalesce, 1}, /*seed=*/9);
    for (MsgType i = 0; i < 32; ++i) {
      rig.a.post(1, i);
      rig.b.post(0, 100 + i);
    }
    rig.sim.run();
    std::vector<std::pair<MsgType, Time>> log;
    for (std::size_t i = 0; i < rig.b.received.size(); ++i) {
      log.emplace_back(rig.b.received[i].type, rig.b.times[i]);
    }
    for (std::size_t i = 0; i < rig.a.received.size(); ++i) {
      log.emplace_back(rig.a.received[i].type, rig.a.times[i]);
    }
    return log;
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

TEST(NetworkCoalesce, TickQuantizationIsEngineInvariant) {
  // With a coarse tick many deliveries coalesce; the (type, time) log must
  // still match the per-message engine run at the same tick.
  auto run_once = [](bool coalesce) {
    CoalescedRig rig(std::make_unique<UniformDelay>(1, 500),
                     Network::Options{false, coalesce, /*tick=*/64},
                     /*seed=*/11);
    for (MsgType i = 0; i < 48; ++i) rig.a.post(1, i);
    rig.sim.run();
    std::vector<std::pair<MsgType, Time>> log;
    for (std::size_t i = 0; i < rig.b.received.size(); ++i) {
      log.emplace_back(rig.b.received[i].type, rig.b.times[i]);
      EXPECT_EQ(rig.b.times[i] % 64, 0);
    }
    return log;
  };
  const auto per_message = run_once(false);
  const auto coalesced = run_once(true);
  EXPECT_EQ(per_message, coalesced);
}

TEST(NetworkCoalesce, CrashLandingMidBatchSplitsIt) {
  // Four frames coalesce at t=100; the crash event's sequence sits between
  // frames 1 and 2, so the drain must yield after two deliveries and drop
  // the remainder at the per-frame crash check.
  CoalescedRig rig(std::make_unique<ConstantDelay>(100),
                   Network::Options{false, true, 1});
  rig.a.post(1, 0);
  rig.a.post(1, 1);
  rig.sim.schedule_at(100, [&] { rig.net.crash(1); });
  rig.a.post(1, 2);
  rig.a.post(1, 3);
  rig.sim.run();
  ASSERT_EQ(rig.b.received.size(), 2u);
  EXPECT_EQ(rig.b.received[0].type, 0u);
  EXPECT_EQ(rig.b.received[1].type, 1u);
  EXPECT_EQ(rig.net.stats().to_crashed, 2u);
  EXPECT_GE(rig.net.coalesce_stats().continuations, 1u);
  expect_stats_invariant(rig.net.stats());
}

TEST(NetworkCoalesce, BlockLandingMidBatchParksTheRemainder) {
  // Same shape with a block: the tail of the batch parks on the held list
  // and redelivers after unblock, preserving the stats invariant at every
  // quiescent point.
  CoalescedRig rig(std::make_unique<ConstantDelay>(100),
                   Network::Options{false, true, 1});
  rig.a.post(1, 0);
  rig.a.post(1, 1);
  rig.sim.schedule_at(100, [&] { rig.net.block_link(0, 1); });
  rig.a.post(1, 2);
  rig.a.post(1, 3);
  rig.sim.run();
  ASSERT_EQ(rig.b.received.size(), 2u);
  EXPECT_EQ(rig.net.stats().held, 2u);
  expect_stats_invariant(rig.net.stats());

  rig.net.unblock_link(0, 1);
  rig.sim.run();
  ASSERT_EQ(rig.b.received.size(), 4u);
  EXPECT_EQ(rig.b.received[2].type, 2u);
  EXPECT_EQ(rig.b.received[3].type, 3u);
  EXPECT_EQ(rig.net.stats().held, 0u);
  expect_stats_invariant(rig.net.stats());
}

TEST(NetworkCoalesce, FifoOrderSurvivesCoalescing) {
  auto run_once = [](bool coalesce) {
    CoalescedRig rig(std::make_unique<UniformDelay>(1, 1000),
                     Network::Options{true, coalesce, 1}, /*seed=*/3);
    for (MsgType i = 0; i < 20; ++i) rig.a.post(1, i);
    rig.sim.run();
    std::vector<std::pair<MsgType, Time>> log;
    for (std::size_t i = 0; i < rig.b.received.size(); ++i) {
      log.emplace_back(rig.b.received[i].type, rig.b.times[i]);
    }
    return log;
  };
  const auto per_message = run_once(false);
  const auto coalesced = run_once(true);
  ASSERT_EQ(per_message.size(), 20u);
  for (std::size_t i = 1; i < per_message.size(); ++i) {
    EXPECT_LE(per_message[i - 1].first, per_message[i].first);
  }
  EXPECT_EQ(per_message, coalesced);
}

// ---------- Destination-major drain (Network::Options::dest_major) --------

struct DestMajorRig {
  explicit DestMajorRig(Network::Options opts, std::uint64_t seed = 1)
      : net(sim, std::make_unique<ConstantDelay>(100), Rng(seed), opts),
        a(0, net),
        b(1, net),
        c(2, net),
        d(3, net) {}
  Simulator sim;
  Network net;
  Recorder a, b, c, d;
};

TEST(NetworkCoalesce, DestMajorPreservesPerSourcePerDestinationFifo) {
  // Two sources interleave fan-out to two destinations within one tick.
  // Frame order alternates destinations every frame; the destination-major
  // drain regroups the batch into exactly one maximal run per destination
  // while preserving each (src, dst) pair's send order — each receiver sees
  // the original frame order projected onto itself.
  DestMajorRig rig(Network::Options{false, true, 1});
  for (MsgType i = 0; i < 8; ++i) {
    rig.a.post(2, i);          // a -> c
    rig.b.post(3, 100 + i);    // b -> d
    rig.a.post(3, 200 + i);    // a -> d
    rig.b.post(2, 300 + i);    // b -> c
  }
  rig.sim.run();
  EXPECT_GE(rig.net.coalesce_stats().dest_major, 1u);
  ASSERT_EQ(rig.c.received.size(), 16u);
  ASSERT_EQ(rig.d.received.size(), 16u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(rig.c.received[2 * i].type, static_cast<MsgType>(i));
    EXPECT_EQ(rig.c.received[2 * i + 1].type, static_cast<MsgType>(300 + i));
    EXPECT_EQ(rig.d.received[2 * i].type, static_cast<MsgType>(100 + i));
    EXPECT_EQ(rig.d.received[2 * i + 1].type, static_cast<MsgType>(200 + i));
  }
  // 32 frames drained as two maximal runs: the regrouping is what makes
  // dispatched runs long even under pathological destination interleaving.
  EXPECT_EQ(rig.net.coalesce_stats().frames, 32u);
  EXPECT_DOUBLE_EQ(rig.net.coalesce_stats().mean_run_len(), 16.0);
  expect_stats_invariant(rig.net.stats());
}

TEST(NetworkCoalesce, ForeignEventInsideTheFrameWindowForcesFrameOrder) {
  // The eligibility peek is exact at the boundary: a foreign event whose
  // (time, seq) sits strictly inside the tick's frame window suppresses the
  // destination-major drain (frame-order fallback, PR 7 behavior)...
  {
    CoalescedRig rig(std::make_unique<ConstantDelay>(100),
                     Network::Options{false, true, 1});
    rig.a.post(1, 0);
    rig.sim.schedule_at(100, [] {});  // seq between the two frame seqs
    rig.a.post(1, 1);
    rig.sim.run();
    EXPECT_EQ(rig.net.coalesce_stats().dest_major, 0u);
    ASSERT_EQ(rig.b.received.size(), 2u);
    expect_stats_invariant(rig.net.stats());
  }
  // ...while the same event scheduled one seq later — after the last
  // reserved frame — is outside the window and dest-major engages.
  {
    CoalescedRig rig(std::make_unique<ConstantDelay>(100),
                     Network::Options{false, true, 1});
    rig.a.post(1, 0);
    rig.a.post(1, 1);
    rig.sim.schedule_at(100, [] {});  // seq above the whole frame window
    rig.sim.run();
    EXPECT_EQ(rig.net.coalesce_stats().dest_major, 1u);
    ASSERT_EQ(rig.b.received.size(), 2u);
    expect_stats_invariant(rig.net.stats());
  }
}

TEST(NetworkCoalesce, DestMajorDropsUnattachedGroupsAndConserves) {
  // An entire destination group with no attached process is discarded in
  // one step; the conservation invariant still balances.
  DestMajorRig rig(Network::Options{false, true, 1});
  rig.a.post(7, 1);  // node 7 has no process
  rig.a.post(7, 2);
  rig.a.post(2, 3);
  rig.sim.run();
  EXPECT_GE(rig.net.coalesce_stats().dest_major, 1u);
  EXPECT_EQ(rig.c.received.size(), 1u);
  EXPECT_EQ(rig.net.stats().delivered, 1u);
  EXPECT_EQ(rig.net.stats().dropped_unattached, 2u);
  expect_stats_invariant(rig.net.stats());
}

// ---------- Delay models ----------

TEST(DelayModel, UniformWithinBounds) {
  UniformDelay d(5, 10);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Duration v = d.sample(0, 1, rng);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
  }
}

TEST(DelayModel, LogNormalPositiveAndSpread) {
  LogNormalDelay d(1 * kMillisecond, 0.5);
  Rng rng(2);
  Duration lo = kTimeMax, hi = 0;
  for (int i = 0; i < 500; ++i) {
    const Duration v = d.sample(0, 1, rng);
    EXPECT_GT(v, 0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 1 * kMillisecond);
  EXPECT_GT(hi, 1 * kMillisecond);
}

TEST(DelayModel, GeoUsesSiteMatrix) {
  // Two sites, 100ms apart; same-site is 1ms.
  GeoDelay d({{1.0, 100.0}, {100.0, 1.0}}, {0, 1}, /*jitter=*/0.0);
  Rng rng(3);
  EXPECT_EQ(d.sample(0, 0, rng), static_cast<Duration>(0.5 * kMillisecond));
  EXPECT_EQ(d.sample(0, 1, rng), static_cast<Duration>(50.0 * kMillisecond));
}

}  // namespace
}  // namespace mwreg
