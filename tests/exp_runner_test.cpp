// Tests for the src/exp experiment-runner subsystem: spec validation,
// thread-count-independent determinism, and a design-space smoke sweep.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "exp/aggregator.h"
#include "exp/runner.h"
#include "exp/spec.h"

namespace mwreg::exp {
namespace {

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.name = "unit";
  spec.protocols = {"mw-abd(W2R2)", "fast-read-mw(W2R1)"};
  spec.clusters = {ClusterConfig{5, 2, 2, 1}, ClusterConfig{7, 2, 3, 1}};
  spec.seed_lo = 1;
  spec.seeds = 3;
  spec.workload.ops_per_writer = 5;
  spec.workload.ops_per_reader = 5;
  return spec;
}

// ---------- spec ----------

TEST(ExperimentSpec, CountsCellsAndTrials) {
  const ExperimentSpec spec = small_spec();
  EXPECT_EQ(spec.cells(), 4);
  EXPECT_EQ(spec.trials(), 12);
  EXPECT_EQ(spec.validate(), "");
}

TEST(ExperimentSpec, RejectsUnknownProtocol) {
  ExperimentSpec spec = small_spec();
  spec.protocols.push_back("no-such-proto");
  EXPECT_NE(spec.validate(), "");
  EXPECT_THROW((void)Runner().run(spec), std::invalid_argument);
}

TEST(ExperimentSpec, RejectsInvalidCluster) {
  ExperimentSpec spec = small_spec();
  spec.clusters.push_back(ClusterConfig{1, 0, 0, 0});
  EXPECT_NE(spec.validate(), "");
}

TEST(ExperimentSpec, RejectsEmptySeedRange) {
  ExperimentSpec spec = small_spec();
  spec.seeds = 0;
  EXPECT_NE(spec.validate(), "");
}

// ---------- seeding ----------

TEST(DeriveSeed, DeterministicAndStreamSeparated) {
  EXPECT_EQ(derive_seed(7, 0), derive_seed(7, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {1ULL, 2ULL, 99ULL}) {
    for (std::uint64_t stream = 0; stream < 50; ++stream) {
      seen.insert(derive_seed(base, stream));
    }
  }
  EXPECT_EQ(seen.size(), 150u);  // no collisions across nearby inputs
}

// ---------- runner determinism ----------

TEST(Runner, SameSpecSameResultsAcrossThreadCounts) {
  const ExperimentSpec spec = small_spec();
  Runner::Options serial;
  serial.threads = 1;
  Runner::Options wide;
  wide.threads = 4;
  const std::vector<TrialResult> a = Runner(serial).run(spec);
  const std::vector<TrialResult> b = Runner(wide).run(spec);

  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), static_cast<std::size_t>(spec.trials()));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].protocol, b[i].protocol);
    EXPECT_EQ(a[i].cell_index, b[i].cell_index);
    EXPECT_EQ(a[i].user_seed, b[i].user_seed);
    EXPECT_EQ(a[i].harness_seed, b[i].harness_seed);
    EXPECT_EQ(a[i].tag_atomic, b[i].tag_atomic);
    EXPECT_EQ(a[i].write_ms, b[i].write_ms);  // bit-exact latencies
    EXPECT_EQ(a[i].read_ms, b[i].read_ms);
    EXPECT_EQ(a[i].msgs_sent, b[i].msgs_sent);
    EXPECT_EQ(a[i].sim_events, b[i].sim_events);
  }
  // The rendered reports — what an experiment actually publishes — must be
  // byte-identical too.
  EXPECT_EQ(to_csv(aggregate(a)), to_csv(aggregate(b)));
  EXPECT_EQ(to_json(aggregate(a)), to_json(aggregate(b)));
}

TEST(Runner, CellResultsAreBatchInvariant) {
  // A cell's numbers must be reproducible by re-running that cell alone:
  // the RNG stream depends on (protocol, cluster, user seed), not on where
  // the cell sits in a spec or run_all() batch.
  ExperimentSpec other = small_spec();
  other.name = "padding";
  other.seeds = 1;
  const ExperimentSpec spec = small_spec();

  const std::vector<TrialResult> alone = Runner().run(spec);
  const std::vector<TrialResult> batched = Runner().run_all({other, spec});

  ASSERT_EQ(batched.size(), alone.size() + 4u);
  for (std::size_t i = 0; i < alone.size(); ++i) {
    const TrialResult& a = alone[i];
    const TrialResult& b = batched[4 + i];  // after `other`'s 4 trials
    EXPECT_EQ(a.harness_seed, b.harness_seed);
    EXPECT_EQ(a.write_ms, b.write_ms);
    EXPECT_EQ(a.read_ms, b.read_ms);
    EXPECT_EQ(a.tag_atomic, b.tag_atomic);
  }
}

TEST(Runner, DistinctCellsGetDistinctHarnessSeeds) {
  ExperimentSpec spec = small_spec();
  spec.seeds = 1;
  const std::vector<TrialResult> rs = Runner().run(spec);
  std::set<std::uint64_t> seeds;
  for (const TrialResult& tr : rs) seeds.insert(tr.harness_seed);
  EXPECT_EQ(seeds.size(), rs.size());
}

TEST(Runner, RunTrialMatchesPoolExecution) {
  const ExperimentSpec spec = small_spec();
  const std::vector<TrialResult> rs = Runner().run(spec);
  const TrialResult solo =
      run_trial(spec, 0, rs[0].cell_index, rs[0].protocol, rs[0].cfg,
                rs[0].user_seed);
  EXPECT_EQ(solo.write_ms, rs[0].write_ms);
  EXPECT_EQ(solo.read_ms, rs[0].read_ms);
  EXPECT_EQ(solo.tag_atomic, rs[0].tag_atomic);
}

// ---------- smoke sweep ----------

TEST(Runner, SmokeSweepMatchesDesignSpaceExpectations) {
  ExperimentSpec spec;
  spec.name = "smoke";
  spec.protocols = {"mw-abd(W2R2)", "abd-swmr(W1R2)", "fast-read-mw(W2R1)",
                    "fast-swmr(W1R1)", "regular-fast-read(W2R1)"};
  // One multi-writer and one single-writer cluster, both below the
  // fast-read bound (R + 2)t < S.
  spec.clusters = {ClusterConfig{7, 2, 3, 1}, ClusterConfig{7, 1, 3, 1}};
  spec.seeds = 2;
  spec.workload.ops_per_writer = 6;
  spec.workload.ops_per_reader = 6;
  spec.check_graph = true;

  const std::vector<CellStats> cells = aggregate(Runner().run(spec));
  ASSERT_EQ(cells.size(), 10u);
  for (const CellStats& c : cells) {
    // Every cell whose protocol guarantees atomicity must check out under
    // both checkers on every seed.
    EXPECT_TRUE(c.matches_expectation())
        << c.protocol << " on " << c.cfg.to_string() << ": "
        << c.first_violation;
    EXPECT_EQ(c.trials, 2);
    EXPECT_GT(c.write.count, 0u);
    EXPECT_GT(c.read.count, 0u);
    EXPECT_GT(c.msgs_per_op, 0.0);
  }
}

// ---------- aggregator ----------

TEST(Aggregator, PoolsLatenciesExactly) {
  TrialResult t1, t2;
  t1.cell_index = t2.cell_index = 0;
  t1.protocol = t2.protocol = "p";
  t1.tag_atomic = true;
  t2.tag_atomic = false;
  t2.violation = "boom";
  t1.write_ms = {1.0, 3.0};
  t2.write_ms = {2.0, 4.0};
  t1.completed_ops = t2.completed_ops = 2;
  t1.msgs_sent = 10;
  t2.msgs_sent = 14;

  const std::vector<CellStats> cells = aggregate({t1, t2});
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].trials, 2);
  EXPECT_EQ(cells[0].atomic_trials, 1);
  EXPECT_EQ(cells[0].first_violation, "boom");
  EXPECT_EQ(cells[0].write.count, 4u);
  EXPECT_DOUBLE_EQ(cells[0].write.mean_ms, 2.5);
  EXPECT_DOUBLE_EQ(cells[0].write.max_ms, 4.0);
  EXPECT_DOUBLE_EQ(cells[0].msgs_per_op, 6.0);
}

/// Minimal JSON string unescaper for the round-trip test below.
std::string json_unescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        const int code = std::stoi(s.substr(i + 1, 4), nullptr, 16);
        out += static_cast<char>(code);
        i += 4;
        break;
      }
      default: out += s[i];  // \" and \\ and \/
    }
  }
  return out;
}

TEST(Aggregator, JsonEscapesControlCharactersRoundTrip) {
  TrialResult tr;
  tr.cell_index = 0;
  tr.protocol = "p";
  tr.tag_atomic = false;
  const std::string nasty = std::string("bad\r\tvalue\x01\x1f end\n\\ \"q\"\b");
  tr.violation = nasty;
  const std::string json = to_json(aggregate({tr}));

  // A violation string must never leak raw control bytes into the JSON;
  // the only raw control characters are the renderer's own newlines.
  for (unsigned char c : json) {
    if (c < 0x20) {
      EXPECT_EQ(c, '\n') << "raw control byte " << int(c);
    }
  }
  EXPECT_NE(json.find("\\r"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\u001f"), std::string::npos);

  // Round trip: extract the first_violation value and unescape it.
  const std::string key = "\"first_violation\":\"";
  const std::size_t pos = json.find(key);
  ASSERT_NE(pos, std::string::npos);
  const std::size_t start = pos + key.size();
  std::size_t end = start;
  while (json[end] != '"' || json[end - 1] == '\\') ++end;
  EXPECT_EQ(json_unescape(json.substr(start, end - start)), nasty);
}

TEST(Runner, FaultPlanAxisExpandsTheCrossProduct) {
  ExperimentSpec spec = small_spec();
  spec.fault_plans = {scenarios::single_crash(),
                      scenarios::minority_partition()};
  EXPECT_EQ(spec.validate(), "");
  EXPECT_EQ(spec.cells(), 8);    // 2 protocols x 2 clusters x 2 plans
  EXPECT_EQ(spec.trials(), 24);  // x 3 seeds

  const std::vector<CellStats> cells = aggregate(Runner().run(spec));
  ASSERT_EQ(cells.size(), 8u);
  int crash_cells = 0, partition_cells = 0;
  for (const CellStats& c : cells) {
    crash_cells += c.fault_plan == "single-crash";
    partition_cells += c.fault_plan == "minority-partition";
    EXPECT_GT(c.faults_injected, 0.0) << c.fault_plan;
  }
  EXPECT_EQ(crash_cells, 4);
  EXPECT_EQ(partition_cells, 4);

  const std::string csv = to_csv(cells);
  EXPECT_NE(csv.find("fault_plan"), std::string::npos);
  EXPECT_NE(csv.find("single-crash"), std::string::npos);
  EXPECT_NE(csv.find("minority-partition"), std::string::npos);
}

TEST(Runner, RejectsDuplicateAndUnnamedFaultPlans) {
  ExperimentSpec spec = small_spec();
  spec.fault_plans = {scenarios::single_crash(), scenarios::single_crash()};
  EXPECT_NE(spec.validate(), "");
  spec.fault_plans = {FaultPlan{}.crash(0, 10)};
  EXPECT_NE(spec.validate(), "");
}

TEST(Runner, FaultFreeCellDigestIsPlanIndependent) {
  // The two-argument digest and an empty plan agree, so pre-fault-axis
  // sweeps reproduce bit-identically; real plans shift the stream.
  const ClusterConfig cfg{5, 2, 2, 1};
  EXPECT_EQ(cell_digest("p", cfg), cell_digest("p", cfg, FaultPlan{}));
  EXPECT_NE(cell_digest("p", cfg),
            cell_digest("p", cfg, scenarios::single_crash()));
  EXPECT_NE(cell_digest("p", cfg, scenarios::single_crash()),
            cell_digest("p", cfg, scenarios::minority_partition()));
}

TEST(Aggregator, CsvHasHeaderAndOneRowPerCell) {
  ExperimentSpec spec = small_spec();
  spec.seeds = 1;
  const std::string csv = to_csv(aggregate(Runner().run(spec)));
  std::size_t lines = 0;
  for (char ch : csv) lines += ch == '\n';
  EXPECT_EQ(lines, 1u + 4u);
  EXPECT_NE(csv.find("spec,protocol,S,W,R,t"), std::string::npos);
  EXPECT_NE(csv.find("mw-abd(W2R2)"), std::string::npos);
}

}  // namespace
}  // namespace mwreg::exp
