// Schedule-fuzzing tests: randomized delivery schedules, link flaps within
// the failure budget, and mid-run crashes -- every history checked against
// the protocol's claimed guarantee.
#include <gtest/gtest.h>

#include "fuzz/schedule_fuzzer.h"

namespace mwreg::fuzz {
namespace {

TEST(Fuzzer, MwAbdStaysAtomicUnderChaos) {
  FuzzOptions o;
  o.protocol = "mw-abd(W2R2)";
  o.cfg = ClusterConfig{5, 2, 2, 2};
  o.trials = 40;
  o.seed = 11;
  const FuzzReport r = run_schedule_fuzzer(o);
  EXPECT_EQ(r.violations, 0) << r.first_violation;
  EXPECT_EQ(r.passed, r.trials);
  EXPECT_GT(r.total_ops, 1000u);
}

TEST(Fuzzer, FastReadMwStaysAtomicBelowBound) {
  FuzzOptions o;
  o.protocol = "fast-read-mw(W2R1)";
  o.cfg = ClusterConfig{7, 2, 3, 1};  // (3+2)*1 < 7
  o.trials = 40;
  o.seed = 13;
  const FuzzReport r = run_schedule_fuzzer(o);
  EXPECT_EQ(r.violations, 0) << r.first_violation;
}

TEST(Fuzzer, FastSwmrStaysAtomicBelowBound) {
  FuzzOptions o;
  o.protocol = "fast-swmr(W1R1)";
  o.cfg = ClusterConfig{7, 1, 3, 1};
  o.trials = 30;
  o.seed = 17;
  const FuzzReport r = run_schedule_fuzzer(o);
  EXPECT_EQ(r.violations, 0) << r.first_violation;
}

TEST(Fuzzer, RegularFastReadStaysRegular) {
  FuzzOptions o;
  o.protocol = "regular-fast-read(W2R1)";
  o.cfg = ClusterConfig{5, 2, 3, 2};
  o.trials = 40;
  o.seed = 19;
  o.expect = "regular";
  const FuzzReport r = run_schedule_fuzzer(o);
  EXPECT_EQ(r.violations, 0) << r.first_violation;
}

TEST(Fuzzer, AbdSwmrSurvivesCrashHeavyRuns) {
  FuzzOptions o;
  o.protocol = "abd-swmr(W1R2)";
  o.cfg = ClusterConfig{5, 1, 3, 2};
  o.trials = 30;
  o.crash_probability = 1.0;  // every trial crashes t servers mid-run
  o.seed = 23;
  const FuzzReport r = run_schedule_fuzzer(o);
  EXPECT_EQ(r.violations, 0) << r.first_violation;
}

TEST(Fuzzer, ReportsAccounting) {
  FuzzOptions o;
  o.protocol = "mw-abd(W2R2)";
  o.cfg = ClusterConfig{3, 2, 2, 1};
  o.trials = 10;
  o.seed = 29;
  const FuzzReport r = run_schedule_fuzzer(o);
  EXPECT_EQ(r.trials, 10);
  EXPECT_EQ(r.passed + r.violations, r.trials);
}

TEST(Fuzzer, EngineParityAcrossFuzzedSchedules) {
  // Every fuzzed schedule replayed under all three delivery engines:
  // per-message vs frame-order must be digest-identical on every trial
  // (inline crashes included); frame-order vs dest-major must be
  // digest-identical on crash-free trials and verdict-identical on the
  // rest. The live streaming checker rides along in every lane and must
  // agree with the batch tag witness on every trial.
  ParityOptions o;
  o.protocol = "mw-abd(W2R2)";
  o.cfg = ClusterConfig{5, 2, 2, 2};
  o.trials = 25;
  o.seed = 31;
  const ParityReport r = run_engine_parity_fuzzer(o);
  EXPECT_EQ(r.mismatches, 0) << r.first_mismatch;
  EXPECT_EQ(r.frame_order_exact, r.trials);
  EXPECT_EQ(r.dest_major_exact, r.trials - r.crash_trials);
  EXPECT_EQ(r.verdict_only, r.crash_trials);
  EXPECT_EQ(r.stream_verdict_parity, r.trials);
  EXPECT_GT(r.crash_trials, 0) << "seed produced no crash trials; the "
                                  "contract-violation lane went unsoaked";
}

TEST(Fuzzer, EngineParityHoldsForFastReadUnderCrashHeavySchedules) {
  // The fast-read protocol exercises the largest server fan-outs (and so
  // the reply-staging path hardest); force a crash on every trial.
  ParityOptions o;
  o.protocol = "fast-read-mw(W2R1)";
  o.cfg = ClusterConfig{7, 2, 3, 1};
  o.trials = 15;
  o.crash_probability = 1.0;
  o.seed = 37;
  const ParityReport r = run_engine_parity_fuzzer(o);
  EXPECT_EQ(r.mismatches, 0) << r.first_mismatch;
  EXPECT_EQ(r.frame_order_exact, r.trials);
  EXPECT_EQ(r.verdict_only, r.crash_trials);
  EXPECT_EQ(r.stream_verdict_parity, r.trials);
}

TEST(Fuzzer, UnknownProtocolReported) {
  FuzzOptions o;
  o.protocol = "no-such-protocol";
  const FuzzReport r = run_schedule_fuzzer(o);
  EXPECT_EQ(r.trials, 0);
  EXPECT_NE(r.first_violation.find("unknown protocol"), std::string::npos);
}

}  // namespace
}  // namespace mwreg::fuzz
