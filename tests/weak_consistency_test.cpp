// Safe / regular / atomic: the consistency axis of Fig. 2. Unit tests for
// the weak checkers, the implication chain as a property over random
// histories, and the protocol classifications: the regular-fast-read
// baseline is regular but not atomic; the naive fast-write strawman is not
// even safe.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "consistency/checkers.h"
#include "consistency/weak_checkers.h"
#include "core/harness.h"
#include "core/workload.h"
#include "protocols/protocols.h"

namespace mwreg {
namespace {

struct Builder {
  History h;
  NodeId next_client = 100;
  void write(Time s, Time f, Tag tag, std::int64_t p) {
    const OpId id = h.begin_op(next_client++, OpKind::kWrite, s);
    if (f != kTimeMax) {
      h.end_op(id, f, TaggedValue{tag, p});
    } else {
      h.set_value(id, TaggedValue{tag, p});
    }
  }
  void read(Time s, Time f, Tag tag, std::int64_t p) {
    const OpId id = h.begin_op(next_client++, OpKind::kRead, s);
    h.end_op(id, f, TaggedValue{tag, p});
  }
};

TEST(WeakCheckers, SequentialHistoryPassesAll) {
  Builder b;
  b.write(0, 10, Tag{1, 0}, 1);
  b.read(20, 30, Tag{1, 0}, 1);
  EXPECT_TRUE(check_safe(b.h).atomic);
  EXPECT_TRUE(check_regular(b.h).atomic);
  EXPECT_TRUE(check_tag_witness(b.h).atomic);
}

TEST(WeakCheckers, NewOldInversionIsRegularNotAtomic) {
  // W1 done; W2 concurrent with both reads; reads see new then old.
  Builder b;
  b.write(0, 10, Tag{1, 0}, 1);
  b.write(20, 100, Tag{2, 1}, 2);
  b.read(30, 35, Tag{2, 1}, 2);
  b.read(40, 45, Tag{1, 0}, 1);
  EXPECT_TRUE(check_regular(b.h).atomic);
  EXPECT_TRUE(check_safe(b.h).atomic);
  EXPECT_FALSE(check_wing_gong(b.h).atomic);
}

TEST(WeakCheckers, LostUpdateViolatesRegularButMaybeSafe) {
  // W1 then W2 both complete; a later read (no concurrency) returns W1.
  Builder b;
  b.write(0, 10, Tag{1, 0}, 1);
  b.write(20, 30, Tag{2, 1}, 2);
  b.read(40, 50, Tag{1, 0}, 1);
  EXPECT_FALSE(check_regular(b.h).atomic);
  EXPECT_FALSE(check_safe(b.h).atomic);  // read overlaps no write
}

TEST(WeakCheckers, StaleReadUnderConcurrencyIsSafeOnly) {
  // Same lost update, but a third write overlaps the read: safety no longer
  // constrains it, regularity still does.
  Builder b;
  b.write(0, 10, Tag{1, 0}, 1);
  b.write(20, 30, Tag{2, 1}, 2);
  b.write(35, 100, Tag{3, 0}, 3);  // concurrent with the read
  b.read(40, 50, Tag{1, 0}, 1);
  EXPECT_FALSE(check_regular(b.h).atomic);
  EXPECT_TRUE(check_safe(b.h).atomic);
}

TEST(WeakCheckers, ReadingConcurrentWriteIsRegular) {
  Builder b;
  b.write(0, 100, Tag{1, 0}, 1);
  b.read(10, 20, Tag{1, 0}, 1);
  EXPECT_TRUE(check_regular(b.h).atomic);
}

TEST(WeakCheckers, BottomAfterCompletedWriteViolatesRegular) {
  Builder b;
  b.write(0, 10, Tag{1, 0}, 1);
  b.read(20, 30, kBottomTag, 0);
  EXPECT_FALSE(check_regular(b.h).atomic);
  EXPECT_FALSE(check_safe(b.h).atomic);
}

TEST(WeakCheckers, NeverWrittenTagRejectedEverywhere) {
  Builder b;
  b.read(0, 5, Tag{9, 9}, 9);
  EXPECT_FALSE(check_regular(b.h).atomic);
  EXPECT_FALSE(check_safe(b.h).atomic);
}

// ---------- Implication chain as a property ----------

class ImplicationChain : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImplicationChain, AtomicImpliesRegularImpliesSafe) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    Builder b;
    const int n_w = 2 + static_cast<int>(rng.next_below(3));
    std::vector<TaggedValue> vals;
    for (int i = 0; i < n_w; ++i) {
      const Tag tag{rng.next_in(1, 4), static_cast<NodeId>(i)};
      const Time s = rng.next_in(0, 100);
      vals.push_back(TaggedValue{tag, tag.ts * 100 + i});
      b.write(s, rng.next_bool(0.15) ? kTimeMax : rng.next_in(s, 120),
              tag, tag.ts * 100 + i);
    }
    for (int i = 0; i < 4; ++i) {
      const Time s = rng.next_in(0, 100);
      if (rng.next_bool(0.8)) {
        const TaggedValue& v = vals[rng.next_below(vals.size())];
        b.read(s, rng.next_in(s, 120), v.tag, v.payload);
      } else {
        b.read(s, rng.next_in(s, 120), kBottomTag, 0);
      }
    }
    if (!b.h.unique_write_tags()) continue;
    const bool atomic = check_wing_gong(b.h).atomic;
    const bool regular = check_regular(b.h).atomic;
    const bool safe = check_safe(b.h).atomic;
    EXPECT_LE(atomic, regular) << b.h.to_string();
    EXPECT_LE(regular, safe) << b.h.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationChain,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------- Protocol classification ----------

TEST(RegularFastRead, DeterministicInversionIsRegularNotAtomic) {
  // The paper's Section 1 story: one-round quorum reads give regularity.
  // Confine a concurrent write's second round to one server; a reader that
  // hears it sees the new value, a subsequent reader that misses it does not.
  const ClusterConfig cfg{3, 1, 2, 1};
  SimHarness::Options o;
  o.cfg = cfg;
  o.seed = 1;
  o.delay = std::make_unique<ConstantDelay>(kMillisecond);
  SimHarness h(*protocol_by_name("regular-fast-read(W2R1)"), std::move(o));

  const NodeId writer = cfg.writer_id(0);
  const OpId wop = h.async_write(0, 7);
  // Cut the writer off from servers 1,2 after its query round (2ms).
  h.sim().schedule_at(2 * kMillisecond + 1, [&]() {
    h.net().block_link(writer, 1);
    h.net().block_link(writer, 2);
  });
  h.run();
  h.history().set_value(wop, TaggedValue{Tag{1, writer}, 7});

  // Reader 0 hears server 0 (plus one more): sees the new value.
  h.net().block_link(1, cfg.reader_id(0));
  std::int64_t first = -1, second = -1;
  h.sim().run_until(h.sim().now() + 1);
  h.async_read(0, [&](TaggedValue v) { first = v.payload; });
  h.run();
  // Reader 1 misses server 0: sees the old value.
  h.net().block_link(0, cfg.reader_id(1));
  h.sim().run_until(h.sim().now() + 1);
  h.async_read(1, [&](TaggedValue v) { second = v.payload; });
  h.run();

  EXPECT_EQ(first, 7);
  EXPECT_EQ(second, 0);
  EXPECT_FALSE(check_wing_gong(h.history()).atomic);
  EXPECT_TRUE(check_regular(h.history()).atomic)
      << check_regular(h.history()).violation;
}

TEST(RegularFastRead, RandomWorkloadsStayRegular) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SimHarness::Options o;
    o.cfg = ClusterConfig{5, 3, 3, 2};
    o.seed = seed;
    SimHarness h(*protocol_by_name("regular-fast-read(W2R1)"), std::move(o));
    WorkloadOptions w;
    run_random_workload(h, w);
    EXPECT_TRUE(check_regular(h.history()).atomic) << "seed " << seed;
  }
}

TEST(NaiveFastWrite, LostUpdateIsNotEvenSafe) {
  const ClusterConfig cfg{3, 2, 2, 1};
  SimHarness::Options o;
  o.cfg = cfg;
  o.seed = 1;
  SimHarness h(*protocol_by_name("naive-fast-write(W1R2)"), std::move(o));
  for (int i = 1; i <= 3; ++i) {
    h.async_write(0, i * 10);
    h.run();
  }
  h.async_write(1, 999);
  h.run();
  h.sim().run_until(h.sim().now() + 1);
  h.async_read(0);
  h.run();
  EXPECT_FALSE(check_safe(h.history()).atomic);
  EXPECT_FALSE(check_regular(h.history()).atomic);
}

}  // namespace
}  // namespace mwreg
