// Tests for the three atomicity checkers, including cross-validation on
// randomized histories: the Wing-Gong exhaustive search is ground truth, the
// unique-value graph checker must agree with it exactly, and a tag-witness
// pass must imply both.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "consistency/checkers.h"
#include "consistency/history.h"

namespace mwreg {
namespace {

// Convenience builders. Client ids are arbitrary but per-op unique unless a
// test wants real-time chaining through one client.
struct Builder {
  History h;
  NodeId next_client = 100;

  OpId write(Time s, Time f, Tag tag, std::int64_t payload,
             NodeId client = kNoNode) {
    const OpId id = h.begin_op(client == kNoNode ? next_client++ : client,
                               OpKind::kWrite, s);
    if (f != kTimeMax) {
      h.end_op(id, f, TaggedValue{tag, payload});
    } else {
      h.set_value(id, TaggedValue{tag, payload});  // pending, tag known
    }
    return id;
  }
  OpId read(Time s, Time f, Tag tag, std::int64_t payload,
            NodeId client = kNoNode) {
    const OpId id = h.begin_op(client == kNoNode ? next_client++ : client,
                               OpKind::kRead, s);
    if (f != kTimeMax) h.end_op(id, f, TaggedValue{tag, payload});
    return id;
  }
};

void expect_all_ok(const History& h) {
  EXPECT_TRUE(check_tag_witness(h).atomic) << check_tag_witness(h).violation;
  EXPECT_TRUE(check_wing_gong(h).atomic) << check_wing_gong(h).violation;
  EXPECT_TRUE(check_unique_value_graph(h).atomic)
      << check_unique_value_graph(h).violation;
  EXPECT_TRUE(check_streaming(h).atomic) << check_streaming(h).violation;
}

void expect_all_bad(const History& h) {
  EXPECT_FALSE(check_tag_witness(h).atomic);
  EXPECT_FALSE(check_wing_gong(h).atomic);
  EXPECT_FALSE(check_unique_value_graph(h).atomic);
  EXPECT_FALSE(check_streaming(h).atomic);
}

TEST(Checkers, EmptyHistoryIsAtomic) {
  History h;
  expect_all_ok(h);
}

TEST(Checkers, SequentialWriteThenRead) {
  Builder b;
  b.write(0, 10, Tag{1, 0}, 11);
  b.read(20, 30, Tag{1, 0}, 11);
  expect_all_ok(b.h);
}

TEST(Checkers, ReadOfInitialValueBeforeAnyWrite) {
  Builder b;
  b.read(0, 5, kBottomTag, 0);
  b.write(10, 20, Tag{1, 0}, 1);
  expect_all_ok(b.h);
}

TEST(Checkers, StaleReadAfterLaterWrite) {
  // W(1) ends, then W(2) ends, then a read returns 1: Definition 2.1's
  // read-from requirement is violated.
  Builder b;
  b.write(0, 10, Tag{1, 0}, 1);
  b.write(20, 30, Tag{2, 1}, 2);
  b.read(40, 50, Tag{1, 0}, 1);
  expect_all_bad(b.h);
}

TEST(Checkers, NewOldInversionBetweenReads) {
  // W1 finishes, then W2 runs concurrently with two sequential reads. Read1
  // returns the new value but read2 (strictly after read1) returns the old
  // one: atomicity forbids this new/old inversion, regularity would allow it.
  Builder b;
  b.write(0, 10, Tag{1, 0}, 1);
  b.write(20, 100, Tag{2, 1}, 2);
  b.read(30, 35, Tag{2, 1}, 2);
  b.read(40, 45, Tag{1, 0}, 1);
  expect_all_bad(b.h);
}

TEST(Checkers, ConcurrentReadsMaySeeEitherOrderOfConcurrentWrites) {
  // Both writes concurrent with both reads and with each other: the reads
  // returning different values in either order is linearizable.
  Builder b;
  b.write(0, 100, Tag{1, 0}, 1);
  b.write(0, 100, Tag{2, 1}, 2);
  b.read(10, 20, Tag{2, 1}, 2);
  b.read(30, 40, Tag{1, 0}, 1);
  // Linearize W2, R1, W1, R2: only R1 -> R2 is a real-time constraint.
  EXPECT_TRUE(check_wing_gong(b.h).atomic);
  EXPECT_TRUE(check_unique_value_graph(b.h).atomic);
  // The tag witness is stricter and rejects (tags out of order across reads).
  EXPECT_FALSE(check_tag_witness(b.h).atomic);
}

TEST(Checkers, ReadFromTheFuture) {
  // A read finishing before its write is invoked.
  Builder b;
  b.read(0, 5, Tag{1, 0}, 1);
  b.write(10, 20, Tag{1, 0}, 1);
  expect_all_bad(b.h);
}

TEST(Checkers, ValueNeverWritten) {
  Builder b;
  b.write(0, 10, Tag{1, 0}, 1);
  b.read(20, 30, Tag{9, 9}, 9);
  expect_all_bad(b.h);
}

TEST(Checkers, PayloadMismatchRejected) {
  Builder b;
  b.write(0, 10, Tag{1, 0}, 1);
  b.read(20, 30, Tag{1, 0}, 999);
  expect_all_bad(b.h);
}

TEST(Checkers, ConcurrentWritesAnyOrderOk) {
  // Two overlapping writes; readers may see them in tag order.
  Builder b;
  b.write(0, 100, Tag{1, 0}, 1);
  b.write(0, 100, Tag{1, 1}, 2);  // equal ts, distinct wid
  b.read(110, 120, Tag{1, 1}, 2);
  expect_all_ok(b.h);
}

TEST(Checkers, PendingWriteMayBeRead) {
  // A write that never completed (crashed writer) can still be read.
  Builder b;
  b.write(0, kTimeMax, Tag{1, 0}, 1);
  b.read(50, 60, Tag{1, 0}, 1);
  b.read(70, 80, Tag{1, 0}, 1);
  expect_all_ok(b.h);
}

TEST(Checkers, PendingWriteMayBeIgnored) {
  Builder b;
  b.write(0, kTimeMax, Tag{5, 0}, 5);
  b.read(50, 60, kBottomTag, 0);  // pending write need not have taken effect
  EXPECT_TRUE(check_wing_gong(b.h).atomic);
  EXPECT_TRUE(check_unique_value_graph(b.h).atomic);
}

TEST(Checkers, PendingWriteCannotFlipFlop) {
  // Once a read returned the pending write's value, a later read must not
  // revert to the old value.
  Builder b;
  b.write(0, kTimeMax, Tag{5, 0}, 5);
  b.read(50, 60, Tag{5, 0}, 5);
  b.read(70, 80, kBottomTag, 0);
  expect_all_bad(b.h);
}

TEST(Checkers, StaleBottomReadAfterWrite) {
  Builder b;
  b.write(0, 10, Tag{1, 0}, 1);
  b.read(20, 30, kBottomTag, 0);
  expect_all_bad(b.h);
}

TEST(Checkers, TagWitnessStricterThanTruth) {
  // Write tags ordered against real time with no reads: atomic (any write
  // order can linearize by real time), but the tag witness rejects it.
  Builder b;
  b.write(0, 10, Tag{2, 0}, 2);
  b.write(20, 30, Tag{1, 1}, 1);
  EXPECT_FALSE(check_tag_witness(b.h).atomic);
  EXPECT_TRUE(check_wing_gong(b.h).atomic);
  EXPECT_TRUE(check_unique_value_graph(b.h).atomic);
}

TEST(Checkers, WellFormednessViolationCaught) {
  History h;
  const OpId a = h.begin_op(1, OpKind::kWrite, 10);
  h.begin_op(1, OpKind::kWrite, 12);  // same client, first op still pending
  h.end_op(a, 20, TaggedValue{Tag{1, 0}, 1});
  EXPECT_FALSE(h.well_formed());
  EXPECT_FALSE(check_tag_witness(h).atomic);
  EXPECT_FALSE(check_wing_gong(h).atomic);
}

TEST(Checkers, DuplicateWriteTagsRejectedByWitness) {
  Builder b;
  b.write(0, 10, Tag{1, 0}, 1);
  b.write(20, 30, Tag{1, 0}, 2);
  EXPECT_FALSE(check_tag_witness(b.h).atomic);
  EXPECT_FALSE(check_unique_value_graph(b.h).atomic);
}

TEST(Checkers, ReadChainThroughClients) {
  // r1 returns the new value while the write is still pending, then r2
  // (strictly after r1) must also see it even though the write is pending.
  Builder b;
  b.write(0, 200, Tag{1, 0}, 1);
  b.read(10, 20, Tag{1, 0}, 1);
  b.read(30, 40, kBottomTag, 0);
  expect_all_bad(b.h);
}

TEST(Checkers, LongAtomicSequence) {
  Builder b;
  Time t = 0;
  for (int i = 1; i <= 8; ++i) {
    b.write(t, t + 5, Tag{i, 0}, i * 10);
    b.read(t + 6, t + 9, Tag{i, 0}, i * 10);
    t += 10;
  }
  expect_all_ok(b.h);
}

// ---------- Randomized cross-validation ----------

History random_history(Rng& rng, int n_writes, int n_reads) {
  Builder b;
  struct W {
    Tag tag;
    std::int64_t payload;
  };
  std::vector<W> writes;
  for (int i = 0; i < n_writes; ++i) {
    // Distinct tags, random order relative to time.
    const Tag tag{rng.next_in(1, 4), static_cast<NodeId>(i)};
    writes.push_back(W{tag, tag.ts * 100 + i});
  }
  const Time horizon = 100;
  for (const W& w : writes) {
    const Time s = rng.next_in(0, horizon);
    const bool pending = rng.next_bool(0.15);
    const Time f = pending ? kTimeMax : rng.next_in(s, horizon + 20);
    b.write(s, f, w.tag, w.payload);
  }
  for (int i = 0; i < n_reads; ++i) {
    const Time s = rng.next_in(0, horizon);
    const Time f = rng.next_in(s, horizon + 20);
    if (!writes.empty() && rng.next_bool(0.8)) {
      const W& w = writes[rng.next_below(writes.size())];
      b.read(s, f, w.tag, w.payload);
    } else {
      b.read(s, f, kBottomTag, 0);
    }
  }
  return std::move(b.h);
}

class CheckerCrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckerCrossValidation, GraphAgreesWithWingGong) {
  Rng rng(GetParam());
  int atomic_count = 0, non_atomic_count = 0;
  for (int iter = 0; iter < 150; ++iter) {
    const History h = random_history(rng, 2 + static_cast<int>(rng.next_below(3)),
                                     2 + static_cast<int>(rng.next_below(4)));
    if (!h.unique_write_tags()) continue;
    const CheckResult wg = check_wing_gong(h);
    const CheckResult graph = check_unique_value_graph(h);
    EXPECT_EQ(wg.atomic, graph.atomic)
        << "disagreement on history:\n"
        << h.to_string() << "wg: " << wg.violation
        << "\ngraph: " << graph.violation;
    (wg.atomic ? atomic_count : non_atomic_count)++;

    // The tag witness may reject atomic histories but must never accept a
    // non-atomic one; its streaming form must reach the same verdict.
    const CheckResult tw = check_tag_witness(h);
    EXPECT_EQ(check_streaming(h).atomic, tw.atomic) << h.to_string();
    if (tw.atomic) {
      EXPECT_TRUE(wg.atomic) << h.to_string();
    }
  }
  // The generator must exercise both outcomes to be meaningful.
  EXPECT_GT(atomic_count, 0);
  EXPECT_GT(non_atomic_count, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerCrossValidation,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace mwreg
