// Allocation regression: steady-state simulation must be allocation-free
// as measured by the engine and pool counters.
//
// A fixed W2R1 workload warms the event slab and the payload pool; after
// that, further closed-loop traffic on the same harness must not move
// either counter: no new slab chunks, no closure heap-spills, no fresh
// payload buffers. This is the property the hot-path rearchitecture bought
// — any change that reintroduces a per-event or per-hop allocation (a
// closure that outgrows the inline budget, a payload that bypasses the
// pool) trips one of these counters.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "core/harness.h"
#include "core/workload.h"
#include "protocols/fastread_clients.h"
#include "protocols/fastread_server.h"
#include "protocols/protocols.h"
#include "sim/buffer_pool.h"

namespace mwreg {
namespace {

/// Drive `ops` further closed-loop operations (alternating write/read on
/// client 0) against an already-warm harness. Everything is captured by
/// reference: the locals outlive h.run(), which returns at quiescence.
void run_closed_loop_burst(SimHarness& h, int ops) {
  int remaining = ops;
  std::function<void()> step;
  step = [&h, &remaining, &step]() {
    if (--remaining < 0) return;
    if (remaining % 2 == 0) {
      h.async_write(0, 5'000'000 + remaining, [&step]() { step(); });
    } else {
      h.async_read(0, [&step](TaggedValue) { step(); });
    }
  };
  step();
  h.run();
}

TEST(AllocRegression, SteadyStateW2R1WorkloadAllocatesNothing) {
  const Protocol* proto = protocol_by_name("fast-read-mw(W2R1)");
  ASSERT_NE(proto, nullptr);
  SimHarness::Options o;
  o.cfg = ClusterConfig{5, 2, 1, 1};
  o.seed = 42;
  o.delay = std::make_unique<UniformDelay>(kMillisecond, 10 * kMillisecond);
  SimHarness h(*proto, std::move(o));

  // Warmup: the fixed W2R1 workload (closed loop, every client).
  WorkloadOptions w;
  w.ops_per_writer = 60;
  w.ops_per_reader = 60;
  run_random_workload(h, w);

  const std::uint64_t engine_allocs = h.sim().allocations();
  const BufferPool::Stats pool_warm = h.net().pool().stats();
  EXPECT_GT(pool_warm.acquired, 0u);
  EXPECT_GT(pool_warm.recycled, 0u);

  // Steady state: a closed loop never needs a larger working set than the
  // run that warmed the slab and the pool.
  run_closed_loop_burst(h, 80);

  EXPECT_EQ(h.sim().allocations() - engine_allocs, 0u)
      << "slab chunks or closure heap-spills grew after warmup";
  EXPECT_EQ(h.net().pool().stats().misses - pool_warm.misses, 0u)
      << "a payload buffer was allocated fresh after warmup";
  // The burst really did run traffic through the pool.
  EXPECT_GT(h.net().pool().stats().acquired, pool_warm.acquired);
}

TEST(AllocRegression, NoGcAblationSteadyStateAllocatesNothingFromEngineOrPool) {
  // Same invariant for the full-ack ablation (fast-read-mw ran this way
  // before the PR 7 GC flip): ack payloads grow with the valuevector, but
  // the pool's ratcheted size classes absorb the closed-loop burst without
  // a fresh allocation.
  const Protocol* proto = protocol_by_name("fast-read-mw-nogc(W2R1)");
  ASSERT_NE(proto, nullptr);
  SimHarness::Options o;
  o.cfg = ClusterConfig{5, 2, 1, 1};
  o.seed = 42;
  o.delay = std::make_unique<UniformDelay>(kMillisecond, 10 * kMillisecond);
  SimHarness h(*proto, std::move(o));

  WorkloadOptions w;
  w.ops_per_writer = 60;
  w.ops_per_reader = 60;
  run_random_workload(h, w);

  const std::uint64_t engine_allocs = h.sim().allocations();
  const BufferPool::Stats pool_warm = h.net().pool().stats();
  run_closed_loop_burst(h, 80);

  EXPECT_EQ(h.sim().allocations() - engine_allocs, 0u);
  EXPECT_EQ(h.net().pool().stats().misses - pool_warm.misses, 0u);
  EXPECT_GT(h.net().pool().stats().acquired, pool_warm.acquired);
}

TEST(AllocRegression, ReadAckScratchArenasStopGrowingAfterWarmup) {
  // The reply paths must not rebuild nested vectors per read ack: the
  // server snapshots into a reusable arena and the reader decodes into
  // reusable arenas. Arena grows() counts slot allocations; they can only
  // stop moving when the entry count is bounded, so the cluster mixes GC
  // servers with one full-ack (legacy-path) reader and one delta reader:
  // the full-ack reader drives snapshot() and decode_entries_into over a
  // GC-bounded valuevector, the delta reader keeps its side of the
  // machinery warm, and both carry watermarks that advance the floor. A
  // hand-wired cluster exposes the concrete types.
  const ClusterConfig cfg{5, 2, 2, 1};
  Simulator sim;
  Network net(sim, std::make_unique<ConstantDelay>(kMillisecond), Rng(3));
  FastReadServer::Options so;
  so.gc_enabled = true;
  std::vector<std::unique_ptr<FastReadServer>> servers;
  for (NodeId s : cfg.server_ids()) {
    servers.push_back(std::make_unique<FastReadServer>(s, net, cfg, so));
  }
  QueryThenWriter writer(cfg.writer_id(0), net, cfg);
  FastReader full_reader(cfg.reader_id(0), net, cfg, /*gc_enabled=*/false);
  FastReader delta_reader(cfg.reader_id(1), net, cfg, /*gc_enabled=*/true);
  auto cycle = [&](int ops) {
    for (int i = 0; i < ops; ++i) {
      writer.write(1000 + i, [](Tag) {});
      sim.run();
      full_reader.read([](TaggedValue) {});
      sim.run();
      delta_reader.read([](TaggedValue) {});
      sim.run();
    }
  };
  cycle(40);  // warmup: arenas and caches reach their working-set size

  // Sanity: the mixed cluster really is GC'd and both ack paths ran.
  for (const auto& s : servers) {
    ASSERT_GT(s->entries_pruned(), 0u);
    ASSERT_LE(s->valuevector_size(), 8u);
  }
  ASSERT_GT(full_reader.decode_arena_grows(), 0u);

  std::uint64_t server_grows = 0;
  for (const auto& s : servers) server_grows += s->snapshot_arena_grows();
  const std::uint64_t reader_grows = full_reader.decode_arena_grows();

  cycle(60);  // steady state

  std::uint64_t server_grows2 = 0;
  for (const auto& s : servers) server_grows2 += s->snapshot_arena_grows();
  EXPECT_EQ(server_grows2 - server_grows, 0u)
      << "a server rebuilt snapshot slots after warmup";
  EXPECT_EQ(full_reader.decode_arena_grows() - reader_grows, 0u)
      << "a reader rebuilt decode slots after warmup";
}

TEST(AllocRegression, LegacySnapshotArenaReusesSlotsAcrossReads) {
  // The full-ack path shares the same arenas: its valuevector grows with
  // every write, but between writes repeated reads must reuse the slots
  // (grows() moves only when the entry count itself grows).
  const ClusterConfig cfg{5, 2, 2, 1};
  Simulator sim;
  Network net(sim, std::make_unique<ConstantDelay>(kMillisecond), Rng(4));
  std::vector<std::unique_ptr<FastReadServer>> servers;
  for (NodeId s : cfg.server_ids()) {
    servers.push_back(std::make_unique<FastReadServer>(s, net, cfg));
  }
  QueryThenWriter writer(cfg.writer_id(0), net, cfg);
  FastReader reader(cfg.reader_id(0), net, cfg);
  for (int i = 0; i < 10; ++i) {
    writer.write(i, [](Tag) {});
    sim.run();
  }
  reader.read([](TaggedValue) {});
  sim.run();
  std::uint64_t grows = 0;
  for (const auto& s : servers) grows += s->snapshot_arena_grows();
  grows += reader.decode_arena_grows();
  for (int i = 0; i < 20; ++i) {  // reads only: the valuevector is static
    reader.read([](TaggedValue) {});
    sim.run();
  }
  std::uint64_t grows2 = 0;
  for (const auto& s : servers) grows2 += s->snapshot_arena_grows();
  grows2 += reader.decode_arena_grows();
  EXPECT_EQ(grows2 - grows, 0u);
}

TEST(AllocRegression, HundredThousandTableClientsSteadyStateAllocatesNothing) {
  // The million-client redesign's core claim: one harness, 10^5 concurrent
  // table-driven clients over a 64-key Zipfian keyspace, and once the event
  // slab, payload pool, and per-slot state are warm, further closed-loop
  // traffic allocates nothing from the engine or the pool.
  const Protocol* proto = protocol_by_name("mw-abd(W2R2)");
  ASSERT_NE(proto, nullptr);
  SimHarness::Options o;
  o.cfg = ClusterConfig{5, 50'000, 50'000, 1};
  o.keyspace = KeyspaceConfig{64, 8, 0.99};
  o.seed = 42;
  o.coalesce = false;  // per-message engine: the registered ablation lane
  SimHarness h(*proto, std::move(o));
  ASSERT_TRUE(h.table_mode());

  WorkloadOptions w;
  w.ops_per_writer = 2;
  w.ops_per_reader = 2;
  run_keyspace_workload(h, w);  // warmup: 2 * 10^5 closed-loop ops

  const std::uint64_t engine_allocs = h.sim().allocations();
  const BufferPool::Stats pool_warm = h.net().pool().stats();
  EXPECT_GT(pool_warm.acquired, 0u);

  WorkloadOptions w2;
  w2.ops_per_writer = 1;
  w2.ops_per_reader = 1;
  run_keyspace_workload(h, w2);  // steady state: 10^5 more ops, same table

  EXPECT_EQ(h.sim().allocations() - engine_allocs, 0u)
      << "slab chunks or closure heap-spills grew after warmup";
  EXPECT_EQ(h.net().pool().stats().misses - pool_warm.misses, 0u)
      << "a payload buffer was allocated fresh after warmup";
  EXPECT_GT(h.net().pool().stats().acquired, pool_warm.acquired);
  EXPECT_EQ(h.sim().alloc_stats().heap_spills, 0u);
}

TEST(AllocRegression, CoalescedHundredThousandClientsSteadyStateAllocatesNothing) {
  // Same 10^5-client workload with the batched delivery engine: batches,
  // frame slabs, and the open-batch table all ratchet their capacity during
  // warmup, after which coalesced steady-state traffic allocates nothing —
  // no engine slabs, no pool misses, and no new Batch objects (the batch
  // ring stops growing once the peak per-tick fan-in has been seen).
  const Protocol* proto = protocol_by_name("mw-abd(W2R2)");
  ASSERT_NE(proto, nullptr);
  SimHarness::Options o;
  o.cfg = ClusterConfig{5, 50'000, 50'000, 1};
  o.keyspace = KeyspaceConfig{64, 8, 0.99};
  o.seed = 42;
  o.coalesce = true;
  o.tick = 10 * kMicrosecond;  // coarse tick so batches actually form
  SimHarness h(*proto, std::move(o));
  ASSERT_TRUE(h.table_mode());

  WorkloadOptions w;
  w.ops_per_writer = 2;
  w.ops_per_reader = 2;
  run_keyspace_workload(h, w);  // warmup: 2 * 10^5 closed-loop ops

  const std::uint64_t engine_allocs = h.sim().allocations();
  const BufferPool::Stats pool_warm = h.net().pool().stats();
  const std::size_t batch_ring = h.net().batch_pool_size();
  const std::uint64_t dm_grows = h.net().dest_major_grows();
  EXPECT_GT(h.net().coalesce_stats().frames, 0u) << "nothing coalesced";
  EXPECT_GT(h.net().coalesce_stats().dest_major, 0u)
      << "no tick qualified for the destination-major drain";
  EXPECT_GT(h.net().coalesce_stats().staged, 0u)
      << "no reply was staged through the coalescing buffer";

  WorkloadOptions w2;
  w2.ops_per_writer = 1;
  w2.ops_per_reader = 1;
  run_keyspace_workload(h, w2);  // steady state: 10^5 more ops, same table

  EXPECT_EQ(h.sim().allocations() - engine_allocs, 0u)
      << "slab chunks or closure heap-spills grew after warmup";
  EXPECT_EQ(h.net().pool().stats().misses - pool_warm.misses, 0u)
      << "a payload buffer was allocated fresh after warmup";
  EXPECT_EQ(h.net().batch_pool_size(), batch_ring)
      << "a Batch was created after warmup: ring growth must be warmup-only";
  EXPECT_EQ(h.net().dest_major_grows() - dm_grows, 0u)
      << "dest-major grouping or reply-staging scratch grew after warmup";
  EXPECT_EQ(h.sim().alloc_stats().heap_spills, 0u);
}

TEST(AllocRegression, DeliveryClosureFitsTheInlineEventBudget) {
  // The per-hop closure (Network pointer + Message + send time) must stay
  // inside the simulator's inline storage: a heap spill on the delivery
  // path would silently reintroduce an allocation per message.
  const Protocol* proto = protocol_by_name("mw-abd(W2R2)");
  ASSERT_NE(proto, nullptr);
  SimHarness::Options o;
  o.cfg = ClusterConfig{3, 2, 2, 1};
  o.seed = 1;
  SimHarness h(*proto, std::move(o));
  WorkloadOptions w;
  w.ops_per_writer = 20;
  w.ops_per_reader = 20;
  run_random_workload(h, w);
  EXPECT_GT(h.net().stats().delivered, 0u);
  EXPECT_EQ(h.sim().alloc_stats().heap_spills, 0u)
      << "a hot-path closure outgrew Simulator::kInlineEventBytes";
}

}  // namespace
}  // namespace mwreg
