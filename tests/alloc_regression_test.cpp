// Allocation regression: steady-state simulation must be allocation-free
// as measured by the engine and pool counters.
//
// A fixed W2R1 workload warms the event slab and the payload pool; after
// that, further closed-loop traffic on the same harness must not move
// either counter: no new slab chunks, no closure heap-spills, no fresh
// payload buffers. This is the property the hot-path rearchitecture bought
// — any change that reintroduces a per-event or per-hop allocation (a
// closure that outgrows the inline budget, a payload that bypasses the
// pool) trips one of these counters.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "core/harness.h"
#include "core/workload.h"
#include "protocols/protocols.h"
#include "sim/buffer_pool.h"

namespace mwreg {
namespace {

/// Drive `ops` further closed-loop operations (alternating write/read on
/// client 0) against an already-warm harness. Everything is captured by
/// reference: the locals outlive h.run(), which returns at quiescence.
void run_closed_loop_burst(SimHarness& h, int ops) {
  int remaining = ops;
  std::function<void()> step;
  step = [&h, &remaining, &step]() {
    if (--remaining < 0) return;
    if (remaining % 2 == 0) {
      h.async_write(0, 5'000'000 + remaining, [&step]() { step(); });
    } else {
      h.async_read(0, [&step](TaggedValue) { step(); });
    }
  };
  step();
  h.run();
}

TEST(AllocRegression, SteadyStateW2R1WorkloadAllocatesNothing) {
  const Protocol* proto = protocol_by_name("fast-read-mw(W2R1)");
  ASSERT_NE(proto, nullptr);
  SimHarness::Options o;
  o.cfg = ClusterConfig{5, 2, 1, 1};
  o.seed = 42;
  o.delay = std::make_unique<UniformDelay>(kMillisecond, 10 * kMillisecond);
  SimHarness h(*proto, std::move(o));

  // Warmup: the fixed W2R1 workload (closed loop, every client).
  WorkloadOptions w;
  w.ops_per_writer = 60;
  w.ops_per_reader = 60;
  run_random_workload(h, w);

  const std::uint64_t engine_allocs = h.sim().allocations();
  const BufferPool::Stats pool_warm = h.net().pool().stats();
  EXPECT_GT(pool_warm.acquired, 0u);
  EXPECT_GT(pool_warm.recycled, 0u);

  // Steady state: a closed loop never needs a larger working set than the
  // run that warmed the slab and the pool.
  run_closed_loop_burst(h, 80);

  EXPECT_EQ(h.sim().allocations() - engine_allocs, 0u)
      << "slab chunks or closure heap-spills grew after warmup";
  EXPECT_EQ(h.net().pool().stats().misses - pool_warm.misses, 0u)
      << "a payload buffer was allocated fresh after warmup";
  // The burst really did run traffic through the pool.
  EXPECT_GT(h.net().pool().stats().acquired, pool_warm.acquired);
}

TEST(AllocRegression, DeliveryClosureFitsTheInlineEventBudget) {
  // The per-hop closure (Network pointer + Message + send time) must stay
  // inside the simulator's inline storage: a heap spill on the delivery
  // path would silently reintroduce an allocation per message.
  const Protocol* proto = protocol_by_name("mw-abd(W2R2)");
  ASSERT_NE(proto, nullptr);
  SimHarness::Options o;
  o.cfg = ClusterConfig{3, 2, 2, 1};
  o.seed = 1;
  SimHarness h(*proto, std::move(o));
  WorkloadOptions w;
  w.ops_per_writer = 20;
  w.ops_per_reader = 20;
  run_random_workload(h, w);
  EXPECT_GT(h.net().stats().delivered, 0u);
  EXPECT_EQ(h.sim().alloc_stats().heap_spills, 0u)
      << "a hot-path closure outgrew Simulator::kInlineEventBytes";
}

}  // namespace
}  // namespace mwreg
