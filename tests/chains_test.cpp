// Tests for the chain-argument engines: every structural indistinguishability
// claim of Sections 3-4 holds, and every decision rule -- named or randomly
// generated -- gets a concrete, Wing-Gong-verified violating execution.
#include <gtest/gtest.h>

#include "chains/fastread_adversary.h"
#include "chains/sieve.h"
#include "chains/w1r1.h"
#include "chains/w1r2_engine.h"
#include "fullinfo/rules.h"

namespace mwreg::chains {
namespace {

using fullinfo::RandomizedRule;
using fullinfo::standard_rules;

// ---------- Construction verification (Figs. 4-7) ----------

class ConstructionChecks : public ::testing::TestWithParam<int> {};

TEST_P(ConstructionChecks, AllW1R2LinksHold) {
  const int S = GetParam();
  for (const LinkCheck& c : verify_w1r2_construction(S)) {
    EXPECT_TRUE(c.ok) << "S=" << S << " " << c.name << "\n" << c.detail;
  }
}

TEST_P(ConstructionChecks, AllW1R1LinksHold) {
  const int S = GetParam();
  for (const LinkCheck& c : verify_w1r1_construction(S)) {
    EXPECT_TRUE(c.ok) << "S=" << S << " " << c.name << "\n" << c.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ConstructionChecks,
                         ::testing::Values(3, 4, 5, 6, 7, 8));

// ---------- Theorem 1: every rule gets a certificate ----------

class StandardRuleImpossibility
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StandardRuleImpossibility, W1R2CertificateFound) {
  const int S = std::get<0>(GetParam());
  const int idx = std::get<1>(GetParam());
  auto rules = standard_rules();
  ASSERT_LT(static_cast<std::size_t>(idx), rules.size());
  const Certificate cert = prove_w1r2_impossible(*rules[static_cast<std::size_t>(idx)], S);
  EXPECT_TRUE(cert.found) << cert.rule_name << " S=" << S << "\n"
                          << cert.narrative.back();
  EXPECT_FALSE(cert.wg_violation.empty());
  EXPECT_GT(cert.executions_checked, 0);
}

TEST_P(StandardRuleImpossibility, W1R1CertificateFound) {
  const int S = std::get<0>(GetParam());
  const int idx = std::get<1>(GetParam());
  auto rules = standard_rules();
  const Certificate cert = prove_w1r1_impossible(*rules[static_cast<std::size_t>(idx)], S);
  EXPECT_TRUE(cert.found) << cert.rule_name << " S=" << S;
}

INSTANTIATE_TEST_SUITE_P(Grid, StandardRuleImpossibility,
                         ::testing::Combine(::testing::Values(3, 4, 5, 7),
                                            ::testing::Values(0, 1, 2, 3, 4, 5)));

// Property sweep: hundreds of arbitrary (randomized) decision rules, both
// with sane forced ends (exercising the deep phases) and fully wild.
class RandomRuleImpossibility : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomRuleImpossibility, W1R2CertificateFoundForArbitraryRules) {
  const std::uint64_t base = GetParam() * 100;
  for (std::uint64_t s = base; s < base + 25; ++s) {
    {
      const RandomizedRule rule(s, /*force_sane_ends=*/true);
      const Certificate cert = prove_w1r2_impossible(rule, 4);
      EXPECT_TRUE(cert.found) << rule.name();
    }
    {
      const RandomizedRule rule(s, /*force_sane_ends=*/false);
      const Certificate cert = prove_w1r2_impossible(rule, 4);
      EXPECT_TRUE(cert.found) << rule.name();
    }
  }
}

TEST_P(RandomRuleImpossibility, W1R1CertificateFoundForArbitraryRules) {
  const std::uint64_t base = GetParam() * 100;
  for (std::uint64_t s = base; s < base + 25; ++s) {
    const RandomizedRule rule(s, s % 2 == 0);
    const Certificate cert = prove_w1r1_impossible(rule, 5);
    EXPECT_TRUE(cert.found) << rule.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRuleImpossibility,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(CertificateContents, NarrativeAndDumpsPopulated) {
  const fullinfo::MajorityOrderRule rule;
  const Certificate cert = prove_w1r2_impossible(rule, 5);
  ASSERT_TRUE(cert.found);
  EXPECT_FALSE(cert.execution_label.empty());
  EXPECT_FALSE(cert.execution_dump.empty());
  EXPECT_FALSE(cert.history_dump.empty());
  EXPECT_GE(cert.narrative.size(), 2u);
  // The majority rule survives the alpha ends, so the engine must have
  // located a critical server before finding the violation.
  EXPECT_GE(cert.critical_server, 1);
  EXPECT_LE(cert.critical_server, 5);
}

TEST(CertificateContents, DeepPhaseReachedForSaneRules) {
  // Sane rules pass Phase 1; their violation must be in a beta/gamma/temp
  // execution (Phase 2/3), demonstrating that the extra read round really
  // requires the extra chains.
  int deep = 0;
  for (const auto& rule : standard_rules()) {
    const Certificate cert = prove_w1r2_impossible(*rule, 4);
    ASSERT_TRUE(cert.found) << rule->name();
    if (cert.execution_label.find("alpha") == std::string::npos) ++deep;
  }
  EXPECT_GT(deep, 0);
}

// ---------- Sieve (Section 4.2, Fig. 8) ----------

TEST(Sieve, ChainArgumentSurvivesForStandardRules) {
  for (const auto& rule : standard_rules()) {
    for (int S = 5; S <= 8; ++S) {
      for (int x = 3; x <= S; ++x) {
        const SieveResult res = run_sieve(*rule, S, x);
        EXPECT_TRUE(res.sigma1_constant_ok) << rule->name();
        EXPECT_TRUE(res.chain_argument_survives())
            << rule->name() << " S=" << S << " x=" << x;
        EXPECT_GE(res.pivot, 1);
        EXPECT_LE(res.pivot, x);
      }
    }
  }
}

TEST(Sieve, ShortenedChainHasLengthXPlusOne) {
  const fullinfo::MajorityOrderRule rule;
  const SieveResult res = run_sieve(rule, 8, 4);
  EXPECT_EQ(res.r1_values.size(), 5u);
  EXPECT_EQ(res.r1_values.front(), 2);
  EXPECT_EQ(res.r1_values.back(), 1);
}

TEST(Sieve, TooFewUnaffectedServersFlagged) {
  const fullinfo::MajorityOrderRule rule;
  // x must be >= 3 for the downstream argument (t = 1 needs S >= 3).
  const SieveResult res = run_sieve(rule, 8, 3);
  EXPECT_TRUE(res.enough_servers);
}

// ---------- Fig. 9: the fast-read feasibility frontier ----------

TEST(FastReadAdversary, ViolationAtTheBoundary) {
  // S = 5, t = 1, R = 3: R >= S/t - 2 = 3, the impossible region.
  const FastReadAdversaryResult res = run_fastread_adversary(5, 1, 3);
  EXPECT_TRUE(res.bound_violated);
  EXPECT_TRUE(res.violation_found) << res.history_dump;
  EXPECT_EQ(res.flip_read_payload, 42) << "flip read must return the new value";
  EXPECT_EQ(res.stale_read_payload, 0) << "stale read must return the old value";
}

TEST(FastReadAdversary, NoViolationBelowTheBound) {
  // S = 6, t = 1, R = 3: R < S/t - 2 = 4, Algorithm 1 & 2 is safe.
  const FastReadAdversaryResult res = run_fastread_adversary(6, 1, 3);
  EXPECT_FALSE(res.bound_violated);
  EXPECT_FALSE(res.violation_found) << res.check_detail << "\n"
                                    << res.history_dump;
  EXPECT_EQ(res.flip_read_payload, 0) << "admissibility must not trip";
}

class FrontierSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(FrontierSweep, ViolationIffBoundViolated) {
  const auto [S, t, R] = GetParam();
  const FastReadAdversaryResult res = run_fastread_adversary(S, t, R);
  EXPECT_EQ(res.violation_found, res.bound_violated)
      << "S=" << S << " t=" << t << " R=" << R << "\n"
      << res.check_detail << res.history_dump;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FrontierSweep,
    ::testing::Values(std::tuple{4, 1, 2}, std::tuple{5, 1, 2},
                      std::tuple{5, 1, 3}, std::tuple{6, 1, 3},
                      std::tuple{6, 1, 4}, std::tuple{7, 1, 4},
                      std::tuple{7, 1, 5}, std::tuple{8, 1, 5},
                      std::tuple{8, 2, 2}, std::tuple{9, 2, 2},
                      std::tuple{10, 2, 3}, std::tuple{12, 2, 3},
                      std::tuple{12, 3, 2}, std::tuple{13, 3, 2}));

}  // namespace
}  // namespace mwreg::chains
