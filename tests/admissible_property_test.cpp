// Property tests for Algorithm 1's admissible(.) predicate: the pruned
// subset search must agree with a brute-force reference on random inputs,
// and the predicate must be monotone in the ways the correctness proofs
// rely on (Lemmas 8-10).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "protocols/fastread_clients.h"

namespace mwreg {
namespace {

/// Brute-force reference: enumerate ALL subsets of messages containing v,
/// and for each check |mu| >= max(1, S - a*t) and |intersection| >= a.
bool admissible_reference(const TaggedValue& v,
                          const std::vector<std::vector<FrEntry>>& msgs, int a,
                          int S, int t) {
  std::vector<std::uint64_t> sets;
  for (const auto& m : msgs) {
    for (const FrEntry& e : m) {
      if (e.value == v) {
        std::uint64_t mask = 0;
        for (NodeId c : e.updated) mask |= 1ULL << c;
        sets.push_back(mask);
        break;
      }
    }
  }
  const int need = std::max(1, S - a * t);
  const std::size_t n = sets.size();
  if (n > 20) return false;  // reference is exponential; keep inputs small
  for (std::uint64_t sub = 1; sub < (1ULL << n); ++sub) {
    if (__builtin_popcountll(sub) < need) continue;
    std::uint64_t inter = ~0ULL;
    for (std::size_t i = 0; i < n; ++i) {
      if (sub & (1ULL << i)) inter &= sets[i];
    }
    if (__builtin_popcountll(inter) >= a) return true;
  }
  return false;
}

std::vector<std::vector<FrEntry>> random_msgs(Rng& rng, const TaggedValue& v,
                                              int n_msgs, int clients) {
  std::vector<std::vector<FrEntry>> msgs;
  for (int m = 0; m < n_msgs; ++m) {
    std::vector<FrEntry> entries;
    if (rng.next_bool(0.8)) {  // message "has v"
      FrEntry e;
      e.value = v;
      for (NodeId c = 0; c < clients; ++c) {
        if (rng.next_bool(0.5)) e.updated.push_back(c);
      }
      entries.push_back(std::move(e));
    }
    if (rng.next_bool(0.5)) {  // unrelated entry
      FrEntry other;
      other.value = TaggedValue{Tag{99, 99}, 99};
      other.updated = {static_cast<NodeId>(rng.next_below(
          static_cast<std::uint64_t>(clients)))};
      entries.push_back(std::move(other));
    }
    msgs.push_back(std::move(entries));
  }
  return msgs;
}

class AdmissibleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdmissibleProperty, MatchesBruteForceReference) {
  Rng rng(GetParam());
  const TaggedValue v{Tag{1, 0}, 1};
  for (int iter = 0; iter < 300; ++iter) {
    const int S = 3 + static_cast<int>(rng.next_below(6));
    const int t = 1 + static_cast<int>(rng.next_below(2));
    const int n_msgs = 1 + static_cast<int>(rng.next_below(
                               static_cast<std::uint64_t>(S)));
    const auto msgs = random_msgs(rng, v, n_msgs, 6);
    for (int a = 1; a <= 4; ++a) {
      EXPECT_EQ(admissible(v, msgs, a, S, t),
                admissible_reference(v, msgs, a, S, t))
          << "S=" << S << " t=" << t << " a=" << a << " msgs=" << n_msgs;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdmissibleProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(AdmissibleMonotone, AddingWitnessClientsPreservesAdmissibility) {
  // Lemma 8's engine: updated sets only grow, and growth never revokes
  // admissibility.
  Rng rng(7);
  const TaggedValue v{Tag{1, 0}, 1};
  for (int iter = 0; iter < 200; ++iter) {
    auto msgs = random_msgs(rng, v, 5, 5);
    const int S = 6, t = 1;
    for (int a = 1; a <= 3; ++a) {
      if (!admissible(v, msgs, a, S, t)) continue;
      auto grown = msgs;
      for (auto& m : grown) {
        for (FrEntry& e : m) {
          if (e.value == v && rng.next_bool(0.5)) e.updated.push_back(5);
        }
      }
      EXPECT_TRUE(admissible(v, grown, a, S, t)) << "a=" << a;
    }
  }
}

TEST(AdmissibleMonotone, MoreMessagesWithVPreserveAdmissibility) {
  Rng rng(9);
  const TaggedValue v{Tag{1, 0}, 1};
  for (int iter = 0; iter < 200; ++iter) {
    auto msgs = random_msgs(rng, v, 4, 5);
    const int S = 5, t = 1;
    if (!admissible(v, msgs, 2, S, t)) continue;
    // A fresh message carrying v with a superset witness set cannot hurt:
    // the original mu is still available.
    FrEntry e;
    e.value = v;
    e.updated = {0, 1, 2, 3, 4};
    msgs.push_back({e});
    EXPECT_TRUE(admissible(v, msgs, 2, S, t));
  }
}

TEST(AdmissibleBounds, FeasibleRegionArithmetic) {
  // At the Fig. 9 boundary S = (R+2)t, a value held by exactly t servers
  // with R+1 common witnesses is admissible at degree R+1 -- and is not
  // when S grows by one (the feasible side).
  const TaggedValue v{Tag{1, 0}, 1};
  for (int t = 1; t <= 3; ++t) {
    for (int R = 2; R <= 5; ++R) {
      std::vector<NodeId> witnesses;
      for (NodeId c = 0; c <= R; ++c) witnesses.push_back(c);  // R+1 clients
      std::vector<std::vector<FrEntry>> msgs;
      for (int i = 0; i < t; ++i) {
        FrEntry e;
        e.value = v;
        e.updated = witnesses;
        msgs.push_back({e});
      }
      bool any_boundary = false, any_feasible = false;
      for (int a = 1; a <= R + 1; ++a) {
        any_boundary |= admissible(v, msgs, a, (R + 2) * t, t);
        any_feasible |= admissible(v, msgs, a, (R + 2) * t + 1, t);
      }
      EXPECT_TRUE(any_boundary) << "t=" << t << " R=" << R;
      EXPECT_FALSE(any_feasible) << "t=" << t << " R=" << R;
    }
  }
}

}  // namespace
}  // namespace mwreg
