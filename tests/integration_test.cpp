// End-to-end integration: geo-replicated deployments, FIFO vs non-FIFO
// channels, heavy-tailed delays, the universal impossibility engine, and
// cross-cutting invariants between the protocol layer and the chain layer.
#include <gtest/gtest.h>

#include <memory>

#include "chains/universal.h"
#include "consistency/checkers.h"
#include "consistency/weak_checkers.h"
#include "core/harness.h"
#include "core/workload.h"
#include "protocols/protocols.h"

namespace mwreg {
namespace {

std::unique_ptr<DelayModel> geo_delay(const ClusterConfig& cfg) {
  std::vector<std::vector<double>> rtt{{2, 80, 100}, {80, 2, 150},
                                       {100, 150, 2}};
  std::vector<int> site(static_cast<std::size_t>(cfg.total_nodes()), 0);
  for (int s = 0; s < cfg.s(); ++s) site[static_cast<std::size_t>(s)] = s % 3;
  return std::make_unique<GeoDelay>(std::move(rtt), std::move(site));
}

TEST(Integration, GeoReplicatedClusterStaysAtomic) {
  const ClusterConfig cfg{6, 2, 3, 1};
  SimHarness::Options o;
  o.cfg = cfg;
  o.seed = 3;
  o.delay = geo_delay(cfg);
  SimHarness h(*protocol_by_name("fast-read-mw(W2R1)"), std::move(o));
  WorkloadOptions w;
  w.ops_per_writer = 20;
  w.ops_per_reader = 20;
  run_random_workload(h, w);
  EXPECT_EQ(h.history().completed_count(), 100u);
  EXPECT_TRUE(check_tag_witness(h.history()).atomic);

  // Geo sanity: fast reads must beat slow writes on the same deployment.
  const LatencyStats ws = latency_of(h.history(), OpKind::kWrite);
  const LatencyStats rs = latency_of(h.history(), OpKind::kRead);
  EXPECT_LT(rs.p50_ms, ws.p50_ms);
}

TEST(Integration, FifoAndNonFifoBothAtomic) {
  for (const bool fifo : {false, true}) {
    SimHarness::Options o;
    o.cfg = ClusterConfig{5, 2, 2, 2};
    o.seed = 5;
    o.fifo = fifo;
    SimHarness h(*protocol_by_name("mw-abd(W2R2)"), std::move(o));
    WorkloadOptions w;
    run_random_workload(h, w);
    EXPECT_TRUE(check_tag_witness(h.history()).atomic) << "fifo=" << fifo;
  }
}

TEST(Integration, HeavyTailedDelaysAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SimHarness::Options o;
    o.cfg = ClusterConfig{7, 2, 4, 1};
    o.seed = seed;
    o.delay = std::make_unique<LogNormalDelay>(2 * kMillisecond, 1.5);
    SimHarness h(*protocol_by_name("fast-read-mw(W2R1)"), std::move(o));
    WorkloadOptions w;
    w.ops_per_writer = 15;
    w.ops_per_reader = 15;
    run_random_workload(h, w);
    const CheckResult r = check_tag_witness(h.history());
    EXPECT_TRUE(r.atomic) << "seed " << seed << ": " << r.violation;
  }
}

TEST(Integration, EveryProtocolMeetsItsOwnGuarantee) {
  // Protocol metadata (round-trips, feasibility predicate) must agree with
  // measured behavior on a feasible configuration.
  struct Cell {
    const char* name;
    ClusterConfig cfg;
    const char* guarantee;  // "atomic" or "regular"
  };
  const Cell cells[] = {
      {"mw-abd(W2R2)", ClusterConfig{5, 2, 2, 2}, "atomic"},
      {"abd-swmr(W1R2)", ClusterConfig{5, 1, 2, 2}, "atomic"},
      {"fast-read-mw(W2R1)", ClusterConfig{6, 2, 3, 1}, "atomic"},
      {"fast-swmr(W1R1)", ClusterConfig{6, 1, 3, 1}, "atomic"},
      {"regular-fast-read(W2R1)", ClusterConfig{5, 2, 2, 2}, "regular"},
  };
  for (const Cell& c : cells) {
    const Protocol* p = protocol_by_name(c.name);
    ASSERT_NE(p, nullptr) << c.name;
    if (std::string(c.guarantee) == "atomic") {
      EXPECT_TRUE(p->guarantees_atomicity(c.cfg)) << c.name;
    }
    SimHarness::Options o;
    o.cfg = c.cfg;
    o.seed = 9;
    SimHarness h(*p, std::move(o));
    WorkloadOptions w;
    run_random_workload(h, w);
    const CheckResult r = std::string(c.guarantee) == "atomic"
                              ? check_tag_witness(h.history())
                              : check_regular(h.history());
    EXPECT_TRUE(r.atomic) << c.name << ": " << r.violation;
  }
}

TEST(Integration, RoundTripMetadataMatchesMeasuredLatency) {
  for (const Protocol* p : all_protocols()) {
    const ClusterConfig cfg{7, 1, 2, 1};
    const Duration d = 1 * kMillisecond;
    SimHarness::Options o;
    o.cfg = cfg;
    o.seed = 1;
    o.delay = std::make_unique<ConstantDelay>(d);
    SimHarness h(*p, std::move(o));
    const Time t0 = h.sim().now();
    h.async_write(0, 1);
    h.run();
    EXPECT_EQ(h.sim().now() - t0, p->write_round_trips() * 2 * d) << p->name();
    const Time t1 = h.sim().now();
    h.async_read(0);
    h.run();
    EXPECT_EQ(h.sim().now() - t1, p->read_round_trips() * 2 * d) << p->name();
  }
}

TEST(Integration, LiteralAlgorithm2LosesMwa2UnderReordering) {
  // The ablation behind DESIGN.md section 5.1: the pseudocode-as-printed
  // server variant must exhibit atomicity violations across heavy-tailed
  // seeds, while the clarified server (same seeds, HeavyTailedDelaysAcross-
  // Seeds above) never does.
  int violations = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SimHarness::Options o;
    o.cfg = ClusterConfig{7, 2, 4, 1};
    o.seed = seed;
    o.delay = std::make_unique<LogNormalDelay>(2 * kMillisecond, 1.5);
    SimHarness h(*protocol_by_name("fast-read-mw-literal(W2R1)"), std::move(o));
    WorkloadOptions w;
    w.ops_per_writer = 15;
    w.ops_per_reader = 15;
    run_random_workload(h, w);
    violations += !check_tag_witness(h.history()).atomic;
  }
  EXPECT_GT(violations, 0)
      << "the literal Algorithm 2 server unexpectedly survived all seeds";
}

// ---------- Universal impossibility engine ----------

class UniversalTheorem : public ::testing::TestWithParam<int> {};

TEST_P(UniversalTheorem, W1R2UnsatForAllRules) {
  const chains::UniversalResult r = chains::prove_w1r2_universal(GetParam());
  EXPECT_TRUE(r.unsat) << r.narrative.back();
  EXPECT_GT(r.view_classes, 0u);
  EXPECT_GT(r.equality_edges, 0u);
}

TEST_P(UniversalTheorem, W1R1UnsatForAllRules) {
  const chains::UniversalResult r = chains::prove_w1r1_universal(GetParam());
  EXPECT_TRUE(r.unsat) << r.narrative.back();
}

INSTANTIATE_TEST_SUITE_P(Sizes, UniversalTheorem,
                         ::testing::Values(3, 4, 5, 6, 8, 10));

TEST(UniversalTheorem, GrowthIsPolynomial) {
  // The executions visited grow ~ S^2 -- the proof scales far beyond the
  // minimal S = 3 instance.
  const chains::UniversalResult small = chains::prove_w1r2_universal(4);
  const chains::UniversalResult big = chains::prove_w1r2_universal(8);
  EXPECT_LT(big.executions, small.executions * 8);
  EXPECT_TRUE(big.unsat);
}

}  // namespace
}  // namespace mwreg
