// Streaming tag-witness checker tests: registry surface, refusal semantics,
// verdict parity against the batch checkers (canned histories, randomized
// histories, live fault-scenario runs, adversary-injected violations), and
// the bounded-window / history-retirement guarantees on long runs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chains/fastread_adversary.h"
#include "common/rng.h"
#include "consistency/checkers.h"
#include "consistency/history.h"
#include "consistency/streaming_checker.h"
#include "core/harness.h"
#include "core/workload.h"
#include "protocols/protocols.h"
#include "sim/fault_plan.h"

namespace mwreg {
namespace {

// Same convenience builder as consistency_test.cpp.
struct Builder {
  History h;
  NodeId next_client = 100;

  OpId write(Time s, Time f, Tag tag, std::int64_t payload,
             NodeId client = kNoNode) {
    const OpId id = h.begin_op(client == kNoNode ? next_client++ : client,
                               OpKind::kWrite, s);
    if (f != kTimeMax) {
      h.end_op(id, f, TaggedValue{tag, payload});
    } else {
      h.set_value(id, TaggedValue{tag, payload});  // pending, tag known
    }
    return id;
  }
  OpId read(Time s, Time f, Tag tag, std::int64_t payload,
            NodeId client = kNoNode) {
    const OpId id = h.begin_op(client == kNoNode ? next_client++ : client,
                               OpKind::kRead, s);
    if (f != kTimeMax) h.end_op(id, f, TaggedValue{tag, payload});
    return id;
  }
};

void expect_stream_parity(const History& h, const char* what) {
  const CheckResult batch = check_tag_witness(h);
  const CheckResult stream = check_streaming(h);
  EXPECT_EQ(stream.atomic, batch.atomic)
      << what << ": streaming disagrees with batch on\n"
      << h.to_string() << "batch: " << batch.violation
      << "\nstream: " << stream.violation;
  if (!stream.atomic) {
    EXPECT_FALSE(stream.violation.empty()) << what;
  }
}

// ---------- registry ----------

TEST(CheckerRegistry, EnumeratesAllFourCheckers) {
  const std::vector<const AtomicityChecker*>& all = all_checkers();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0]->name(), "tag-witness");
  EXPECT_EQ(all[1]->name(), "wing-gong");
  EXPECT_EQ(all[2]->name(), "unique-value-graph");
  EXPECT_EQ(all[3]->name(), "streaming-tag-witness");
  for (const AtomicityChecker* c : all) {
    EXPECT_EQ(checker_by_name(c->name()), c);
  }
  EXPECT_EQ(checker_by_name("no-such-checker"), nullptr);
}

TEST(CheckerRegistry, OnlyTheStreamingCheckerOffersAFeed) {
  for (const AtomicityChecker* c : all_checkers()) {
    auto feed = c->make_streaming();
    if (c->name() == "streaming-tag-witness") {
      EXPECT_NE(feed, nullptr);
    } else {
      EXPECT_EQ(feed, nullptr);
    }
  }
}

TEST(CheckerRegistry, CheckForwardsToTheSameAlgorithmsAsTheShims) {
  Builder b;
  b.write(0, 10, Tag{1, 0}, 1);
  b.write(20, 30, Tag{2, 1}, 2);
  b.read(40, 50, Tag{1, 0}, 1);  // stale: every checker rejects
  for (const AtomicityChecker* c : all_checkers()) {
    const CheckResult r = c->check(b.h);
    EXPECT_TRUE(r.decided()) << c->name();
    EXPECT_FALSE(r.atomic) << c->name();
  }
}

// ---------- refusal semantics ----------

TEST(CheckerRegistry, WingGongRefusalIsNotAVerdict) {
  Builder b;
  Time t = 0;
  for (int i = 1; i <= 13; ++i) {  // 26 ops > the default 24-op bound
    b.write(t, t + 5, Tag{i, 0}, i);
    b.read(t + 6, t + 9, Tag{i, 0}, i);
    t += 10;
  }
  const CheckResult refused = check_wing_gong(b.h);
  EXPECT_TRUE(refused.refused);
  EXPECT_FALSE(refused.decided());
  EXPECT_TRUE(refused.atomic) << "a refusal must not read as a violation";

  // A history under the bound gets a real verdict — and a caller-lowered
  // bound turns that same history into a refusal, not a violation.
  Builder small;
  small.write(0, 10, Tag{1, 0}, 1);
  small.read(20, 30, Tag{1, 0}, 1);
  small.write(40, 50, Tag{2, 1}, 2);
  small.read(60, 70, Tag{2, 1}, 2);
  const CheckResult decided = check_wing_gong(small.h);
  EXPECT_TRUE(decided.decided());
  EXPECT_TRUE(decided.atomic) << decided.violation;
  const CheckResult lowered = check_wing_gong(small.h, 2);
  EXPECT_TRUE(lowered.refused);
  EXPECT_TRUE(lowered.atomic);

  // The other checkers never refuse.
  EXPECT_FALSE(check_tag_witness(b.h).refused);
  EXPECT_FALSE(check_unique_value_graph(b.h).refused);
  EXPECT_FALSE(check_streaming(b.h).refused);
}

// ---------- canned-history parity ----------

TEST(StreamingChecker, MatchesBatchOnCannedHistories) {
  {
    History h;
    expect_stream_parity(h, "empty");
  }
  {
    Builder b;
    b.write(0, 10, Tag{1, 0}, 11);
    b.read(20, 30, Tag{1, 0}, 11);
    expect_stream_parity(b.h, "sequential write/read");
  }
  {
    Builder b;
    b.read(0, 5, kBottomTag, 0);
    b.write(10, 20, Tag{1, 0}, 1);
    expect_stream_parity(b.h, "initial bottom read");
  }
  {
    Builder b;
    b.write(0, 10, Tag{1, 0}, 1);
    b.write(20, 30, Tag{2, 1}, 2);
    b.read(40, 50, Tag{1, 0}, 1);
    expect_stream_parity(b.h, "stale read");
  }
  {
    Builder b;
    b.write(0, 10, Tag{1, 0}, 1);
    b.write(20, 100, Tag{2, 1}, 2);
    b.read(30, 35, Tag{2, 1}, 2);
    b.read(40, 45, Tag{1, 0}, 1);
    expect_stream_parity(b.h, "new/old inversion");
  }
  {
    Builder b;
    b.read(0, 5, Tag{1, 0}, 1);
    b.write(10, 20, Tag{1, 0}, 1);
    expect_stream_parity(b.h, "read from the future");
  }
  {
    Builder b;
    b.write(0, 10, Tag{1, 0}, 1);
    b.read(20, 30, Tag{9, 9}, 9);
    expect_stream_parity(b.h, "value never written");
  }
  {
    Builder b;
    b.write(0, 10, Tag{1, 0}, 1);
    b.read(20, 30, Tag{1, 0}, 999);
    expect_stream_parity(b.h, "payload mismatch");
  }
  {
    Builder b;
    b.write(0, kTimeMax, Tag{1, 0}, 1);  // pending write, tag recorded
    b.read(50, 60, Tag{1, 0}, 1);
    b.read(70, 80, Tag{1, 0}, 1);
    expect_stream_parity(b.h, "pending write read twice");
  }
  {
    Builder b;
    b.write(0, kTimeMax, Tag{5, 0}, 5);
    b.read(50, 60, Tag{5, 0}, 5);
    b.read(70, 80, kBottomTag, 0);  // flip-flop back to bottom
    expect_stream_parity(b.h, "pending write flip-flop");
  }
  {
    Builder b;
    b.write(0, 10, Tag{1, 0}, 1);
    b.read(20, 30, kBottomTag, 0);
    expect_stream_parity(b.h, "stale bottom read");
  }
  {
    Builder b;
    b.write(0, 10, Tag{2, 0}, 2);  // tags against real time, no reads
    b.write(20, 30, Tag{1, 1}, 1);
    expect_stream_parity(b.h, "write tags out of order");
  }
  {
    Builder b;
    b.write(0, 10, Tag{1, 0}, 1);
    b.write(20, 30, Tag{1, 0}, 2);  // duplicate completed tags
    expect_stream_parity(b.h, "duplicate write tags");
  }
  {
    Builder b;
    Time t = 0;
    for (int i = 1; i <= 8; ++i) {
      b.write(t, t + 5, Tag{i, 0}, i * 10);
      b.read(t + 6, t + 9, Tag{i, 0}, i * 10);
      t += 10;
    }
    expect_stream_parity(b.h, "long atomic sequence");
  }
}

TEST(StreamingChecker, RejectsMalformedHistories) {
  History h;
  const OpId a = h.begin_op(1, OpKind::kWrite, 10);
  h.begin_op(1, OpKind::kWrite, 12);  // same client, first op still pending
  h.end_op(a, 20, TaggedValue{Tag{1, 0}, 1});
  ASSERT_FALSE(h.well_formed());
  const CheckResult r = check_streaming(h);
  EXPECT_TRUE(r.decided());
  EXPECT_FALSE(r.atomic);
}

// ---------- randomized parity ----------

History random_history(Rng& rng, int n_writes, int n_reads) {
  Builder b;
  struct W {
    Tag tag;
    std::int64_t payload;
  };
  std::vector<W> writes;
  for (int i = 0; i < n_writes; ++i) {
    const Tag tag{rng.next_in(1, 4), static_cast<NodeId>(i)};
    writes.push_back(W{tag, tag.ts * 100 + i});
  }
  const Time horizon = 100;
  for (const W& w : writes) {
    const Time s = rng.next_in(0, horizon);
    const bool pending = rng.next_bool(0.15);
    const Time f = pending ? kTimeMax : rng.next_in(s, horizon + 20);
    b.write(s, f, w.tag, w.payload);
  }
  for (int i = 0; i < n_reads; ++i) {
    const Time s = rng.next_in(0, horizon);
    const Time f = rng.next_in(s, horizon + 20);
    if (!writes.empty() && rng.next_bool(0.8)) {
      const W& w = writes[rng.next_below(writes.size())];
      b.read(s, f, w.tag, w.payload);
    } else {
      b.read(s, f, kBottomTag, 0);
    }
  }
  return std::move(b.h);
}

class StreamingCrossValidation : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(StreamingCrossValidation, AgreesWithBatchTagWitness) {
  Rng rng(GetParam());
  int atomic_count = 0, non_atomic_count = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const History h =
        random_history(rng, 2 + static_cast<int>(rng.next_below(4)),
                       2 + static_cast<int>(rng.next_below(5)));
    const CheckResult batch = check_tag_witness(h);
    const CheckResult stream = check_streaming(h);
    EXPECT_EQ(stream.atomic, batch.atomic)
        << "disagreement on history:\n"
        << h.to_string() << "batch: " << batch.violation
        << "\nstream: " << stream.violation;
    (batch.atomic ? atomic_count : non_atomic_count)++;
  }
  // The generator must exercise both outcomes to be meaningful.
  EXPECT_GT(atomic_count, 0);
  EXPECT_GT(non_atomic_count, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingCrossValidation,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------- live parity on the simulator ----------

TEST(StreamingChecker, LiveVerdictMatchesBatchAcrossFaultScenarios) {
  const Protocol* proto = protocol_by_name("mw-abd(W2R2)");
  ASSERT_NE(proto, nullptr);
  std::uint64_t seed = 41;
  for (const FaultPlan& plan : scenarios::all()) {
    SimHarness::Options o;
    o.cfg = ClusterConfig{5, 2, 2, 2};
    o.seed = seed++;
    o.streaming_check = true;
    SimHarness h(*proto, std::move(o));
    h.install_fault_plan(plan);

    WorkloadOptions w;
    w.ops_per_writer = 8;
    w.ops_per_reader = 8;
    run_random_workload(h, w);

    const CheckResult batch = check_tag_witness(h.history());
    const CheckResult stream = h.stream_checker(0)->finish();
    EXPECT_EQ(stream.atomic, batch.atomic)
        << "plan " << plan.name << ": batch says " << batch.violation
        << ", stream says " << stream.violation;
    EXPECT_TRUE(stream.atomic)
        << "plan " << plan.name << ": " << stream.violation;
  }
}

TEST(StreamingChecker, LiveVerdictMatchesBatchPerKeyOnAKeyspace) {
  const Protocol* proto = protocol_by_name("mw-abd(W2R2)");
  ASSERT_NE(proto, nullptr);
  SimHarness::Options o;
  o.cfg = ClusterConfig{5, 2, 2, 2};
  o.seed = 43;
  o.keyspace = KeyspaceConfig{4, 2, 0.8};
  o.streaming_check = true;
  SimHarness h(*proto, std::move(o));

  WorkloadOptions w;
  w.ops_per_writer = 20;
  w.ops_per_reader = 20;
  run_keyspace_workload(h, w);

  ASSERT_EQ(h.num_keys(), 4);
  std::size_t total_ops = 0;
  for (int k = 0; k < h.num_keys(); ++k) {
    const CheckResult batch = check_tag_witness(h.key_history(k));
    const CheckResult stream = h.stream_checker(k)->finish();
    EXPECT_EQ(stream.atomic, batch.atomic) << "key " << k;
    EXPECT_TRUE(stream.atomic) << "key " << k << ": " << stream.violation;
    total_ops += h.stream_checker(k)->stats().ops_seen;
  }
  EXPECT_EQ(total_ops, 2u * 20u + 2u * 20u);  // every op landed on some key
}

TEST(StreamingChecker, AgreesWithBatchOnAdversaryInjectedViolations) {
  // Above the fast-read bound the adversary schedule produces a genuine
  // new/old inversion; below it the same schedule stays atomic. The
  // streaming verdict must track the batch verdict on both sides.
  const chains::FastReadAdversaryResult bad =
      chains::run_fastread_adversary(4, 1, 2);
  EXPECT_TRUE(bad.bound_violated);
  EXPECT_TRUE(bad.violation_found) << bad.history_dump;
  EXPECT_TRUE(bad.stream_agrees) << bad.history_dump;

  const chains::FastReadAdversaryResult ok =
      chains::run_fastread_adversary(7, 1, 2);
  EXPECT_FALSE(ok.bound_violated);
  EXPECT_FALSE(ok.violation_found) << ok.check_detail;
  EXPECT_TRUE(ok.stream_agrees) << ok.history_dump;
}

// ---------- bounded window + history retirement ----------

TEST(StreamingChecker, WindowStaysBoundedOnLongRetiredRuns) {
  const Protocol* proto = protocol_by_name("fast-read-mw(W2R1)");
  ASSERT_NE(proto, nullptr);
  SimHarness::Options o;
  o.cfg = ClusterConfig{7, 2, 3, 1};
  o.seed = 47;
  o.streaming_check = true;
  o.retire_history = true;
  SimHarness h(*proto, std::move(o));

  WorkloadOptions w;
  w.ops_per_writer = 2000;
  w.ops_per_reader = 2000;
  w.think_hi = 2 * kMillisecond;
  run_random_workload(h, w);

  StreamingTagWitness* sc = h.stream_checker(0);
  ASSERT_NE(sc, nullptr);
  const CheckResult verdict = sc->finish();
  EXPECT_TRUE(verdict.atomic) << verdict.violation;

  const StreamingStats& st = sc->stats();
  const std::size_t total = 5u * 2000u;  // 2 writers + 3 readers
  EXPECT_EQ(st.ops_seen, total);
  EXPECT_EQ(st.completions, total);
  // The whole point: occupancy tracks the concurrency window (a handful of
  // clients), not the 10^4-op horizon.
  EXPECT_LT(st.peak_window, 200u);
  EXPECT_LT(st.peak_pending, 50u);
  // Only writes occupy the window: 2 writers x 2000 ops, nearly all retired.
  EXPECT_GT(st.retired_tags, 2000u) << "watermark retirement never ran";

  // The recorder was GC'd along the way: ids keep counting, records don't.
  History& hist = h.history();
  EXPECT_EQ(hist.size(), total);
  EXPECT_GT(hist.retired_count(), total / 2);
  EXPECT_LT(hist.size() - hist.retired_count(), 4096u);
  // Everything completed, so the settled frontier reached the end.
  EXPECT_EQ(sc->settled_frontier(), static_cast<OpId>(total));
}

TEST(StreamingChecker, UnretiredLiveRunStillMatchesBatchReCheck) {
  // streaming_check without retire_history keeps the full recorder: the
  // live verdict and a batch re-check of the same history must agree.
  const Protocol* proto = protocol_by_name("mw-abd(W2R2)");
  ASSERT_NE(proto, nullptr);
  SimHarness::Options o;
  o.cfg = ClusterConfig{5, 2, 2, 2};
  o.seed = 53;
  o.streaming_check = true;
  SimHarness h(*proto, std::move(o));

  WorkloadOptions w;
  w.ops_per_writer = 50;
  w.ops_per_reader = 50;
  run_random_workload(h, w);

  EXPECT_EQ(h.history().retired_count(), 0u);
  const CheckResult live = h.stream_checker(0)->finish();
  const CheckResult batch = check_tag_witness(h.history());
  const CheckResult replay = check_streaming(h.history());
  EXPECT_EQ(live.atomic, batch.atomic);
  EXPECT_EQ(replay.atomic, batch.atomic);
  EXPECT_TRUE(live.atomic) << live.violation;
}

}  // namespace
}  // namespace mwreg
