// ClientTable and keyspace coverage.
//
// The heart of this suite is wire parity: the table-driven client engine
// must reproduce the object clients' simulations bit for bit on the
// single-register layout — same golden batch digest, fault plans included —
// because it issues the identical message sequence through the identical
// RNG draws. The keyspace tests then check the multi-register layout:
// per-key linearizability, thread-count invariance, and digest stability.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "consistency/checkers.h"
#include "core/harness.h"
#include "core/keyspace.h"
#include "core/workload.h"
#include "exp/aggregator.h"
#include "exp/runner.h"
#include "protocols/protocols.h"
#include "sim/fault_plan.h"

namespace mwreg::exp {
namespace {

// Same construction as tests/golden_determinism_test.cpp.
struct Fnv {
  std::uint64_t h = 14695981039346656037ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xFF)) * 1099511628211ULL;
    }
  }
  void mix_str(const std::string& s) {
    for (char c : s) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  }
};

std::uint64_t digest_results(const std::vector<TrialResult>& results) {
  Fnv f;
  for (const TrialResult& tr : results) {
    f.mix_str(tr.protocol);
    f.mix_str(tr.fault_plan);
    f.mix(tr.user_seed);
    f.mix(tr.harness_seed);
    f.mix(tr.tag_atomic ? 1 : 0);
    f.mix(tr.graph_atomic ? 1 : 0);
    f.mix(tr.completed_ops);
    f.mix(tr.msgs_sent);
    f.mix(tr.sim_events);
    for (double ms : tr.write_ms) f.mix(static_cast<std::uint64_t>(ms * 1e6));
    for (double ms : tr.read_ms) f.mix(static_cast<std::uint64_t>(ms * 1e6));
  }
  return f.h;
}

ExperimentSpec golden_spec() {
  ExperimentSpec spec;
  spec.name = "golden";
  spec.protocols = {"mw-abd(W2R2)", "fast-read-mw(W2R1)", "abd-swmr(W1R2)"};
  spec.clusters = {ClusterConfig{5, 2, 1, 1}, ClusterConfig{3, 2, 2, 1}};
  spec.fault_plans = {scenarios::crash_recover(), scenarios::fig9_skip()};
  spec.seeds = 3;
  spec.delay = uniform_delay(1 * kMillisecond, 10 * kMillisecond);
  spec.workload.ops_per_writer = 8;
  spec.workload.ops_per_reader = 8;
  spec.check_graph = true;
  return spec;
}

// The pre-refactor engine constant from tests/golden_determinism_test.cpp:
// the table driver must land on it too.
constexpr std::uint64_t kGoldenBatchDigest = 16581352218070049687ULL;

TEST(ClientTableParity, GoldenBatchDigestWithTableClients) {
  // The full golden spec — three protocols (two-round, query-then-write,
  // and local-timestamp writers; fast and two-round readers), two clusters,
  // two fault plans, three seeds — driven through the ClientTable instead
  // of the object clients. Bit-identical histories mean bit-identical
  // digests; table_clients is deliberately absent from cell_digest so the
  // harness seeds match as well.
  ExperimentSpec spec = golden_spec();
  spec.table_clients = true;
  Runner serial(Runner::Options{1});
  EXPECT_EQ(digest_results(serial.run(spec)), kGoldenBatchDigest);
}

TEST(ClientTableParity, ObjectAndTableClientsAgreeOnWiderCells) {
  // Cells the golden constant does not cover: W4R4 multi-writer ABD and the
  // GC'd delta-read protocol (per-server caches, watermarks, ack arrays).
  ExperimentSpec spec;
  spec.name = "parity";
  spec.protocols = {"mw-abd(W2R2)", "fast-read-mw(W2R1)"};
  spec.clusters = {ClusterConfig{5, 4, 4, 1}, ClusterConfig{7, 2, 3, 1}};
  spec.seeds = 2;
  spec.workload.ops_per_writer = 6;
  spec.workload.ops_per_reader = 6;
  spec.check_graph = true;
  ExperimentSpec table = spec;
  table.table_clients = true;
  Runner serial(Runner::Options{1});
  const std::vector<TrialResult> a = serial.run(spec);
  const std::vector<TrialResult> b = serial.run(table);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(digest_results(a), digest_results(b));
  for (const TrialResult& tr : a) {
    EXPECT_TRUE(tr.atomic()) << tr.protocol << " " << tr.violation;
  }
}

TEST(ClientTableParity, SingleKeyKeyspaceKeepsCellDigest) {
  // A 1-key keyspace is the classic layout; its cells must reuse the
  // historical RNG streams.
  const ClusterConfig cfg{5, 2, 1, 1};
  const KeyspaceConfig one{1, 1, 0.0};
  EXPECT_EQ(cell_digest("mw-abd(W2R2)", cfg, nullptr, one),
            cell_digest("mw-abd(W2R2)", cfg));
  const KeyspaceConfig many{8, 2, 0.99};
  EXPECT_NE(cell_digest("mw-abd(W2R2)", cfg, nullptr, many),
            cell_digest("mw-abd(W2R2)", cfg));
}

TEST(Keyspace, SweepIsThreadCountInvariantAndAtomic) {
  ExperimentSpec spec;
  spec.name = "keyspace";
  spec.protocols = {"mw-abd(W2R2)"};
  spec.clusters = {ClusterConfig{5, 8, 8, 1}};
  spec.keyspaces = {KeyspaceConfig{1, 1, 0.0}, KeyspaceConfig{16, 4, 0.99}};
  spec.seeds = 2;
  spec.workload.ops_per_writer = 5;
  spec.workload.ops_per_reader = 5;
  Runner serial(Runner::Options{1});
  Runner pooled(Runner::Options{4});
  const std::vector<TrialResult> a = serial.run(spec);
  const std::vector<TrialResult> b = pooled.run(spec);
  EXPECT_EQ(digest_results(a), digest_results(b));
  EXPECT_EQ(to_csv(aggregate(a)), to_csv(aggregate(b)));
  for (const TrialResult& tr : a) {
    EXPECT_TRUE(tr.atomic()) << tr.keyspace.to_string() << " " << tr.violation;
    EXPECT_EQ(tr.completed_ops, std::size_t{8 * 5 + 8 * 5});
  }
}

TEST(Keyspace, PerKeyHistoriesAreLinearizable) {
  // Direct harness check, reader-affine fast-read protocol: 4 readers over
  // 4 keys (one per block), every per-key history machine-checked.
  const Protocol* proto = protocol_by_name("fast-read-mw(W2R1)");
  ASSERT_NE(proto, nullptr);
  SimHarness::Options o;
  o.cfg = ClusterConfig{5, 2, 4, 1};
  o.keyspace = KeyspaceConfig{4, 2, 0.8};
  o.seed = 42;
  SimHarness h(*proto, std::move(o));
  ASSERT_TRUE(h.table_mode());
  ASSERT_TRUE(h.table()->reader_key_affine());
  WorkloadOptions w;
  w.ops_per_writer = 12;
  w.ops_per_reader = 12;
  run_keyspace_workload(h, w);
  std::size_t completed = 0;
  for (int k = 0; k < h.num_keys(); ++k) {
    const CheckResult tag = check_tag_witness(h.key_history(k));
    EXPECT_TRUE(tag.atomic) << "key " << k << ": " << tag.violation;
    const CheckResult graph = check_unique_value_graph(h.key_history(k));
    EXPECT_TRUE(graph.atomic) << "key " << k << ": " << graph.violation;
    completed += h.key_history(k).completed_count();
  }
  EXPECT_EQ(completed, std::size_t{2 * 12 + 4 * 12});
}

TEST(Keyspace, ReaderBlocksPartitionReaders) {
  // reader_key_of inverts reader_block_begin for every (key, reader) shape
  // we rely on.
  for (int keys = 1; keys <= 8; ++keys) {
    for (int readers = keys; readers <= 3 * keys; ++readers) {
      for (int ri = 0; ri < readers; ++ri) {
        const int k = reader_key_of(ri, keys, readers);
        ASSERT_GE(ri, reader_block_begin(k, keys, readers));
        if (k + 1 < keys) {
          ASSERT_LT(ri, reader_block_begin(k + 1, keys, readers));
        }
      }
    }
  }
}

}  // namespace
}  // namespace mwreg::exp
