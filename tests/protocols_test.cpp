// Integration tests: every protocol runs on the simulator, histories are
// machine-checked for atomicity, round-trip counts show up as exact
// latencies, and the fast-write strawman exhibits the violation Theorem 1
// promises.
#include <gtest/gtest.h>

#include <memory>
#include <cctype>
#include <tuple>

#include "consistency/checkers.h"
#include "core/harness.h"
#include "core/workload.h"
#include "protocols/fastread_clients.h"
#include "protocols/protocols.h"

namespace mwreg {
namespace {

SimHarness::Options opts(ClusterConfig cfg, std::uint64_t seed,
                         std::unique_ptr<DelayModel> delay = nullptr) {
  SimHarness::Options o;
  o.cfg = cfg;
  o.seed = seed;
  o.delay = std::move(delay);
  return o;
}

void expect_history_atomic(SimHarness& h) {
  const CheckResult tw = check_tag_witness(h.history());
  EXPECT_TRUE(tw.atomic) << tw.violation << "\n" << h.history().to_string();
  const CheckResult g = check_unique_value_graph(h.history());
  EXPECT_TRUE(g.atomic) << g.violation;
}

// ---------- Sequential semantics ----------

class SequentialSemantics : public ::testing::TestWithParam<const Protocol*> {};

TEST_P(SequentialSemantics, WriteThenReadReturnsWritten) {
  const Protocol& proto = *GetParam();
  // A configuration where every protocol in the registry is correct:
  // S=7, t=1, W=1 (single writer), R=2: 7 > (2+2)*1 and 1 < 7/2.
  // Every protocol -- even the regular-only baseline -- behaves atomically
  // when operations never overlap.
  const ClusterConfig cfg{7, 1, 2, 1};
  SimHarness h(proto, opts(cfg, 42));

  h.async_write(0, 111);
  h.run();
  TaggedValue got{};
  h.async_read(0, [&](TaggedValue v) { got = v; });
  h.run();
  EXPECT_EQ(got.payload, 111) << proto.name();

  h.async_write(0, 222);
  h.run();
  h.async_read(1, [&](TaggedValue v) { got = v; });
  h.run();
  EXPECT_EQ(got.payload, 222) << proto.name();

  expect_history_atomic(h);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SequentialSemantics,
                         ::testing::ValuesIn(all_protocols()),
                         [](const ::testing::TestParamInfo<const Protocol*>& i) {
                           std::string n = i.param->name();
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return n;
                         });

// ---------- Round-trip counts become exact latencies ----------

struct LatencyCase {
  const char* proto;
  ClusterConfig cfg;
};

class RoundTripLatency : public ::testing::TestWithParam<LatencyCase> {};

TEST_P(RoundTripLatency, OperationsTakeExactlyRttTimesRounds) {
  const Protocol* proto = protocol_by_name(GetParam().proto);
  ASSERT_NE(proto, nullptr);
  const ClusterConfig cfg = GetParam().cfg;
  ASSERT_TRUE(proto->guarantees_atomicity(cfg));
  const Duration d = 1 * kMillisecond;
  SimHarness h(*proto, opts(cfg, 1, std::make_unique<ConstantDelay>(d)));

  Time w_lat = 0, r_lat = 0;
  {
    const Time t0 = h.sim().now();
    h.async_write(0, 5);
    h.run();
    w_lat = h.sim().now() - t0;
  }
  {
    const Time t0 = h.sim().now();
    h.async_read(0);
    h.run();
    r_lat = h.sim().now() - t0;
  }
  EXPECT_EQ(w_lat, proto->write_round_trips() * 2 * d) << proto->name();
  EXPECT_EQ(r_lat, proto->read_round_trips() * 2 * d) << proto->name();
}

INSTANTIATE_TEST_SUITE_P(
    Cells, RoundTripLatency,
    ::testing::Values(LatencyCase{"mw-abd(W2R2)", ClusterConfig{5, 2, 2, 2}},
                      LatencyCase{"abd-swmr(W1R2)", ClusterConfig{5, 1, 2, 2}},
                      LatencyCase{"fast-read-mw(W2R1)", ClusterConfig{5, 2, 2, 1}},
                      LatencyCase{"fast-swmr(W1R1)", ClusterConfig{5, 1, 2, 1}}),
    [](const ::testing::TestParamInfo<LatencyCase>& i) {
      std::string n = i.param.proto;
      for (char& c : n) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

// ---------- Randomized concurrent workloads stay atomic ----------

struct WorkloadCase {
  const char* proto;
  ClusterConfig cfg;
  std::uint64_t seed;
};

class ConcurrentWorkload : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(ConcurrentWorkload, HistoryIsAtomic) {
  const Protocol* proto = protocol_by_name(GetParam().proto);
  ASSERT_NE(proto, nullptr);
  const ClusterConfig cfg = GetParam().cfg;
  ASSERT_TRUE(proto->guarantees_atomicity(cfg))
      << proto->name() << " on " << cfg.to_string();
  SimHarness h(*proto, opts(cfg, GetParam().seed));
  WorkloadOptions w;
  w.ops_per_writer = 12;
  w.ops_per_reader = 12;
  run_random_workload(h, w);

  EXPECT_EQ(h.history().completed_count(),
            static_cast<std::size_t>(cfg.w() * w.ops_per_writer +
                                     cfg.r() * w.ops_per_reader));
  expect_history_atomic(h);
}

std::vector<WorkloadCase> workload_cases() {
  std::vector<WorkloadCase> cases;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    cases.push_back({"mw-abd(W2R2)", ClusterConfig{5, 3, 3, 2}, seed});
    cases.push_back({"mw-abd(W2R2)", ClusterConfig{3, 2, 2, 1}, seed});
    cases.push_back({"abd-swmr(W1R2)", ClusterConfig{5, 1, 3, 2}, seed});
    cases.push_back({"fast-read-mw(W2R1)", ClusterConfig{5, 3, 2, 1}, seed});
    cases.push_back({"fast-read-mw(W2R1)", ClusterConfig{7, 2, 4, 1}, seed});
    cases.push_back({"fast-read-mw(W2R1)", ClusterConfig{9, 2, 2, 2}, seed});
    cases.push_back({"fast-swmr(W1R1)", ClusterConfig{5, 1, 2, 1}, seed});
    cases.push_back({"fast-swmr(W1R1)", ClusterConfig{9, 1, 4, 1}, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConcurrentWorkload,
                         ::testing::ValuesIn(workload_cases()));

// ---------- Crash tolerance ----------

TEST(CrashTolerance, MwAbdSurvivesTCrashes) {
  const ClusterConfig cfg{5, 2, 2, 2};
  SimHarness h(*protocol_by_name("mw-abd(W2R2)"), opts(cfg, 7));
  WorkloadOptions w;
  w.ops_per_writer = 10;
  w.ops_per_reader = 10;
  w.crash_servers = 2;  // == t, mid-run
  w.crash_after_ops = 8;
  run_random_workload(h, w);
  EXPECT_EQ(h.history().completed_count(), 40u);
  const CheckResult tw = check_tag_witness(h.history());
  EXPECT_TRUE(tw.atomic) << tw.violation;
}

TEST(CrashTolerance, FastReadMwSurvivesTCrashes) {
  const ClusterConfig cfg{7, 2, 3, 1};
  ASSERT_TRUE(cfg.supports_fast_read());
  SimHarness h(*protocol_by_name("fast-read-mw(W2R1)"), opts(cfg, 9));
  WorkloadOptions w;
  w.ops_per_writer = 10;
  w.ops_per_reader = 10;
  w.crash_servers = 1;
  w.crash_after_ops = 10;
  run_random_workload(h, w);
  EXPECT_EQ(h.history().completed_count(), 50u);
  const CheckResult tw = check_tag_witness(h.history());
  EXPECT_TRUE(tw.atomic) << tw.violation;
}

TEST(CrashTolerance, TooManyCrashesBlockProgressButNotSafety) {
  const ClusterConfig cfg{5, 2, 2, 2};
  SimHarness h(*protocol_by_name("mw-abd(W2R2)"), opts(cfg, 11));
  // Crash t+1 servers immediately: quorums of S-t=3 can no longer form.
  h.net().crash(0);
  h.net().crash(1);
  h.net().crash(2);
  h.async_write(0, 1);
  h.async_read(0);
  h.run();
  // Operations hang (wait-freedom needs at most t crashes) ...
  EXPECT_EQ(h.history().completed_count(), 0u);
  // ... but the recorded (all-pending) history is trivially atomic.
  EXPECT_TRUE(check_tag_witness(h.history()).atomic);
}

// ---------- Theorem 1's strawman: naive fast write is not atomic ----------

TEST(NaiveFastWrite, TwoWritersViolateAtomicity) {
  // Writer 0 completes several writes, then writer 1 (whose local timestamp
  // is smaller) writes: the late write is ordered behind the earlier ones by
  // tag, so a subsequent read returns the OLD value.
  const ClusterConfig cfg{3, 2, 2, 1};
  SimHarness h(*protocol_by_name("naive-fast-write(W1R2)"), opts(cfg, 1));
  for (int i = 1; i <= 3; ++i) {
    h.async_write(0, i * 10);
    h.run();
  }
  h.async_write(1, 999);  // tag (1, w1) < (3, w0): lost update
  h.run();
  TaggedValue got{};
  h.async_read(0, [&](TaggedValue v) { got = v; });
  h.run();
  EXPECT_NE(got.payload, 999);  // the read misses the latest write

  const CheckResult tw = check_tag_witness(h.history());
  EXPECT_FALSE(tw.atomic);
  const CheckResult wg = check_wing_gong(h.history());
  EXPECT_FALSE(wg.atomic) << "ground truth agrees the history is non-atomic";
}

TEST(NaiveFastWrite, SingleWriterModeIsAtomic) {
  // The same code path with W=1 is just SWMR ABD and stays atomic.
  const ClusterConfig cfg{3, 1, 2, 1};
  SimHarness h(*protocol_by_name("naive-fast-write(W1R2)"), opts(cfg, 2));
  WorkloadOptions w;
  run_random_workload(h, w);
  const CheckResult tw = check_tag_witness(h.history());
  EXPECT_TRUE(tw.atomic) << tw.violation;
}

// ---------- admissible(.) predicate (Algorithm 1, Definition 4) ----------

std::vector<FrEntry> entry_msg(const TaggedValue& v,
                               std::vector<NodeId> updated) {
  FrEntry e;
  e.value = v;
  e.updated = std::move(updated);
  return {e};
}

TEST(Admissible, DegreeOneNeedsFullQuorumAndOneCommonClient) {
  const TaggedValue v{Tag{1, 0}, 1};
  // S=5, t=1: degree 1 needs the value on >= 4 messages with a common client.
  std::vector<std::vector<FrEntry>> msgs(4, entry_msg(v, {7}));
  EXPECT_TRUE(admissible(v, msgs, 1, 5, 1));
  msgs.pop_back();
  EXPECT_FALSE(admissible(v, msgs, 1, 5, 1));  // only 3 < S - t
}

TEST(Admissible, HigherDegreeTradesQuorumForWitnesses) {
  const TaggedValue v{Tag{1, 0}, 1};
  // S=5, t=1, a=2: needs >= 3 messages sharing TWO common clients.
  std::vector<std::vector<FrEntry>> msgs(3, entry_msg(v, {7, 8}));
  EXPECT_TRUE(admissible(v, msgs, 2, 5, 1));
  // Distinct pairs with no common pair of clients: not admissible.
  std::vector<std::vector<FrEntry>> bad{entry_msg(v, {7, 8}),
                                        entry_msg(v, {8, 9}),
                                        entry_msg(v, {9, 7})};
  EXPECT_FALSE(admissible(v, bad, 2, 5, 1));
}

TEST(Admissible, IntersectionMustBeCommonToChosenSubset) {
  const TaggedValue v{Tag{1, 0}, 1};
  // 4 messages have v, but only 3 share client 7. For a=1 (need 4) the
  // shared-client subset is too small; still admissible because client 9 is
  // NOT needed: mu can be any 4 messages only if they share someone.
  std::vector<std::vector<FrEntry>> msgs{
      entry_msg(v, {7}), entry_msg(v, {7}), entry_msg(v, {7}),
      entry_msg(v, {9})};
  EXPECT_FALSE(admissible(v, msgs, 1, 5, 1));
  // Adding 7 to the fourth message fixes it.
  msgs[3] = entry_msg(v, {9, 7});
  EXPECT_TRUE(admissible(v, msgs, 1, 5, 1));
}

TEST(Admissible, ValueAbsentNotAdmissible) {
  const TaggedValue v{Tag{1, 0}, 1};
  const TaggedValue other{Tag{2, 0}, 2};
  std::vector<std::vector<FrEntry>> msgs(5, entry_msg(other, {7}));
  EXPECT_FALSE(admissible(v, msgs, 1, 5, 1));
}

// ---------- Message-size / valuevector growth sanity ----------

TEST(FastReadMw, ValQueueAccumulatesAndStaysBounded) {
  const ClusterConfig cfg{5, 2, 2, 1};
  SimHarness h(*protocol_by_name("fast-read-mw(W2R1)"), opts(cfg, 3));
  WorkloadOptions w;
  w.ops_per_writer = 15;
  w.ops_per_reader = 15;
  run_random_workload(h, w);
  expect_history_atomic(h);
  // Every write creates at most one distinct value; the queue cannot exceed
  // total writes + 1 (bottom).
  EXPECT_LE(h.history().completed_count(), 60u);
}

}  // namespace
}  // namespace mwreg
