// Golden determinism: the hot-path engine refactor (slab event heap, pooled
// payload buffers, dense crash/block tables) must not change a single
// simulated history. The constants below were captured from the
// pre-refactor engine (std::priority_queue<std::function> events,
// fresh-vector payloads, std::set fault bookkeeping) running this exact
// spec; any engine change that shifts an event order, an RNG draw, or a
// message delivery changes the digest and fails here.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exp/aggregator.h"
#include "exp/runner.h"
#include "sim/fault_plan.h"

namespace mwreg::exp {
namespace {

// FNV-1a, same construction as cell_digest: stable across platforms for
// fixed-width inputs.
struct Fnv {
  std::uint64_t h = 14695981039346656037ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xFF)) * 1099511628211ULL;
    }
  }
  void mix_str(const std::string& s) {
    for (char c : s) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  }
};

/// Digest every observable of a batch: per-trial identity, verdicts,
/// message/event counts, and the full latency sample streams (which pin
/// down both history timestamps and completion structure).
std::uint64_t digest_results(const std::vector<TrialResult>& results) {
  Fnv f;
  for (const TrialResult& tr : results) {
    f.mix_str(tr.protocol);
    f.mix_str(tr.fault_plan);
    f.mix(tr.user_seed);
    f.mix(tr.harness_seed);
    f.mix(tr.tag_atomic ? 1 : 0);
    f.mix(tr.graph_atomic ? 1 : 0);
    f.mix(tr.completed_ops);
    f.mix(tr.msgs_sent);
    f.mix(tr.sim_events);
    for (double ms : tr.write_ms) f.mix(static_cast<std::uint64_t>(ms * 1e6));
    for (double ms : tr.read_ms) f.mix(static_cast<std::uint64_t>(ms * 1e6));
  }
  return f.h;
}

ExperimentSpec golden_spec() {
  ExperimentSpec spec;
  spec.name = "golden";
  spec.protocols = {"mw-abd(W2R2)", "fast-read-mw(W2R1)", "abd-swmr(W1R2)"};
  spec.clusters = {ClusterConfig{5, 2, 1, 1}, ClusterConfig{3, 2, 2, 1}};
  spec.fault_plans = {scenarios::crash_recover(), scenarios::fig9_skip()};
  spec.seeds = 3;
  spec.delay = uniform_delay(1 * kMillisecond, 10 * kMillisecond);
  spec.workload.ops_per_writer = 8;
  spec.workload.ops_per_reader = 8;
  spec.check_graph = true;
  return spec;
}

// Captured from the pre-refactor engine (PR 2 tree) with the spec above.
constexpr std::uint64_t kGoldenBatchDigest = 16581352218070049687ULL;

// Fault-free cell digests are pure functions of (protocol, cluster) and key
// every cell's RNG stream; they must never drift.
constexpr std::uint64_t kGoldenCellDigestMwAbd521 = 8683406513189852776ULL;
constexpr std::uint64_t kGoldenCellDigestFastRead321 = 15207139009833096594ULL;

TEST(GoldenDeterminism, BatchDigestMatchesPreRefactorEngine) {
  Runner serial(Runner::Options{1});
  const std::uint64_t got = digest_results(serial.run(golden_spec()));
  EXPECT_EQ(got, kGoldenBatchDigest);
}

TEST(GoldenDeterminism, ThreadCountDoesNotChangeTheDigest) {
  Runner serial(Runner::Options{1});
  Runner pooled(Runner::Options{4});
  const ExperimentSpec spec = golden_spec();
  EXPECT_EQ(digest_results(serial.run(spec)), kGoldenBatchDigest);
  EXPECT_EQ(digest_results(pooled.run(spec)), kGoldenBatchDigest);
}

TEST(GoldenDeterminism, NoGcAblationDigestIsThreadCountInvariant) {
  // The full-ack ablation has no golden constant (the name post-dates the
  // GC default flip), but its digests must be equally deterministic: the
  // same spec at 1 and 4 runner threads is bit-identical, and repeats are
  // stable. (The GC'd path is the fast-read-mw default and is pinned by
  // the golden constants above.)
  ExperimentSpec spec = golden_spec();
  spec.protocols = {"fast-read-mw-nogc(W2R1)"};
  spec.clusters = {ClusterConfig{5, 2, 1, 1}, ClusterConfig{7, 2, 3, 1}};
  Runner serial(Runner::Options{1});
  Runner pooled(Runner::Options{4});
  const std::uint64_t serial_digest = digest_results(serial.run(spec));
  EXPECT_EQ(serial_digest, digest_results(pooled.run(spec)));
  EXPECT_EQ(serial_digest, digest_results(pooled.run(spec)));
}

TEST(GoldenDeterminism, CoalescingPreservesTheGoldenDigest) {
  // The batched delivery engine at tick=1 must reproduce the recorded
  // pre-refactor digest bit for bit: same histories, same message counts,
  // same event times — coalescing only changes how fast they compute.
  ExperimentSpec spec = golden_spec();
  spec.coalesce = true;
  Runner serial(Runner::Options{1});
  EXPECT_EQ(digest_results(serial.run(spec)), kGoldenBatchDigest);
}

TEST(GoldenDeterminism, CoalescingAndTickAreEngineAndThreadInvariant) {
  // At a coarse tick there is no recorded constant (quantization changes
  // delivery times), but the four combinations {coalesce off/on} x {1/4
  // runner threads} must all produce one digest.
  ExperimentSpec spec = golden_spec();
  spec.tick = 10 * kMicrosecond;
  ExperimentSpec coalesced = spec;
  coalesced.coalesce = true;
  Runner serial(Runner::Options{1});
  Runner pooled(Runner::Options{4});
  const std::uint64_t base = digest_results(serial.run(spec));
  EXPECT_EQ(base, digest_results(serial.run(coalesced)));
  EXPECT_EQ(base, digest_results(pooled.run(spec)));
  EXPECT_EQ(base, digest_results(pooled.run(coalesced)));
}

TEST(GoldenDeterminism, PerMessageAblationPreservesTheGoldenDigest) {
  // The batched engine is the spec default since the destination-major PR;
  // the per-message ablation must still reproduce the recorded digest.
  ExperimentSpec spec = golden_spec();
  spec.coalesce = false;
  Runner serial(Runner::Options{1});
  EXPECT_EQ(digest_results(serial.run(spec)), kGoldenBatchDigest);
}

TEST(GoldenDeterminism, DestMajorOnVsOffIsDigestAndThreadInvariant) {
  // Destination-major regrouping + reply staging must be observably inert.
  // With the golden fault plans included, the exact-ns-tick digests are
  // pinned to the recorded constant with the drain on and off, at 1 and 4
  // runner threads...
  ExperimentSpec on = golden_spec();  // dest_major defaults on
  ExperimentSpec off = golden_spec();
  off.dest_major = false;
  Runner serial(Runner::Options{1});
  Runner pooled(Runner::Options{4});
  EXPECT_EQ(digest_results(serial.run(on)), kGoldenBatchDigest);
  EXPECT_EQ(digest_results(serial.run(off)), kGoldenBatchDigest);
  EXPECT_EQ(digest_results(pooled.run(on)), kGoldenBatchDigest);
  EXPECT_EQ(digest_results(pooled.run(off)), kGoldenBatchDigest);
  // ...and at a coarse tick — where multi-frame batches actually form and
  // the dest-major drain really engages — there is no recorded constant,
  // but on-vs-off and 1-vs-4 threads must agree on one digest.
  ExperimentSpec coarse_on = golden_spec();
  coarse_on.tick = 10 * kMicrosecond;
  ExperimentSpec coarse_off = coarse_on;
  coarse_off.dest_major = false;
  const std::uint64_t base = digest_results(serial.run(coarse_on));
  EXPECT_EQ(base, digest_results(serial.run(coarse_off)));
  EXPECT_EQ(base, digest_results(pooled.run(coarse_on)));
  EXPECT_EQ(base, digest_results(pooled.run(coarse_off)));
}

TEST(GoldenDeterminism, FaultFreeCellDigestsUnchanged) {
  EXPECT_EQ(cell_digest("mw-abd(W2R2)", ClusterConfig{5, 2, 1, 1}),
            kGoldenCellDigestMwAbd521);
  EXPECT_EQ(cell_digest("fast-read-mw(W2R1)", ClusterConfig{3, 2, 2, 1}),
            kGoldenCellDigestFastRead321);
}

}  // namespace
}  // namespace mwreg::exp
