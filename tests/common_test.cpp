// Unit tests for src/common: tags, cluster math, RNG, codec.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/cluster.h"
#include "common/codec.h"
#include "common/rng.h"
#include "common/tag.h"

namespace mwreg {
namespace {

// ---------- Tag ----------

TEST(Tag, BottomIsSmallest) {
  EXPECT_TRUE(kBottomTag.is_bottom());
  EXPECT_LT(kBottomTag, (Tag{0, 0}));
  EXPECT_LT(kBottomTag, (Tag{1, kNoNode}));
}

TEST(Tag, LexicographicOrder) {
  // Section 5.2: ts dominates; writer id breaks ties.
  EXPECT_LT((Tag{1, 9}), (Tag{2, 0}));
  EXPECT_LT((Tag{2, 3}), (Tag{2, 4}));
  EXPECT_EQ((Tag{2, 3}), (Tag{2, 3}));
  EXPECT_GT((Tag{3, 0}), (Tag{2, 9}));
}

TEST(Tag, ConcurrentWritesWithEqualTsOrderedByWriterId) {
  // The tie-break that Section 5.2 argues is safe.
  const Tag a{5, 3};
  const Tag b{5, 4};
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
}

TEST(Tag, HashDistinguishes) {
  std::set<std::size_t> hashes;
  for (int ts = 0; ts < 10; ++ts) {
    for (NodeId w = 0; w < 10; ++w) {
      hashes.insert(std::hash<Tag>{}(Tag{ts, w}));
    }
  }
  EXPECT_GT(hashes.size(), 90u);  // collisions allowed but rare
}

TEST(TaggedValue, ToStringMentionsBoth) {
  const TaggedValue v{Tag{7, 2}, 42};
  EXPECT_NE(v.to_string().find("7"), std::string::npos);
  EXPECT_NE(v.to_string().find("42"), std::string::npos);
}

// ---------- ClusterConfig ----------

TEST(Cluster, IdLayoutIsDisjointAndComplete) {
  const ClusterConfig cfg{.num_servers = 4, .num_writers = 3, .num_readers = 2,
                          .max_faulty = 1};
  std::set<NodeId> all;
  for (NodeId id : cfg.server_ids()) {
    EXPECT_TRUE(cfg.is_server(id));
    EXPECT_FALSE(cfg.is_writer(id));
    EXPECT_FALSE(cfg.is_reader(id));
    all.insert(id);
  }
  for (NodeId id : cfg.writer_ids()) {
    EXPECT_TRUE(cfg.is_writer(id));
    all.insert(id);
  }
  for (NodeId id : cfg.reader_ids()) {
    EXPECT_TRUE(cfg.is_reader(id));
    all.insert(id);
  }
  EXPECT_EQ(static_cast<int>(all.size()), cfg.total_nodes());
  EXPECT_EQ(cfg.quorum(), 3);
}

TEST(Cluster, W2R2FeasibilityIsMajority) {
  EXPECT_TRUE((ClusterConfig{3, 2, 2, 1}).supports_w2r2());
  EXPECT_FALSE((ClusterConfig{2, 2, 2, 1}).supports_w2r2());
  EXPECT_FALSE((ClusterConfig{4, 2, 2, 2}).supports_w2r2());
  EXPECT_TRUE((ClusterConfig{5, 2, 2, 2}).supports_w2r2());
}

TEST(Cluster, FastReadConditionMatchesPaper) {
  // R < S/t - 2  <=>  (R+2)t < S  (Section 5).
  // S=7, t=1: fast read iff R < 5.
  EXPECT_TRUE((ClusterConfig{7, 2, 4, 1}).supports_fast_read());
  EXPECT_FALSE((ClusterConfig{7, 2, 5, 1}).supports_fast_read());
  // S=7, t=2: R < 3.5-2=1.5, so R=1 only.
  EXPECT_TRUE((ClusterConfig{7, 2, 1, 2}).supports_fast_read());
  EXPECT_FALSE((ClusterConfig{7, 2, 2, 2}).supports_fast_read());
  // t=0 means no failure to mask; the bound degenerates (excluded).
  EXPECT_FALSE((ClusterConfig{3, 2, 2, 0}).supports_fast_read());
}

TEST(Cluster, FastReadBoundaryGrid) {
  // Exhaustive small grid: predicate equals the arithmetic definition.
  for (int s = 2; s <= 12; ++s) {
    for (int t = 1; t <= 3; ++t) {
      for (int r = 1; r <= 8; ++r) {
        const ClusterConfig cfg{s, 2, r, t};
        const bool expected = (r + 2) * t < s;
        EXPECT_EQ(cfg.supports_fast_read(), expected)
            << "S=" << s << " t=" << t << " R=" << r;
      }
    }
  }
}

TEST(Cluster, Validity) {
  EXPECT_TRUE((ClusterConfig{3, 2, 2, 1}).valid());
  EXPECT_FALSE((ClusterConfig{1, 2, 2, 0}).valid());
  EXPECT_FALSE((ClusterConfig{3, 0, 2, 1}).valid());
  EXPECT_FALSE((ClusterConfig{3, 2, 2, 3}).valid());  // t == S
}

// ---------- Rng ----------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(10), 10u);
  }
}

TEST(Rng, NextInCoversRangeUniformly) {
  Rng r(11);
  std::map<std::int64_t, int> counts;
  const int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) ++counts[r.next_in(-2, 2)];
  ASSERT_EQ(counts.size(), 5u);
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(c, kDraws / 5, kDraws / 25) << "value " << v;
  }
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(5), b(5);
  Rng fa = a.fork(), fb = b.fork();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fa.next(), fb.next());
}

TEST(Rng, ShufflePermutes) {
  Rng r(3);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  r.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

// ---------- Codec ----------

TEST(Codec, VarintRoundTrip) {
  ByteWriter w;
  const std::vector<std::uint64_t> vals{0, 1, 127, 128, 300, 1ULL << 20,
                                        1ULL << 40, ~0ULL};
  for (auto v : vals) w.put_varint(v);
  ByteReader r(w.bytes());
  for (auto v : vals) EXPECT_EQ(r.get_varint(), v);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, SignedZigzagRoundTrip) {
  ByteWriter w;
  const std::vector<std::int64_t> vals{0, -1, 1, -64, 64, -300, 1'000'000,
                                       INT64_MIN, INT64_MAX};
  for (auto v : vals) w.put_signed(v);
  ByteReader r(w.bytes());
  for (auto v : vals) EXPECT_EQ(r.get_signed(), v);
  EXPECT_TRUE(r.ok());
}

TEST(Codec, StringAndTagRoundTrip) {
  ByteWriter w;
  w.put_string("hello");
  w.put_string("");
  w.put_tag(Tag{9, 4});
  w.put_value(TaggedValue{Tag{2, 1}, -77});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_tag(), (Tag{9, 4}));
  EXPECT_EQ(r.get_value(), (TaggedValue{Tag{2, 1}, -77}));
  EXPECT_TRUE(r.ok());
}

TEST(Codec, VectorRoundTrip) {
  ByteWriter w;
  std::vector<std::int64_t> xs{5, -6, 7};
  w.put_vector(xs, [](ByteWriter& bw, std::int64_t v) { bw.put_signed(v); });
  ByteReader r(w.bytes());
  auto ys = r.get_vector<std::int64_t>(
      [](ByteReader& br) { return br.get_signed(); });
  EXPECT_EQ(xs, ys);
}

TEST(Codec, WriterIsReusableAfterTake) {
  // take() must leave the writer empty and valid: one writer (or a pooled
  // buffer cycling through writers) encodes many messages back to back.
  ByteWriter w;
  w.put_string("first");
  w.put_signed(-42);
  const std::vector<std::uint8_t> first = w.take();
  EXPECT_TRUE(w.bytes().empty());

  w.put_string("second");
  w.put_varint(7);
  const std::vector<std::uint8_t> second = w.take();
  EXPECT_TRUE(w.bytes().empty());

  ByteReader r1(first);
  EXPECT_EQ(r1.get_string(), "first");
  EXPECT_EQ(r1.get_signed(), -42);
  EXPECT_TRUE(r1.ok());
  EXPECT_TRUE(r1.exhausted());

  ByteReader r2(second);
  EXPECT_EQ(r2.get_string(), "second");
  EXPECT_EQ(r2.get_varint(), 7u);
  EXPECT_TRUE(r2.ok());
  EXPECT_TRUE(r2.exhausted());
}

TEST(Codec, WriterAdoptsRecycledBufferClearedWithCapacityKept) {
  std::vector<std::uint8_t> recycled{9, 9, 9, 9, 9, 9, 9, 9};
  const std::size_t cap = recycled.capacity();
  ByteWriter w(std::move(recycled));
  EXPECT_TRUE(w.bytes().empty());  // stale contents cleared
  w.put_varint(5);
  const std::vector<std::uint8_t> out = w.take();
  EXPECT_GE(out.capacity(), cap);  // old storage reused, not reallocated
  ByteReader r(out);
  EXPECT_EQ(r.get_varint(), 5u);
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, TruncatedInputSetsError) {
  ByteWriter w;
  w.put_varint(1'000'000);
  std::vector<std::uint8_t> bytes = w.take();
  bytes.pop_back();
  ByteReader r(bytes);
  (void)r.get_varint();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, MalformedLengthRejected) {
  // A string length far beyond the buffer must not allocate or crash.
  ByteWriter w;
  w.put_varint(1ULL << 40);
  ByteReader r(w.bytes());
  (void)r.get_string();
  EXPECT_FALSE(r.ok());
}

// Property sweep: random codec round-trips.
class CodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecProperty, RandomRoundTrip) {
  Rng rng(GetParam());
  ByteWriter w;
  std::vector<std::int64_t> signeds;
  std::vector<Tag> tags;
  for (int i = 0; i < 50; ++i) {
    const std::int64_t v = static_cast<std::int64_t>(rng.next());
    signeds.push_back(v);
    w.put_signed(v);
    const Tag t{rng.next_in(0, 1'000'000),
                static_cast<NodeId>(rng.next_in(-1, 100))};
    tags.push_back(t);
    w.put_tag(t);
  }
  ByteReader r(w.bytes());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(r.get_signed(), signeds[static_cast<std::size_t>(i)]);
    EXPECT_EQ(r.get_tag(), tags[static_cast<std::size_t>(i)]);
  }
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace mwreg
