// Tests for the full-info execution model: logs, views, filtering, history
// extraction, and the decision-rule plumbing.
#include <gtest/gtest.h>

#include "chains/w1r2_chains.h"
#include "consistency/checkers.h"
#include "fullinfo/execution.h"
#include "fullinfo/rules.h"

namespace mwreg::fullinfo {
namespace {

using chains::make_alpha;
using chains::make_alpha_tail;
using chains::make_beta;

TEST(Execution, AlphaLogsFollowPattern) {
  const Execution a = make_alpha(5, 2);
  EXPECT_EQ(a.write_order(0), "21");
  EXPECT_EQ(a.write_order(1), "21");
  EXPECT_EQ(a.write_order(2), "12");
  EXPECT_EQ(a.write_order(4), "12");
  EXPECT_TRUE(a.well_formed());
  EXPECT_FALSE(a.has_r2);
}

TEST(Execution, HeadIsSequentialMiddleConcurrent) {
  EXPECT_EQ(make_alpha(4, 0).writes, WriteRelation::kW1ThenW2);
  EXPECT_EQ(make_alpha(4, 2).writes, WriteRelation::kConcurrent);
  EXPECT_EQ(make_alpha_tail(4).writes, WriteRelation::kW2ThenW1);
}

TEST(Execution, PrefixAtStopsAtEvent) {
  const Execution a = make_alpha(3, 1);
  const auto p = a.prefix_at(0, Ev::kR1a);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (ServerLog{Ev::kW2, Ev::kW1, Ev::kR1a}));
  EXPECT_FALSE(a.prefix_at(0, Ev::kR2a).has_value());  // alpha has no R2
}

TEST(Execution, BetaWellFormedWithSwapsAndSkips) {
  for (int stem = 0; stem <= 4; ++stem) {
    for (int k = 0; k <= 4; ++k) {
      for (int skip = -1; skip < 4; ++skip) {
        const Execution b = make_beta(4, stem, k, skip);
        EXPECT_TRUE(b.well_formed()) << b.to_string();
      }
    }
  }
}

TEST(Execution, SkippedServerLacksR2Events) {
  const Execution b = make_beta(4, 1, 2, 3);
  EXPECT_FALSE(b.receives(3, Ev::kR2a));
  EXPECT_FALSE(b.receives(3, Ev::kR2b));
  EXPECT_TRUE(b.receives(3, Ev::kR1a));
  EXPECT_TRUE(b.receives(2, Ev::kR2b));
}

TEST(Execution, SwappedServersSeeR2bFirst) {
  const Execution b = make_beta(4, 0, 2, -1);
  // Servers 0,1 swapped: R2b before R1b.
  const auto p0 = b.prefix_at(0, Ev::kR1b);
  ASSERT_TRUE(p0.has_value());
  EXPECT_NE(std::find(p0->begin(), p0->end(), Ev::kR2b), p0->end());
  // Server 2 not swapped: R1b's prefix has no R2b.
  const auto p2 = b.prefix_at(2, Ev::kR1b);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(std::find(p2->begin(), p2->end(), Ev::kR2b), p2->end());
}

// ---------- Views ----------

TEST(Views, ReaderOneNeverSeesR2FirstRoundAtRoundOne) {
  const Execution b = make_beta(4, 1, 2, -1);
  const ReadView v = view_of(b, 1);
  ASSERT_EQ(v.first.replies.size(), 4u);
  for (const auto& [s, log] : v.first.replies) {
    EXPECT_EQ(std::find(log.begin(), log.end(), Ev::kR2a), log.end());
  }
}

TEST(Views, SkippedServerAbsentFromView) {
  const Execution b = make_beta(4, 1, 2, 3);
  const ReadView v = view_of(b, 2);
  EXPECT_EQ(v.first.replies.size(), 3u);
  EXPECT_EQ(v.second.replies.size(), 3u);
  for (const auto& [s, log] : v.first.replies) EXPECT_NE(s, 3);
}

TEST(Views, EqualityAndDigestConsistent) {
  const Execution a = make_beta(5, 2, 3, 1);
  const Execution b = make_beta(5, 2, 3, 1);
  const Execution c = make_beta(5, 2, 4, 1);
  EXPECT_EQ(view_of(a, 1), view_of(b, 1));
  EXPECT_EQ(view_of(a, 1).digest(), view_of(b, 1).digest());
  EXPECT_FALSE(view_of(a, 1) == view_of(c, 1));
  EXPECT_NE(view_of(a, 1).digest(), view_of(c, 1).digest());
}

TEST(Views, FilterErasesOnlyOtherFirstRound) {
  const Execution b = make_beta(4, 1, 2, -1);
  const ReadView raw = view_of(b, 1);
  const ReadView f = filter_other_first_round(raw, 1);
  // Same shape.
  ASSERT_EQ(f.second.replies.size(), raw.second.replies.size());
  for (std::size_t i = 0; i < f.second.replies.size(); ++i) {
    const auto& [s, log] = f.second.replies[i];
    EXPECT_EQ(std::find(log.begin(), log.end(), Ev::kR2a), log.end())
        << "R2a must be stripped from R1's filtered view";
    // R2b survives filtering (second rounds are NOT assumed invisible).
    const auto& raw_log = raw.second.replies[i].second;
    const bool raw_has_r2b =
        std::find(raw_log.begin(), raw_log.end(), Ev::kR2b) != raw_log.end();
    const bool f_has_r2b =
        std::find(log.begin(), log.end(), Ev::kR2b) != log.end();
    EXPECT_EQ(raw_has_r2b, f_has_r2b);
  }
}

// ---------- History extraction ----------

TEST(ToHistory, SequentialHeadForcesTwo) {
  const Execution a = make_alpha(3, 0);
  EXPECT_TRUE(check_wing_gong(to_history(a, 2)).atomic);
  EXPECT_FALSE(check_wing_gong(to_history(a, 1)).atomic);
}

TEST(ToHistory, SequentialTailForcesOne) {
  const Execution a = make_alpha_tail(3);
  EXPECT_TRUE(check_wing_gong(to_history(a, 1)).atomic);
  EXPECT_FALSE(check_wing_gong(to_history(a, 2)).atomic);
}

TEST(ToHistory, ConcurrentWritesAllowEitherSingleRead) {
  const Execution a = make_alpha(3, 1);
  EXPECT_TRUE(check_wing_gong(to_history(a, 1)).atomic);
  EXPECT_TRUE(check_wing_gong(to_history(a, 2)).atomic);
}

TEST(ToHistory, TwoReadsAfterWritesMustAgree) {
  // Both writes complete before both (overlapping) reads: returns must match.
  const Execution b = make_beta(3, 1, 0, -1);
  EXPECT_TRUE(check_wing_gong(to_history(b, 1, 1)).atomic);
  EXPECT_TRUE(check_wing_gong(to_history(b, 2, 2)).atomic);
  EXPECT_FALSE(check_wing_gong(to_history(b, 1, 2)).atomic);
  EXPECT_FALSE(check_wing_gong(to_history(b, 2, 1)).atomic);
}

TEST(ToHistory, SequentialStemPinsBothReads) {
  const Execution b = make_beta(3, 0, 1, 2);  // stem 0: W1 < W2
  EXPECT_TRUE(check_wing_gong(to_history(b, 2, 2)).atomic);
  EXPECT_FALSE(check_wing_gong(to_history(b, 1, 1)).atomic);
}

TEST(ToHistoryOneRound, SequentialReadsMustAgreeEvenConcurrentWrites) {
  Execution d;
  d.writes = WriteRelation::kConcurrent;
  d.has_r2 = true;
  EXPECT_TRUE(check_wing_gong(to_history_one_round(d, 1, 1)).atomic);
  EXPECT_TRUE(check_wing_gong(to_history_one_round(d, 2, 2)).atomic);
  EXPECT_FALSE(check_wing_gong(to_history_one_round(d, 2, 1)).atomic);
  EXPECT_FALSE(check_wing_gong(to_history_one_round(d, 1, 2)).atomic);
}

// ---------- Rules ----------

TEST(Rules, MajorityDecidesByOrderCounts) {
  const MajorityOrderRule rule;
  EXPECT_EQ(rule.decide(view_of(make_alpha(5, 0), 1), 1), 2);
  EXPECT_EQ(rule.decide(view_of(make_alpha(5, 5), 1), 1), 1);
  EXPECT_EQ(rule.decide(view_of(make_alpha(5, 4), 1), 1), 1);
  EXPECT_EQ(rule.decide(view_of(make_alpha(5, 1), 1), 1), 2);
}

TEST(Rules, AllStandardRulesRespectForcedEnds) {
  // Every sane candidate returns 2 at the head and 1 at the tail.
  for (const auto& rule : standard_rules()) {
    for (int S = 3; S <= 6; ++S) {
      EXPECT_EQ(rule->decide(view_of(make_alpha(S, 0), 1), 1), 2)
          << rule->name() << " S=" << S;
      EXPECT_EQ(rule->decide(view_of(make_alpha_tail(S), 1), 1), 1)
          << rule->name() << " S=" << S;
    }
  }
}

TEST(Rules, FirstRoundInvarianceByConstruction) {
  // decide() must ignore the other reader's first-round markers: evaluate on
  // a view and on the same view with R2a stripped -- identical results.
  const Execution b = make_beta(5, 2, 3, -1);
  const ReadView raw = view_of(b, 1);
  const ReadView stripped = filter_other_first_round(raw, 1);
  for (const auto& rule : standard_rules()) {
    EXPECT_EQ(rule->decide(raw, 1), rule->decide(stripped, 1)) << rule->name();
  }
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const RandomizedRule rule(seed);
    EXPECT_EQ(rule.decide(raw, 1), rule.decide(stripped, 1)) << rule.name();
  }
}

TEST(Rules, RandomizedRulesAreDeterministicAndDiverse) {
  const Execution b = make_beta(5, 2, 3, -1);
  const ReadView v = view_of(b, 1);
  int ones = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const RandomizedRule r1(seed), r2(seed);
    EXPECT_EQ(r1.decide(v, 1), r2.decide(v, 1));
    ones += (r1.decide(v, 1) == 1);
  }
  EXPECT_GT(ones, 5);
  EXPECT_LT(ones, 35);
}

}  // namespace
}  // namespace mwreg::fullinfo
