// Tests for the fault-plan scenario engine: the canned library, plan
// execution on the harness, availability metrics, and thread-count-
// invariant fault sweeps through the experiment runner.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "consistency/checkers.h"
#include "core/harness.h"
#include "core/workload.h"
#include "exp/aggregator.h"
#include "exp/runner.h"
#include "protocols/protocols.h"
#include "sim/fault_plan.h"

namespace mwreg {
namespace {

constexpr const char* kAbd = "mw-abd(W2R2)";

/// Run `protocol` on `cfg` under `plan` with the default closed-loop
/// workload and return the harness for inspection.
struct PlanRun {
  SimHarness h;
  PlanRun(const ClusterConfig& cfg, const FaultPlan& plan,
          const char* protocol = kAbd, std::uint64_t seed = 7)
      : h(*protocol_by_name(protocol),
          [&] {
            SimHarness::Options o;
            o.cfg = cfg;
            o.seed = seed;
            return o;
          }()) {
    h.install_fault_plan(plan);
    WorkloadOptions w;
    w.ops_per_writer = 8;
    w.ops_per_reader = 8;
    run_random_workload(h, w);
  }
  [[nodiscard]] std::size_t total_ops() const {
    return static_cast<std::size_t>(8 * (h.cfg().w() + h.cfg().r()));
  }
  [[nodiscard]] FaultMetrics metrics() {
    return compute_fault_metrics(h.history(), *h.fault_log());
  }
};

// ---------- plan values ----------

TEST(FaultPlan, CannedLibraryIsValidAndDistinct) {
  const std::vector<FaultPlan> lib = scenarios::all();
  ASSERT_GE(lib.size(), 5u);
  std::set<std::string> names;
  std::set<std::uint64_t> digests;
  for (const FaultPlan& p : lib) {
    EXPECT_EQ(p.validate(), "") << p.name;
    EXPECT_FALSE(p.steps.empty()) << p.name;
    names.insert(p.name);
    digests.insert(p.digest());
  }
  EXPECT_EQ(names.size(), lib.size());
  EXPECT_EQ(digests.size(), lib.size());
}

TEST(FaultPlan, ValidateCatchesMalformedSteps) {
  FaultPlan p;
  p.name = "bad";
  p.crash(0, -1);
  EXPECT_NE(p.validate(), "");

  FaultPlan q;
  q.name = "bad-factor";
  q.delay_spike(0.0, 10);
  EXPECT_NE(q.validate(), "");

  FaultPlan anonymous;
  anonymous.crash(0, 10);
  EXPECT_NE(anonymous.validate(), "");
  EXPECT_EQ(FaultPlan{}.validate(), "");  // the trivial plan is fine
}

TEST(FaultPlan, DigestSeparatesPlans) {
  EXPECT_EQ(scenarios::single_crash().digest(),
            scenarios::single_crash().digest());
  EXPECT_NE(scenarios::single_crash().digest(),
            scenarios::single_crash(40 * kMillisecond).digest());
  EXPECT_NE(scenarios::minority_partition().digest(),
            scenarios::majority_partition().digest());
}

// ---------- execution on the harness ----------

TEST(FaultPlanRun, SingleCrashWithinBudgetStaysAtomicAndLive) {
  PlanRun run(ClusterConfig{5, 2, 2, 1}, scenarios::single_crash());
  EXPECT_EQ(run.h.history().completed_count(), run.total_ops());
  EXPECT_TRUE(check_tag_witness(run.h.history()).atomic);
  ASSERT_NE(run.h.fault_log(), nullptr);
  EXPECT_EQ(run.h.fault_log()->faults_injected, 1);
  EXPECT_TRUE(run.h.fault_log()->disrupted());
  EXPECT_FALSE(run.h.fault_log()->healed());
  EXPECT_GT(run.metrics().ops_under_fault, 0u);  // still available
}

TEST(FaultPlanRun, MinorityPartitionKeepsAvailability) {
  // Isolating t servers leaves quorums of S - t reachable: a safe protocol
  // must stay atomic AND keep completing ops during the partition.
  PlanRun run(ClusterConfig{5, 2, 2, 1}, scenarios::minority_partition());
  EXPECT_EQ(run.h.history().completed_count(), run.total_ops());
  EXPECT_TRUE(check_tag_witness(run.h.history()).atomic);
  EXPECT_GT(run.metrics().ops_under_fault, 0u);
}

TEST(FaultPlanRun, MajorityPartitionStallsUntilHealThenRecovers) {
  // Isolating floor(S/2)+1 > t servers makes quorums unreachable: no new
  // operation can complete inside the window (at most in-flight stragglers
  // whose final quorum ack comes from a still-reachable server), everything
  // completes after the heal, and safety is never violated.
  PlanRun run(ClusterConfig{5, 2, 2, 1}, scenarios::majority_partition());
  const FaultMetrics m = run.metrics();
  EXPECT_LE(m.ops_under_fault, 2u);  // degraded availability
  EXPECT_GT(m.recovery_ms, 0.0);     // first completion after the heal
  EXPECT_EQ(run.h.history().completed_count(), run.total_ops());
  EXPECT_TRUE(check_tag_witness(run.h.history()).atomic);
  EXPECT_TRUE(run.h.fault_log()->healed());

  // Every op *invoked* during the partition stalls until after the heal.
  const FaultPlanLog& log = *run.h.fault_log();
  for (const OpRecord& r : run.h.history().ops()) {
    if (r.invoke >= log.disruption_start && r.invoke <= log.heal_time) {
      EXPECT_TRUE(!r.completed() || r.resp > log.heal_time);
    }
  }
}

TEST(FaultPlanRun, CrashRecoverRestoresTheFullCluster) {
  PlanRun run(ClusterConfig{5, 2, 2, 1}, scenarios::crash_recover());
  EXPECT_EQ(run.h.history().completed_count(), run.total_ops());
  EXPECT_TRUE(check_tag_witness(run.h.history()).atomic);
  EXPECT_TRUE(run.h.fault_log()->healed());
  EXPECT_FALSE(run.h.net().crashed(0));  // recovered
  EXPECT_GT(run.metrics().ops_under_fault, 0u);  // live while crashed
}

TEST(FaultPlanRun, RollingCrashesStayWithinBudget) {
  PlanRun run(ClusterConfig{5, 2, 2, 1}, scenarios::rolling_crashes());
  EXPECT_EQ(run.h.history().completed_count(), run.total_ops());
  EXPECT_TRUE(check_tag_witness(run.h.history()).atomic);
  EXPECT_EQ(run.h.fault_log()->faults_injected, 3);
  for (NodeId s : run.h.cfg().server_ids()) {
    EXPECT_FALSE(run.h.net().crashed(s));
  }
}

TEST(FaultPlanRun, Fig9SkipScheduleStaysAtomic) {
  // Each client loses links to a disjoint t-set of servers — quorums stay
  // reachable per client, so the run must stay live and atomic.
  PlanRun run(ClusterConfig{7, 2, 3, 1}, scenarios::fig9_skip());
  EXPECT_EQ(run.h.history().completed_count(), run.total_ops());
  EXPECT_TRUE(check_tag_witness(run.h.history()).atomic);
  EXPECT_GT(run.h.fault_log()->faults_injected, 0);
}

TEST(FaultPlanRun, DelaySpikeInflatesLatencyInsideTheWindow) {
  const ClusterConfig cfg{5, 2, 2, 1};
  auto max_write_ms = [&](const FaultPlan& plan) {
    SimHarness::Options o;
    o.cfg = cfg;
    o.seed = 11;
    o.delay = std::make_unique<ConstantDelay>(2 * kMillisecond);
    SimHarness h(*protocol_by_name(kAbd), std::move(o));
    if (!plan.empty()) h.install_fault_plan(plan);
    WorkloadOptions w;
    w.ops_per_writer = 8;
    w.ops_per_reader = 8;
    run_random_workload(h, w);
    return latency_of(h.history(), OpKind::kWrite).max_ms;
  };
  const double base = max_write_ms(FaultPlan{});
  const double spiked = max_write_ms(scenarios::delay_spike(10.0));
  EXPECT_GT(spiked, base * 2);
}

TEST(FaultPlanRun, BudgetScopedStepsAreNoopsOnZeroBudgetClusters) {
  // On a valid t=0 cluster the fault budget is empty: minority partitions
  // and skip schedules resolve to nothing and must not open a disruption
  // window (quorum() == S, so isolating even one server would stall
  // everything while the report claimed a within-budget scenario).
  for (const FaultPlan& plan :
       {scenarios::minority_partition(), scenarios::fig9_skip()}) {
    PlanRun run(ClusterConfig{5, 2, 2, 0}, plan);
    EXPECT_EQ(run.h.history().completed_count(), run.total_ops()) << plan.name;
    EXPECT_EQ(run.h.fault_log()->faults_injected, 0) << plan.name;
    EXPECT_FALSE(run.h.fault_log()->disrupted()) << plan.name;
    EXPECT_FALSE(run.h.fault_log()->healed()) << plan.name;
  }
}

TEST(FaultPlan, SpikeStepsWithoutASpikeModelLeaveTheLogEmpty) {
  // install_fault_plan with a null spike model must not fabricate
  // availability numbers for delay spikes that were never applied.
  Simulator sim;
  Network net(sim, std::make_unique<ConstantDelay>(1), Rng(1));
  const auto log = install_fault_plan(net, ClusterConfig{5, 2, 2, 1},
                                      scenarios::delay_spike());
  sim.run();
  EXPECT_EQ(log->faults_injected, 0);
  EXPECT_FALSE(log->disrupted());
  EXPECT_FALSE(log->healed());
}

TEST(FaultPlanRun, PersistentFaultAfterRecoverKeepsTheWindowOpen) {
  // A restorative step only closes the disruption window when NOTHING
  // injected is still active: crash(0) -> recover(0) -> crash(1) must not
  // report a heal at the mid-plan recover.
  FaultPlan plan;
  plan.name = "recover-then-crash";
  plan.crash(0, 30 * kMillisecond)
      .recover(0, 60 * kMillisecond)
      .crash(1, 90 * kMillisecond);
  PlanRun run(ClusterConfig{5, 2, 2, 1}, plan);
  EXPECT_EQ(run.h.fault_log()->faults_injected, 2);
  EXPECT_TRUE(run.h.fault_log()->disrupted());
  EXPECT_FALSE(run.h.fault_log()->healed());  // server 1 stays crashed
  EXPECT_DOUBLE_EQ(run.metrics().recovery_ms, -1);
}

TEST(FaultPlanRun, RepeatedInstallsComposeIntoOneLog) {
  const ClusterConfig cfg{5, 2, 2, 1};
  SimHarness::Options o;
  o.cfg = cfg;
  o.seed = 7;
  SimHarness h(*protocol_by_name(kAbd), std::move(o));
  h.install_fault_plan(scenarios::single_crash());        // never recovers
  h.install_fault_plan(scenarios::minority_partition());  // heals at 90ms
  WorkloadOptions w;
  run_random_workload(h, w);
  const FaultPlanLog& log = *h.fault_log();
  EXPECT_EQ(log.faults_injected, 2);  // the crash AND the partition
  EXPECT_EQ(log.disruption_start, 30 * kMillisecond);
  // The partition's heal cannot close the window while the crash persists.
  EXPECT_FALSE(log.healed());
}

TEST(FaultPlan, OverlappingComposedPartitionsRefcountBlocks) {
  // Two composed plans declaring overlapping partitions: the first plan's
  // heal must not lift links the second plan still holds, and the second
  // partition counts as an injected fault even though the links were
  // already blocked.
  Simulator sim;
  const ClusterConfig cfg{5, 2, 2, 1};
  Network net(sim, std::make_unique<ConstantDelay>(1), Rng(1));
  FaultPlan a;
  a.name = "a";
  a.partition(FaultStep::Scope::kFaultBudget, 30).heal(60);
  FaultPlan b;
  b.name = "b";
  b.partition(FaultStep::Scope::kFaultBudget, 40).heal(120);
  auto log = install_fault_plan(net, cfg, a);
  log = install_fault_plan(net, cfg, b, nullptr, log);

  const NodeId probe_src = cfg.server_id(0);  // the isolated server (t = 1)
  const NodeId probe_dst = cfg.writer_id(0);
  bool blocked_at_90 = false, blocked_at_130 = true;
  sim.schedule_at(
      90, [&] { blocked_at_90 = net.link_blocked(probe_src, probe_dst); });
  sim.schedule_at(
      130, [&] { blocked_at_130 = net.link_blocked(probe_src, probe_dst); });
  sim.run();

  EXPECT_TRUE(blocked_at_90);    // a's heal at 60 left b's block in place
  EXPECT_FALSE(blocked_at_130);  // b's heal lifted the last reference
  EXPECT_EQ(log->faults_injected, 2);
  EXPECT_EQ(log->disruption_start, 30);
  EXPECT_TRUE(log->healed());
  EXPECT_EQ(log->heal_time, 120);
}

// ---------- availability metrics ----------

TEST(FaultMetrics, ClassifiesOpsAgainstTheDisruptionWindow) {
  History h;
  auto op = [&h](Time invoke, Time resp) {
    const OpId id = h.begin_op(0, OpKind::kWrite, invoke);
    h.end_op(id, resp, TaggedValue{});
  };
  op(0, 50);            // before the fault
  op(60, 120);          // completes under fault
  op(80, 150);          // completes under fault (at the heal boundary)
  op(90, 230);          // first completion after the heal
  op(95, 300);          // later completion
  const OpId pending = h.begin_op(1, OpKind::kWrite, 70);  // never completes
  (void)pending;

  FaultPlanLog log;
  log.faults_injected = 2;
  log.disruption_start = 100;
  log.heal_time = 150;
  const FaultMetrics m = compute_fault_metrics(h, log);
  EXPECT_EQ(m.faults_injected, 2);
  EXPECT_EQ(m.ops_under_fault, 2u);
  EXPECT_DOUBLE_EQ(m.recovery_ms, 80.0 / kMillisecond);  // 80 ns, in ms

  FaultPlanLog unhealed;
  unhealed.disruption_start = 100;
  const FaultMetrics mu = compute_fault_metrics(h, unhealed);
  EXPECT_EQ(mu.ops_under_fault, 4u);  // open-ended window
  EXPECT_DOUBLE_EQ(mu.recovery_ms, -1);

  const FaultMetrics none = compute_fault_metrics(h, FaultPlanLog{});
  EXPECT_EQ(none.ops_under_fault, 0u);
  EXPECT_DOUBLE_EQ(none.recovery_ms, -1);
}

// ---------- through the runner ----------

exp::ExperimentSpec fault_spec() {
  exp::ExperimentSpec spec;
  spec.name = "fault-axis";
  spec.protocols = {kAbd, "fast-read-mw(W2R1)", "regular-fast-read(W2R1)"};
  spec.clusters = {ClusterConfig{5, 2, 2, 1}};
  spec.fault_plans = {scenarios::minority_partition(),
                      scenarios::majority_partition(),
                      scenarios::crash_recover()};
  spec.seeds = 5;
  spec.workload.ops_per_writer = 6;
  spec.workload.ops_per_reader = 6;
  return spec;
}

TEST(RunnerFaults, SameResultsAcrossThreadCounts) {
  const exp::ExperimentSpec spec = fault_spec();
  exp::Runner::Options serial;
  serial.threads = 1;
  exp::Runner::Options wide;
  wide.threads = 4;
  const std::vector<exp::TrialResult> a = exp::Runner(serial).run(spec);
  const std::vector<exp::TrialResult> b = exp::Runner(wide).run(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fault_plan, b[i].fault_plan);
    EXPECT_EQ(a[i].harness_seed, b[i].harness_seed);
    EXPECT_EQ(a[i].write_ms, b[i].write_ms);
    EXPECT_EQ(a[i].read_ms, b[i].read_ms);
    EXPECT_EQ(a[i].faults_injected, b[i].faults_injected);
    EXPECT_EQ(a[i].ops_under_fault, b[i].ops_under_fault);
    EXPECT_EQ(a[i].recovery_ms, b[i].recovery_ms);
  }
  EXPECT_EQ(exp::to_csv(exp::aggregate(a)), exp::to_csv(exp::aggregate(b)));
  EXPECT_EQ(exp::to_json(exp::aggregate(a)), exp::to_json(exp::aggregate(b)));
}

TEST(RunnerFaults, AvailabilityColumnsSeparateMinorityFromMajority) {
  const std::vector<exp::CellStats> cells =
      exp::aggregate(exp::Runner().run(fault_spec()));
  ASSERT_EQ(cells.size(), 9u);
  std::map<std::string, double> minority_ops, majority_ops;
  for (const exp::CellStats& c : cells) {
    // Safety: no protocol may violate its guarantee under any plan — blocked
    // links park messages, they never forge quorums.
    EXPECT_TRUE(c.matches_expectation())
        << c.protocol << " under " << c.fault_plan << ": " << c.first_violation;
    if (c.fault_plan == "majority-partition") {
      majority_ops[c.protocol] = c.ops_under_fault;
      // Stragglers at most: rounds already in flight when the partition cut.
      EXPECT_LE(c.ops_under_fault, 2.0) << c.protocol;
      EXPECT_GT(c.recovery_ms, 0.0) << c.protocol;
    } else {
      EXPECT_GT(c.ops_under_fault, 0.0)
          << c.protocol << " under " << c.fault_plan;
      if (c.fault_plan == "minority-partition") {
        minority_ops[c.protocol] = c.ops_under_fault;
      }
    }
  }
  // Degraded availability must show up in the columns: a majority partition
  // completes several times fewer ops in-window than a minority partition.
  for (const auto& [proto, minority] : minority_ops) {
    EXPECT_GT(minority, 3 * majority_ops.at(proto)) << proto;
  }
}

TEST(RunnerFaults, PlanTrialsAreBatchInvariant) {
  // A fault cell re-run alone reproduces its in-batch numbers, exactly like
  // fault-free cells.
  const exp::ExperimentSpec spec = fault_spec();
  const std::vector<exp::TrialResult> batch = exp::Runner().run(spec);
  const exp::TrialResult& probe = batch[batch.size() / 2];
  std::size_t plan_index = 0;
  for (std::size_t i = 0; i < spec.fault_plans.size(); ++i) {
    if (spec.fault_plans[i].name == probe.fault_plan) plan_index = i;
  }
  const exp::TrialResult solo =
      exp::run_trial(spec, 0, probe.cell_index, probe.protocol, probe.cfg,
                     probe.user_seed, &spec.fault_plans[plan_index]);
  EXPECT_EQ(solo.harness_seed, probe.harness_seed);
  EXPECT_EQ(solo.write_ms, probe.write_ms);
  EXPECT_EQ(solo.read_ms, probe.read_ms);
  EXPECT_EQ(solo.ops_under_fault, probe.ops_under_fault);
  EXPECT_EQ(solo.recovery_ms, probe.recovery_ms);
}

}  // namespace
}  // namespace mwreg
