// Tests for the process-sharded sweep fleet: ShardSpec slicing in the
// Runner, the versioned partial-aggregate artifact (exp/partial.h), the
// deterministic merge algebra, and the shared sweep CLI parser.
//
// The load-bearing property: for ANY shard count and ANY merge order, the
// merged result vector — and therefore the rendered CSV and JSON reports —
// is byte-for-byte identical to the single-process run. Fault-plan,
// multi-key-keyspace, and streaming-checked cells are all in the reference
// batch, so the property is pinned across every sweep axis at once.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "exp/aggregator.h"
#include "exp/cli.h"
#include "exp/partial.h"
#include "exp/runner.h"
#include "sim/fault_plan.h"

namespace mwreg::exp {
namespace {

/// A miniature of sweep_explorer's reference batch: fault-plan cells and a
/// multi-key Zipfian keyspace cell, streaming checker live on every trial.
/// Seeds chosen so trials (2*2*3 + 1*3 = 15) divide unevenly by 2 and 7.
std::vector<ExperimentSpec> ref_batch() {
  ExperimentSpec faults;
  faults.name = "ref-faults";
  faults.protocols = {"mw-abd(W2R2)", "fast-read-mw(W2R1)"};
  faults.clusters = {ClusterConfig{5, 2, 2, 1}};
  faults.fault_plans = {scenarios::single_crash(),
                        scenarios::minority_partition()};
  faults.seeds = 3;
  faults.workload.ops_per_writer = 4;
  faults.workload.ops_per_reader = 4;
  faults.check_streaming = true;

  ExperimentSpec keyed;
  keyed.name = "ref-keyspace";
  keyed.protocols = {"mw-abd(W2R2)"};
  keyed.clusters = {ClusterConfig{5, 4, 4, 1}};
  keyed.keyspaces = {KeyspaceConfig{8, 2, 0.99}};
  keyed.seeds = 3;
  keyed.workload.ops_per_writer = 4;
  keyed.workload.ops_per_reader = 4;
  keyed.check_streaming = true;

  return {faults, keyed};
}

/// Run the batch sharded N ways and return the encoded partials.
std::vector<Partial> shard_run(const std::vector<ExperimentSpec>& specs,
                               int count) {
  std::vector<Partial> partials;
  for (int i = 0; i < count; ++i) {
    Runner::Options o;
    o.threads = 1;
    o.shard = ShardSpec{i, count};
    Partial p;
    p.meta = make_partial_meta("ref", specs, o.shard);
    p.results = Runner(o).run_all(specs);
    // Round-trip through the wire format so every merge test also
    // exercises encode/decode bit-exactness.
    const std::vector<std::uint8_t> bytes = encode_partial(p.meta, p.results);
    Partial decoded;
    std::string err;
    EXPECT_TRUE(decode_partial(bytes.data(), bytes.size(), &decoded, &err))
        << err;
    partials.push_back(std::move(decoded));
  }
  return partials;
}

std::string report_pair(const std::vector<TrialResult>& results) {
  const std::vector<CellStats> cells = aggregate(results);
  return to_csv(cells) + "\x01" + to_json(cells);
}

// ---------- runner sharding ----------

TEST(ShardRunner, SlicesPartitionTheExpansion) {
  const std::vector<ExperimentSpec> specs = ref_batch();
  Runner::Options serial;
  serial.threads = 1;
  const std::vector<TrialResult> full = Runner(serial).run_all(specs);
  ASSERT_EQ(full.size(), 15u);
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].trial_index, i);  // unsharded indices are the identity
  }

  for (int count : {2, 3, 7}) {
    std::size_t seen = 0;
    for (int idx = 0; idx < count; ++idx) {
      Runner::Options o;
      o.threads = 1;
      o.shard = ShardSpec{idx, count};
      const std::vector<TrialResult> slice = Runner(o).run_all(specs);
      for (const TrialResult& tr : slice) {
        ASSERT_LT(tr.trial_index, full.size());
        EXPECT_EQ(tr.trial_index % static_cast<std::uint64_t>(count),
                  static_cast<std::uint64_t>(idx));
        const TrialResult& ref = full[tr.trial_index];
        // A shard's trial is bit-identical to the single-process trial:
        // RNG streams depend on the cell, never on slice composition.
        EXPECT_EQ(tr.harness_seed, ref.harness_seed);
        EXPECT_EQ(tr.write_ms, ref.write_ms);
        EXPECT_EQ(tr.read_ms, ref.read_ms);
        EXPECT_EQ(tr.msgs_sent, ref.msgs_sent);
        EXPECT_EQ(tr.stream_peak_window, ref.stream_peak_window);
      }
      seen += slice.size();
    }
    EXPECT_EQ(seen, full.size()) << count << " shards";
  }
}

TEST(ShardRunner, RejectsInvalidShardSpec) {
  Runner::Options o;
  o.shard = ShardSpec{3, 3};
  EXPECT_THROW((void)Runner(o).run_all(ref_batch()), std::invalid_argument);
  o.shard = ShardSpec{-1, 2};
  EXPECT_THROW((void)Runner(o).run_all(ref_batch()), std::invalid_argument);
  EXPECT_FALSE(ShardSpec({0, 0}).valid());
  EXPECT_TRUE(ShardSpec({0, 1}).valid());
  EXPECT_FALSE(ShardSpec({0, 1}).sharded());
  EXPECT_TRUE(ShardSpec({1, 2}).sharded());
}

TEST(ExpansionInfoTest, IdentifiesTheExpansion) {
  const std::vector<ExperimentSpec> specs = ref_batch();
  const ExpansionInfo a = expansion_info(specs);
  EXPECT_EQ(a.total_trials, 15u);
  EXPECT_EQ(a.digest, expansion_info(specs).digest);  // deterministic

  // Any knob that shapes results must shift the digest: merging a shard of
  // a different workload (or seed range) into this run must be refused.
  std::vector<ExperimentSpec> other = ref_batch();
  other[0].workload.ops_per_writer += 1;
  EXPECT_NE(expansion_info(other).digest, a.digest);
  other = ref_batch();
  other[1].seed_lo += 1;
  EXPECT_NE(expansion_info(other).digest, a.digest);
  other = ref_batch();
  other[0].check_streaming = false;
  EXPECT_NE(expansion_info(other).digest, a.digest);
}

// ---------- merge algebra ----------

TEST(ShardMerge, ByteIdenticalReportsAtShardCounts1_2_7) {
  const std::vector<ExperimentSpec> specs = ref_batch();
  Runner::Options serial;
  serial.threads = 1;
  const std::string golden = report_pair(Runner(serial).run_all(specs));

  for (int count : {1, 2, 7}) {  // 15 trials: uneven division at 2 and 7
    const std::vector<Partial> partials = shard_run(specs, count);
    std::vector<TrialResult> merged;
    std::string err;
    ASSERT_TRUE(merge_partials(partials, &merged, &err))
        << count << " shards: " << err;
    EXPECT_EQ(report_pair(merged), golden) << count << " shards";
  }
}

TEST(ShardMerge, MergeOrderCannotAffectTheReport) {
  const std::vector<ExperimentSpec> specs = ref_batch();
  Runner::Options serial;
  serial.threads = 1;
  const std::string golden = report_pair(Runner(serial).run_all(specs));

  std::vector<Partial> partials = shard_run(specs, 3);
  std::vector<int> order = {0, 1, 2};
  do {
    std::vector<Partial> permuted;
    for (int i : order) permuted.push_back(partials[static_cast<std::size_t>(i)]);
    std::vector<TrialResult> merged;
    std::string err;
    ASSERT_TRUE(merge_partials(permuted, &merged, &err)) << err;
    EXPECT_EQ(report_pair(merged), golden)
        << "order " << order[0] << order[1] << order[2];
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(ShardMerge, MoreShardsThanTrialsLeavesEmptyShards) {
  // 3 trials across 7 shards: shards 3..6 run nothing and say so; the
  // merge of all seven is still exact.
  ExperimentSpec tiny;
  tiny.name = "tiny";
  tiny.protocols = {"mw-abd(W2R2)"};
  tiny.clusters = {ClusterConfig{5, 2, 2, 1}};
  tiny.seeds = 3;
  tiny.workload.ops_per_writer = 3;
  tiny.workload.ops_per_reader = 3;
  const std::vector<ExperimentSpec> specs = {tiny};

  Runner::Options serial;
  serial.threads = 1;
  const std::string golden = report_pair(Runner(serial).run_all(specs));

  const std::vector<Partial> partials = shard_run(specs, 7);
  int empty = 0;
  for (const Partial& p : partials) empty += p.results.empty();
  EXPECT_EQ(empty, 4);

  std::vector<TrialResult> merged;
  std::string err;
  ASSERT_TRUE(merge_partials(partials, &merged, &err)) << err;
  EXPECT_EQ(report_pair(merged), golden);
}

TEST(ShardMerge, RefusesIncompleteDuplicateOrForeignShards) {
  const std::vector<ExperimentSpec> specs = ref_batch();
  std::vector<Partial> partials = shard_run(specs, 3);
  std::vector<TrialResult> merged;
  std::string err;

  // A missing shard must not quietly render a thinner report.
  ASSERT_TRUE(merge_partials({partials[0], partials[2]}, &merged, &err) ==
              false);
  EXPECT_NE(err.find("missing"), std::string::npos) << err;

  // The same shard twice claims its trial indices twice.
  EXPECT_FALSE(
      merge_partials({partials[0], partials[0], partials[1], partials[2]},
                     &merged, &err));
  EXPECT_NE(err.find("more than one partial"), std::string::npos) << err;

  // A shard of a DIFFERENT expansion (changed workload) must be refused
  // even though its name and trial count line up.
  std::vector<ExperimentSpec> other = ref_batch();
  other[0].workload.ops_per_writer += 1;
  std::vector<Partial> foreign = shard_run(other, 3);
  EXPECT_FALSE(merge_partials({partials[0], foreign[1], partials[2]}, &merged,
                              &err));
  EXPECT_NE(err.find("different expansions"), std::string::npos) << err;

  // Mixed report names are two different artifacts, not one merge.
  Partial renamed = partials[1];
  renamed.meta.name = "something-else";
  EXPECT_FALSE(
      merge_partials({partials[0], renamed, partials[2]}, &merged, &err));
  EXPECT_NE(err.find("name"), std::string::npos) << err;

  EXPECT_FALSE(merge_partials({}, &merged, &err));
}

// ---------- artifact robustness ----------

TEST(PartialCodec, RoundTripsBitExactly) {
  const std::vector<ExperimentSpec> specs = ref_batch();
  Runner::Options o;
  o.threads = 1;
  o.shard = ShardSpec{1, 2};
  const std::vector<TrialResult> slice = Runner(o).run_all(specs);
  const PartialMeta meta = make_partial_meta("ref", specs, o.shard);
  const std::vector<std::uint8_t> bytes = encode_partial(meta, slice);

  Partial p;
  std::string err;
  ASSERT_TRUE(decode_partial(bytes.data(), bytes.size(), &p, &err)) << err;
  EXPECT_EQ(p.meta.name, "ref");
  EXPECT_EQ(p.meta.shard.index, 1);
  EXPECT_EQ(p.meta.shard.count, 2);
  EXPECT_EQ(p.meta.total_trials, 15u);
  EXPECT_EQ(p.meta.expansion_digest, expansion_info(specs).digest);
  ASSERT_EQ(p.results.size(), slice.size());
  for (std::size_t i = 0; i < slice.size(); ++i) {
    const TrialResult& a = slice[i];
    const TrialResult& b = p.results[i];
    EXPECT_EQ(a.trial_index, b.trial_index);
    EXPECT_EQ(a.spec_name, b.spec_name);
    EXPECT_EQ(a.protocol, b.protocol);
    EXPECT_EQ(a.fault_plan, b.fault_plan);
    EXPECT_EQ(a.keyspace.num_keys, b.keyspace.num_keys);
    EXPECT_EQ(a.keyspace.zipf_s, b.keyspace.zipf_s);
    EXPECT_EQ(a.harness_seed, b.harness_seed);
    EXPECT_EQ(a.write_ms, b.write_ms);  // bit-exact doubles
    EXPECT_EQ(a.read_ms, b.read_ms);
    EXPECT_EQ(a.stream_peak_window, b.stream_peak_window);
    EXPECT_EQ(a.recovery_ms, b.recovery_ms);
    EXPECT_EQ(a.violation, b.violation);
  }
}

TEST(PartialCodec, RefusesTruncationAtEveryPrefixLength) {
  ExperimentSpec tiny;
  tiny.name = "tiny";
  tiny.protocols = {"mw-abd(W2R2)"};
  tiny.clusters = {ClusterConfig{5, 2, 2, 1}};
  tiny.seeds = 1;
  tiny.workload.ops_per_writer = 2;
  tiny.workload.ops_per_reader = 2;
  Runner::Options o;
  o.threads = 1;
  const std::vector<TrialResult> rs = Runner(o).run_all({tiny});
  const std::vector<std::uint8_t> bytes =
      encode_partial(make_partial_meta("t", {tiny}, ShardSpec{}), rs);

  Partial p;
  std::string err;
  ASSERT_TRUE(decode_partial(bytes.data(), bytes.size(), &p, &err)) << err;
  // EVERY strict prefix must be refused — truncation can never pass, no
  // matter where the file was cut.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(decode_partial(bytes.data(), len, &p, &err))
        << "prefix of " << len << " bytes decoded";
  }
  // ...and so must trailing garbage.
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(decode_partial(padded.data(), padded.size(), &p, &err));
  EXPECT_NE(err.find("trailing"), std::string::npos) << err;
}

TEST(PartialCodec, RefusesBadMagicAndVersionMismatch) {
  const std::vector<ExperimentSpec> specs = ref_batch();
  Runner::Options o;
  o.threads = 1;
  o.shard = ShardSpec{0, 3};
  const std::vector<std::uint8_t> bytes = encode_partial(
      make_partial_meta("ref", specs, o.shard), Runner(o).run_all(specs));

  Partial p;
  std::string err;
  std::vector<std::uint8_t> bad = bytes;
  bad[0] = 'X';
  EXPECT_FALSE(decode_partial(bad.data(), bad.size(), &p, &err));
  EXPECT_NE(err.find("magic"), std::string::npos) << err;

  // Byte 4 is the version varint (kPartialVersion is small). A future
  // version must be refused with a message that names both versions, not
  // misparsed as today's layout.
  bad = bytes;
  ASSERT_EQ(bad[4], kPartialVersion);
  bad[4] = kPartialVersion + 1;
  EXPECT_FALSE(decode_partial(bad.data(), bad.size(), &p, &err));
  EXPECT_NE(err.find("version mismatch"), std::string::npos) << err;
}

TEST(PartialCodec, HostileSampleCountCannotForceOversizedReserve) {
  // Craft a header claiming one trial, then hand the trial record a huge
  // varint where the write_ms sample count lives. ByteReader::get_count
  // caps the prefix by remaining(), so the decoder must fail cleanly (no
  // multi-GB reserve) — the PR 3 get_vector lesson applied to partials.
  ByteWriter w;
  for (std::uint8_t b : {'M', 'W', 'S', 'P'}) w.put_u8(b);
  w.put_varint(kPartialVersion);
  w.put_string("evil");
  w.put_signed(0);      // shard index
  w.put_signed(1);      // shard count
  w.put_varint(1);      // total trials
  w.put_varint(0x123);  // expansion digest
  w.put_varint(1);      // one trial record...
  w.put_varint(0);      // trial_index
  w.put_signed(0);      // spec_index
  w.put_signed(0);      // cell_index
  w.put_string("s");
  w.put_string("p");
  for (int i = 0; i < 7; ++i) w.put_signed(1);  // cluster fields
  w.put_string("");                             // fault plan
  w.put_signed(0);                              // keyspace num_keys
  w.put_signed(1);                              // keyspace shards
  for (int i = 0; i < 8; ++i) w.put_u8(0);      // zipf_s
  w.put_varint(1);                              // user_seed
  w.put_varint(2);                              // harness_seed
  for (int i = 0; i < 4; ++i) w.put_bool(true); // verdict bools
  w.put_varint(0);                              // stream_peak_window
  w.put_string("");                             // violation
  w.put_varint(0xFFFFFFFFFFFFULL);              // write_ms count: hostile
  const std::vector<std::uint8_t> bytes = w.take();

  Partial p;
  std::string err;
  EXPECT_FALSE(decode_partial(bytes.data(), bytes.size(), &p, &err));
  EXPECT_NE(err.find("truncated"), std::string::npos) << err;
}

TEST(PartialCodec, FileRoundTripAndMissingFile) {
  ExperimentSpec tiny;
  tiny.name = "tiny";
  tiny.protocols = {"mw-abd(W2R2)"};
  tiny.clusters = {ClusterConfig{5, 2, 2, 1}};
  tiny.seeds = 2;
  tiny.workload.ops_per_writer = 2;
  tiny.workload.ops_per_reader = 2;
  Runner::Options o;
  o.threads = 1;
  const std::vector<TrialResult> rs = Runner(o).run_all({tiny});
  const PartialMeta meta = make_partial_meta("tiny", {tiny}, ShardSpec{});

  const std::string path = "shard_merge_test.roundtrip.partial";
  std::string err;
  ASSERT_TRUE(save_partial(path, meta, rs, &err)) << err;
  Partial p;
  ASSERT_TRUE(load_partial(path, &p, &err)) << err;
  EXPECT_EQ(p.results.size(), rs.size());
  EXPECT_EQ(p.meta.expansion_digest, meta.expansion_digest);
  std::remove(path.c_str());

  EXPECT_FALSE(load_partial("no/such/dir/x.partial", &p, &err));
  EXPECT_NE(err.find("x.partial"), std::string::npos) << err;
}

// ---------- sweep CLI parser ----------

TEST(SweepCliParser, ParsesSharedFlags) {
  const char* argv[] = {"prog", "--threads", "8",     "--shard", "2/7",
                        "--out", "reports",   "extra", "--describe"};
  SweepCli cli;
  std::string err;
  ASSERT_TRUE(parse_sweep_cli(9, const_cast<char**>(argv), &cli, &err)) << err;
  EXPECT_EQ(cli.threads, 8);
  EXPECT_EQ(cli.shard.index, 2);
  EXPECT_EQ(cli.shard.count, 7);
  EXPECT_EQ(cli.out_dir, "reports");
  ASSERT_EQ(cli.extra.size(), 2u);
  EXPECT_EQ(cli.extra[0], "extra");
  EXPECT_EQ(cli.extra[1], "--describe");
}

TEST(SweepCliParser, RejectsWhatAtoiWouldSwallow) {
  // std::atoi("garbage") == 0 was sweep_explorer's old argv handling; the
  // parser must hard-fail every one of these instead.
  for (const char* bad : {"garbage", "3x", "", "2.5", "-1",
                          "99999999999999999999"}) {
    const char* argv[] = {"prog", "--threads", bad};
    SweepCli cli;
    std::string err;
    EXPECT_FALSE(parse_sweep_cli(3, const_cast<char**>(argv), &cli, &err))
        << "'" << bad << "' parsed";
    EXPECT_FALSE(err.empty());
  }
  for (const char* bad :
       {"2", "a/b", "3/3", "-1/2", "2/", "/3", "1/0", "1/2/3"}) {
    const char* argv[] = {"prog", "--shard", bad};
    SweepCli cli;
    std::string err;
    EXPECT_FALSE(parse_sweep_cli(3, const_cast<char**>(argv), &cli, &err))
        << "'" << bad << "' parsed";
  }
  // A flag missing its value is an error, not a silent default.
  const char* argv[] = {"prog", "--out"};
  SweepCli cli;
  std::string err;
  EXPECT_FALSE(parse_sweep_cli(2, const_cast<char**>(argv), &cli, &err));
}

TEST(SweepCliParser, HelpersComposePathsAndFilenames) {
  int v = 0;
  EXPECT_TRUE(parse_int("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(parse_int("42 ", &v));
  ShardSpec s;
  EXPECT_TRUE(parse_shard("0/1", &s));
  EXPECT_FALSE(s.sharded());
  EXPECT_EQ(join_path(".", "a.csv"), "a.csv");
  EXPECT_EQ(join_path("dir", "a.csv"), "dir/a.csv");
  EXPECT_EQ(join_path("dir/", "a.csv"), "dir/a.csv");
  EXPECT_EQ(partial_filename("ref_sweep", ShardSpec{2, 7}),
            "ref_sweep.shard2of7.partial");
}

}  // namespace
}  // namespace mwreg::exp
