// Robustness: decoding arbitrary bytes must never crash, hang, or
// over-allocate -- servers and clients parse each other's payloads, and a
// malformed message must degrade to a failed ByteReader, not undefined
// behavior.
#include <gtest/gtest.h>

#include <vector>

#include "common/codec.h"
#include "common/rng.h"
#include "protocols/messages.h"

namespace mwreg {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> b(n);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next());
  return b;
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomBytesNeverCrashPrimitives) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 500; ++iter) {
    const auto bytes = random_bytes(rng, rng.next_below(64));
    ByteReader r(bytes);
    (void)r.get_varint();
    (void)r.get_signed();
    (void)r.get_string();
    (void)r.get_tag();
    (void)r.get_value();
    // ok() may be true or false; the point is we got here.
    SUCCEED();
  }
}

TEST_P(CodecFuzz, RandomBytesNeverCrashMessageDecoders) {
  Rng rng(GetParam() + 1000);
  for (int iter = 0; iter < 500; ++iter) {
    const auto bytes = random_bytes(rng, rng.next_below(96));
    (void)decode_value(bytes);
    (void)decode_tag(bytes);
    const auto vals = decode_value_list(bytes);
    const auto entries = decode_entries(bytes);
    // Length prefixes are validated against the buffer, so decoded sizes
    // stay bounded by the input size (no attacker-controlled allocation).
    EXPECT_LE(vals.size(), bytes.size() + 2);
    EXPECT_LE(entries.size(), bytes.size() + 2);
  }
}

TEST_P(CodecFuzz, TruncationsOfValidPayloadsFailCleanly) {
  Rng rng(GetParam() + 2000);
  // Build a valid entries payload, then decode every truncation of it.
  std::vector<FrEntry> entries;
  for (int i = 0; i < 4; ++i) {
    FrEntry e;
    e.value = TaggedValue{Tag{rng.next_in(1, 100), static_cast<NodeId>(i)},
                          rng.next_in(-5, 5)};
    for (NodeId c = 0; c < 5; ++c) {
      if (rng.next_bool(0.6)) e.updated.push_back(c);
    }
    entries.push_back(std::move(e));
  }
  const std::vector<std::uint8_t> full = encode_entries(entries);
  // The complete payload round-trips.
  const auto decoded = decode_entries(full);
  ASSERT_EQ(decoded.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded[i].value, entries[i].value);
    EXPECT_EQ(decoded[i].updated, entries[i].updated);
  }
  // Every strict prefix decodes without crashing.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> trunc(
        full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
    (void)decode_entries(trunc);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Range<std::uint64_t>(1, 7));

// Regression: a truncated buffer carrying a huge length prefix must fail
// the size guard against the bytes *remaining*, not the total buffer size.
// The old guard (n > buf.size() + 1) passed any prefix up to the full
// buffer length even with the reader nearly exhausted, reserving far more
// elements than the remaining bytes could ever decode.
TEST(CodecGuard, TruncatedHugeLengthPrefixFailsWithoutReserving) {
  // 64 bytes total: a 59-byte string consumes most of the buffer, then a
  // varint length prefix claims 60 elements with only 3 bytes remaining.
  ByteWriter w;
  w.put_string(std::string(59, 'x'));
  w.put_varint(60);  // 1 byte; 60 <= total size, > remaining
  w.put_u8(1);
  w.put_u8(2);
  w.put_u8(3);
  std::vector<std::uint8_t> bytes = w.take();
  ASSERT_EQ(bytes.size(), 64u);

  ByteReader r(bytes);
  (void)r.get_string();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.remaining(), 4u);
  const auto out =
      r.get_vector<std::uint8_t>([](ByteReader& br) { return br.get_u8(); });
  EXPECT_FALSE(r.ok());
  // The guard must trip before any element is decoded or reserved.
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(out.capacity(), 0u);
}

// The same hostile shape nested inside a message decoder: an entries
// payload whose inner updated-list claims more ids than the bytes left.
TEST(CodecGuard, NestedListLengthCappedByRemainingBytes) {
  ByteWriter w;
  w.put_varint(1);            // one entry
  w.put_value(TaggedValue{Tag{1, 0}, 7});
  w.put_varint(1000);         // updated-set length: absurd vs. remaining
  w.put_signed(1);
  const std::vector<std::uint8_t> bytes = w.bytes();
  const auto entries = decode_entries(bytes);
  EXPECT_TRUE(entries.empty() || entries[0].updated.size() <= bytes.size());
}

// ---- incremental fast-read payloads (kFrReadDeltaReq / kFrReadAckDelta) ----

TEST(DeltaCodec, ReadReqRoundTripsThroughReusableBuffers) {
  const std::vector<TaggedValue> queue = {TaggedValue{Tag{7, 1}, 70}};
  const std::uint64_t acked[] = {3, 0, 12, 5, 1};
  ByteWriter w;
  encode_delta_read_req_into(w, queue, acked, 5);
  const std::vector<std::uint8_t> bytes = w.bytes();

  // Decode twice into the same scratch buffers (capacity reuse path).
  std::vector<TaggedValue> out_queue{TaggedValue{Tag{99, 9}, 1}};
  std::vector<std::uint64_t> out_acked{42};
  for (int round = 0; round < 2; ++round) {
    ByteReader r(bytes);
    ASSERT_TRUE(decode_delta_read_req_into(r, out_queue, out_acked));
    EXPECT_TRUE(r.exhausted());
    ASSERT_EQ(out_queue.size(), 1u);
    EXPECT_EQ(out_queue[0], queue[0]);
    ASSERT_EQ(out_acked.size(), 5u);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(out_acked[i], acked[i]);
  }
}

TEST(DeltaCodec, AckHeaderAndStreamedEntriesRoundTrip) {
  FrDeltaHeader h;
  h.revision = 901;
  h.gc_floor = Tag{5, 2};
  h.count = 2;
  FrEntry a;
  a.value = TaggedValue{Tag{5, 2}, 52};
  a.updated = {0, 3, 7};
  FrEntry b;
  b.value = TaggedValue{Tag{6, 0}, 60};
  b.updated = {1};
  ByteWriter w;
  put_delta_ack_header(w, h);
  put_fr_entry(w, a);
  put_fr_entry(w, b);
  const std::vector<std::uint8_t> bytes = w.bytes();

  ByteReader r(bytes);
  const FrDeltaHeader got = get_delta_ack_header(r);
  EXPECT_EQ(got.revision, h.revision);
  EXPECT_EQ(got.gc_floor, h.gc_floor);
  ASSERT_EQ(got.count, 2u);
  FrEntry e;
  decode_fr_entry_into(r, e);
  EXPECT_EQ(e.value, a.value);
  EXPECT_EQ(e.updated, a.updated);
  decode_fr_entry_into(r, e);
  EXPECT_EQ(e.value, b.value);
  EXPECT_EQ(e.updated, b.updated);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.exhausted());
}

TEST(DeltaCodec, RandomBytesAndTruncationsFailCleanly) {
  Rng rng(77);
  std::vector<TaggedValue> queue;
  std::vector<std::uint64_t> acked;
  for (int iter = 0; iter < 300; ++iter) {
    const auto bytes = random_bytes(rng, rng.next_below(96));
    ByteReader r1(bytes);
    (void)decode_delta_read_req_into(r1, queue, acked);
    EXPECT_LE(queue.size(), bytes.size() + 2);
    EXPECT_LE(acked.size(), bytes.size() + 2);
    ByteReader r2(bytes);
    const FrDeltaHeader h = get_delta_ack_header(r2);
    // The entry-count prefix is validated against the bytes remaining, so
    // a hostile header cannot force an oversized loop downstream.
    EXPECT_LE(h.count, bytes.size() + 2);
  }
}

// A reader over a raw (pointer, length) span behaves identically to one
// over the owning vector — the decode path never copies payload bytes.
TEST(CodecSpan, SpanReaderMatchesVectorReader) {
  ByteWriter w;
  w.put_varint(42);
  w.put_string("span");
  w.put_value(TaggedValue{Tag{3, 1}, -9});
  const std::vector<std::uint8_t> bytes = w.bytes();

  ByteReader vec_r(bytes);
  ByteReader span_r(bytes.data(), bytes.size());
  EXPECT_EQ(vec_r.get_varint(), span_r.get_varint());
  EXPECT_EQ(vec_r.get_string(), span_r.get_string());
  EXPECT_EQ(vec_r.get_value(), span_r.get_value());
  EXPECT_TRUE(vec_r.ok());
  EXPECT_TRUE(span_r.ok());
  EXPECT_TRUE(vec_r.exhausted());
  EXPECT_TRUE(span_r.exhausted());
}

}  // namespace
}  // namespace mwreg
