// Robustness: decoding arbitrary bytes must never crash, hang, or
// over-allocate -- servers and clients parse each other's payloads, and a
// malformed message must degrade to a failed ByteReader, not undefined
// behavior.
#include <gtest/gtest.h>

#include <vector>

#include "common/codec.h"
#include "common/rng.h"
#include "protocols/messages.h"

namespace mwreg {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> b(n);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next());
  return b;
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomBytesNeverCrashPrimitives) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 500; ++iter) {
    const auto bytes = random_bytes(rng, rng.next_below(64));
    ByteReader r(bytes);
    (void)r.get_varint();
    (void)r.get_signed();
    (void)r.get_string();
    (void)r.get_tag();
    (void)r.get_value();
    // ok() may be true or false; the point is we got here.
    SUCCEED();
  }
}

TEST_P(CodecFuzz, RandomBytesNeverCrashMessageDecoders) {
  Rng rng(GetParam() + 1000);
  for (int iter = 0; iter < 500; ++iter) {
    const auto bytes = random_bytes(rng, rng.next_below(96));
    (void)decode_value(bytes);
    (void)decode_tag(bytes);
    const auto vals = decode_value_list(bytes);
    const auto entries = decode_entries(bytes);
    // Length prefixes are validated against the buffer, so decoded sizes
    // stay bounded by the input size (no attacker-controlled allocation).
    EXPECT_LE(vals.size(), bytes.size() + 2);
    EXPECT_LE(entries.size(), bytes.size() + 2);
  }
}

TEST_P(CodecFuzz, TruncationsOfValidPayloadsFailCleanly) {
  Rng rng(GetParam() + 2000);
  // Build a valid entries payload, then decode every truncation of it.
  std::vector<FrEntry> entries;
  for (int i = 0; i < 4; ++i) {
    FrEntry e;
    e.value = TaggedValue{Tag{rng.next_in(1, 100), static_cast<NodeId>(i)},
                          rng.next_in(-5, 5)};
    for (NodeId c = 0; c < 5; ++c) {
      if (rng.next_bool(0.6)) e.updated.push_back(c);
    }
    entries.push_back(std::move(e));
  }
  const std::vector<std::uint8_t> full = encode_entries(entries);
  // The complete payload round-trips.
  const auto decoded = decode_entries(full);
  ASSERT_EQ(decoded.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded[i].value, entries[i].value);
    EXPECT_EQ(decoded[i].updated, entries[i].updated);
  }
  // Every strict prefix decodes without crashing.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> trunc(full.begin(),
                                    full.begin() + static_cast<std::ptrdiff_t>(cut));
    (void)decode_entries(trunc);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace mwreg
